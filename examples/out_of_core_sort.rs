//! Out-of-core mergesort (§ IV-D): the dataset lives on the simulated SSD
//! array; runs are sorted in GPU memory (ModernGPU stand-in) and pairwise-
//! merged with block-granular streaming through CAM.
//!
//! Run with: `cargo run --release --example out_of_core_sort`

use cam::workloads::sort::{model_sort, out_of_core_sort, read_elems, OocSortConfig, SortEngine};
use cam::{CamBackend, CamConfig, CamContext, IoRequest, Rig, RigConfig, StorageBackend};
use rand::Rng;

fn main() {
    let rig = Rig::new(RigConfig {
        n_ssds: 4,
        blocks_per_ssd: 32 * 1024,
        ..RigConfig::default()
    });
    let cam = CamContext::attach(&rig, CamConfig::default());
    let backend = CamBackend::new(cam.device(), 4096);
    let bs = rig.block_size();

    // 256 Ki u32 keys = 256 blocks of data + equal scratch.
    let elems: u64 = 256 * 1024;
    let cfg = OocSortConfig {
        total_elems: elems,
        run_elems: 32 * 1024,
        block_size: bs,
        data_lba: 0,
        scratch_lba: 1024,
    };

    // Load a shuffled dataset through the same backend.
    let mut rng = cam::substrate::simkit::dist::seeded_rng(2024);
    let data: Vec<u32> = (0..elems).map(|_| rng.gen()).collect();
    let buf = rig.gpu().alloc((elems * 4) as usize).unwrap();
    let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    buf.write(0, &bytes);
    backend
        .execute_batch(&[IoRequest::write(
            0,
            (elems * 4 / bs as u64) as u32,
            buf.addr(),
        )])
        .unwrap();

    let t0 = std::time::Instant::now();
    let out_lba = out_of_core_sort(&backend, rig.gpu(), &cfg).unwrap();
    let took = t0.elapsed();

    // Verify.
    let sorted = read_elems(&backend, rig.gpu(), bs, out_lba, elems).unwrap();
    let mut expect = data;
    expect.sort_unstable();
    assert_eq!(sorted, expect, "out-of-core sort must match in-memory sort");
    println!("sorted {elems} keys out-of-core in {took:?} (result at lba {out_lba})");
    let stats = cam.stats();
    println!(
        "control plane: {} batches / {} requests",
        stats.batches, stats.requests
    );

    // Paper-scale projection (Fig. 10a).
    println!("\nprojected 32 GB sort at paper scale (12 SSDs):");
    for (e, name) in [
        (SortEngine::CamSync, "CAM"),
        (SortEngine::Spdk, "SPDK"),
        (SortEngine::Posix, "POSIX I/O"),
    ] {
        println!(
            "  {:<10} {:>7.1}s",
            name,
            model_sort(e, 8 << 30, 12).as_secs_f64()
        );
    }
}
