//! Out-of-core GNN training (the paper's § IV-C workload): node features
//! live on the simulated SSD array; each mini-batch samples a 2-hop
//! neighborhood, prefetches the features through CAM, and trains.
//!
//! Run with: `cargo run --release --example gnn_training`

use cam::workloads::gnn::{
    model_epoch, train_epoch_functional, FeatureStore, GnnConfig, GnnModel, GnnSystem,
};
use cam::workloads::graph::GraphSpec;
use cam::{CamBackend, CamConfig, CamContext, PosixBackend, Rig, RigConfig};

fn main() {
    // A scaled-down Paper100M: same average degree, skew and 128-dim
    // features, sized for host memory.
    let spec = GraphSpec::paper100m();
    let graph = spec.build_scaled(20_000, 42);
    println!(
        "graph: {} nodes, {} edges (scaled {}), {}-dim features",
        graph.nodes(),
        graph.edges(),
        spec.name,
        graph.feature_dim()
    );

    let rig = Rig::new(RigConfig {
        n_ssds: 4,
        blocks_per_ssd: 16 * 1024,
        ..RigConfig::default()
    });
    let layout = FeatureStore::layout(graph.feature_dim(), rig.block_size());
    layout.load_features(&rig.raid_view(), graph.nodes());

    let cfg = GnnConfig {
        batch_size: 256,
        fanouts: [10, 5],
        hidden_dim: 128,
    };
    let steps = 8;

    // Train through CAM and through the POSIX kernel path; identical
    // checksums prove the data plane, different wall times show the cost.
    let cam_ctx = CamContext::attach(&rig, CamConfig::default());
    let cam_backend = CamBackend::new(cam_ctx.device(), 4096);
    let t0 = std::time::Instant::now();
    let cam_rep =
        train_epoch_functional(&cam_backend, rig.gpu(), &graph, layout, &cfg, steps, 7).unwrap();
    let cam_time = t0.elapsed();

    let posix_backend = PosixBackend::new(&rig);
    let t0 = std::time::Instant::now();
    let posix_rep =
        train_epoch_functional(&posix_backend, rig.gpu(), &graph, layout, &cfg, steps, 7).unwrap();
    let posix_time = t0.elapsed();

    assert!((cam_rep.checksum - posix_rep.checksum).abs() < 1e-9);
    println!(
        "{} steps, {} features fetched; CAM {:?}, POSIX {:?}, checksum {:.3}",
        steps, cam_rep.nodes_fetched, cam_time, posix_time, cam_rep.checksum
    );

    // Paper-scale projection (Fig. 9) from the analytic model.
    println!("\nprojected epoch times at paper scale (12 SSDs):");
    for dataset in [GraphSpec::paper100m(), GraphSpec::igb_full()] {
        for model in GnnModel::ALL {
            let gids = model_epoch(GnnSystem::Gids, &dataset, model, &GnnConfig::default(), 12);
            let cam = model_epoch(GnnSystem::Cam, &dataset, model, &GnnConfig::default(), 12);
            println!(
                "  {:<10} {:<10} GIDS {:>7.1}s  CAM {:>7.1}s  ({:.2}x)",
                dataset.name,
                model.name(),
                gids.epoch().as_secs_f64(),
                cam.epoch().as_secs_f64(),
                gids.epoch().as_secs_f64() / cam.epoch().as_secs_f64()
            );
        }
    }
}
