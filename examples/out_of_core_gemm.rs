//! Out-of-core GEMM (§ IV-E): `C = A × B` with all three matrices on the
//! simulated SSD array; operand tiles stream through CAM into pinned GPU
//! memory, the multiply runs per tile, and C is written back.
//!
//! Run with: `cargo run --release --example out_of_core_gemm`

use cam::workloads::gemm::{load_matrix, model_gemm, out_of_core_gemm, GemmEngine, OocGemmConfig};
use cam::{CamBackend, CamConfig, CamContext, Rig, RigConfig};

fn main() {
    let rig = Rig::new(RigConfig {
        n_ssds: 4,
        blocks_per_ssd: 16 * 1024,
        ..RigConfig::default()
    });
    let cam = CamContext::attach(&rig, CamConfig::default());
    let backend = CamBackend::new(cam.device(), 4096);

    let cfg = OocGemmConfig {
        n: 128,
        tile: 32,
        block_size: rig.block_size(),
        base_lba: 0,
    };
    let nn = (cfg.n * cfg.n) as usize;
    let a: Vec<f32> = (0..nn).map(|i| ((i * 13) % 17) as f32 - 8.0).collect();
    let b: Vec<f32> = (0..nn).map(|i| ((i * 7) % 19) as f32 - 9.0).collect();
    load_matrix(&backend, rig.gpu(), &cfg, 0, &a).unwrap();
    load_matrix(&backend, rig.gpu(), &cfg, 1, &b).unwrap();

    let t0 = std::time::Instant::now();
    let c = out_of_core_gemm(&backend, rig.gpu(), &cfg).unwrap();
    let took = t0.elapsed();

    // Verify one row against a dense reference.
    let n = cfg.n as usize;
    for j in 0..n {
        let want: f32 = (0..n).map(|k| a[k] * b[k * n + j]).sum();
        assert!(
            (c[j] - want).abs() < 1e-2,
            "C[0,{j}] = {}, want {want}",
            c[j]
        );
    }
    println!("{}x{} GEMM out-of-core in {took:?}, verified", cfg.n, cfg.n);

    // Paper-scale projection (Figs. 10b/10c).
    println!("\nprojected 65536^2 GEMM at paper scale (12 SSDs):");
    for e in [
        GemmEngine::Cam,
        GemmEngine::Bam,
        GemmEngine::Gds,
        GemmEngine::Spdk,
    ] {
        let r = model_gemm(e, 65_536, 4_096, 12);
        println!(
            "  {:<6} {:>6.2} GB/s  {:>8.1}s",
            e.name(),
            r.io_gbps,
            r.time.as_secs_f64()
        );
    }
}
