//! Quickstart: bring up the simulated testbed, attach CAM, and run the
//! Fig. 7 pattern — write a dataset back to the SSDs, then stream it into
//! pinned GPU memory with prefetch / prefetch_synchronize while "compute"
//! overlaps the next batch's I/O.
//!
//! Run with: `cargo run --release --example quickstart`

use cam::{CamConfig, CamContext, DoubleBuffer, Rig, RigConfig};

/// The per-batch "GPU kernel": a few passes of mixing over the batch.
fn compute(data: &[u8]) -> u64 {
    let mut acc = 0u64;
    for round in 1..=6u64 {
        acc = acc.wrapping_add(
            data.iter()
                .map(|&x| (x as u64).wrapping_mul(round))
                .sum::<u64>(),
        );
    }
    acc
}

fn main() {
    // Testbed: 4 simulated P5510-style SSDs + a simulated A100. The injected
    // per-service-round latency makes I/O slow enough that overlap shows up
    // on the wall clock even on a laptop.
    let rig = Rig::new(RigConfig {
        n_ssds: 4,
        blocks_per_ssd: 16 * 1024,
        burst_latency: Some(std::time::Duration::from_micros(500)),
        ..RigConfig::default()
    });
    // CAM_init: four shared memory regions + CPU control plane.
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let bs = cam.block_size() as usize;

    // --- Load a dataset onto the SSDs via write_back. -------------------
    let batch = 64usize;
    let total_batches = 16u64;
    let src = cam.alloc(batch * bs).expect("CAM_alloc");
    for b in 0..total_batches {
        for i in 0..batch {
            src.write(i * bs, &vec![(b as u8) * 16 + (i % 16) as u8 + 1; bs]);
        }
        let lbas: Vec<u64> = (b * batch as u64..(b + 1) * batch as u64).collect();
        dev.write_back(&lbas, src.addr()).expect("write_back");
        dev.write_back_synchronize()
            .expect("write_back_synchronize");
    }
    println!(
        "loaded {} blocks onto {} SSDs",
        total_batches * batch as u64,
        rig.n_ssds()
    );

    // --- Pipelined read loop (Fig. 7): prefetch N+1 while computing N. ---
    let mut db = DoubleBuffer::new(&cam, batch * bs).expect("CAM_alloc x2");
    let lbas_of = |b: u64| -> Vec<u64> { (b * batch as u64..(b + 1) * batch as u64).collect() };

    let t0 = std::time::Instant::now();
    dev.prefetch(&lbas_of(0), db.read_buf().addr()).unwrap();
    let mut checksum = 0u64;
    for b in 0..total_batches {
        dev.prefetch_synchronize().expect("prefetch_synchronize");
        db.swap(); // freshly-read buffer becomes the compute buffer
        if b + 1 < total_batches {
            dev.prefetch(&lbas_of(b + 1), db.read_buf().addr()).unwrap();
        }
        // "Computation": several passes over the batch while the next one
        // streams in (device latency is spent sleeping, so on any host the
        // overlap is real wall-clock time saved).
        checksum += compute(&db.compute_buf().to_vec());
    }
    let pipelined = t0.elapsed();

    // --- The same loop without overlap, for contrast. --------------------
    let t0 = std::time::Instant::now();
    let mut serial_checksum = 0u64;
    for b in 0..total_batches {
        dev.prefetch(&lbas_of(b), db.read_buf().addr()).unwrap();
        dev.prefetch_synchronize().unwrap();
        serial_checksum += compute(&db.read_buf().to_vec());
    }
    let serial = t0.elapsed();

    assert_eq!(checksum, serial_checksum, "overlap must not change results");
    let stats = cam.stats();
    println!("pipelined: {pipelined:?}   serial: {serial:?}");
    println!(
        "control plane: {} batches, {} requests, {} errors, {} active workers",
        stats.batches, stats.requests, stats.errors, stats.active_workers
    );
    println!("checksum: {checksum}");
}
