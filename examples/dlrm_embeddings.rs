//! DLRM embedding-table training (the paper's § I/§ II motivating
//! application): an SSD-resident embedding table with Zipf-skewed pooled
//! lookups and SGD write-back, streamed through CAM.
//!
//! Run with: `cargo run --release --example dlrm_embeddings`

use cam::workloads::dlrm::{model_iteration, zipf_bag, DlrmSystem, EmbeddingTable};
use cam::{CamBackend, CamConfig, CamContext, Rig, RigConfig};

fn main() {
    let rig = Rig::new(RigConfig {
        n_ssds: 4,
        blocks_per_ssd: 16 * 1024,
        ..RigConfig::default()
    });
    let cam = CamContext::attach(&rig, CamConfig::default());
    let backend = CamBackend::new(cam.device(), 4096);

    // A 4096-row, 64-dim table on the array (a scaled-down sparse feature).
    let table = EmbeddingTable::layout(4096, 64, rig.block_size(), 0);
    let t0 = std::time::Instant::now();
    table.load(&backend, rig.gpu()).unwrap();
    println!(
        "loaded {} x {}-dim embedding table ({} blocks) in {:?}",
        table.rows,
        table.dim,
        table.total_blocks(),
        t0.elapsed()
    );

    // A few training iterations: pooled lookups + SGD write-back.
    let mut rng = cam::substrate::simkit::dist::seeded_rng(7);
    let t0 = std::time::Instant::now();
    let iters = 10;
    let mut pooled_sum = 0.0f64;
    for _ in 0..iters {
        let bag = zipf_bag(table.rows, 64, 0.9, &mut rng);
        let pooled = table.lookup_pooled(&backend, rig.gpu(), &bag).unwrap();
        pooled_sum += pooled.iter().map(|&x| x as f64).sum::<f64>();
        // "Backward": a constant gradient on the looked-up rows.
        let grad = vec![0.01f32; table.dim as usize];
        table
            .sgd_update(&backend, rig.gpu(), &bag, &grad, 0.1)
            .unwrap();
    }
    println!(
        "{iters} iterations (lookup + update) in {:?}; pooled checksum {pooled_sum:.1}",
        t0.elapsed()
    );
    let stats = cam.stats();
    println!(
        "control plane: {} batches / {} requests, {} errors",
        stats.batches, stats.requests, stats.errors
    );

    // Paper-scale projection (§ II's TorchRec observation).
    let base = model_iteration(DlrmSystem::TorchRec, 4096, 26, 20, 128, 12);
    let fast = model_iteration(DlrmSystem::Cam, 4096, 26, 20, 128, 12);
    println!(
        "\nprojected at paper scale (12 SSDs): TorchRec-style {:.0} ms/iter \
         ({:.0}% on embeddings) -> CAM {:.0} ms/iter ({:.2}x)",
        base.iteration.as_secs_f64() * 1e3,
        base.embedding_fraction() * 100.0,
        fast.iteration.as_secs_f64() * 1e3,
        base.iteration.as_ns() as f64 / fast.iteration.as_ns() as f64
    );
}
