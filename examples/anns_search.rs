//! ANNS vector search (the paper's § II Issue-2 workload): an IVF-Flat
//! index whose inverted lists live on the simulated SSD array. Queries
//! probe a few lists — small scattered reads, the pattern that makes the
//! staged (bounce-buffer) data path collapse and CAM's direct path shine.
//!
//! Run with: `cargo run --release --example anns_search`

use cam::workloads::anns::{staged_copy_fraction, IvfBuildConfig, IvfIndex};
use cam::{CamBackend, CamConfig, CamContext, Rig, RigConfig};
use rand::Rng;

fn main() {
    let rig = Rig::new(RigConfig {
        n_ssds: 4,
        blocks_per_ssd: 16 * 1024,
        ..RigConfig::default()
    });
    let cam = CamContext::attach(&rig, CamConfig::default());
    let backend = CamBackend::new(cam.device(), 4096);

    // Build a 10k x 32-dim index with 32 inverted lists on the array.
    let dim = 32;
    let n = 10_000;
    let mut rng = cam::substrate::simkit::dist::seeded_rng(99);
    let vectors: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let t0 = std::time::Instant::now();
    let index = IvfIndex::build(
        &backend,
        rig.gpu(),
        &vectors,
        IvfBuildConfig {
            dim,
            nlist: 32,
            block_size: 4096,
            base_lba: 0,
            seed: 1,
        },
    )
    .unwrap();
    println!(
        "built IVF index: {n} vectors x {dim} dims, {} lists, in {:?}",
        index.nlist(),
        t0.elapsed()
    );

    // Search a few queries; report recall against brute force.
    let mut recall_hits = 0usize;
    let queries = 20;
    let k = 10;
    let t0 = std::time::Instant::now();
    for q in 0..queries {
        let query: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let hits = index.search(&backend, rig.gpu(), &query, 8, k).unwrap();
        // Brute-force ground truth.
        let mut exact: Vec<(u32, f32)> = (0..n as u32)
            .map(|id| {
                let v = &vectors[id as usize * dim..(id as usize + 1) * dim];
                let d: f32 = v.iter().zip(&query).map(|(x, y)| (x - y) * (x - y)).sum();
                (id, d)
            })
            .collect();
        exact.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let truth: std::collections::HashSet<u32> = exact[..k].iter().map(|(id, _)| *id).collect();
        recall_hits += hits.iter().filter(|h| truth.contains(&h.id)).count();
        let _ = q;
    }
    println!(
        "{queries} queries in {:?}; recall@{k} with nprobe=8: {:.1}%",
        t0.elapsed(),
        100.0 * recall_hits as f64 / (queries * k) as f64
    );

    // Issue 2's measurement, from the model: at 4 KiB the staged path
    // spends ~78% of its time in cudaMemcpyAsync.
    println!("\nstaged-path cudaMemcpyAsync share of total time (12 SSDs):");
    for gran in [4u64 << 10, 64 << 10, 1 << 20, 16 << 20] {
        println!(
            "  {:>8} B: {:.1}%",
            gran,
            100.0 * staged_copy_fraction(gran, 12)
        );
    }
    println!("(CAM's direct data path pays none of this)");
}
