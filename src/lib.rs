//! # CAM — asynchronous GPU-initiated, CPU-managed SSD management
//!
//! Facade crate for the full-system reproduction of *"CAM: Asynchronous
//! GPU-Initiated, CPU-Managed SSD Management for Batching Storage Access"*
//! (Song et al., ICDE 2025). Everything runs over simulated hardware built
//! in this workspace — see the README for the architecture tour and
//! `DESIGN.md` for the per-experiment index. The optional GPU-memory block
//! cache ([`CachedDevice`]) layers hit-serving, write absorption, miss
//! coalescing, and adaptive readahead over the unchanged doorbell protocol
//! — see `docs/CACHE.md`.
//!
//! ## Quickstart
//!
//! ```
//! use cam::{CamConfig, CamContext, Rig, RigConfig};
//!
//! // Testbed: simulated SSDs + GPU ("CAM_init" wires the control plane).
//! let rig = Rig::new(RigConfig { n_ssds: 4, ..RigConfig::default() });
//! let cam = CamContext::attach(&rig, CamConfig::default());
//! let dev = cam.device();
//!
//! // CAM_alloc pinned GPU memory, write_back, prefetch — Table II's API.
//! let buf = cam.alloc(8 * 4096).unwrap();
//! buf.write(0, &vec![0x5Au8; 8 * 4096]);
//! dev.write_back(&(0..8).collect::<Vec<_>>(), buf.addr()).unwrap();
//! dev.write_back_synchronize().unwrap();
//!
//! let out = cam.alloc(8 * 4096).unwrap();
//! dev.prefetch(&(0..8).collect::<Vec<_>>(), out.addr()).unwrap();
//! dev.prefetch_synchronize().unwrap();
//! assert_eq!(out.to_vec(), buf.to_vec());
//!
//! // Telemetry: every batch's doorbell→retire lifecycle is measured.
//! let snap = cam.registry().snapshot();
//! assert_eq!(snap.counter("cam_batches_total"), cam.stats().batches);
//! assert!(snap
//!     .histogram("cam_stage_ns{op=\"read\",stage=\"complete\"}")
//!     .is_some_and(|h| h.count > 0));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use cam_cache::{
    BlockCache, CacheConfig, CacheMetrics, CachedBackend, CachedDevice, ReadaheadConfig,
    ReadaheadEngine,
};
pub use cam_core::{
    BatchTicket, CamBackend, CamConfig, CamContext, CamDevice, CamError, Channel, ChannelOp,
    ControlStats, DoubleBuffer, DynamicScaler,
};
pub use cam_iostacks::{
    BackendError, BamBackend, IoRequest, PosixBackend, Rig, RigConfig, SpdkBackend, StorageBackend,
};
pub use cam_serving::{ServingConfig, ServingCore, ServingStats, TenantStats};
pub use cam_telemetry::{
    BatchSpan, ControlMetrics, Counter, Gauge, Histogram, HistogramHandle, HistogramSummary,
    MetricsRegistry, MetricsSnapshot, NoopSink, Stage, TelemetrySink, TenantMetrics,
};

/// Substrate crates, re-exported for direct access to the simulated
/// hardware (NVMe queues and devices, GPU memory/occupancy models, the DES
/// kernel, the host-OS models, and raw block storage).
pub mod substrate {
    pub use cam_blockdev as blockdev;
    pub use cam_gpu as gpu;
    pub use cam_hostos as hostos;
    pub use cam_nvme as nvme;
    pub use cam_simkit as simkit;
}

/// Evaluation workloads (GNN training, mergesort, GEMM, KV-cache serving)
/// — functional and analytic forms.
pub mod workloads {
    pub use cam_workloads::{anns, dlrm, gemm, gnn, graph, kv_cache, llm, sort};
}

/// The multi-tenant serving front-end (session table, token-bucket
/// admission, DRR fair scheduling, per-tenant SLO accounting) — see
/// `docs/SERVING.md`.
pub mod serving {
    pub use cam_serving::*;
}
