//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! wires `proptest` to this std-only shim (see the workspace `Cargo.toml`).
//! It supports the subset of the proptest 1.x surface the workspace's tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, [`prop_oneof!`], range and tuple
//! strategies, `prop_map`, `proptest::collection::{vec, hash_set}`, and
//! `proptest::bool::ANY`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   assertion message; inputs are reproducible because generation is fully
//!   deterministic (seeded from the test name and case index).
//! * **Default case count is 64** (env `PROPTEST_CASES` overrides), keeping
//!   offline CI fast. Tests that set `ProptestConfig { cases, .. }` behave
//!   identically.

#![deny(unsafe_code)]

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for `case` of the test named `name` — deterministic across
    /// runs and independent across tests.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    /// Per-test configuration (subset of proptest's `Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe (`prop_map` is `Self: Sized`), so `Box<dyn Strategy>` works
    /// for [`crate::prop_oneof!`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Uniform choice between boxed alternatives (backs [`crate::prop_oneof!`]).
    pub struct OneOf<V> {
        alts: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Builds from at least one alternative.
        pub fn new(alts: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { alts }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.alts.len() as u64) as usize;
            self.alts[i].generate(rng)
        }
    }

    /// Coercion helper used by [`crate::prop_oneof!`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Size specification for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// Strategy yielding `Vec`s of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy yielding `HashSet`s of `element` values with a size in range
    /// (best effort: gives up growing after a bounded number of duplicate
    /// draws, like real proptest's rejection cap).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng).max(self.size.min).max(1);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// The type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident ($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        $crate::__proptest_case!(__rng, $body, $($params)*);
                    if let ::std::result::Result::Err(msg) = __outcome {
                        ::std::panic!(
                            "property test {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, $body:block, $($pat:pat in $strategy:expr),+ $(,)?) => {{
        $(
            let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut $rng);
        )+
        let mut __case_fn = || -> ::std::result::Result<(), ::std::string::String> {
            $body
            ::std::result::Result::Ok(())
        };
        __case_fn()
    }};
}

/// Uniform choice between strategy alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($alt)),+
        ])
    };
}

/// Asserts inside a property test; failure reports the case without panicking
/// the harness thread mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

/// Skips the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = (1u8..16).generate(&mut rng);
            assert!((1..16).contains(&v));
            let (a, b, c) = (0u64..10, 5usize..6, -2i32..3).generate(&mut rng);
            assert!(a < 10 && b == 5 && (-2..3).contains(&c));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = crate::TestRng::for_case("c", 1);
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..100, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            let s = crate::collection::hash_set(0u64..1000, 1..32).generate(&mut rng);
            assert!((1..32).contains(&s.len()));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![
            (0u64..1).prop_map(|_| 1u32),
            (0u64..1).prop_map(|_| 2u32),
            (0u64..1).prop_map(|_| 3u32),
        ];
        let mut rng = crate::TestRng::for_case("o", 2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

        /// The macro itself: patterns, config, assertions, loops.
        #[test]
        fn macro_end_to_end(
            mut xs in crate::collection::vec(0u64..50, 1..20),
            flag in crate::bool::ANY,
        ) {
            xs.sort_unstable();
            for pair in xs.windows(2) {
                prop_assert!(pair[0] <= pair[1], "unsorted after sort: {:?}", xs);
            }
            let n = xs.len();
            prop_assert_eq!(xs.len(), n);
            if flag {
                prop_assert_ne!(xs.len(), 0);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_form(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }
}
