//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! wires `criterion` to this std-only shim (see the workspace `Cargo.toml`).
//! It keeps `cargo bench` compiling and producing *indicative* per-iteration
//! timings on stdout — a light timer loop, not criterion's statistical
//! machinery (no warm-up modelling, outlier analysis, or HTML reports).
//!
//! Covered surface: [`Criterion::benchmark_group`], group
//! `sample_size`/`throughput`/`measurement_time`/`bench_function`/
//! `bench_with_input`/`finish`, [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.

#![deny(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Benchmark driver handed to group closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed pass to pull code/data into cache.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), 10, None, f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates work-per-iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim's budget is iteration-based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F>(group: &str, id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.elapsed.is_zero() || b.iters == 0 {
        println!("  {label}: (no measurement)");
        return;
    }
    let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.1} Kelem/s", n as f64 / per_iter_ns * 1e6),
        Throughput::Bytes(n) => format!(", {:.3} GB/s", n as f64 / per_iter_ns),
    });
    println!(
        "  {label}: {:.0} ns/iter{}",
        per_iter_ns,
        rate.unwrap_or_default()
    );
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
