//! Offline shim for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace wires its external dependencies to small
//! std-backed shims (see the workspace `Cargo.toml`). This crate exposes the
//! subset of the `parking_lot` 0.12 API that the workspace actually uses —
//! [`Mutex`], [`RwLock`] and [`Condvar`] — implemented on top of
//! `std::sync`. Poisoning is swallowed (like real `parking_lot`, a panicking
//! holder does not poison the lock for later users).

#![deny(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive (API-compatible subset of `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait_for`] can take the
/// inner guard (std's wait API consumes it) and put it back.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken")
    }
}

/// A reader-writer lock (API-compatible subset of `parking_lot::RwLock`).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter. Returns whether a thread was woken (always reported
    /// `true` here; std does not expose the count).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters. Returns the number woken (std does not expose the
    /// count, so this reports 0).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let (a, b) = (l.read(), l.read());
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
    }
}
