//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! wires `rand` to this std-only shim (see the workspace `Cargo.toml`). It
//! covers the subset of the rand 0.8 API the workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`],
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom`]
//! (`choose`/`choose_multiple`/`shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, statistically solid for simulation workloads, and *not*
//! cryptographically secure (unlike the real `StdRng`, which is ChaCha-based;
//! no code in this workspace relies on that property). Streams differ from
//! upstream `rand`, which only matters for tests that hard-code expected
//! sample values — none do.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an [`RngCore`] (stand-in for rand's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::sample(rng) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::sample(rng) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive, int or float).
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to spread an arbitrary seed (including 0)
            // over the full state space.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices (subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them if the
        /// slice is shorter). Returned as an iterator of references, like
        /// rand's `SliceChooseIter`.
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector: O(len) setup,
            // exact sampling without replacement.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            let i = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn float_unit_interval_covers_mass() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut r = StdRng::seed_from_u64(5);
        let items: Vec<u32> = (0..100).collect();
        let picked: Vec<u32> = items.choose_multiple(&mut r, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "sampling must be without replacement");
        // Over-asking returns the whole slice.
        assert_eq!(items.choose_multiple(&mut r, 1000).count(), 100);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = StdRng::seed_from_u64(9);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let items = [1u32, 2, 3];
        assert!(items.contains(items.choose(&mut r).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(
            v, orig,
            "50-element shuffle staying identical is ~impossible"
        );
    }
}
