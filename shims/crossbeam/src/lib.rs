//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! wires `crossbeam` to this std-backed shim (see the workspace
//! `Cargo.toml`). It covers exactly the surface the workspace uses:
//! `crossbeam::channel::{unbounded, Sender, Receiver, RecvTimeoutError}` and
//! `crossbeam::queue::ArrayQueue`. Semantics match the real crate for those
//! uses (MPSC here — every `Receiver` in this workspace is owned by a single
//! thread).

#![deny(unsafe_code)]

/// Multi-producer channels (std `mpsc` backed).
pub mod channel {
    use std::sync::mpsc;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// Sending half of a channel. Cloneable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Error returned by [`Sender::send`]: the message could not be delivered.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum RecvTimeoutError {
        /// No message within the timeout.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }
}

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A bounded MPMC queue (mutex-backed stand-in for crossbeam's lock-free
    /// `ArrayQueue`; same API and semantics, different performance profile).
    pub struct ArrayQueue<T> {
        cap: usize,
        items: Mutex<VecDeque<T>>,
    }

    impl<T> ArrayQueue<T> {
        /// Creates a queue with room for `cap` elements. Panics if `cap == 0`.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            ArrayQueue {
                cap,
                items: Mutex::new(VecDeque::with_capacity(cap)),
            }
        }

        /// Pushes an element, returning it back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.items.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() == self.cap {
                Err(value)
            } else {
                q.push_back(value);
                Ok(())
            }
        }

        /// Pops the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            self.items
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Number of elements currently queued.
        pub fn len(&self) -> usize {
            self.items.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True if the queue holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// True if the queue is at capacity.
        pub fn is_full(&self) -> bool {
            self.len() == self.cap
        }

        /// The fixed capacity given at construction.
        pub fn capacity(&self) -> usize {
            self.cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use super::queue::ArrayQueue;
    use std::time::Duration;

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap());
        tx.send(2).unwrap();
        drop(tx);
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn channel_timeout() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
    }

    #[test]
    fn array_queue_bounds() {
        let q = ArrayQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert!(q.is_full());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(2));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 2);
    }
}
