//! Workspace-level end-to-end tests through the `cam` facade: the full
//! stack (simulated GPU → CAM protocol → CPU control plane → simulated
//! NVMe → block media) exercised the way a downstream user would.

use cam::substrate::blockdev::{BlockStore, Lba};
use cam::workloads::gnn::{train_epoch_functional, FeatureStore, GnnConfig};
use cam::workloads::graph::GraphSpec;
use cam::{
    CamBackend, CamConfig, CamContext, IoRequest, PosixBackend, Rig, RigConfig, SpdkBackend,
    StorageBackend,
};

#[test]
fn facade_quickstart_compiles_and_runs() {
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        ..RigConfig::default()
    });
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let buf = cam.alloc(4 * 4096).unwrap();
    buf.write(0, &vec![9u8; 4 * 4096]);
    dev.write_back(&[0, 1, 2, 3], buf.addr()).unwrap();
    dev.write_back_synchronize().unwrap();
    let out = cam.alloc(4 * 4096).unwrap();
    dev.prefetch(&[0, 1, 2, 3], out.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();
    assert_eq!(out.to_vec(), buf.to_vec());
}

#[test]
fn all_backends_see_the_same_media() {
    // Write through CAM, read back through POSIX and SPDK — one media, four
    // managements (Table I made concrete).
    let rig = Rig::new(RigConfig {
        n_ssds: 3,
        ..RigConfig::default()
    });
    let cam_ctx = CamContext::attach(&rig, CamConfig::default());
    let cam = CamBackend::new(cam_ctx.device(), 4096);
    let posix = PosixBackend::new(&rig);
    let spdk = SpdkBackend::new(&rig);

    let src = rig.gpu().alloc(16 * 4096).unwrap();
    for i in 0..16usize {
        src.write(i * 4096, &vec![i as u8 + 1; 4096]);
    }
    let writes: Vec<IoRequest> = (0..16u64)
        .map(|i| IoRequest::write(i * 3 + 1, 1, src.addr() + i * 4096))
        .collect();
    cam.execute_batch(&writes).unwrap();

    for be in [&posix as &dyn StorageBackend, &spdk] {
        let dst = rig.gpu().alloc(16 * 4096).unwrap();
        let reads: Vec<IoRequest> = (0..16u64)
            .map(|i| IoRequest::read(i * 3 + 1, 1, dst.addr() + i * 4096))
            .collect();
        be.execute_batch(&reads).unwrap();
        assert_eq!(dst.to_vec(), src.to_vec(), "backend {}", be.name());
    }
}

#[test]
fn kernel_initiated_io_with_many_blocks() {
    // Several thread blocks each drive their own CAM channel concurrently.
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        ..RigConfig::default()
    });
    let raid = rig.raid_view();
    for b in 0..64u64 {
        raid.write(Lba(b), &vec![(b + 1) as u8; 4096]).unwrap();
    }
    let n_blocks = 4u64;
    let cam = CamContext::attach(
        &rig,
        CamConfig {
            n_channels: n_blocks as usize,
            ..CamConfig::default()
        },
    );
    let dev = cam.device();
    let buf = cam.alloc(64 * 4096).unwrap();
    let base = buf.addr();
    rig.gpu().launch(n_blocks, |ctx| {
        let ch = ctx.block_idx as usize;
        let my: Vec<u64> = (0..64u64)
            .filter(|b| b % n_blocks == ctx.block_idx)
            .collect();
        let addr = base + ctx.block_idx * 16 * 4096;
        let ticket = dev
            .submit(ch, cam::ChannelOp::Read, &my, addr)
            .expect("submit");
        ticket.wait().expect("wait");
    });
    // Verify each block's slice.
    let data = buf.to_vec();
    for g in 0..n_blocks {
        for (i, b) in (0..64u64).filter(|b| b % n_blocks == g).enumerate() {
            let off = (g * 16 + i as u64) as usize * 4096;
            assert!(
                data[off..off + 4096].iter().all(|&x| x == (b + 1) as u8),
                "block {b} via channel {g}"
            );
        }
    }
    assert_eq!(cam.stats().batches, n_blocks);
}

#[test]
fn gnn_epoch_through_facade() {
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        blocks_per_ssd: 8192,
        ..RigConfig::default()
    });
    let graph = GraphSpec::paper100m().build_scaled(3_000, 21);
    let layout = FeatureStore::layout(graph.feature_dim(), rig.block_size());
    layout.load_features(&rig.raid_view(), graph.nodes());
    let ctx = CamContext::attach(&rig, CamConfig::default());
    let backend = CamBackend::new(ctx.device(), 4096);
    let rep = train_epoch_functional(
        &backend,
        rig.gpu(),
        &graph,
        layout,
        &GnnConfig {
            batch_size: 64,
            fanouts: [8, 4],
            hidden_dim: 128,
        },
        4,
        1,
    )
    .unwrap();
    assert_eq!(rep.steps, 4);
    assert!(rep.checksum.is_finite() && rep.checksum > 0.0);
    // Every fetched feature crossed the direct data path.
    let stats = ctx.stats();
    assert!(stats.requests >= rep.nodes_fetched);
    assert_eq!(stats.errors, 0);
}

#[test]
fn context_teardown_is_clean_under_load() {
    // Drop the context while devices still have service threads running;
    // nothing should hang or panic.
    for _ in 0..3 {
        let rig = Rig::new(RigConfig {
            n_ssds: 2,
            ..RigConfig::default()
        });
        let cam = CamContext::attach(&rig, CamConfig::default());
        let dev = cam.device();
        let buf = cam.alloc(8 * 4096).unwrap();
        dev.prefetch(&(0..8).collect::<Vec<_>>(), buf.addr())
            .unwrap();
        dev.prefetch_synchronize().unwrap();
        drop(cam);
        drop(rig);
    }
}
