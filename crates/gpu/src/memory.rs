//! [`GpuMemory`] / [`GpuBuffer`] — pinned device memory that NVMe commands
//! can target directly.
//!
//! This is the reproduction's `CAM_alloc` substrate: allocation returns a
//! buffer whose **physical address** ([`GpuBuffer::addr`]) is stable and
//! registered in one contiguous [`PinnedRegion`], exactly the contract the
//! paper gets from GDRCopy. Buffers free their pages on drop (`CAM_free`).

use std::fmt;
use std::sync::Arc;

use cam_blockdev::ExtentAllocator;
use cam_nvme::{DmaSpace, PinnedRegion};
use parking_lot::Mutex;

/// Allocation failure: device memory exhausted (or fragmented).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: usize,
    /// Bytes currently free (may be fragmented).
    pub free: usize,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GPU out of memory: requested {} bytes, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Page size of device allocations.
const PAGE: usize = 4096;

struct Inner {
    region: Arc<PinnedRegion>,
    alloc: Mutex<ExtentAllocator>,
}

/// The GPU's pinned device memory pool.
#[derive(Clone)]
pub struct GpuMemory {
    inner: Arc<Inner>,
}

impl GpuMemory {
    /// Creates a pool of `bytes` device memory whose physical address space
    /// starts at `base`.
    pub fn new(base: u64, bytes: usize) -> Self {
        assert!(bytes >= PAGE, "GPU memory must be at least one page");
        let region = Arc::new(PinnedRegion::with_page_size(base, bytes, PAGE));
        let pages = region.len() / PAGE;
        GpuMemory {
            inner: Arc::new(Inner {
                region,
                alloc: Mutex::new(ExtentAllocator::new(pages as u64)),
            }),
        }
    }

    /// The pinned region, to register with NVMe devices as their DMA space.
    pub fn region(&self) -> Arc<PinnedRegion> {
        Arc::clone(&self.inner.region)
    }

    /// Allocates `bytes` (rounded up to whole pages) of device memory.
    /// This is `CAM_alloc`.
    pub fn alloc(&self, bytes: usize) -> Result<GpuBuffer, OutOfMemory> {
        let pages = bytes.max(1).div_ceil(PAGE) as u64;
        let extent = {
            let mut a = self.inner.alloc.lock();
            a.alloc(pages).ok_or(OutOfMemory {
                requested: bytes,
                free: (a.free_blocks() as usize) * PAGE,
            })?
        };
        Ok(GpuBuffer {
            inner: Arc::clone(&self.inner),
            extent,
            len: bytes.max(1),
        })
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> usize {
        self.inner.alloc.lock().free_blocks() as usize * PAGE
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> usize {
        self.inner.alloc.lock().allocated_blocks() as usize * PAGE
    }
}

/// A pinned device-memory buffer. Freed on drop (`CAM_free`).
pub struct GpuBuffer {
    inner: Arc<Inner>,
    extent: cam_blockdev::Extent,
    len: usize,
}

impl GpuBuffer {
    /// Physical address of the buffer start — the value NVMe SQEs carry.
    pub fn addr(&self) -> u64 {
        self.inner.region.base() + self.extent.start.index() * PAGE as u64
    }

    /// Physical address of byte `offset` within the buffer.
    pub fn addr_at(&self, offset: usize) -> u64 {
        assert!(offset < self.capacity(), "offset out of buffer");
        self.addr() + offset as u64
    }

    /// Requested length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer has zero requested length (never true).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Page-rounded capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.extent.blocks as usize * PAGE
    }

    /// Copies host data into the buffer at `offset`.
    pub fn write(&self, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= self.capacity(),
            "write out of buffer"
        );
        self.inner
            .region
            .dma_write(self.addr() + offset as u64, data)
            .expect("buffer lies inside its region");
    }

    /// Copies buffer contents at `offset` out to host memory.
    pub fn read(&self, offset: usize, out: &mut [u8]) {
        assert!(offset + out.len() <= self.capacity(), "read out of buffer");
        self.inner
            .region
            .dma_read(self.addr() + offset as u64, out)
            .expect("buffer lies inside its region");
    }

    /// Convenience: reads the whole requested length into a new vector.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = vec![0u8; self.len];
        self.read(0, &mut v);
        v
    }
}

impl Drop for GpuBuffer {
    fn drop(&mut self) {
        self.inner.alloc.lock().free(self.extent);
    }
}

impl fmt::Debug for GpuBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GpuBuffer({:#x}, {} B)", self.addr(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle_reclaims_memory() {
        let mem = GpuMemory::new(0x10_0000_0000, 1 << 20);
        let total = mem.free_bytes();
        {
            let b = mem.alloc(100_000).unwrap();
            assert_eq!(b.len(), 100_000);
            assert!(b.capacity() >= 100_000);
            assert!(mem.free_bytes() < total);
        }
        assert_eq!(mem.free_bytes(), total);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mem = GpuMemory::new(0, 64 * 1024);
        let _a = mem.alloc(48 * 1024).unwrap();
        let err = mem.alloc(32 * 1024).unwrap_err();
        assert_eq!(err.requested, 32 * 1024);
        assert_eq!(err.free, 16 * 1024);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn buffers_are_disjoint_and_addressable() {
        let mem = GpuMemory::new(0x1000, 1 << 20);
        let a = mem.alloc(8192).unwrap();
        let b = mem.alloc(8192).unwrap();
        assert_ne!(a.addr(), b.addr());
        a.write(0, &[1u8; 8192]);
        b.write(0, &[2u8; 8192]);
        assert!(a.to_vec().iter().all(|&x| x == 1));
        assert!(b.to_vec().iter().all(|&x| x == 2));
        assert_eq!(a.addr_at(100), a.addr() + 100);
    }

    #[test]
    fn region_is_shared_dma_space() {
        let mem = GpuMemory::new(0x4000_0000, 1 << 20);
        let buf = mem.alloc(4096).unwrap();
        buf.write(0, b"hello, dma");
        // A "device" resolves the same bytes through the region.
        let region = mem.region();
        let mut out = [0u8; 10];
        region.dma_read(buf.addr(), &mut out).unwrap();
        assert_eq!(&out, b"hello, dma");
    }

    #[test]
    fn write_read_roundtrip_with_offsets() {
        let mem = GpuMemory::new(0, 1 << 20);
        let buf = mem.alloc(10_000).unwrap();
        let data: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        buf.write(3000, &data);
        let mut out = vec![0u8; 5000];
        buf.read(3000, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "write out of buffer")]
    fn overflow_write_panics() {
        let mem = GpuMemory::new(0, 1 << 20);
        let buf = mem.alloc(4096).unwrap();
        buf.write(4000, &[0u8; 200]);
    }
}
