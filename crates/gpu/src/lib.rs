//! # cam-gpu — simulated GPU substrate
//!
//! The paper runs on an 80 GB PCIe A100. What its evaluation actually needs
//! from the GPU is:
//!
//! * **pinned device memory with physical addresses** — GDRCopy's
//!   `nvidia_p2p_get_pages` in the paper; here a
//!   [`PinnedRegion`](cam_nvme::PinnedRegion)-backed [`GpuMemory`] whose
//!   [`GpuBuffer`]s are valid NVMe DMA targets (the direct SSD↔GPU path);
//! * **kernels that occupy SMs** — a [`Gpu::launch`] thread-block executor:
//!   each simulated thread block is a closure run on a worker pool, with the
//!   closure body playing the *leading thread* (the only thread CAM's device
//!   API does real work on, § III-B);
//! * **occupancy accounting** — [`GpuSpec`] knows how many SMs a grid
//!   occupies and how long a kernel of given FLOPs/bytes runs (roofline),
//!   which is what Figs. 1, 4 and 9 are made of.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod exec;
mod memory;
mod spec;

pub use exec::{BlockCtx, Gpu};
pub use memory::{GpuBuffer, GpuMemory, OutOfMemory};
pub use spec::{GpuSpec, KernelCost};
