//! [`Gpu`] — the functional device: launches "kernels" as grids of thread
//! blocks on a host worker pool.
//!
//! A simulated thread block is one closure invocation. The closure body is
//! the block's **leading thread** — the only thread that does real work in
//! CAM's device API ("the prefetch function only needs the leading thread to
//! perform these actions, while other threads need not do anything",
//! § III-B) — so collapsing the other 63 threads of a block into it loses
//! nothing the protocol depends on. Blocks of one launch run concurrently up
//! to host parallelism, which preserves the property the CAM control plane
//! must handle: multiple blocks racing to initiate I/O.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use cam_telemetry::{clock, EventKind, FlightRecorder, HistogramHandle, MetricsRegistry};

use crate::memory::{GpuBuffer, GpuMemory, OutOfMemory};
use crate::spec::GpuSpec;

/// Per-block context handed to kernel closures.
#[derive(Clone, Copy, Debug)]
pub struct BlockCtx {
    /// This block's index within the grid.
    pub block_idx: u64,
    /// Total blocks in the grid.
    pub grid_dim: u64,
}

/// The simulated GPU: spec + device memory + kernel launcher.
pub struct Gpu {
    spec: GpuSpec,
    memory: GpuMemory,
    workers: usize,
    kernels_launched: AtomicU64,
    /// Telemetry: wall-clock time per kernel launch (launch → all blocks
    /// retired). Unset until [`attach_telemetry`](Self::attach_telemetry).
    kernel_ns: OnceLock<HistogramHandle>,
    /// Event layer: emits [`EventKind::KernelBegin`]/[`EventKind::KernelEnd`]
    /// per launch once attached.
    recorder: OnceLock<Arc<FlightRecorder>>,
}

impl Gpu {
    /// Creates a GPU with `mem_bytes` of device memory. The physical base
    /// address is fixed and non-zero so that address-confusion bugs surface.
    pub fn new(spec: GpuSpec, mem_bytes: usize) -> Arc<Self> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Arc::new(Gpu {
            spec,
            memory: GpuMemory::new(0x7_0000_0000, mem_bytes),
            workers,
            kernels_launched: AtomicU64::new(0),
            kernel_ns: OnceLock::new(),
            recorder: OnceLock::new(),
        })
    }

    /// Registers `cam_gpu_kernel_ns` in `reg` and starts timing kernel
    /// launches. One-shot; later calls are ignored.
    pub fn attach_telemetry(&self, reg: &MetricsRegistry) {
        let _ = self.kernel_ns.set(reg.histogram("cam_gpu_kernel_ns"));
    }

    /// Event layer: emits kernel begin/end events into `rec` per launch
    /// from now on. One-shot; later calls are ignored.
    pub fn attach_recorder(&self, rec: Arc<FlightRecorder>) {
        let _ = self.recorder.set(rec);
    }

    /// Architectural parameters.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Device memory pool (`CAM_alloc` lives here).
    pub fn memory(&self) -> &GpuMemory {
        &self.memory
    }

    /// Allocates pinned device memory (`CAM_alloc`).
    pub fn alloc(&self, bytes: usize) -> Result<GpuBuffer, OutOfMemory> {
        self.memory.alloc(bytes)
    }

    /// Number of kernels launched so far.
    pub fn kernels_launched(&self) -> u64 {
        self.kernels_launched.load(Ordering::Relaxed)
    }

    /// Launches a grid of `grid_dim` thread blocks and blocks until every
    /// block has retired (CUDA's `<<<grid, block>>>` + device sync).
    ///
    /// Blocks are scheduled dynamically onto `min(grid_dim, host cores)`
    /// workers, like blocks onto SMs.
    pub fn launch<F>(&self, grid_dim: u64, kernel: F)
    where
        F: Fn(BlockCtx) + Sync,
    {
        assert!(grid_dim >= 1, "grid must have at least one block");
        let kernel_id = self.kernels_launched.fetch_add(1, Ordering::Relaxed);
        let telemetry = self.kernel_ns.get();
        let recorder = self.recorder.get();
        let start_ns = telemetry.map(|_| clock::now_ns());
        if let Some(rec) = recorder {
            rec.emit(EventKind::KernelBegin {
                kernel: kernel_id,
                grid: grid_dim,
            });
        }
        let next = AtomicU64::new(0);
        let n_workers = self.workers.min(grid_dim as usize).max(1);
        std::thread::scope(|s| {
            for _ in 0..n_workers {
                s.spawn(|| loop {
                    let b = next.fetch_add(1, Ordering::Relaxed);
                    if b >= grid_dim {
                        break;
                    }
                    kernel(BlockCtx {
                        block_idx: b,
                        grid_dim,
                    });
                });
            }
        });
        if let (Some(h), Some(start)) = (telemetry, start_ns) {
            h.record(clock::now_ns().saturating_sub(start));
        }
        if let Some(rec) = recorder {
            rec.emit(EventKind::KernelEnd { kernel: kernel_id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_nvme::DmaSpace;
    use std::sync::atomic::AtomicU32;

    fn gpu() -> Arc<Gpu> {
        Gpu::new(GpuSpec::a100_80g(), 16 << 20)
    }

    #[test]
    fn every_block_runs_exactly_once() {
        let g = gpu();
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        g.launch(1000, |ctx| {
            assert_eq!(ctx.grid_dim, 1000);
            hits[ctx.block_idx as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(g.kernels_launched(), 1);
    }

    #[test]
    fn blocks_actually_run_concurrently() {
        // Two blocks rendezvous: each waits for the other's arrival flag.
        // This deadlocks unless blocks overlap in time, so it only holds
        // when the host has ≥ 2 workers to schedule blocks onto. On a
        // single-core host blocks legitimately run sequentially — the same
        // situation as a grid bigger than the GPU — so skip there.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return;
        }
        let g = gpu();
        let arrived = [AtomicU32::new(0), AtomicU32::new(0)];
        g.launch(2, |ctx| {
            let me = ctx.block_idx as usize;
            arrived[me].store(1, Ordering::Release);
            while arrived[1 - me].load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
        });
    }

    #[test]
    fn kernels_share_device_memory() {
        let g = gpu();
        let buf = g.alloc(4096).unwrap();
        let addr = buf.addr();
        let g2 = Arc::clone(&g);
        g2.launch(8, |ctx| {
            // Each block writes its id into its slot.
            let region = g.memory().region();
            region
                .dma_write(addr + ctx.block_idx * 8, &(ctx.block_idx + 1).to_le_bytes())
                .unwrap();
        });
        let v = buf.to_vec();
        for b in 0..8u64 {
            let mut le = [0u8; 8];
            le.copy_from_slice(&v[b as usize * 8..][..8]);
            assert_eq!(u64::from_le_bytes(le), b + 1);
        }
    }

    #[test]
    fn single_block_grid() {
        let g = gpu();
        let ran = AtomicU32::new(0);
        g.launch(1, |ctx| {
            assert_eq!(ctx.block_idx, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
