//! [`GpuSpec`] — architectural parameters, SM-occupancy math, and the
//! roofline kernel-time model.

use cam_simkit::Dur;

/// The cost of one kernel, for the timing model.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelCost {
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes moved to/from device DRAM.
    pub dram_bytes: f64,
}

impl KernelCost {
    /// A compute-plus-memory cost.
    pub fn new(flops: f64, dram_bytes: f64) -> Self {
        KernelCost { flops, dram_bytes }
    }

    /// Sums two costs (kernels fused or run back-to-back).
    pub fn plus(self, other: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + other.flops,
            dram_bytes: self.dram_bytes + other.dram_bytes,
        }
    }
}

/// Architectural parameters of a GPU.
#[derive(Clone, Copy, Debug)]
pub struct GpuSpec {
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Sustained compute throughput for the mixed workloads we model
    /// (TFLOP/s). The A100 peaks at 312 tensor TFLOP/s; sustained mixed
    /// GNN/GEMM arithmetic lands far lower.
    pub sustained_tflops: f64,
    /// Device memory bandwidth, GB/s.
    pub mem_gbps: f64,
    /// Host interface (PCIe Gen4 ×16) measured bandwidth, GB/s — the
    /// paper's 21 GB/s practical ceiling, not the 32 GB/s theoretical one.
    pub pcie_gbps: f64,
    /// BaM calibration: resident threads needed to keep one SSD saturated
    /// through the synchronous submit-and-poll API. See
    /// [`bam_sm_utilization`](Self::bam_sm_utilization).
    pub bam_threads_per_ssd: f64,
    /// BaM calibration: super-linear contention exponent.
    pub bam_contention_exp: f64,
}

impl GpuSpec {
    /// The 80 GB PCIe A100 used in the paper's testbed.
    pub fn a100_80g() -> Self {
        GpuSpec {
            sms: 108,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            sustained_tflops: 45.0,
            mem_gbps: 1935.0,
            pcie_gbps: 21.0,
            bam_threads_per_ssd: 32_500.0,
            bam_contention_exp: 1.18,
        }
    }

    /// Thread blocks resident per SM for a given block size (threads).
    pub fn blocks_per_sm(&self, threads_per_block: u32) -> u32 {
        assert!(threads_per_block >= 1);
        (self.max_threads_per_sm / threads_per_block).clamp(1, self.max_blocks_per_sm)
    }

    /// SMs occupied by a grid of `blocks` blocks of `threads_per_block`
    /// threads, capped at the machine size.
    pub fn sms_for(&self, blocks: u64, threads_per_block: u32) -> u32 {
        let per_sm = self.blocks_per_sm(threads_per_block) as u64;
        (blocks.div_ceil(per_sm)).min(self.sms as u64) as u32
    }

    /// Roofline kernel duration: the slower of compute and memory.
    pub fn kernel_time(&self, cost: KernelCost) -> Dur {
        let compute_ns = cost.flops / self.sustained_tflops / 1e3;
        let mem_ns = cost.dram_bytes / self.mem_gbps;
        Dur::from_ns_f64(compute_ns.max(mem_ns))
    }

    /// Kernel duration when only `sms_available` of the machine's SMs are
    /// free (compute scales down proportionally; Issue 3's contention).
    pub fn kernel_time_on(&self, cost: KernelCost, sms_available: u32) -> Dur {
        let frac = (sms_available.min(self.sms) as f64 / self.sms as f64).max(1e-6);
        let compute_ns = cost.flops / (self.sustained_tflops * frac) / 1e3;
        let mem_ns = cost.dram_bytes / (self.mem_gbps * frac);
        Dur::from_ns_f64(compute_ns.max(mem_ns))
    }

    /// Fraction of SMs (0..=1) BaM's GPU-managed control plane occupies to
    /// saturate `n_ssds` SSDs — the model behind **Fig. 4**.
    ///
    /// Mechanism: BaM's synchronous `bam::array` interface parks one GPU
    /// thread per in-flight request for the full I/O round trip, and queue
    /// contention inflates the thread count super-linearly with SSD count
    /// (the paper's own benchmark drives 12 SSDs with 262 144 threads of
    /// block size 64). Threads become blocks, blocks become SMs:
    /// `threads(n) = bam_threads_per_ssd · n^bam_contention_exp`.
    /// Calibrated anchors: ~15% of SMs for one SSD; ≥5 SSDs engage
    /// essentially the whole machine (the paper: "when the number of SSDs
    /// exceeds five, BaM engages nearly all available SMs").
    pub fn bam_sm_utilization(&self, n_ssds: u32) -> f64 {
        if n_ssds == 0 {
            return 0.0;
        }
        let threads = self.bam_threads_per_ssd * (n_ssds as f64).powf(self.bam_contention_exp);
        let blocks = (threads / 64.0).ceil() as u64; // BaM's 64-thread blocks
        let sms = self.sms_for(blocks, 64);
        sms as f64 / self.sms as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_math() {
        let g = GpuSpec::a100_80g();
        // 64-thread blocks: thread-limited 32/SM (2048/64 = 32 = block cap).
        assert_eq!(g.blocks_per_sm(64), 32);
        // 1024-thread blocks: 2 per SM.
        assert_eq!(g.blocks_per_sm(1024), 2);
        assert_eq!(g.sms_for(32, 64), 1);
        assert_eq!(g.sms_for(33, 64), 2);
        assert_eq!(g.sms_for(1_000_000, 64), 108); // capped at machine
    }

    #[test]
    fn roofline_picks_the_slower_side() {
        let g = GpuSpec::a100_80g();
        // Compute-bound: 45 GFLOP at 45 TFLOP/s = 1 ms.
        let t = g.kernel_time(KernelCost::new(45e9, 1.0));
        assert!((t.as_ns() as f64 - 1e6).abs() < 1e3, "{t}");
        // Memory-bound: 1935 MB at 1935 GB/s = 1 ms.
        let t = g.kernel_time(KernelCost::new(1.0, 1935e6));
        assert!((t.as_ns() as f64 - 1e6).abs() < 1e3, "{t}");
    }

    #[test]
    fn fewer_sms_mean_slower_kernels() {
        let g = GpuSpec::a100_80g();
        let c = KernelCost::new(1e12, 1e9);
        let full = g.kernel_time_on(c, 108);
        let half = g.kernel_time_on(c, 54);
        assert_eq!(full, g.kernel_time(c));
        let ratio = half.as_ns() as f64 / full.as_ns() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn fig4_anchor_points() {
        let g = GpuSpec::a100_80g();
        assert_eq!(g.bam_sm_utilization(0), 0.0);
        let u1 = g.bam_sm_utilization(1);
        assert!((0.10..0.20).contains(&u1), "1 SSD → {u1}");
        let u5 = g.bam_sm_utilization(5);
        assert!(u5 > 0.9, "5 SSDs → {u5}");
        let u12 = g.bam_sm_utilization(12);
        assert!((u12 - 1.0).abs() < 1e-9, "12 SSDs → {u12}");
        // Monotone in SSD count.
        let mut last = 0.0;
        for n in 1..=12 {
            let u = g.bam_sm_utilization(n);
            assert!(u >= last);
            last = u;
        }
    }

    #[test]
    fn kernel_cost_compose() {
        let c = KernelCost::new(10.0, 20.0).plus(KernelCost::new(1.0, 2.0));
        assert_eq!(c.flops, 11.0);
        assert_eq!(c.dram_bytes, 22.0);
    }
}
