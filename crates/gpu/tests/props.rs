//! Property-based tests for GPU memory-allocator invariants.

use cam_gpu::{Gpu, GpuBuffer, GpuSpec};
use proptest::prelude::*;

proptest! {
    /// Live buffers never overlap, stay inside the region, and freeing
    /// everything restores the full pool.
    #[test]
    fn buffers_never_overlap(ops in proptest::collection::vec(prop_oneof![
        (1usize..200_000).prop_map(|sz| (true, sz)),   // alloc of sz bytes
        (0usize..32).prop_map(|i| (false, i)),         // free i-th live buffer
    ], 1..60)) {
        let gpu = Gpu::new(GpuSpec::a100_80g(), 2 << 20);
        let total_free = gpu.memory().free_bytes();
        let mut live: Vec<GpuBuffer> = Vec::new();
        for (is_alloc, arg) in ops {
            if is_alloc {
                if let Ok(buf) = gpu.alloc(arg) {
                    let (a0, a1) = (buf.addr(), buf.addr() + buf.capacity() as u64);
                    for other in &live {
                        let (b0, b1) = (other.addr(), other.addr() + other.capacity() as u64);
                        prop_assert!(a1 <= b0 || b1 <= a0,
                            "overlap: [{a0:#x},{a1:#x}) vs [{b0:#x},{b1:#x})");
                    }
                    prop_assert!(buf.capacity() >= buf.len());
                    live.push(buf);
                }
            } else if !live.is_empty() {
                let idx = arg % live.len();
                live.swap_remove(idx);
            }
            // Accounting always balances.
            let used: usize = live.iter().map(|b| b.capacity()).sum();
            prop_assert_eq!(gpu.memory().allocated_bytes(), used);
            prop_assert_eq!(gpu.memory().free_bytes(), total_free - used);
        }
        live.clear();
        prop_assert_eq!(gpu.memory().free_bytes(), total_free);
        // After full free, the whole pool is allocatable again.
        prop_assert!(gpu.alloc(total_free).is_ok());
    }

    /// Writes through one buffer never bleed into another.
    #[test]
    fn buffer_isolation(sizes in proptest::collection::vec(1usize..20_000, 2..8)) {
        let gpu = Gpu::new(GpuSpec::a100_80g(), 4 << 20);
        let bufs: Vec<GpuBuffer> = sizes.iter().map(|&s| gpu.alloc(s).unwrap()).collect();
        for (i, b) in bufs.iter().enumerate() {
            b.write(0, &vec![i as u8 + 1; b.len()]);
        }
        for (i, b) in bufs.iter().enumerate() {
            prop_assert!(b.to_vec().iter().all(|&x| x == i as u8 + 1), "buffer {i}");
        }
    }
}
