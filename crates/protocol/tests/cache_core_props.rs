//! Property tests for the extracted cache decision core: the
//! stride-detecting readahead under LBA wraparound, interleaved streams,
//! and accuracy feedback, plus invariants of the full [`CacheCore`] state
//! machine under arbitrary read workloads.

use cam_protocol::cache_core::{
    replay_read_workload, CacheConfig, CacheCore, CoreLookup, Intent, ReadaheadConfig,
    ReadaheadCore,
};
use proptest::prelude::*;

fn ra_cfg() -> ReadaheadConfig {
    ReadaheadConfig::default()
}

proptest! {
    /// Near u64::MAX, `observe` must neither overflow nor predict past the
    /// address space: the predicted start saturates and stays >= start.
    #[test]
    fn observe_never_overflows_near_lba_wraparound(
        base in (u64::MAX - 10_000)..u64::MAX,
        stride in 1u64..=4096,
        steps in 2usize..8,
    ) {
        let mut ra = ReadaheadCore::new(ra_cfg());
        let mut start = base;
        for _ in 0..steps {
            if let Some((pred, blocks)) = ra.observe(start) {
                prop_assert!(blocks >= 1);
                prop_assert!(pred >= start, "prediction moved backwards");
                // Saturating: a prediction never wraps to a low LBA.
                prop_assert!(pred >= base);
            }
            start = start.saturating_add(stride);
        }
    }

    /// Two sequential streams interleaved batch-by-batch look like an
    /// alternating +/- stride to the per-channel detector: it must never
    /// confirm a stride, so it never predicts. (Stream separation is the
    /// driver's job — one detector per channel.)
    #[test]
    fn interleaved_streams_never_confirm_a_stride(
        a0 in 0u64..1 << 30,
        gap in (1u64 << 20)..(1 << 24),
        stride in 1u64..=256,
        rounds in 2usize..12,
    ) {
        let b0 = a0 + gap;
        let mut ra = ReadaheadCore::new(ra_cfg());
        let mut predicted = false;
        for i in 0..rounds as u64 {
            predicted |= ra.observe(a0 + i * stride).is_some();
            predicted |= ra.observe(b0 + i * stride).is_some();
        }
        prop_assert!(!predicted, "interleaved streams were chased");
    }

    /// Feedback monotonically shrinks the window to the floor under
    /// sustained inaccuracy, never below `min_window`, and the shrink
    /// happens within log2(initial/min) + 1 samples.
    #[test]
    fn sustained_inaccuracy_shrinks_window_to_floor(
        min_window in 1u32..=8,
        factor in 1u32..=5,
        accuracy_permille in 0u32..=250,
    ) {
        let accuracy = f64::from(accuracy_permille) / 1000.0;
        let initial = min_window << factor;
        let cfg = ReadaheadConfig {
            min_window,
            initial_window: initial,
            max_window: initial * 2,
            ..ra_cfg()
        };
        let mut ra = ReadaheadCore::new(cfg);
        let mut last = ra.window();
        for _ in 0..=factor {
            ra.feedback(accuracy);
            prop_assert!(ra.window() <= last, "window grew on bad accuracy");
            prop_assert!(ra.window() >= min_window);
            last = ra.window();
        }
        prop_assert_eq!(ra.window(), min_window.max(1));
    }

    /// The full core replay is deterministic and its counters are
    /// self-consistent on arbitrary batched read workloads: every access
    /// classifies to exactly one of hit/miss/coalesced, and readahead hits
    /// never exceed issues.
    #[test]
    fn replay_counters_are_consistent_on_arbitrary_workloads(
        seed_lbas in proptest::collection::vec(0u64..4096, 1..200),
        batch in 1usize..32,
        slots in 16usize..128,
        shards in 1usize..8,
    ) {
        let batches: Vec<Vec<u64>> =
            seed_lbas.chunks(batch).map(|c| c.to_vec()).collect();
        let accesses: u64 = batches.iter().map(|b| b.len() as u64).sum();
        let cfg = CacheConfig {
            slots,
            shards,
            flush_batch: 16,
            readahead: ra_cfg(),
        };
        let a = replay_read_workload(cfg, 4096, true, &batches);
        let b = replay_read_workload(cfg, 4096, true, &batches);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.hits + a.misses + a.coalesced, accesses);
        prop_assert!(a.readahead_hits <= a.readahead_issued);
        prop_assert_eq!(a.write_absorbed, 0);
        prop_assert_eq!(a.flushed_blocks, 0);
    }

    /// Pin accounting balances: after a lookup storm where every returned
    /// pin is released and every fill completed or aborted, all slots are
    /// unpinned and evictable (a fresh scan of distinct LBAs succeeds).
    #[test]
    fn pins_balance_and_cache_stays_reclaimable(
        lbas in proptest::collection::vec(0u64..64, 1..100),
        complete_mod in 2u64..5,
    ) {
        let mut core = CacheCore::new(CacheConfig {
            slots: 16,
            shards: 2,
            flush_batch: 8,
            readahead: ReadaheadConfig { enable: false, ..ra_cfg() },
        });
        for (i, &lba) in lbas.iter().enumerate() {
            match core.lookup(lba, Intent::DemandRead) {
                CoreLookup::Hit { slot } => core.unpin(slot),
                CoreLookup::Miss { slot, .. } => {
                    if (i as u64).is_multiple_of(complete_mod) {
                        core.abort_fill(slot);
                    } else {
                        core.complete_fill(slot, false);
                        core.unpin(slot);
                    }
                }
                CoreLookup::InFlight | CoreLookup::Busy => {}
                CoreLookup::NeedFlush => prop_assert!(false, "read-only NeedFlush"),
            }
        }
        // Every slot must now be reclaimable: 16 distinct cold LBAs all
        // resolve to misses (evicting as needed), never Busy/NeedFlush.
        for lba in 1000..1016 {
            match core.lookup(lba, Intent::DemandRead) {
                CoreLookup::Miss { slot, .. } => core.abort_fill(slot),
                CoreLookup::Hit { slot } => core.unpin(slot),
                other => prop_assert!(false, "unreclaimable cache: {other:?}"),
            }
        }
    }
}
