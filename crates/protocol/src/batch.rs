//! Shared per-batch completion accounting.
//!
//! A batch is retired when its last per-SSD group completes — pure
//! accounting on [`BatchCore::remaining`], no thread or simulated process
//! ever waits for it. The atomics are the one concession to the threaded
//! driver (several workers may close groups of one batch concurrently);
//! they read identically under the single-threaded DES driver.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::plan::ChannelOp;

/// One batch's identity, plan residue, and completion accounting, owned
/// jointly by the batch's per-SSD groups.
pub struct BatchCore {
    /// Channel the batch was published on.
    pub channel: usize,
    /// Channel-local batch sequence number.
    pub seq: u64,
    /// Operation carried by the batch.
    pub op: ChannelOp,
    /// Per-SSD groups still outstanding; the decrement that hits zero
    /// retires the batch.
    pub remaining: AtomicUsize,
    /// Failed commands accumulated across the batch's groups.
    pub errors: AtomicU64,
    /// Requests as published (pre-dedup).
    pub requests: u64,
    /// When dispatch planning ran, on the driver's clock (anchors the
    /// batch's I/O-time measurement).
    pub dispatched_ns: u64,
    /// GPU-side gap between the channel's previous retire and this pickup
    /// (the control plane's estimate of computation time); 0 = no sample.
    pub compute_gap_ns: u64,
    /// When the GPU rang the doorbell, on the driver's clock.
    pub doorbell_ns: u64,
    /// When the poller picked the batch up, on the driver's clock.
    pub pickup_ns: u64,
    /// Duplicate read requests removed before dispatch: `(primary address,
    /// duplicate address)` pairs, replicated by a host-side copy right
    /// before retire so every destination the GPU asked for is populated.
    pub dups: Vec<(u64, u64)>,
    /// Blocks per request (the replication copy length, in blocks).
    pub blocks: u32,
}

impl BatchCore {
    /// Closes one group with `errors` failed commands; returns whether this
    /// was the batch's last group — the caller must then retire the batch
    /// (exactly one caller sees `true`).
    pub fn finish_group(&self, errors: u64) -> bool {
        if errors > 0 {
            self.errors.fetch_add(errors, Ordering::Relaxed);
        }
        self.remaining.fetch_sub(1, Ordering::AcqRel) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_group_retires_exactly_once() {
        let b = BatchCore {
            channel: 0,
            seq: 1,
            op: ChannelOp::Read,
            remaining: AtomicUsize::new(3),
            errors: AtomicU64::new(0),
            requests: 12,
            dispatched_ns: 0,
            compute_gap_ns: 0,
            doorbell_ns: 0,
            pickup_ns: 0,
            dups: Vec::new(),
            blocks: 1,
        };
        assert!(!b.finish_group(0));
        assert!(!b.finish_group(2));
        assert!(b.finish_group(1), "third close retires");
        assert_eq!(b.errors.load(Ordering::Relaxed), 3);
    }
}
