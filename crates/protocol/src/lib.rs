//! # cam-protocol — the control plane as a pure state machine
//!
//! The paper's CPU user-space control plane (§ III-A) is, at its core, a
//! protocol: batches arrive at doorbells, are deduplicated and split by
//! stripe into per-SSD groups, commands are kept in flight up to queue
//! depth, failures are retried with bounded backoff, and the last completed
//! group retires its batch. None of that depends on *how* time passes or
//! *where* the commands run — which is why this crate contains no
//! `std::thread`, no `std::time::Instant`, and no channel types.
//!
//! Inputs are events (a batch arrived, a CQE was reaped, a timer fired);
//! outputs are [`Command`] values (submit an SQE, ring a doorbell, record a
//! group's lifecycle, retire a batch). All time enters as plain `u64`
//! nanoseconds read from a [`Clock`] by the *driver*:
//!
//! * the **threaded driver** (`cam-core`'s `engine/` shell) reads the
//!   wall-clock telemetry timeline and executes commands against real
//!   `QueuePair`s serviced by device threads;
//! * the **DES driver** (`cam-iostacks::cam_des`) reads `simkit` virtual
//!   time and executes commands against the `DesSsd` timing model —
//!   so the figures measure the *same* protocol code the functional tests
//!   validate.
//!
//! The layering deviates from a module-inside-`cam-core` split in one way:
//! `cam-core` depends on `cam-iostacks` (for the functional rig), so a
//! protocol layer both engines share must live *below* both — this crate
//! depends only on `cam-nvme` (for NVMe status codes). See
//! `docs/TIMING.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod batch;
pub mod cache_core;
mod clock;
mod health;
mod inflight;
mod plan;
mod retry;
mod worker;

pub use batch::BatchCore;
pub use cache_core::{CacheCore, CacheDecisionCounters};
pub use clock::{Clock, VirtualClock};
pub use health::{HealthConfig, HealthState, HealthTransition, LaneHealth};
pub use inflight::InflightTable;
pub use plan::{op_index, plan_batch, BatchPlan, ChannelOp, DecisionCounters, PlanConfig};
pub use retry::{RetryPolicy, Verdict};
pub use worker::{Command, GroupSpec, ParkHint, SubmitCmd, WorkerCore};
