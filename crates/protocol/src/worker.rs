//! The worker state machine: submission multiplexing, completion matching,
//! retry, and group/batch closure — with no threads and no clock of its own.
//!
//! A [`WorkerCore`] multiplexes *all* of its accepted groups over one lane
//! per SSD: [`pump`](WorkerCore::pump) stages as many queued commands as
//! the per-SSD [`InflightTable`] admits — across batches — and asks for one
//! doorbell ring per burst; [`on_cqe`](WorkerCore::on_cqe) matches each
//! completion back through the table and applies the [`RetryPolicy`] to
//! failures. Nothing ever blocks on a single group, so an SSD's in-flight
//! depth stays above one whenever independent batches overlap (the
//! pipelining the blocking baseline forfeits).
//!
//! Every externally-visible effect is returned as a [`Command`]; the driver
//! executes them (against real queue pairs or a device timing model) and
//! records whatever telemetry it keeps. The table's capacity equals the
//! queue-pair depth, so a driver may treat a submit command as infallible:
//! admission here *is* admission there.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use cam_nvme::spec::Status;

use crate::batch::BatchCore;
use crate::inflight::InflightTable;
use crate::plan::{ChannelOp, DecisionCounters};
use crate::retry::{RetryPolicy, Verdict};

/// One per-SSD group of a batch, handed to a worker by the dispatch layer.
pub struct GroupSpec {
    /// SSD the group targets.
    pub ssd: usize,
    /// `(device LBA, address, blocks)` — stripe-contiguous runs.
    pub reqs: Vec<(u64, u64, u32)>,
    /// The batch the group belongs to.
    pub batch: Arc<BatchCore>,
}

/// One SQE the driver must push (CID already allocated; push cannot fail).
#[derive(Clone, Copy, Debug)]
pub struct SubmitCmd {
    /// SSD (lane) to submit on.
    pub ssd: usize,
    /// Command identifier from the lane's inflight table.
    pub cid: u16,
    /// Read or write.
    pub op: ChannelOp,
    /// Device LBA.
    pub dev_lba: u64,
    /// DMA address.
    pub addr: u64,
    /// Blocks to transfer.
    pub blocks: u32,
    /// First submission of this command (false for retries) — drives the
    /// logical-request counters without double-counting retries.
    pub first: bool,
}

/// An effect the protocol asks its driver to perform.
pub enum Command {
    /// Push one SQE on the SSD's queue pair.
    Submit(SubmitCmd),
    /// Ring the SSD's doorbell for the `staged` SQEs pushed since the last
    /// ring (one ring per burst).
    RingDoorbell {
        /// SSD whose doorbell to ring.
        ssd: usize,
        /// SQEs staged in this burst.
        staged: u32,
    },
    /// Every command of a group has now been submitted at least once
    /// (telemetry: the group's submit-stage span is `submit_ns − recv_ns`).
    GroupSubmitted {
        /// The group's batch.
        batch: Arc<BatchCore>,
        /// SSD the group targets.
        ssd: usize,
        /// Commands in the group.
        sqes: u32,
        /// When the worker accepted the group.
        recv_ns: u64,
        /// When the last first-submission happened.
        submit_ns: u64,
    },
    /// A command failed transiently and was re-queued with backoff.
    CmdRetry {
        /// The command's batch.
        batch: Arc<BatchCore>,
        /// SSD the command targets.
        ssd: usize,
        /// CID of the failed attempt.
        cid: u16,
        /// Submissions so far.
        attempt: u32,
        /// When the failure was classified.
        now_ns: u64,
        /// Earliest re-submission time.
        at_ns: u64,
    },
    /// A command was failed terminally because its deadline expired.
    CmdTimeout {
        /// The command's batch.
        batch: Arc<BatchCore>,
        /// SSD the command targets.
        ssd: usize,
        /// CID of the most recent attempt (0 if never submitted).
        cid: u16,
        /// Submissions so far.
        attempts: u32,
        /// When the deadline expiry was observed.
        now_ns: u64,
    },
    /// Every command of a group reached a final state (telemetry: the
    /// complete-stage span is `complete_ns − anchor_ns`).
    GroupComplete {
        /// The group's batch.
        batch: Arc<BatchCore>,
        /// SSD the group targeted.
        ssd: usize,
        /// Commands the group carried.
        sqes: u32,
        /// Failed commands among them.
        errors: u64,
        /// Span anchor: the group's submit instant, or its accept instant
        /// if it never fully submitted.
        anchor_ns: u64,
        /// When the last command finished.
        complete_ns: u64,
    },
    /// The group that just completed was its batch's last: retire the batch
    /// (region-4 write, dedup replication, scaler feed). Emitted after the
    /// final [`Command::GroupComplete`]; exactly once per batch.
    RetireBatch {
        /// The retiring batch.
        batch: Arc<BatchCore>,
        /// When the batch's last command finished.
        complete_ns: u64,
    },
}

/// What a driver should do when a [`WorkerCore`] has drained its command
/// output — the protocol's idleness surface (see
/// [`park_hint`](WorkerCore::park_hint)). Pure data: the threaded driver
/// maps it onto a parker/condvar, a virtual-time driver onto calendar
/// wakeups.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParkHint {
    /// Work is actionable now (commands in flight awaiting CQEs, or queued
    /// commands ready to submit): keep polling.
    Poll,
    /// Nothing is actionable before this instant (ns on the driver clock):
    /// a backoff expiry or deadline. Park with a timeout.
    Until(u64),
    /// No queued or in-flight work at all: park until an external wakeup.
    Idle,
}

/// One command's worker-side state, from dispatch to final completion.
struct PendingCmd {
    /// Key into the worker's group slab.
    group: u64,
    dev_lba: u64,
    addr: u64,
    blocks: u32,
    /// Submissions so far (0 = never hit the wire).
    attempts: u32,
    /// Backoff gate: not re-submitted before this timeline instant.
    earliest_ns: u64,
    /// Absolute deadline; `None` = unbounded.
    deadline_ns: Option<u64>,
    /// CID of the most recent attempt (for timeout reporting).
    last_cid: u16,
}

/// Per-SSD submission state: commands waiting to be (re-)submitted and the
/// CID-keyed in-flight table.
struct Lane {
    queue: VecDeque<PendingCmd>,
    inflight: InflightTable<PendingCmd>,
}

/// One accepted per-SSD group and its completion accounting.
struct GroupState {
    batch: Arc<BatchCore>,
    ssd: usize,
    /// Commands in the group.
    total: usize,
    /// Commands finally completed (success, permanent failure, or timeout).
    done: usize,
    /// Failed commands among `done`.
    errors: u64,
    /// Commands submitted at least once — drives the one-submit-event-per-
    /// group telemetry without double-counting retries.
    submitted_first: usize,
    recv_ns: u64,
    /// Stamped when the last command of the group first hits the wire.
    submit_ns: u64,
}

/// The per-worker protocol state machine.
pub struct WorkerCore {
    lanes: Vec<Lane>,
    groups: HashMap<u64, GroupState>,
    next_group: u64,
    retry: RetryPolicy,
    counters: DecisionCounters,
}

impl WorkerCore {
    /// A worker over `n_ssds` lanes, each admitting `queue_depth` commands.
    pub fn new(n_ssds: usize, queue_depth: usize, retry: RetryPolicy) -> Self {
        WorkerCore {
            lanes: (0..n_ssds)
                .map(|_| Lane {
                    queue: VecDeque::new(),
                    inflight: InflightTable::new(queue_depth),
                })
                .collect(),
            groups: HashMap::new(),
            next_group: 0,
            retry,
            counters: DecisionCounters::default(),
        }
    }

    /// Whether no group is open (the blocking baseline accepts a new group
    /// only when this holds).
    pub fn idle(&self) -> bool {
        self.groups.is_empty()
    }

    /// Commands in flight on `ssd` (this worker's lane).
    pub fn inflight(&self, ssd: usize) -> usize {
        self.lanes[ssd].inflight.len()
    }

    /// Submission decisions made so far (`sqes`, `retries`, `timeouts`; the
    /// planning fields stay zero — fold in [`DecisionCounters::record_plan`]
    /// at the dispatch layer).
    pub fn counters(&self) -> DecisionCounters {
        self.counters
    }

    /// The earliest future instant at which a queued command becomes
    /// actionable (backoff expiry or deadline), if any — the "arm timer"
    /// output. A virtual-time driver with nothing else scheduled should
    /// wake then; the threaded driver polls and may ignore this.
    pub fn next_timer_ns(&self) -> Option<u64> {
        self.lanes
            .iter()
            .flat_map(|l| l.queue.iter())
            .filter(|c| c.earliest_ns > 0)
            .map(|c| match c.deadline_ns {
                Some(d) => c.earliest_ns.min(d),
                None => c.earliest_ns,
            })
            .min()
    }

    /// What an idleness-aware driver should do next, derived purely from
    /// protocol state (the run-to-completion shell's parking decision).
    ///
    /// The rules, in priority order:
    ///
    /// 1. Commands in flight ⇒ [`ParkHint::Poll`]. Completions arrive by
    ///    device-side `post_cqe` with no waker attached, so the driver must
    ///    keep reaping.
    /// 2. A queued command that is actionable *now* (`earliest_ns == 0`,
    ///    i.e. not backing off) ⇒ [`ParkHint::Poll`] — the next
    ///    [`pump`](WorkerCore::pump) will submit it.
    /// 3. Only backing-off commands ⇒ [`ParkHint::Until`] the
    ///    [`next_timer_ns`](WorkerCore::next_timer_ns) instant.
    /// 4. Nothing queued, nothing in flight ⇒ [`ParkHint::Idle`]: the
    ///    driver may park until an external wakeup (doorbell publish, ring
    ///    push, stop).
    pub fn park_hint(&self) -> ParkHint {
        if self.lanes.iter().any(|l| !l.inflight.is_empty()) {
            return ParkHint::Poll;
        }
        if self
            .lanes
            .iter()
            .any(|l| l.queue.iter().any(|c| c.earliest_ns == 0))
        {
            return ParkHint::Poll;
        }
        match self.next_timer_ns() {
            Some(t) => ParkHint::Until(t),
            None => ParkHint::Idle,
        }
    }

    /// Accepts a dispatched group at `recv_ns`: stages its commands on the
    /// SSD's lane and opens its accounting record. Call
    /// [`pump`](WorkerCore::pump) afterwards to generate submissions.
    pub fn on_group(&mut self, spec: GroupSpec, recv_ns: u64) {
        let gid = self.next_group;
        self.next_group += 1;
        let deadline_ns = self.retry.deadline_ns.map(|d| recv_ns + d);
        for &(dev_lba, addr, blocks) in &spec.reqs {
            self.lanes[spec.ssd].queue.push_back(PendingCmd {
                group: gid,
                dev_lba,
                addr,
                blocks,
                attempts: 0,
                earliest_ns: 0,
                deadline_ns,
                last_cid: 0,
            });
        }
        self.groups.insert(
            gid,
            GroupState {
                ssd: spec.ssd,
                total: spec.reqs.len(),
                done: 0,
                errors: 0,
                submitted_first: 0,
                recv_ns,
                submit_ns: 0,
                batch: spec.batch,
            },
        );
    }

    /// One submission pass over every lane at `now_ns`: times out
    /// overdue commands, stages as many queued commands as each inflight
    /// table admits, and asks for one doorbell ring per non-empty burst.
    pub fn pump(&mut self, now_ns: u64, out: &mut Vec<Command>) {
        for ssd in 0..self.lanes.len() {
            self.pump_lane(ssd, now_ns, out);
        }
    }

    fn pump_lane(&mut self, ssd: usize, now_ns: u64, out: &mut Vec<Command>) {
        let mut staged = 0u32;
        // Each queued command is examined at most once per pass:
        // backoff-gated commands rotate to the back and wait for a later
        // pass.
        for _ in 0..self.lanes[ssd].queue.len() {
            let Some(mut cmd) = self.lanes[ssd].queue.pop_front() else {
                break;
            };
            if cmd.deadline_ns.is_some_and(|d| now_ns >= d) {
                self.time_out(ssd, &cmd, now_ns, out);
                continue;
            }
            if cmd.earliest_ns > now_ns {
                self.lanes[ssd].queue.push_back(cmd);
                continue;
            }
            let Some(cid) = self.lanes[ssd].inflight.alloc_cid() else {
                self.lanes[ssd].queue.push_front(cmd);
                break;
            };
            let first = cmd.attempts == 0;
            cmd.attempts += 1;
            cmd.last_cid = cid;
            let g = self
                .groups
                .get_mut(&cmd.group)
                .expect("command without group");
            out.push(Command::Submit(SubmitCmd {
                ssd,
                cid,
                op: g.batch.op,
                dev_lba: cmd.dev_lba,
                addr: cmd.addr,
                blocks: cmd.blocks,
                first,
            }));
            staged += 1;
            if first {
                // Retries are deliberately excluded: `sqes` counts logical
                // requests, so its sum stays comparable to requests retired.
                self.counters.sqes += 1;
                g.submitted_first += 1;
                if g.submitted_first == g.total {
                    g.submit_ns = now_ns;
                    out.push(Command::GroupSubmitted {
                        batch: Arc::clone(&g.batch),
                        ssd,
                        sqes: g.total as u32,
                        recv_ns: g.recv_ns,
                        submit_ns: now_ns,
                    });
                }
            }
            self.lanes[ssd].inflight.put(cid, cmd);
        }
        if staged > 0 {
            out.push(Command::RingDoorbell { ssd, staged });
        }
    }

    /// Applies one reaped completion at `now_ns`: matches the CQE back to
    /// its command (stale CIDs are silently discarded), closes the group
    /// when its last command finishes, and applies the retry policy to
    /// failures. Re-queued retries need a later [`pump`](WorkerCore::pump)
    /// to hit the wire again.
    pub fn on_cqe(
        &mut self,
        ssd: usize,
        cid: u16,
        status: Status,
        now_ns: u64,
        out: &mut Vec<Command>,
    ) {
        let Some(mut cmd) = self.lanes[ssd].inflight.remove(cid) else {
            // Stale or unknown CID: nothing to attribute it to.
            return;
        };
        if status == Status::Success {
            let gid = cmd.group;
            self.groups
                .get_mut(&gid)
                .expect("command without group")
                .done += 1;
            self.close_if_done(gid, now_ns, out);
            return;
        }
        match self
            .retry
            .classify(status, cmd.attempts, now_ns, cmd.deadline_ns)
        {
            Verdict::Retry { at_ns } => {
                self.counters.retries += 1;
                let g = &self.groups[&cmd.group];
                out.push(Command::CmdRetry {
                    batch: Arc::clone(&g.batch),
                    ssd,
                    cid,
                    attempt: cmd.attempts,
                    now_ns,
                    at_ns,
                });
                cmd.earliest_ns = at_ns;
                self.lanes[ssd].queue.push_back(cmd);
            }
            Verdict::TimedOut => self.time_out(ssd, &cmd, now_ns, out),
            Verdict::Permanent => {
                let gid = cmd.group;
                let g = self.groups.get_mut(&gid).expect("command without group");
                g.done += 1;
                g.errors += 1;
                self.close_if_done(gid, now_ns, out);
            }
        }
    }

    /// Fails `cmd` terminally because its deadline expired: reported,
    /// accounted as completed-with-error — the worker moves on.
    fn time_out(&mut self, ssd: usize, cmd: &PendingCmd, now_ns: u64, out: &mut Vec<Command>) {
        self.counters.timeouts += 1;
        let gid = cmd.group;
        let g = self.groups.get_mut(&gid).expect("command without group");
        g.done += 1;
        g.errors += 1;
        out.push(Command::CmdTimeout {
            batch: Arc::clone(&g.batch),
            ssd,
            cid: cmd.last_cid,
            attempts: cmd.attempts,
            now_ns,
        });
        self.close_if_done(gid, now_ns, out);
    }

    /// Closes `gid` if all of its commands reached a final state, and asks
    /// for batch retirement if it was the batch's last group.
    fn close_if_done(&mut self, gid: u64, now_ns: u64, out: &mut Vec<Command>) {
        let finished = self.groups.get(&gid).is_some_and(|g| g.done >= g.total);
        if !finished {
            return;
        }
        let g = self.groups.remove(&gid).expect("group vanished");
        let anchor_ns = if g.submit_ns > 0 {
            g.submit_ns
        } else {
            g.recv_ns
        };
        out.push(Command::GroupComplete {
            batch: Arc::clone(&g.batch),
            ssd: g.ssd,
            sqes: g.total as u32,
            errors: g.errors,
            anchor_ns,
            complete_ns: now_ns,
        });
        if g.batch.finish_group(g.errors) {
            out.push(Command::RetireBatch {
                batch: g.batch,
                complete_ns: now_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize};

    fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff_base_ns: 0,
            deadline_ns: None,
        }
    }

    fn batch(n_groups: usize) -> Arc<BatchCore> {
        Arc::new(BatchCore {
            channel: 0,
            seq: 1,
            op: ChannelOp::Read,
            remaining: AtomicUsize::new(n_groups),
            errors: AtomicU64::new(0),
            requests: 0,
            dispatched_ns: 0,
            compute_gap_ns: 0,
            doorbell_ns: 0,
            pickup_ns: 0,
            dups: Vec::new(),
            blocks: 1,
        })
    }

    fn submits(out: &[Command]) -> Vec<SubmitCmd> {
        out.iter()
            .filter_map(|c| match c {
                Command::Submit(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn pump_respects_depth_and_rings_one_doorbell_per_burst() {
        let mut w = WorkerCore::new(1, 2, no_retry());
        let b = batch(1);
        w.on_group(
            GroupSpec {
                ssd: 0,
                reqs: (0..5).map(|i| (i, i * 4096, 1)).collect(),
                batch: b,
            },
            100,
        );
        let mut out = Vec::new();
        w.pump(100, &mut out);
        let subs = submits(&out);
        assert_eq!(subs.len(), 2, "depth 2 admits two commands");
        assert!(subs.iter().all(|s| s.first));
        assert_eq!(
            out.iter()
                .filter(|c| matches!(c, Command::RingDoorbell { staged: 2, .. }))
                .count(),
            1,
            "one ring for the burst"
        );
        assert_eq!(w.inflight(0), 2);
        // Nothing new to stage: a second pump is silent (no empty ring).
        out.clear();
        w.pump(101, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn group_submitted_fires_once_when_last_command_hits_the_wire() {
        let mut w = WorkerCore::new(1, 8, no_retry());
        let b = batch(1);
        w.on_group(
            GroupSpec {
                ssd: 0,
                reqs: vec![(0, 0, 1), (1, 4096, 1)],
                batch: Arc::clone(&b),
            },
            50,
        );
        let mut out = Vec::new();
        w.pump(70, &mut out);
        let marks: Vec<_> = out
            .iter()
            .filter_map(|c| match c {
                Command::GroupSubmitted {
                    recv_ns, submit_ns, ..
                } => Some((*recv_ns, *submit_ns)),
                _ => None,
            })
            .collect();
        assert_eq!(marks, vec![(50, 70)]);
        // Completions close the group and retire the single-group batch.
        out.clear();
        let cids: Vec<u16> = submits({
            let mut v = Vec::new();
            w.pump(70, &mut v);
            &{ v }
        })
        .iter()
        .map(|s| s.cid)
        .collect();
        assert!(cids.is_empty(), "no double submission");
        w.on_cqe(0, 0, Status::Success, 90, &mut out);
        assert!(out.is_empty(), "group still open");
        w.on_cqe(0, 1, Status::Success, 95, &mut out);
        assert!(
            matches!(
                out.as_slice(),
                [
                    Command::GroupComplete {
                        sqes: 2,
                        errors: 0,
                        anchor_ns: 70,
                        complete_ns: 95,
                        ..
                    },
                    Command::RetireBatch {
                        complete_ns: 95,
                        ..
                    }
                ]
            ),
            "complete then retire"
        );
    }

    #[test]
    fn transient_failure_waits_out_backoff_then_resubmits() {
        let mut w = WorkerCore::new(
            1,
            8,
            RetryPolicy {
                max_retries: 3,
                backoff_base_ns: 1000,
                deadline_ns: None,
            },
        );
        w.on_group(
            GroupSpec {
                ssd: 0,
                reqs: vec![(7, 0, 1)],
                batch: batch(1),
            },
            0,
        );
        let mut out = Vec::new();
        w.pump(0, &mut out);
        let cid = submits(&out)[0].cid;
        out.clear();
        w.on_cqe(0, cid, Status::TransientMediaError, 100, &mut out);
        assert!(matches!(
            out.as_slice(),
            [Command::CmdRetry {
                attempt: 1,
                now_ns: 100,
                at_ns: 1100,
                ..
            }]
        ));
        assert_eq!(w.next_timer_ns(), Some(1100), "timer armed for backoff");
        // Before the backoff gate: nothing moves.
        out.clear();
        w.pump(500, &mut out);
        assert!(out.is_empty());
        // After it: re-submitted, not first, sqes counter unchanged.
        w.pump(1100, &mut out);
        let subs = submits(&out);
        assert_eq!(subs.len(), 1);
        assert!(!subs[0].first);
        assert_eq!(w.counters().sqes, 1);
        assert_eq!(w.counters().retries, 1);
        assert_eq!(w.next_timer_ns(), None);
    }

    #[test]
    fn deadline_times_out_queued_command_and_retires_with_error() {
        let mut w = WorkerCore::new(
            1,
            8,
            RetryPolicy {
                max_retries: 0,
                backoff_base_ns: 0,
                deadline_ns: Some(1000),
            },
        );
        let b = batch(1);
        w.on_group(
            GroupSpec {
                ssd: 0,
                reqs: vec![(3, 0, 1)],
                batch: Arc::clone(&b),
            },
            0,
        );
        // First pump happens after the deadline already expired.
        let mut out = Vec::new();
        w.pump(5000, &mut out);
        assert!(matches!(
            out.as_slice(),
            [
                Command::CmdTimeout {
                    attempts: 0,
                    now_ns: 5000,
                    ..
                },
                Command::GroupComplete {
                    errors: 1,
                    anchor_ns: 0,
                    ..
                },
                Command::RetireBatch { .. }
            ]
        ));
        assert_eq!(w.counters().timeouts, 1);
        assert!(w.idle());
    }

    #[test]
    fn multi_group_batch_retires_exactly_once_across_lanes() {
        let mut w = WorkerCore::new(2, 8, no_retry());
        let b = batch(2);
        for ssd in 0..2 {
            w.on_group(
                GroupSpec {
                    ssd,
                    reqs: vec![(ssd as u64, 0, 1)],
                    batch: Arc::clone(&b),
                },
                0,
            );
        }
        let mut out = Vec::new();
        w.pump(0, &mut out);
        let subs = submits(&out);
        assert_eq!(subs.len(), 2);
        out.clear();
        w.on_cqe(0, subs[0].cid, Status::Success, 10, &mut out);
        assert_eq!(
            out.iter()
                .filter(|c| matches!(c, Command::RetireBatch { .. }))
                .count(),
            0
        );
        w.on_cqe(1, subs[1].cid, Status::Success, 20, &mut out);
        assert_eq!(
            out.iter()
                .filter(|c| matches!(c, Command::RetireBatch { .. }))
                .count(),
            1,
            "second group's close retires"
        );
        assert!(w.idle());
    }

    #[test]
    fn stale_cids_are_discarded() {
        let mut w = WorkerCore::new(1, 8, no_retry());
        let mut out = Vec::new();
        w.on_cqe(0, 42, Status::Success, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn park_hint_tracks_the_lane_lifecycle() {
        // Fresh worker: nothing anywhere → Idle.
        let mut w = WorkerCore::new(1, 8, no_retry());
        assert_eq!(w.park_hint(), ParkHint::Idle);

        // Accepted but not yet pumped: queued commands with earliest 0 →
        // Poll (the next pump will submit them).
        let b = batch(1);
        w.on_group(
            GroupSpec {
                ssd: 0,
                reqs: vec![(0, 0, 1)],
                batch: Arc::clone(&b),
            },
            0,
        );
        assert_eq!(w.park_hint(), ParkHint::Poll);

        // Submitted: in flight, CQEs arrive without a waker → Poll.
        let mut out = Vec::new();
        w.pump(0, &mut out);
        assert_eq!(w.inflight(0), 1);
        assert_eq!(w.park_hint(), ParkHint::Poll);

        // Completed: idle again.
        let cid = submits(&out)[0].cid;
        out.clear();
        w.on_cqe(0, cid, Status::Success, 10, &mut out);
        assert!(w.idle());
        assert_eq!(w.park_hint(), ParkHint::Idle);
    }

    #[test]
    fn park_hint_surfaces_backoff_timers() {
        // One transient failure re-queues the command with a future
        // earliest_ns: no inflight, nothing actionable now → Until(timer).
        let mut w = WorkerCore::new(
            1,
            8,
            RetryPolicy {
                max_retries: 2,
                backoff_base_ns: 1_000,
                deadline_ns: None,
            },
        );
        let b = batch(1);
        w.on_group(
            GroupSpec {
                ssd: 0,
                reqs: vec![(0, 0, 1)],
                batch: b,
            },
            0,
        );
        let mut out = Vec::new();
        w.pump(0, &mut out);
        let cid = submits(&out)[0].cid;
        out.clear();
        w.on_cqe(0, cid, Status::TransientMediaError, 100, &mut out);
        let timer = w.next_timer_ns().expect("backoff armed");
        assert_eq!(w.park_hint(), ParkHint::Until(timer));
        assert!(timer > 100);

        // Once the driver pumps past the timer the command resubmits and
        // the hint returns to Poll.
        out.clear();
        w.pump(timer, &mut out);
        assert_eq!(submits(&out).len(), 1);
        assert_eq!(w.park_hint(), ParkHint::Poll);
    }
}
