//! [`LaneHealth`] — the per-SSD-lane health state machine, driven beside
//! [`crate::WorkerCore`].
//!
//! A *lane* is one SSD's command stream through a worker: the unit the
//! retry policy, the inflight table and the queue-depth budget all operate
//! on. This detector folds the lane's failure signals into four states:
//!
//! ```text
//!            first fault                 faults ≥ overload_faults
//! Healthy ───────────────► Degraded ───────────────────────────► Overloaded
//!    ▲                        │  ▲                                   │
//!    └──(never returns)       │  └── new fault after recovery        │
//!                   drain ────┴──────────────◄──────────── drain ────┘
//!                              Recovered
//! ```
//!
//! **Determinism contract.** Transitions are gated *only* on protocol
//! decisions — retry and timeout counts, and the driver-signalled drain —
//! never on wall-clock rates or sampled depths. Protocol decisions are
//! proven identical across the threaded and DES drivers by the fidelity
//! harness, so the transition sequence a workload produces is itself
//! driver-independent: the same seed yields the same `(from, to, faults)`
//! sequence in wall time and in virtual time. Saturation signals (inflight
//! depth vs. queue depth) are inherently timing-dependent, so they are
//! tracked as *watermarks* for gauges and live views but deliberately do
//! not gate transitions.
//!
//! The state machine never reads a clock; drivers emit transitions as
//! flight-recorder events stamped on their own timeline and mirror the
//! state code into the `cam_lane_health{ssd}` gauge.

/// The four lane-health states. `code` values are stable (they index
/// `cam-telemetry`'s `health_state_label` and the `cam_lane_health` gauge).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// No transient faults observed since attach.
    Healthy,
    /// At least one fault in the current episode.
    Degraded,
    /// The episode's fault count crossed the overload threshold.
    Overloaded,
    /// A degraded/overloaded lane drained clean; a new fault re-degrades.
    Recovered,
}

impl HealthState {
    /// Stable numeric code (gauge value; label-table index).
    pub fn code(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Overloaded => 2,
            HealthState::Recovered => 3,
        }
    }

    /// Stable snake_case label.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Overloaded => "overloaded",
            HealthState::Recovered => "recovered",
        }
    }
}

/// One observed state change. `Eq` so driver-produced sequences can be
/// compared verbatim (the fidelity/health harness does exactly that).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthTransition {
    /// Lane (SSD index) that transitioned.
    pub ssd: usize,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Cumulative faults (retries + timeouts) on the lane at the instant
    /// the transition fired.
    pub faults: u64,
}

/// Thresholds for the lane state machine.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Faults within one episode (since the last clean state) that
    /// escalate `Degraded` → `Overloaded`.
    pub overload_faults: u64,
}

impl Default for HealthConfig {
    /// Eight faults per episode: one stuck command retried to death stays
    /// `Degraded`; a fault storm across the lane's queue depth overloads.
    fn default() -> Self {
        HealthConfig { overload_faults: 8 }
    }
}

/// Per-lane health detector. See module docs for the state machine and
/// the determinism contract.
#[derive(Debug)]
pub struct LaneHealth {
    ssd: usize,
    cfg: HealthConfig,
    state: HealthState,
    /// Cumulative retries observed.
    retries: u64,
    /// Cumulative deadline misses observed.
    timeouts: u64,
    /// Faults in the current episode (reset on drain).
    episode: u64,
    /// Watermark: deepest inflight depth observed (reported, not gating).
    depth_peak: usize,
    /// Watermark: polls that found the lane at its queue-depth budget.
    saturated_polls: u64,
    /// Watermark: total depth observations.
    polls: u64,
}

impl LaneHealth {
    /// A healthy lane for SSD `ssd`.
    pub fn new(ssd: usize, cfg: HealthConfig) -> Self {
        LaneHealth {
            ssd,
            cfg,
            state: HealthState::Healthy,
            retries: 0,
            timeouts: 0,
            episode: 0,
            depth_peak: 0,
            saturated_polls: 0,
            polls: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Lane (SSD index).
    pub fn ssd(&self) -> usize {
        self.ssd
    }

    /// Cumulative retries observed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Cumulative deadline misses observed.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Cumulative faults (retries + timeouts).
    pub fn faults(&self) -> u64 {
        self.retries + self.timeouts
    }

    /// Deepest inflight depth observed (watermark).
    pub fn depth_peak(&self) -> usize {
        self.depth_peak
    }

    /// Fraction of depth observations that found the lane saturated
    /// (inflight == queue-depth budget); 0 before any observation.
    pub fn saturation(&self) -> f64 {
        if self.polls == 0 {
            0.0
        } else {
            self.saturated_polls as f64 / self.polls as f64
        }
    }

    /// A command on this lane was re-queued after a transient failure.
    pub fn on_retry(&mut self) -> Option<HealthTransition> {
        self.retries += 1;
        self.on_fault()
    }

    /// A command on this lane missed its deadline.
    pub fn on_timeout(&mut self) -> Option<HealthTransition> {
        self.timeouts += 1;
        self.on_fault()
    }

    fn on_fault(&mut self) -> Option<HealthTransition> {
        self.episode += 1;
        let to = match self.state {
            HealthState::Healthy | HealthState::Recovered => HealthState::Degraded,
            HealthState::Degraded if self.episode >= self.cfg.overload_faults => {
                HealthState::Overloaded
            }
            HealthState::Degraded | HealthState::Overloaded => return None,
        };
        Some(self.transition(to))
    }

    /// The driver drained the lane clean (quiesce / end of run): a
    /// degraded or overloaded lane is declared recovered and its episode
    /// counter reset. No-op on a lane with no open episode.
    pub fn on_drain(&mut self) -> Option<HealthTransition> {
        match self.state {
            HealthState::Degraded | HealthState::Overloaded => {
                self.episode = 0;
                Some(self.transition(HealthState::Recovered))
            }
            HealthState::Healthy | HealthState::Recovered => None,
        }
    }

    /// Records an inflight-depth observation against the lane's
    /// queue-depth budget. Watermark only — never causes a transition
    /// (see the determinism contract in the module docs).
    pub fn observe_depth(&mut self, inflight: usize, queue_depth: usize) {
        self.polls += 1;
        if inflight > self.depth_peak {
            self.depth_peak = inflight;
        }
        if queue_depth > 0 && inflight >= queue_depth {
            self.saturated_polls += 1;
        }
    }

    fn transition(&mut self, to: HealthState) -> HealthTransition {
        let t = HealthTransition {
            ssd: self.ssd,
            from: self.state,
            to,
            faults: self.faults(),
        };
        self.state = to;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(overload: u64) -> LaneHealth {
        LaneHealth::new(
            0,
            HealthConfig {
                overload_faults: overload,
            },
        )
    }

    #[test]
    fn fault_storm_walks_healthy_degraded_overloaded_recovered() {
        let mut l = lane(3);
        let t = l.on_retry().expect("first fault degrades");
        assert_eq!(
            (t.from, t.to, t.faults),
            (HealthState::Healthy, HealthState::Degraded, 1)
        );
        assert!(l.on_retry().is_none(), "second fault: still degraded");
        let t = l.on_retry().expect("threshold fault overloads");
        assert_eq!(
            (t.from, t.to, t.faults),
            (HealthState::Degraded, HealthState::Overloaded, 3)
        );
        assert!(l.on_retry().is_none(), "overloaded absorbs further faults");
        let t = l.on_drain().expect("drain recovers");
        assert_eq!(
            (t.from, t.to),
            (HealthState::Overloaded, HealthState::Recovered)
        );
        assert_eq!(t.faults, 4);
        assert!(l.on_drain().is_none(), "drain is idempotent");
    }

    #[test]
    fn recovery_resets_the_episode_but_not_cumulative_counts() {
        let mut l = lane(2);
        l.on_retry();
        l.on_retry(); // → Overloaded
        l.on_drain(); // → Recovered
        let t = l.on_retry().expect("fault after recovery re-degrades");
        assert_eq!(
            (t.from, t.to),
            (HealthState::Recovered, HealthState::Degraded)
        );
        assert_eq!(t.faults, 3, "cumulative count survives recovery");
        // Fresh episode: one more fault reaches the threshold again.
        let t = l
            .on_retry()
            .expect("episode threshold counts from recovery");
        assert_eq!(t.to, HealthState::Overloaded);
    }

    #[test]
    fn timeouts_count_as_faults() {
        let mut l = lane(2);
        assert_eq!(l.on_timeout().unwrap().to, HealthState::Degraded);
        assert_eq!(l.on_timeout().unwrap().to, HealthState::Overloaded);
        assert_eq!((l.retries(), l.timeouts(), l.faults()), (0, 2, 2));
    }

    #[test]
    fn depth_observations_never_transition() {
        let mut l = lane(1);
        for _ in 0..1000 {
            l.observe_depth(64, 64);
        }
        assert_eq!(l.state(), HealthState::Healthy);
        assert_eq!(l.depth_peak(), 64);
        assert_eq!(l.saturation(), 1.0);
        l.observe_depth(3, 64);
        assert!(l.saturation() < 1.0);
        assert!(l.on_drain().is_none(), "healthy lanes do not 'recover'");
    }

    #[test]
    fn state_codes_are_stable() {
        assert_eq!(HealthState::Healthy.code(), 0);
        assert_eq!(HealthState::Degraded.code(), 1);
        assert_eq!(HealthState::Overloaded.code(), 2);
        assert_eq!(HealthState::Recovered.code(), 3);
        assert_eq!(HealthState::Overloaded.name(), "overloaded");
    }
}
