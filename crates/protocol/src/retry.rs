//! Per-command retry, backoff, and deadline policy.
//!
//! Transient NVMe failures ([`Status::is_transient`]) are re-submitted with
//! bounded exponential backoff; deterministic failures are not. A
//! per-command deadline converts a command that keeps failing transiently
//! (or keeps waiting out backoff) into a failed *command* — never a wedged
//! worker thread.

use cam_nvme::spec::Status;

/// What the worker should do with a failed command.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Re-queue the command; do not submit it before `at_ns`.
    Retry {
        /// Earliest re-submission time on the driver's clock.
        at_ns: u64,
    },
    /// Fail the command: the error is deterministic or retries are
    /// exhausted.
    Permanent,
    /// Fail the command: its deadline expired.
    TimedOut,
}

/// The retry policy one control plane runs under.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Re-submissions allowed per command (0 = never retry).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base << (n - 1)`, capped.
    pub backoff_base_ns: u64,
    /// Per-command budget from dispatch to final completion.
    pub deadline_ns: Option<u64>,
}

/// Cap on the backoff exponent (and thereby the backoff itself): ten
/// doublings of the base is already ~1000×; anything further just wedges
/// the command until its deadline.
const MAX_BACKOFF_SHIFT: u32 = 10;

impl RetryPolicy {
    /// Backoff to apply after failed attempt number `attempt` (1-based).
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(MAX_BACKOFF_SHIFT);
        self.backoff_base_ns.saturating_mul(1u64 << shift)
    }

    /// Classifies a failed completion. `attempts` counts submissions so far
    /// (≥ 1); `deadline_ns` is the command's absolute deadline, if any.
    pub fn classify(
        &self,
        status: Status,
        attempts: u32,
        now_ns: u64,
        deadline_ns: Option<u64>,
    ) -> Verdict {
        debug_assert!(!status.is_ok(), "classify is for failed completions");
        if deadline_ns.is_some_and(|d| now_ns >= d) {
            return Verdict::TimedOut;
        }
        if !status.is_transient() || attempts > self.max_retries {
            return Verdict::Permanent;
        }
        Verdict::Retry {
            at_ns: now_ns + self.backoff_ns(attempts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ns: 1000,
            deadline_ns: Some(1_000_000),
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = policy();
        assert_eq!(p.backoff_ns(1), 1000);
        assert_eq!(p.backoff_ns(2), 2000);
        assert_eq!(p.backoff_ns(3), 4000);
        assert_eq!(p.backoff_ns(11), 1000 << 10);
        assert_eq!(p.backoff_ns(40), 1000 << 10, "exponent capped");
        // Saturates rather than overflowing for absurd bases.
        let wide = RetryPolicy {
            backoff_base_ns: u64::MAX / 2,
            ..p
        };
        assert_eq!(wide.backoff_ns(5), u64::MAX);
    }

    #[test]
    fn transient_failures_retry_with_growing_backoff() {
        let p = policy();
        assert_eq!(
            p.classify(Status::TransientMediaError, 1, 100, Some(10_000)),
            Verdict::Retry { at_ns: 100 + 1000 }
        );
        assert_eq!(
            p.classify(Status::TransientMediaError, 2, 100, Some(10_000)),
            Verdict::Retry { at_ns: 100 + 2000 }
        );
    }

    #[test]
    fn deterministic_failures_never_retry() {
        let p = policy();
        for s in [
            Status::LbaOutOfRange,
            Status::InvalidField,
            Status::DataTransferError,
            Status::MediaError,
        ] {
            assert_eq!(p.classify(s, 1, 0, None), Verdict::Permanent);
        }
    }

    #[test]
    fn retries_are_bounded() {
        let p = policy();
        assert!(matches!(
            p.classify(Status::TransientMediaError, 3, 0, None),
            Verdict::Retry { .. }
        ));
        assert_eq!(
            p.classify(Status::TransientMediaError, 4, 0, None),
            Verdict::Permanent
        );
    }

    #[test]
    fn deadline_beats_every_other_outcome() {
        let p = policy();
        assert_eq!(
            p.classify(Status::TransientMediaError, 1, 5000, Some(5000)),
            Verdict::TimedOut
        );
        assert_eq!(
            p.classify(Status::MediaError, 1, 9000, Some(5000)),
            Verdict::TimedOut
        );
        // No deadline → no timeout.
        assert!(matches!(
            p.classify(Status::TransientMediaError, 1, u64::MAX / 2, None),
            Verdict::Retry { .. }
        ));
    }
}
