//! Dispatch planning: read dedup, stripe splitting, per-SSD grouping.
//!
//! `plan_batch` is the pure core of the poller's pickup path: it turns one
//! published batch (op, blocks-per-request, `(lba, addr)` pairs) into the
//! per-SSD groups of stripe-contiguous runs the workers execute, plus the
//! host-side copy pairs that replicate deduplicated reads at retire. Both
//! drivers call it with identical inputs, so every planning decision —
//! which duplicates drop, where stripe boundaries split, which SSD owns a
//! run — is made by one piece of code.

/// Operation carried by a batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChannelOp {
    /// SSD → GPU memory (`prefetch`).
    Read,
    /// GPU memory → SSD (`write_back`).
    Write,
}

/// Index into the telemetry `OPS` table (`["read", "write"]`) for an op.
pub fn op_index(op: ChannelOp) -> usize {
    match op {
        ChannelOp::Read => 0,
        ChannelOp::Write => 1,
    }
}

/// Array geometry the planner needs: how logical blocks map onto SSDs.
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// SSDs in the RAID-0 array.
    pub n_ssds: usize,
    /// Blocks per stripe unit.
    pub stripe_blocks: u64,
    /// Bytes per block (scales request addresses across split runs).
    pub block_size: u32,
}

impl PlanConfig {
    /// Maps a logical block onto `(ssd, device LBA)`.
    pub fn map(&self, lba: u64) -> (usize, u64) {
        let n = self.n_ssds as u64;
        let stripe = lba / self.stripe_blocks;
        let within = lba % self.stripe_blocks;
        (
            (stripe % n) as usize,
            (stripe / n) * self.stripe_blocks + within,
        )
    }
}

/// The planner's output for one batch.
pub struct BatchPlan {
    /// Requests as published (before dedup).
    pub requests: u64,
    /// Duplicate read requests removed from dispatch: `(primary address,
    /// duplicate address)` pairs replicated by a host-side copy at retire.
    pub dups: Vec<(u64, u64)>,
    /// Per-SSD groups of `(device LBA, address, blocks)` runs; indexed by
    /// SSD, possibly empty for SSDs the batch does not touch.
    pub groups: Vec<Vec<(u64, u64, u32)>>,
    /// Extra runs created by stripe-boundary splitting.
    pub stripe_splits: u64,
}

impl BatchPlan {
    /// Non-empty per-SSD groups (the batch's outstanding-group count).
    pub fn n_groups(&self) -> usize {
        self.groups.iter().filter(|g| !g.is_empty()).count()
    }

    /// Total runs across all groups — the SQEs a fault-free execution
    /// submits exactly once each.
    pub fn runs(&self) -> u64 {
        self.groups.iter().map(|g| g.len() as u64).sum()
    }
}

/// Plans one batch: dedup duplicate read LBAs (keep-first), split every
/// request at stripe boundaries, and group the resulting runs by SSD.
///
/// Duplicate LBAs in one read batch would fetch the same blocks from the
/// SSD several times. The first destination per LBA is kept, the rest are
/// dropped from dispatch and remembered as copy pairs: the retiring driver
/// replicates the fetched data to every duplicate destination before
/// region 4 is written, so the GPU still sees all of its destinations
/// populated. Requests in a batch share `blocks`, so equal start LBAs
/// cover identical ranges. Writes are left untouched (last-writer
/// semantics would change if we collapsed them).
pub fn plan_batch(
    cfg: &PlanConfig,
    op: ChannelOp,
    blocks: u32,
    mut reqs: Vec<(u64, u64)>,
) -> BatchPlan {
    let requests = reqs.len() as u64;
    let mut dups: Vec<(u64, u64)> = Vec::new();
    if op == ChannelOp::Read {
        let mut first: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::with_capacity(reqs.len());
        reqs.retain(|&(lba, addr)| match first.entry(lba) {
            std::collections::hash_map::Entry::Occupied(e) => {
                dups.push((*e.get(), addr));
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(addr);
                true
            }
        });
    }
    // Split the batch by stripe across SSDs. Requests that cross a stripe
    // boundary become several stripe-contiguous runs — the CPU control
    // plane owns the striping, so GPU code never needs to know the array
    // layout.
    let mut groups: Vec<Vec<(u64, u64, u32)>> = vec![Vec::new(); cfg.n_ssds];
    let bs = cfg.block_size as u64;
    let mut total_runs = 0u64;
    for (lba, addr) in &reqs {
        let mut done = 0u64;
        while done < blocks as u64 {
            let cur = lba + done;
            let left = cfg.stripe_blocks - cur % cfg.stripe_blocks;
            let run = left.min(blocks as u64 - done) as u32;
            let (ssd, dev_lba) = cfg.map(cur);
            groups[ssd].push((dev_lba, addr + done * bs, run));
            total_runs += 1;
            done += run as u64;
        }
    }
    BatchPlan {
        requests,
        dups,
        groups,
        stripe_splits: total_runs.saturating_sub(reqs.len() as u64),
    }
}

/// Timing-independent protocol decisions, for driver-fidelity comparison.
///
/// Every field counts a *decision* the protocol makes — not an artifact of
/// scheduling — so a fixed workload must produce identical counters under
/// the threaded and the DES driver (`cam-bench`'s fidelity experiment
/// asserts exactly that).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecisionCounters {
    /// Batches planned.
    pub batches: u64,
    /// Requests as published (pre-dedup).
    pub requests: u64,
    /// Duplicate reads dropped from dispatch.
    pub dedup_dropped: u64,
    /// Extra runs created at stripe boundaries.
    pub stripe_splits: u64,
    /// Non-empty per-SSD groups dispatched.
    pub groups: u64,
    /// First submissions (logical SQEs; retries excluded).
    pub sqes: u64,
    /// Transient-failure re-submissions.
    pub retries: u64,
    /// Commands failed by deadline.
    pub timeouts: u64,
}

impl DecisionCounters {
    /// Folds one batch plan into the counters.
    pub fn record_plan(&mut self, plan: &BatchPlan) {
        self.batches += 1;
        self.requests += plan.requests;
        self.dedup_dropped += plan.dups.len() as u64;
        self.stripe_splits += plan.stripe_splits;
        self.groups += plan.n_groups() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PlanConfig {
        PlanConfig {
            n_ssds: 4,
            stripe_blocks: 2,
            block_size: 4096,
        }
    }

    #[test]
    fn duplicate_reads_collapse_to_first_destination() {
        let plan = plan_batch(
            &cfg(),
            ChannelOp::Read,
            1,
            vec![(10, 0x1000), (20, 0x2000), (10, 0x3000), (10, 0x4000)],
        );
        assert_eq!(plan.requests, 4);
        assert_eq!(plan.dups, vec![(0x1000, 0x3000), (0x1000, 0x4000)]);
        assert_eq!(plan.runs(), 2, "two distinct LBAs survive dispatch");
    }

    #[test]
    fn writes_are_never_deduplicated() {
        let plan = plan_batch(
            &cfg(),
            ChannelOp::Write,
            1,
            vec![(10, 0x1000), (10, 0x2000)],
        );
        assert!(plan.dups.is_empty());
        assert_eq!(plan.runs(), 2, "last-writer semantics preserved");
    }

    #[test]
    fn stripe_crossings_split_into_contiguous_runs() {
        // stripe_blocks = 2: a 2-block request starting at odd LBA 1 covers
        // blocks {1, 2} and crosses the stripe boundary at 2.
        let plan = plan_batch(&cfg(), ChannelOp::Read, 2, vec![(1, 0x1000)]);
        assert_eq!(plan.stripe_splits, 1);
        assert_eq!(plan.runs(), 2);
        // Block 1 → stripe 0 → ssd 0 at device LBA 1; block 2 → stripe 1 →
        // ssd 1 at device LBA 0. The second run's address advances by one
        // block.
        assert_eq!(plan.groups[0], vec![(1, 0x1000, 1)]);
        assert_eq!(plan.groups[1], vec![(0, 0x1000 + 4096, 1)]);
    }

    #[test]
    fn groups_follow_the_raid0_map() {
        let c = cfg();
        let plan = plan_batch(
            &c,
            ChannelOp::Read,
            1,
            (0..16u64).map(|lba| (lba, lba * 4096)).collect(),
        );
        assert_eq!(plan.n_groups(), 4);
        assert_eq!(plan.stripe_splits, 0);
        for (ssd, group) in plan.groups.iter().enumerate() {
            assert_eq!(group.len(), 4);
            for &(dev_lba, _, blocks) in group {
                assert_eq!(blocks, 1);
                // Reconstruct the logical block and confirm the bijection.
                let stripe = dev_lba / c.stripe_blocks;
                let within = dev_lba % c.stripe_blocks;
                let lba = (stripe * c.n_ssds as u64 + ssd as u64) * c.stripe_blocks + within;
                assert_eq!(c.map(lba), (ssd, dev_lba));
            }
        }
    }

    #[test]
    fn decision_counters_fold_plans() {
        let mut d = DecisionCounters::default();
        let plan = plan_batch(
            &cfg(),
            ChannelOp::Read,
            2,
            vec![(1, 0), (1, 4096), (4, 8192)],
        );
        d.record_plan(&plan);
        assert_eq!(d.batches, 1);
        assert_eq!(d.requests, 3);
        assert_eq!(d.dedup_dropped, 1);
        assert_eq!(d.stripe_splits, 1);
        assert_eq!(d.groups, plan.n_groups() as u64);
    }
}
