//! The per-(worker, SSD) in-flight command table.
//!
//! Every submitted command gets a CID from here; every reaped CQE is
//! matched back to its originating request through it. CIDs wrap at
//! `u16::MAX` but never collide with a command still in flight — the
//! allocator skips in-use slots, so a late completion can never be
//! attributed to the wrong request after CID reuse.

use std::collections::HashMap;

/// CID-keyed table of commands awaiting their completion.
pub struct InflightTable<T> {
    slots: HashMap<u16, T>,
    next_cid: u16,
    capacity: usize,
}

impl<T> InflightTable<T> {
    /// A table bounded by the queue depth (and by the 16-bit CID space).
    pub fn new(depth: usize) -> Self {
        InflightTable {
            slots: HashMap::with_capacity(depth.min(u16::MAX as usize)),
            next_cid: 0,
            capacity: depth.min(u16::MAX as usize),
        }
    }

    /// Commands currently in flight.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether another command can be admitted.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// Allocates the next free CID, or `None` when the table is full. The
    /// CID is not reserved until [`put`](Self::put) — callers that abort a
    /// submission (SQ full) simply drop it.
    pub fn alloc_cid(&mut self) -> Option<u16> {
        if self.is_full() {
            return None;
        }
        // At most `capacity` slots are occupied and capacity ≤ the CID
        // space, so a free CID exists within one wrap.
        loop {
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1);
            if !self.slots.contains_key(&cid) {
                return Some(cid);
            }
        }
    }

    /// Records `cmd` as in flight under `cid`.
    pub fn put(&mut self, cid: u16, cmd: T) {
        let prev = self.slots.insert(cid, cmd);
        debug_assert!(prev.is_none(), "CID {cid} double-allocated");
    }

    /// Matches a completion back to its command; `None` for a stale or
    /// unknown CID.
    pub fn remove(&mut self, cid: u16) -> Option<T> {
        self.slots.remove(&cid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cids_round_trip() {
        let mut t: InflightTable<&str> = InflightTable::new(8);
        let a = t.alloc_cid().unwrap();
        t.put(a, "a");
        let b = t.alloc_cid().unwrap();
        t.put(b, "b");
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(a), Some("a"));
        assert_eq!(t.remove(a), None, "second reap of the same CID is stale");
        assert_eq!(t.remove(b), Some("b"));
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn capacity_bounds_admission() {
        let mut t: InflightTable<u32> = InflightTable::new(2);
        let a = t.alloc_cid().unwrap();
        t.put(a, 0);
        let b = t.alloc_cid().unwrap();
        t.put(b, 1);
        assert!(t.is_full());
        assert_eq!(t.alloc_cid(), None);
        t.remove(a).unwrap();
        assert!(t.alloc_cid().is_some());
    }

    #[test]
    fn wrapping_allocator_skips_live_cids() {
        let mut t: InflightTable<u32> = InflightTable::new(usize::from(u16::MAX));
        // Park a command on CID 0, then walk the allocator through a full
        // wrap of the CID space: it must hand out every other CID once and
        // never 0 again while it is live.
        let first = t.alloc_cid().unwrap();
        assert_eq!(first, 0);
        t.put(first, 42);
        for _ in 0..u32::from(u16::MAX) - 1 {
            let cid = t.alloc_cid().unwrap();
            assert_ne!(cid, 0, "live CID must not be reissued");
            t.put(cid, 0);
            t.remove(cid).unwrap();
        }
        // The allocator has wrapped past 0; the parked command is intact.
        let cid = t.alloc_cid().unwrap();
        assert_ne!(cid, 0);
        assert_eq!(t.remove(0), Some(42));
    }

    #[test]
    fn aborted_allocation_leaves_no_residue() {
        let mut t: InflightTable<u32> = InflightTable::new(4);
        let cid = t.alloc_cid().unwrap();
        // Caller hit SqFull and never called put: the slot stays free.
        assert_eq!(t.len(), 0);
        assert_eq!(t.remove(cid), None);
        let again = t.alloc_cid().unwrap();
        t.put(again, 7);
        assert_eq!(t.remove(again), Some(7));
    }
}
