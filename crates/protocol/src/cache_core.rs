//! [`CacheCore`] — the block cache as a pure, clock-agnostic state machine.
//!
//! This is the cache analogue of [`WorkerCore`](crate::WorkerCore): every
//! *decision* the GPU-memory block cache makes — CLOCK eviction, refcount
//! pinning, in-flight miss coalescing, dirty/write-back policy, and
//! stride-detecting readahead — lives here as plain state transitions over
//! slot indices. No locks, no condvars, no GPU buffers, no I/O: events go
//! in (`lookup`, `complete_fill`, `resolve_wait`, …), typed decisions come
//! out ([`CoreLookup`], [`ReadaheadPlan`]), and every decision bumps a
//! [`CacheDecisionCounters`] field so independent drivers can be asserted
//! *exactly equal* against a pure replay.
//!
//! Three drivers share this object:
//!
//! * the **threaded** `cam-cache::BlockCache` wraps one `CacheCore` in a
//!   mutex + condvar and layers pinned-memory addresses and RAII
//!   pins/tickets on top;
//! * the **DES** cached batch source (`cam_iostacks::cam_des`) steps the
//!   same core in virtual time, so cache-sensitive experiments produce
//!   latency curves without the threaded engine;
//! * the **replay** ([`replay_read_workload`]) runs the core with no driver
//!   at all — the fidelity harness's ground truth.
//!
//! The slot namespace is *global* (0..slots); sharding exists only to
//! replicate the threaded cache's per-shard CLOCK hands and multiplicative
//! shard hash, so eviction sequences are bit-identical across drivers.

use std::collections::HashMap;

/// Configuration for the block cache (threaded wrapper and DES stage).
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Cache capacity in blocks (one pinned GPU-memory slot per block).
    pub slots: usize,
    /// Lock stripes. Each shard owns `slots / shards` slots with a private
    /// CLOCK hand; the threaded wrapper also gives each a private mutex.
    pub shards: usize,
    /// Maximum dirty blocks written back per flush batch.
    pub flush_batch: usize,
    /// Speculative-prefetch knobs.
    pub readahead: ReadaheadConfig,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            slots: 1024,
            shards: 8,
            flush_batch: 256,
            readahead: ReadaheadConfig::default(),
        }
    }
}

impl CacheConfig {
    /// Same knobs with a different slot count (the bench sweep's axis).
    pub fn with_slots(slots: usize) -> Self {
        CacheConfig {
            slots,
            ..CacheConfig::default()
        }
    }
}

/// Adaptive-readahead configuration.
///
/// The engine watches the start LBA of successive demand batches on the
/// read channel. Once the inter-batch stride is stable for two transitions
/// it speculatively fetches a window of blocks one stride ahead, then grows
/// or shrinks the window from the measured accuracy of the previous issue
/// (speculative blocks that later served a demand hit).
#[derive(Clone, Copy, Debug)]
pub struct ReadaheadConfig {
    /// Master switch. Readahead also requires the context to have a third
    /// channel (`CamConfig::n_channels >= 3`) so speculation never occupies
    /// the demand channels — that gate belongs to the driver, which must
    /// not call [`CacheCore::plan_readahead`] without the channel.
    pub enable: bool,
    /// Window floor in blocks.
    pub min_window: u32,
    /// Window at startup, in blocks.
    pub initial_window: u32,
    /// Window ceiling in blocks.
    pub max_window: u32,
    /// Hard cap on speculative blocks in flight — speculation never starves
    /// demand misses of cache slots.
    pub budget_blocks: u32,
}

impl Default for ReadaheadConfig {
    fn default() -> Self {
        ReadaheadConfig {
            enable: true,
            min_window: 4,
            initial_window: 8,
            max_window: 64,
            budget_blocks: 64,
        }
    }
}

/// Detects a stable stride between successive demand-batch start LBAs and
/// predicts where the stream goes next. Pure decision logic, no I/O.
#[derive(Debug)]
pub struct ReadaheadCore {
    cfg: ReadaheadConfig,
    window: u32,
    last_start: Option<u64>,
    stride: Option<i64>,
    /// Consecutive transitions with the same nonzero stride.
    confirmed: u32,
}

impl ReadaheadCore {
    /// A fresh detector with the configured initial window.
    pub fn new(cfg: ReadaheadConfig) -> Self {
        let window = cfg
            .initial_window
            .clamp(cfg.min_window.max(1), cfg.max_window.max(1));
        ReadaheadCore {
            cfg,
            window,
            last_start: None,
            stride: None,
            confirmed: 0,
        }
    }

    /// Current speculative window in blocks.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Observes a demand batch starting at `start`. Returns
    /// `Some((predicted_start, blocks))` when the inter-batch stride has
    /// held for two consecutive transitions — the caller should prefetch
    /// `blocks` blocks from one stride past `start`.
    pub fn observe(&mut self, start: u64) -> Option<(u64, u32)> {
        let prediction = match self.last_start {
            None => None,
            Some(prev) => {
                let stride = start as i64 - prev as i64;
                if stride != 0 && self.stride == Some(stride) {
                    self.confirmed += 1;
                } else {
                    self.confirmed = 0;
                }
                self.stride = Some(stride);
                // Two stable transitions (three aligned batches) before
                // speculating; descending streams are not worth chasing.
                if self.confirmed >= 1 && stride > 0 {
                    let blocks = self.window.min(self.cfg.budget_blocks.max(1));
                    Some((start.saturating_add(stride as u64), blocks))
                } else {
                    None
                }
            }
        };
        self.last_start = Some(start);
        prediction
    }

    /// Adapts the window from the accuracy of the previous issue (fraction
    /// of its speculative blocks that served a demand access): ≥ 0.75 grows
    /// the window ×2, ≤ 0.25 halves it, in between leaves it alone.
    pub fn feedback(&mut self, accuracy: f64) {
        if accuracy >= 0.75 {
            self.window = (self.window.saturating_mul(2)).min(self.cfg.max_window.max(1));
        } else if accuracy <= 0.25 {
            self.window = (self.window / 2).max(self.cfg.min_window.max(1));
        }
    }
}

/// Every decision the cache makes, counted. Two drivers replaying the same
/// access sequence against the same [`CacheCore`] logic must produce equal
/// counter sets — the fidelity harness asserts exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheDecisionCounters {
    /// Demand reads served from a resident slot.
    pub hits: u64,
    /// Demand reads that reserved a fill or fell back uncached (`Busy`).
    pub misses: u64,
    /// Demand reads coalesced onto another caller's in-flight fill.
    pub coalesced: u64,
    /// Resident blocks reclaimed by the CLOCK sweep.
    pub evictions: u64,
    /// Writes absorbed into (existing or write-allocated) slots.
    pub write_absorbed: u64,
    /// Dirty blocks claimed for write-back by [`CacheCore::take_dirty`].
    pub flushed_blocks: u64,
    /// Speculative blocks issued by committed readahead plans.
    pub readahead_issued: u64,
    /// Speculative blocks that later served a demand access.
    pub readahead_hits: u64,
}

/// What the caller intends to do with the block — selects which decision
/// counters a [`CacheCore::lookup`] bumps (the slot state transitions are
/// identical for all intents).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Intent {
    /// A demand read: counts hits / misses / coalesced.
    DemandRead,
    /// A write-back absorption: counts `write_absorbed`.
    Write,
    /// A readahead candidate probe: counts nothing.
    Speculative,
}

/// Outcome of a [`CacheCore::lookup`].
#[derive(Debug, PartialEq, Eq)]
pub enum CoreLookup {
    /// The block is resident; `slot` is pinned until
    /// [`CacheCore::unpin`].
    Hit {
        /// Global slot index of the resident block.
        slot: usize,
    },
    /// `slot` was reserved (state *Filling*) for this LBA; the caller owns
    /// the one fill and must `complete_fill` / `abort_fill` it.
    Miss {
        /// Global slot index reserved for the fill.
        slot: usize,
        /// LBA of the resident block the CLOCK sweep evicted to make room,
        /// if any (for `CacheEvict` event emission).
        evicted: Option<u64>,
    },
    /// Another caller is already filling this LBA — coalesce onto that fill
    /// and resolve later via [`CacheCore::resolve_wait`].
    InFlight,
    /// No clean slot could be reclaimed, but dirty unpinned slots exist:
    /// flush (see [`CacheCore::take_dirty`]) and retry.
    NeedFlush,
    /// Every slot in the LBA's shard is pinned or filling; the caller must
    /// fall back to an uncached transfer or drain pins first.
    Busy,
}

/// Outcome of resolving a coalesced wait (see [`CoreLookup::InFlight`]).
#[derive(Debug, PartialEq, Eq)]
pub enum Resolve {
    /// The fill completed; `slot` is pinned until [`CacheCore::unpin`].
    Ready {
        /// Global slot index of the now-resident block.
        slot: usize,
    },
    /// The fill is still in flight — wait and retry.
    Pending,
    /// The owning fill aborted; fetch the block uncached.
    Aborted,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    Free,
    Filling,
    Resident,
}

struct Slot {
    lba: u64,
    state: SlotState,
    referenced: bool,
    dirty: bool,
    /// Set by speculative (readahead) fills, cleared by the first demand
    /// access — the signal behind `readahead_hits`.
    speculative: bool,
    pins: u32,
}

struct ShardState {
    /// LBA → *global* slot index.
    map: HashMap<u64, usize>,
    /// Global index of the shard's first slot.
    base: usize,
    /// Slots owned by the shard.
    len: usize,
    /// CLOCK hand, relative to `base`.
    hand: usize,
}

/// A planned (not yet committed) speculative readahead batch.
#[derive(Debug)]
pub struct ReadaheadPlan {
    /// First predicted LBA (one stride past the observed batch start).
    pub pred_start: u64,
    /// Window size the detector proposed, in blocks.
    pub window: u32,
    /// Reserved fills: `(global slot, lba)`, already *Filling* in the core.
    pub fills: Vec<(usize, u64)>,
    /// Blocks evicted while reserving the fills (for event emission).
    pub evicted: Vec<u64>,
}

/// Classification of one demand read batch (see
/// [`CacheCore::plan_read_batch`]): which accesses hit, which reserved
/// fills, which coalesced, and which must go uncached.
#[derive(Debug, Default)]
pub struct ReadBatchPlan {
    /// Accesses served from resident slots (already unpinned again).
    pub hits: u64,
    /// Reserved fills in batch order: `(global slot, lba)`.
    pub fills: Vec<(usize, u64)>,
    /// Coalesced accesses, resolved after the owning fills publish.
    pub waits: Vec<u64>,
    /// Uncached fallbacks (`Busy` shards) in batch order.
    pub direct: Vec<u64>,
    /// Blocks evicted while reserving fills (for event emission).
    pub evicted: Vec<u64>,
    /// Dirty blocks claimed by in-plan flushes (`NeedFlush` retries). Zero
    /// on read-only workloads.
    pub flushed: u64,
}

/// The block cache decision core. See the module docs for the contract.
pub struct CacheCore {
    cfg: CacheConfig,
    slots: Vec<Slot>,
    shards: Vec<ShardState>,
    counters: CacheDecisionCounters,
    ra: ReadaheadCore,
    ra_outstanding: bool,
    /// `readahead_hits` value when the last speculative batch was
    /// committed, and that batch's size — the accuracy sample fed back to
    /// the detector at the next demand batch.
    ra_hits_at_issue: u64,
    ra_last_issue: u32,
}

impl CacheCore {
    /// A fresh core. Shard count is clamped to `1..=slots`; the slot
    /// layout (shard *s* owns `slots/shards` slots plus one of the first
    /// `slots % shards` remainders, contiguously) matches the threaded
    /// cache so global slot indices translate directly to buffer offsets.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.slots >= 1, "cache needs at least one slot");
        let n_shards = cfg.shards.clamp(1, cfg.slots);
        let per = cfg.slots / n_shards;
        let rem = cfg.slots % n_shards;
        let mut base = 0usize;
        let shards = (0..n_shards)
            .map(|s| {
                let len = per + usize::from(s < rem);
                let st = ShardState {
                    map: HashMap::with_capacity(len),
                    base,
                    len,
                    hand: 0,
                };
                base += len;
                st
            })
            .collect();
        let slots = (0..cfg.slots)
            .map(|_| Slot {
                lba: 0,
                state: SlotState::Free,
                referenced: false,
                dirty: false,
                speculative: false,
                pins: 0,
            })
            .collect();
        CacheCore {
            ra: ReadaheadCore::new(cfg.readahead),
            cfg,
            slots,
            shards,
            counters: CacheDecisionCounters::default(),
            ra_outstanding: false,
            ra_hits_at_issue: 0,
            ra_last_issue: 0,
        }
    }

    /// The configuration the core was built with (shards already clamped
    /// into the layout; `cfg.shards` is the requested value).
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Total slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Decision counters so far.
    pub fn counters(&self) -> CacheDecisionCounters {
        self.counters
    }

    /// Current readahead window in blocks.
    pub fn readahead_window(&self) -> u32 {
        self.ra.window()
    }

    /// Multiplicative hash so strided LBA streams still spread over shards.
    fn shard_of(&self, lba: u64) -> usize {
        let h = lba.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) % self.shards.len()
    }

    /// Whether `lba` currently has a slot (resident *or* filling). Cheap
    /// filter for readahead candidate selection.
    pub fn contains(&self, lba: u64) -> bool {
        self.shards[self.shard_of(lba)].map.contains_key(&lba)
    }

    /// Takes a pin + reference on resident slot `g`; bumps
    /// `readahead_hits` if the slot was speculative (any intent — mirrors
    /// the threaded cache, where the resident arm is caller-agnostic).
    fn touch_resident(&mut self, g: usize) {
        let slot = &mut self.slots[g];
        slot.pins += 1;
        slot.referenced = true;
        if slot.speculative {
            slot.speculative = false;
            self.counters.readahead_hits += 1;
        }
    }

    /// Classifies `lba` and bumps the counters `intent` selects. State
    /// transitions are identical for every intent: a resident block is
    /// pinned (release with [`unpin`](Self::unpin)), an absent block
    /// reserves a *Filling* slot the caller owns.
    pub fn lookup(&mut self, lba: u64, intent: Intent) -> CoreLookup {
        let si = self.shard_of(lba);
        if let Some(&g) = self.shards[si].map.get(&lba) {
            match self.slots[g].state {
                SlotState::Resident => {
                    self.touch_resident(g);
                    if intent == Intent::DemandRead {
                        self.counters.hits += 1;
                    } else if intent == Intent::Write {
                        self.counters.write_absorbed += 1;
                    }
                    return CoreLookup::Hit { slot: g };
                }
                SlotState::Filling => {
                    if intent == Intent::DemandRead {
                        self.counters.coalesced += 1;
                    }
                    return CoreLookup::InFlight;
                }
                // A mapped Free slot cannot happen (fill aborts unmap), but
                // recover by dropping the stale mapping and allocating.
                SlotState::Free => {
                    self.shards[si].map.remove(&lba);
                }
            }
        }
        // CLOCK sweep: two passes so every referenced bit can be cleared
        // once before giving up.
        let (base, len) = (self.shards[si].base, self.shards[si].len);
        let mut dirty_seen = false;
        let mut found = None;
        let mut evicted = None;
        for _ in 0..2 * len {
            let idx = self.shards[si].hand;
            self.shards[si].hand = (idx + 1) % len;
            let g = base + idx;
            let (state, pins, referenced, dirty, old_lba) = {
                let sl = &self.slots[g];
                (sl.state, sl.pins, sl.referenced, sl.dirty, sl.lba)
            };
            match state {
                SlotState::Free => {
                    found = Some(g);
                    break;
                }
                SlotState::Filling => continue,
                SlotState::Resident => {
                    if pins > 0 {
                        continue;
                    }
                    if referenced {
                        self.slots[g].referenced = false;
                        continue;
                    }
                    if dirty {
                        dirty_seen = true;
                        continue;
                    }
                    self.shards[si].map.remove(&old_lba);
                    self.counters.evictions += 1;
                    evicted = Some(old_lba);
                    found = Some(g);
                    break;
                }
            }
        }
        match found {
            Some(g) => {
                let slot = &mut self.slots[g];
                slot.lba = lba;
                slot.state = SlotState::Filling;
                slot.referenced = false;
                slot.dirty = false;
                slot.speculative = false;
                slot.pins = 0;
                self.shards[si].map.insert(lba, g);
                if intent == Intent::DemandRead {
                    self.counters.misses += 1;
                } else if intent == Intent::Write {
                    // Write-allocate: the slot is born dirty from host data.
                    self.counters.write_absorbed += 1;
                }
                CoreLookup::Miss { slot: g, evicted }
            }
            None if dirty_seen => CoreLookup::NeedFlush,
            None => {
                if intent == Intent::DemandRead {
                    // Uncached fallback still costs an NVMe request.
                    self.counters.misses += 1;
                }
                CoreLookup::Busy
            }
        }
    }

    /// Resolves a coalesced wait on `lba` (non-blocking; the threaded
    /// wrapper loops on a condvar around `Pending`). A `Ready` block comes
    /// back pinned; `Write` intent counts the absorption.
    pub fn resolve_wait(&mut self, lba: u64, intent: Intent) -> Resolve {
        let si = self.shard_of(lba);
        match self.shards[si].map.get(&lba).copied() {
            None => Resolve::Aborted,
            Some(g) => match self.slots[g].state {
                SlotState::Resident => {
                    self.touch_resident(g);
                    if intent == Intent::Write {
                        self.counters.write_absorbed += 1;
                    }
                    Resolve::Ready { slot: g }
                }
                SlotState::Filling => Resolve::Pending,
                SlotState::Free => Resolve::Aborted,
            },
        }
    }

    /// Publishes the fill owned on slot `g` as resident and pinned.
    /// `dirty` marks slots populated from host data (write absorption)
    /// rather than from the array.
    pub fn complete_fill(&mut self, g: usize, dirty: bool) {
        let slot = &mut self.slots[g];
        debug_assert_eq!(slot.state, SlotState::Filling, "complete of a non-fill");
        slot.state = SlotState::Resident;
        slot.dirty = dirty;
        slot.referenced = true;
        slot.speculative = false;
        slot.pins = 1;
    }

    /// Publishes a speculative (readahead) fill: resident, unpinned, and
    /// flagged so the first demand access counts as a readahead hit.
    pub fn complete_fill_speculative(&mut self, g: usize) {
        let slot = &mut self.slots[g];
        debug_assert_eq!(slot.state, SlotState::Filling, "complete of a non-fill");
        slot.state = SlotState::Resident;
        slot.dirty = false;
        slot.referenced = true;
        slot.speculative = true;
        slot.pins = 0;
    }

    /// Aborts the fill owned on slot `g`: the slot is freed and unmapped;
    /// coalesced waiters observe [`Resolve::Aborted`] and fall back.
    pub fn abort_fill(&mut self, g: usize) {
        let lba = self.slots[g].lba;
        let si = self.shard_of(lba);
        self.shards[si].map.remove(&lba);
        let slot = &mut self.slots[g];
        slot.state = SlotState::Free;
        slot.dirty = false;
        slot.speculative = false;
        slot.pins = 0;
    }

    /// Releases one pin on slot `g`.
    pub fn unpin(&mut self, g: usize) {
        let slot = &mut self.slots[g];
        debug_assert!(slot.pins > 0, "unbalanced unpin");
        slot.pins = slot.pins.saturating_sub(1);
    }

    /// Marks resident slot `g` dirty (its contents now differ from the
    /// array).
    pub fn mark_dirty(&mut self, g: usize) {
        self.slots[g].dirty = true;
    }

    /// Claims up to `max` dirty, unpinned, resident slots for a flush:
    /// each comes back pinned (so eviction and concurrent flushes skip it)
    /// with its dirty bit already cleared — a racing `write_back`
    /// re-dirties the slot and the *next* flush picks it up again. Counts
    /// the claimed blocks as flushed.
    pub fn take_dirty(&mut self, max: usize) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        'shards: for s in 0..self.shards.len() {
            let (base, len) = (self.shards[s].base, self.shards[s].len);
            for g in base..base + len {
                if out.len() >= max {
                    break 'shards;
                }
                let slot = &mut self.slots[g];
                if slot.state == SlotState::Resident && slot.dirty && slot.pins == 0 {
                    slot.dirty = false;
                    slot.pins = 1;
                    out.push((g, slot.lba));
                }
            }
        }
        self.counters.flushed_blocks += out.len() as u64;
        out
    }

    /// Number of dirty resident blocks (flush-loop termination check).
    pub fn dirty_blocks(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state == SlotState::Resident && s.dirty)
            .count()
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.state == SlotState::Resident)
            .count()
    }

    /// Feeds the stream detector with a demand batch starting at
    /// `batch_start` and, when a stride is confirmed and no speculative
    /// batch is outstanding, reserves fills for the predicted window
    /// (clamped to `array_blocks`). The plan is *reserved but not
    /// committed*: call [`commit_readahead`](Self::commit_readahead) after
    /// the speculative I/O is issued, or
    /// [`abort_readahead`](Self::abort_readahead) if issuing failed.
    ///
    /// Also closes the accuracy loop on the previous committed issue —
    /// even if that batch is still outstanding, matching the threaded
    /// device's policy.
    ///
    /// Callers gating readahead on driver resources (the dedicated
    /// channel) must skip this call entirely when the gate fails, so the
    /// detector observes exactly the batches a readahead-enabled run
    /// observes.
    pub fn plan_readahead(&mut self, batch_start: u64, array_blocks: u64) -> Option<ReadaheadPlan> {
        if !self.cfg.readahead.enable {
            return None;
        }
        // Close the accuracy loop on the previous issue before predicting.
        if self.ra_last_issue > 0 {
            let acc = (self.counters.readahead_hits - self.ra_hits_at_issue) as f64
                / self.ra_last_issue as f64;
            self.ra.feedback(acc);
            self.ra_last_issue = 0;
        }
        let (pred_start, window) = self.ra.observe(batch_start)?;
        if self.ra_outstanding {
            return None; // single outstanding speculative batch
        }
        let budget = self.cfg.readahead.budget_blocks.max(1) as usize;
        let mut fills: Vec<(usize, u64)> = Vec::new();
        let mut evicted: Vec<u64> = Vec::new();
        let end = pred_start.saturating_add(window as u64).min(array_blocks);
        for lba in pred_start..end {
            if fills.len() >= budget {
                break;
            }
            if self.contains(lba) {
                continue;
            }
            match self.lookup(lba, Intent::Speculative) {
                CoreLookup::Miss { slot, evicted: ev } => {
                    fills.push((slot, lba));
                    evicted.extend(ev);
                }
                CoreLookup::Hit { slot } => self.unpin(slot),
                CoreLookup::InFlight => {}
                // Never flush or stall for speculation.
                CoreLookup::NeedFlush | CoreLookup::Busy => break,
            }
        }
        if fills.is_empty() {
            return None;
        }
        Some(ReadaheadPlan {
            pred_start,
            window,
            fills,
            evicted,
        })
    }

    /// Commits a reserved plan: the speculative I/O was issued. Counts the
    /// issue and arms the accuracy sample for the next demand batch.
    pub fn commit_readahead(&mut self, plan: &ReadaheadPlan) {
        self.counters.readahead_issued += plan.fills.len() as u64;
        self.ra_hits_at_issue = self.counters.readahead_hits;
        self.ra_last_issue = plan.fills.len() as u32;
        self.ra_outstanding = true;
    }

    /// Rolls back a reserved plan whose I/O could not be issued: every
    /// reserved fill is aborted, and nothing is counted.
    pub fn abort_readahead(&mut self, plan: &ReadaheadPlan) {
        for &(slot, _) in &plan.fills {
            self.abort_fill(slot);
        }
    }

    /// Marks the committed speculative batch as no longer outstanding
    /// (after its fills were published or aborted).
    pub fn readahead_retired(&mut self) {
        self.ra_outstanding = false;
    }

    /// Classifies one demand read batch: every access resolves to a hit
    /// (pinned and immediately unpinned, as the threaded device does after
    /// its copy-out), a reserved fill, a coalesced wait, or an uncached
    /// fallback. `NeedFlush` is resolved in-plan by claiming dirty slots
    /// ([`take_dirty`](Self::take_dirty)) and releasing them — read-only
    /// workloads never take that path (`plan.flushed` stays 0).
    pub fn plan_read_batch(&mut self, lbas: &[u64]) -> ReadBatchPlan {
        let mut plan = ReadBatchPlan::default();
        for &lba in lbas {
            loop {
                match self.lookup(lba, Intent::DemandRead) {
                    CoreLookup::Hit { slot } => {
                        self.unpin(slot);
                        plan.hits += 1;
                        break;
                    }
                    CoreLookup::Miss { slot, evicted } => {
                        plan.fills.push((slot, lba));
                        plan.evicted.extend(evicted);
                        break;
                    }
                    CoreLookup::InFlight => {
                        plan.waits.push(lba);
                        break;
                    }
                    CoreLookup::NeedFlush => {
                        let claimed = self.take_dirty(self.cfg.flush_batch.max(1));
                        if claimed.is_empty() {
                            // Cannot happen (NeedFlush implies an unpinned
                            // dirty slot), but never spin: go uncached.
                            plan.direct.push(lba);
                            break;
                        }
                        plan.flushed += claimed.len() as u64;
                        for (slot, _) in claimed {
                            self.unpin(slot);
                        }
                    }
                    CoreLookup::Busy => {
                        plan.direct.push(lba);
                        break;
                    }
                }
            }
        }
        plan
    }

    /// Publishes a retired demand batch: completes (and unpins) every
    /// reserved fill, then resolves every coalesced wait. Call only after
    /// the batch's I/O finished — and after the owning fills of any waits
    /// are resident (in the quiesced batch discipline, that is this same
    /// call).
    pub fn publish_read_batch(&mut self, plan: &ReadBatchPlan) {
        for &(slot, _) in &plan.fills {
            self.complete_fill(slot, false);
            self.unpin(slot);
        }
        for &lba in &plan.waits {
            match self.resolve_wait(lba, Intent::DemandRead) {
                Resolve::Ready { slot } => self.unpin(slot),
                // Aborted waiters re-fetch uncached — a driver decision
                // with no cache-state side effect. Pending cannot happen
                // once the batch's own fills are resident.
                Resolve::Pending | Resolve::Aborted => {}
            }
        }
    }
}

/// Replays a read-only batched workload against a fresh core with the
/// quiesced batch discipline every driver follows (each batch's demand and
/// speculative I/O fully published before the next batch's lookups), and
/// returns the decision counters — the fidelity harness's ground truth.
///
/// `readahead_over_channel` is the driver gate for the dedicated
/// speculative channel (`n_channels >= 3`); when false the detector is
/// never fed, exactly like a 2-channel threaded device.
pub fn replay_read_workload(
    cfg: CacheConfig,
    array_blocks: u64,
    readahead_over_channel: bool,
    batches: &[Vec<u64>],
) -> CacheDecisionCounters {
    let mut core = CacheCore::new(cfg);
    for lbas in batches {
        if lbas.is_empty() {
            continue;
        }
        let plan = core.plan_read_batch(lbas);
        debug_assert_eq!(plan.flushed, 0, "read-only replay flushed");
        let ra = if readahead_over_channel {
            core.plan_readahead(lbas[0], array_blocks)
        } else {
            None
        };
        if let Some(p) = &ra {
            core.commit_readahead(p);
        }
        core.publish_read_batch(&plan);
        if let Some(p) = &ra {
            for &(slot, _) in &p.fills {
                core.complete_fill_speculative(slot);
            }
            core.readahead_retired();
        }
    }
    core.counters()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(slots: usize, shards: usize) -> CacheCore {
        CacheCore::new(CacheConfig {
            slots,
            shards,
            flush_batch: 8,
            readahead: ReadaheadConfig {
                enable: false,
                ..ReadaheadConfig::default()
            },
        })
    }

    #[test]
    fn hit_miss_coalesce_counting() {
        let mut c = small(8, 1);
        let CoreLookup::Miss { slot, evicted } = c.lookup(7, Intent::DemandRead) else {
            panic!("expected miss");
        };
        assert_eq!(evicted, None);
        // Second demand access coalesces on the in-flight fill.
        assert_eq!(c.lookup(7, Intent::DemandRead), CoreLookup::InFlight);
        assert_eq!(c.resolve_wait(7, Intent::DemandRead), Resolve::Pending);
        c.complete_fill(slot, false);
        c.unpin(slot);
        let Resolve::Ready { slot: s2 } = c.resolve_wait(7, Intent::DemandRead) else {
            panic!("expected ready");
        };
        assert_eq!(s2, slot);
        c.unpin(s2);
        let CoreLookup::Hit { slot: s3 } = c.lookup(7, Intent::DemandRead) else {
            panic!("expected hit");
        };
        c.unpin(s3);
        let ctr = c.counters();
        assert_eq!(
            (ctr.hits, ctr.misses, ctr.coalesced, ctr.evictions),
            (1, 1, 1, 0)
        );
    }

    #[test]
    fn clock_evicts_unreferenced_clean_blocks_only() {
        let mut c = small(2, 1);
        for lba in 0..2 {
            let CoreLookup::Miss { slot, .. } = c.lookup(lba, Intent::DemandRead) else {
                panic!("miss");
            };
            c.complete_fill(slot, false);
            c.unpin(slot);
        }
        // Both resident+referenced: first sweep clears bits, second evicts.
        let CoreLookup::Miss { evicted, .. } = c.lookup(9, Intent::DemandRead) else {
            panic!("miss");
        };
        assert!(evicted.is_some());
        assert_eq!(c.counters().evictions, 1);
        assert_eq!(c.resident_blocks(), 1);
    }

    #[test]
    fn pinned_and_dirty_slots_resist_eviction() {
        let mut c = small(1, 1);
        let CoreLookup::Miss { slot, .. } = c.lookup(1, Intent::DemandRead) else {
            panic!("miss");
        };
        c.complete_fill(slot, false);
        // Pinned: the only slot cannot be reclaimed.
        assert_eq!(c.lookup(2, Intent::DemandRead), CoreLookup::Busy);
        c.unpin(slot);
        c.mark_dirty(slot);
        // Dirty (after the referenced bit is cleared): flush required.
        assert_eq!(c.lookup(2, Intent::DemandRead), CoreLookup::NeedFlush);
        let claimed = c.take_dirty(4);
        assert_eq!(claimed, vec![(slot, 1)]);
        assert_eq!(c.counters().flushed_blocks, 1);
        for (s, _) in claimed {
            c.unpin(s);
        }
        let CoreLookup::Miss { evicted, .. } = c.lookup(2, Intent::DemandRead) else {
            panic!("miss after flush");
        };
        assert_eq!(evicted, Some(1));
    }

    #[test]
    fn write_intent_counts_absorption_not_hits() {
        let mut c = small(8, 2);
        let CoreLookup::Miss { slot, .. } = c.lookup(3, Intent::Write) else {
            panic!("write-allocate miss");
        };
        c.complete_fill(slot, true);
        c.unpin(slot);
        let CoreLookup::Hit { slot: s } = c.lookup(3, Intent::Write) else {
            panic!("absorb hit");
        };
        c.mark_dirty(s);
        c.unpin(s);
        let ctr = c.counters();
        assert_eq!(ctr.write_absorbed, 2);
        assert_eq!((ctr.hits, ctr.misses), (0, 0));
        assert_eq!(c.dirty_blocks(), 1);
    }

    #[test]
    fn aborted_fill_unmaps_and_waiters_fall_back() {
        let mut c = small(4, 1);
        let CoreLookup::Miss { slot, .. } = c.lookup(5, Intent::DemandRead) else {
            panic!("miss");
        };
        assert_eq!(c.lookup(5, Intent::DemandRead), CoreLookup::InFlight);
        c.abort_fill(slot);
        assert_eq!(c.resolve_wait(5, Intent::DemandRead), Resolve::Aborted);
        assert!(!c.contains(5));
    }

    #[test]
    fn speculative_fill_counts_hit_on_first_demand_access() {
        let mut c = small(8, 1);
        let CoreLookup::Miss { slot, .. } = c.lookup(11, Intent::Speculative) else {
            panic!("speculative miss");
        };
        c.complete_fill_speculative(slot);
        let before = c.counters();
        assert_eq!(
            (before.hits, before.misses, before.readahead_hits),
            (0, 0, 0)
        );
        let CoreLookup::Hit { slot: s } = c.lookup(11, Intent::DemandRead) else {
            panic!("demand hit");
        };
        c.unpin(s);
        let after = c.counters();
        assert_eq!((after.hits, after.readahead_hits), (1, 1));
        // The flag clears: a second access is a plain hit.
        let CoreLookup::Hit { slot: s } = c.lookup(11, Intent::DemandRead) else {
            panic!("plain hit");
        };
        c.unpin(s);
        assert_eq!(c.counters().readahead_hits, 1);
    }

    fn ra_core(slots: usize) -> CacheCore {
        CacheCore::new(CacheConfig {
            slots,
            shards: 2,
            flush_batch: 8,
            readahead: ReadaheadConfig::default(),
        })
    }

    #[test]
    fn readahead_plan_commit_feedback_cycle() {
        let mut c = ra_core(256);
        assert!(c.plan_readahead(0, 1 << 20).is_none());
        assert!(c.plan_readahead(16, 1 << 20).is_none());
        let plan = c.plan_readahead(32, 1 << 20).expect("stride confirmed");
        assert_eq!(plan.pred_start, 48);
        assert_eq!(plan.fills.len(), plan.window as usize);
        c.commit_readahead(&plan);
        assert_eq!(c.counters().readahead_issued, plan.fills.len() as u64);
        for &(slot, _) in &plan.fills {
            c.complete_fill_speculative(slot);
        }
        c.readahead_retired();
        // Every speculative block serves a demand hit; the accuracy sample
        // closes at the next plan call → window grows.
        let w0 = c.readahead_window();
        for &(_, lba) in &plan.fills {
            let CoreLookup::Hit { slot } = c.lookup(lba, Intent::DemandRead) else {
                panic!("speculative block resident");
            };
            c.unpin(slot);
        }
        let next = c.plan_readahead(48, 1 << 20).expect("stride still held");
        assert!(next.window > w0, "window grew on perfect accuracy");
        c.abort_readahead(&next);
    }

    #[test]
    fn single_outstanding_speculative_batch() {
        let mut c = ra_core(256);
        c.plan_readahead(0, 1 << 20);
        c.plan_readahead(16, 1 << 20);
        let plan = c.plan_readahead(32, 1 << 20).expect("plan");
        c.commit_readahead(&plan);
        // Outstanding batch: the detector still observes, but no new plan
        // is reserved until the committed one retires.
        assert!(c.plan_readahead(48, 1 << 20).is_none());
        for &(slot, _) in &plan.fills {
            c.complete_fill_speculative(slot);
        }
        c.readahead_retired();
        assert!(c.plan_readahead(64, 1 << 20).is_some());
    }

    #[test]
    fn readahead_abort_frees_reserved_slots() {
        let mut c = ra_core(64);
        c.plan_readahead(0, 1 << 20);
        c.plan_readahead(8, 1 << 20);
        let plan = c.plan_readahead(16, 1 << 20).expect("plan");
        let issued_before = c.counters().readahead_issued;
        c.abort_readahead(&plan);
        assert_eq!(c.counters().readahead_issued, issued_before);
        for &(_, lba) in &plan.fills {
            assert!(!c.contains(lba), "aborted fill still mapped");
        }
    }

    #[test]
    fn readahead_clamps_to_array_end() {
        let mut c = ra_core(64);
        c.plan_readahead(0, 40);
        c.plan_readahead(8, 40);
        let plan = c.plan_readahead(16, 40).expect("plan");
        assert!(plan.fills.iter().all(|&(_, lba)| lba < 40));
        c.abort_readahead(&plan);
    }

    #[test]
    fn replay_is_deterministic_and_counts_everything() {
        let batches: Vec<Vec<u64>> = (0..12)
            .map(|i| {
                if i % 5 == 4 {
                    // Revisit the first window: hits (and readahead hits).
                    (0..16).collect()
                } else {
                    (i * 16..(i + 1) * 16).collect()
                }
            })
            .collect();
        let cfg = CacheConfig {
            slots: 64,
            shards: 4,
            flush_batch: 8,
            readahead: ReadaheadConfig::default(),
        };
        let a = replay_read_workload(cfg, 1 << 20, true, &batches);
        let b = replay_read_workload(cfg, 1 << 20, true, &batches);
        assert_eq!(a, b);
        assert!(a.hits > 0 && a.misses > 0 && a.evictions > 0);
        assert!(a.readahead_issued > 0);
        let no_ra = replay_read_workload(cfg, 1 << 20, false, &batches);
        assert_eq!(no_ra.readahead_issued, 0);
        assert_eq!(no_ra.readahead_hits, 0);
    }

    // ---- ReadaheadCore (moved verbatim from cam-cache) ----

    fn engine() -> ReadaheadCore {
        ReadaheadCore::new(ReadaheadConfig::default())
    }

    #[test]
    fn sequential_stream_predicts_after_two_stable_strides() {
        let mut ra = engine();
        assert_eq!(ra.observe(0), None); // first batch: nothing to compare
        assert_eq!(ra.observe(32), None); // stride 32 seen once
        let (start, blocks) = ra.observe(64).expect("stride confirmed");
        assert_eq!(start, 96);
        assert_eq!(blocks, ra.window());
        // The stream keeps predicting as long as the stride holds.
        assert_eq!(ra.observe(96).map(|p| p.0), Some(128));
    }

    #[test]
    fn strided_stream_is_detected_and_random_breaks_it() {
        let mut ra = engine();
        ra.observe(10);
        ra.observe(110);
        assert_eq!(ra.observe(210).map(|p| p.0), Some(310));
        // A random jump resets confirmation.
        assert_eq!(ra.observe(5000), None);
        assert_eq!(ra.observe(5100), None);
        assert_eq!(ra.observe(5200).map(|p| p.0), Some(5300));
    }

    #[test]
    fn window_adapts_within_bounds() {
        let cfg = ReadaheadConfig {
            min_window: 4,
            initial_window: 8,
            max_window: 32,
            ..ReadaheadConfig::default()
        };
        let mut ra = ReadaheadCore::new(cfg);
        ra.feedback(1.0);
        assert_eq!(ra.window(), 16);
        ra.feedback(0.9);
        ra.feedback(0.9);
        assert_eq!(ra.window(), 32); // clamped at max
        ra.feedback(0.5);
        assert_eq!(ra.window(), 32); // mid accuracy: unchanged
        ra.feedback(0.0);
        ra.feedback(0.0);
        ra.feedback(0.0);
        ra.feedback(0.0);
        assert_eq!(ra.window(), 4); // clamped at min
    }

    #[test]
    fn descending_and_repeated_streams_never_predict() {
        let mut ra = engine();
        ra.observe(300);
        ra.observe(200);
        assert_eq!(ra.observe(100), None); // stable but descending
        let mut ra = engine();
        ra.observe(50);
        ra.observe(50);
        assert_eq!(ra.observe(50), None); // zero stride (repeats = cache hits)
    }
}
