//! The clock abstraction: the only way time enters the protocol.
//!
//! Protocol state machines never read time themselves — every `now_ns`
//! they see is handed in by a driver, and drivers get theirs from a
//! [`Clock`]. The threaded shell implements it over the monotonic
//! wall-clock telemetry timeline; the DES driver uses [`VirtualClock`],
//! advanced in lockstep with the simulator's event calendar. Same protocol
//! decisions, two notions of "now".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonic nanosecond timeline.
///
/// `Send + Sync` so one clock can be shared by a poller and many workers
/// (the threaded driver) or held single-threaded (the DES driver).
pub trait Clock: Send + Sync {
    /// Nanoseconds since the timeline's epoch.
    fn now_ns(&self) -> u64;
}

/// A manually-advanced clock for discrete-event (virtual-time) drivers.
///
/// Clones share the same underlying instant, so a driver can hand the
/// clock to protocol-adjacent helpers and keep advancing it from the
/// event loop.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock(Arc<AtomicU64>);

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock to `ns`. Never moves backwards: discrete-event
    /// calendars can deliver same-instant events in any order, and a
    /// protocol timeline must stay monotone.
    pub fn set_ns(&self, ns: u64) {
        self.0.fetch_max(ns, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_monotone_and_shared() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        let c2 = c.clone();
        c.set_ns(500);
        assert_eq!(c2.now_ns(), 500, "clones share the instant");
        c2.set_ns(300);
        assert_eq!(c.now_ns(), 500, "never moves backwards");
        c.set_ns(501);
        assert_eq!(c.now_ns(), 501);
    }
}
