//! Property-based tests for block-storage invariants.

use std::sync::Arc;

use cam_blockdev::{
    BlockGeometry, BlockStore, Extent, ExtentAllocator, Lba, Raid0, SparseMemStore,
};
use proptest::prelude::*;

proptest! {
    /// Read-after-write returns exactly what was written, for arbitrary
    /// interleavings of block-aligned writes.
    #[test]
    fn store_read_after_write(
        writes in proptest::collection::vec((0u64..512, 1u64..8, 0u8..255), 1..40)
    ) {
        let s = SparseMemStore::new(BlockGeometry::new(512, 1024));
        // Model: byte-accurate shadow of the store.
        let mut shadow = vec![0u8; 1024 * 512];
        for (lba, count, fill) in &writes {
            let lba = *lba % (1024 - *count); // keep in range
            let buf = vec![*fill; (*count * 512) as usize];
            s.write(Lba(lba), &buf).unwrap();
            shadow[(lba * 512) as usize..((lba + count) * 512) as usize].fill(*fill);
        }
        let mut out = vec![0u8; shadow.len()];
        s.read(Lba(0), &mut out).unwrap();
        prop_assert_eq!(out, shadow);
    }

    /// The RAID-0 address map is a bijection: distinct array LBAs never map
    /// to the same (member, member-LBA) pair, and mapped LBAs stay in range.
    #[test]
    fn raid0_map_bijective(n in 1usize..8, stripe in 1u64..16) {
        let children: Vec<Arc<dyn BlockStore>> = (0..n)
            .map(|_| Arc::new(SparseMemStore::new(BlockGeometry::new(512, 256)))
                as Arc<dyn BlockStore>)
            .collect();
        let r = Raid0::new(children, stripe);
        let blocks = r.geometry().blocks.min(2048);
        let mut seen = std::collections::HashSet::new();
        for lba in 0..blocks {
            let (child, clba) = r.map(Lba(lba));
            prop_assert!(child < n);
            prop_assert!(clba.index() < 256);
            prop_assert!(seen.insert((child, clba.index())), "collision at {}", lba);
        }
    }

    /// The RAID-0 stripe map round-trips: reconstructing the array LBA from
    /// the (member, member-LBA) pair the map produced always recovers the
    /// original address — the forward map and its inverse agree.
    #[test]
    fn raid0_map_round_trips(n in 1usize..8, stripe in 1u64..16) {
        let children: Vec<Arc<dyn BlockStore>> = (0..n)
            .map(|_| Arc::new(SparseMemStore::new(BlockGeometry::new(512, 256)))
                as Arc<dyn BlockStore>)
            .collect();
        let r = Raid0::new(children, stripe);
        let blocks = r.geometry().blocks.min(2048);
        for lba in 0..blocks {
            let (child, clba) = r.map(Lba(lba));
            // Inverse of the stripe math: member stripe index back to the
            // array stripe index, plus the within-stripe offset.
            let within = clba.index() % stripe;
            let child_stripe = clba.index() / stripe;
            let array_stripe = child_stripe * n as u64 + child as u64;
            let back = array_stripe * stripe + within;
            prop_assert_eq!(back, lba, "map({}) = ({}, {}) did not invert", lba, child, clba.index());
        }
    }

    /// RAID-0 behaves exactly like one flat store for any aligned access.
    #[test]
    fn raid0_equals_flat_store(
        n in 1usize..5,
        stripe in 1u64..8,
        ops in proptest::collection::vec((0u64..256, 1u64..16, 0u8..255), 1..30)
    ) {
        let children: Vec<Arc<dyn BlockStore>> = (0..n)
            .map(|_| Arc::new(SparseMemStore::new(BlockGeometry::new(512, 512)))
                as Arc<dyn BlockStore>)
            .collect();
        let r = Raid0::new(children, stripe);
        let flat = SparseMemStore::new(BlockGeometry::new(512, r.geometry().blocks));
        let cap = r.geometry().blocks;
        for (lba, count, fill) in &ops {
            let count = (*count).min(cap - 1);
            let lba = *lba % (cap - count);
            let buf = vec![*fill; (count * 512) as usize];
            r.write(Lba(lba), &buf).unwrap();
            flat.write(Lba(lba), &buf).unwrap();
            let mut a = vec![0u8; buf.len()];
            let mut b = vec![0u8; buf.len()];
            r.read(Lba(lba), &mut a).unwrap();
            flat.read(Lba(lba), &mut b).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    /// The extent allocator never hands out overlapping extents and its
    /// accounting (allocated + free = total) always balances.
    #[test]
    fn extents_never_overlap(ops in proptest::collection::vec(prop_oneof![
        (1u64..64).prop_map(|n| (true, n)),   // alloc of size n
        (0u64..32).prop_map(|i| (false, i)),  // free the i-th live extent
    ], 1..100)) {
        let mut a = ExtentAllocator::new(1024);
        let mut live: Vec<Extent> = Vec::new();
        for (is_alloc, arg) in ops {
            if is_alloc {
                if let Some(e) = a.alloc(arg) {
                    for other in &live {
                        prop_assert!(!e.overlaps(other), "{:?} overlaps {:?}", e, other);
                    }
                    live.push(e);
                }
            } else if !live.is_empty() {
                let e = live.swap_remove(arg as usize % live.len());
                a.free(e);
            }
            let live_blocks: u64 = live.iter().map(|e| e.blocks).sum();
            prop_assert_eq!(a.allocated_blocks(), live_blocks);
            prop_assert_eq!(a.free_blocks() + a.allocated_blocks(), a.total_blocks());
        }
        // Freeing everything restores a single fully-coalesced run.
        for e in live.drain(..) {
            a.free(e);
        }
        prop_assert_eq!(a.fragments(), 1);
        prop_assert!(a.alloc(1024).is_some());
    }
}
