//! [`FaultyStore`] — deterministic fault injection for failure-path tests.
//!
//! Wraps any [`BlockStore`] and fails a configurable subset of accesses.
//! Used to verify that every storage management surfaces device errors
//! instead of silently corrupting data, and that CAM's channels recover
//! after a failed batch (`CamError::Io` then clean subsequent batches).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use cam_telemetry::{Counter, EventKind, FlightRecorder, MetricsRegistry};
use parking_lot::Mutex;

use crate::lba::{BlockGeometry, Lba};
use crate::store::{BlockError, BlockStore};

/// Which operations a fault rule applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Fail reads only.
    Read,
    /// Fail writes only.
    Write,
    /// Fail both directions.
    Both,
}

/// Whether an injected fault clears on retry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultMode {
    /// The fault never clears: every matching access fails with a
    /// non-retryable error ([`BlockError::Media`] with `transient: false`).
    Permanent,
    /// The fault clears after `fail_times` failed attempts per `(lba,
    /// direction)` pair; retries beyond that succeed. `u32::MAX` models a
    /// stuck-but-nominally-transient command that only a deadline can end.
    Transient {
        /// Failed attempts before the access starts succeeding.
        fail_times: u32,
    },
}

/// Deterministic fault policy.
#[derive(Clone, Copy, Debug)]
pub struct FaultPolicy {
    /// Operations affected.
    pub kind: FaultKind,
    /// Fail every access whose first LBA falls in `[from, to)`.
    pub lba_range: (u64, u64),
    /// Additionally fail every `every`-th matching access (1 = all).
    pub every: u64,
    /// Whether injected faults clear on retry.
    pub mode: FaultMode,
}

impl FaultPolicy {
    /// Fails every read in the LBA range, permanently.
    pub fn reads_in(from: u64, to: u64) -> Self {
        FaultPolicy {
            kind: FaultKind::Read,
            lba_range: (from, to),
            every: 1,
            mode: FaultMode::Permanent,
        }
    }

    /// Fails every write in the LBA range, permanently.
    pub fn writes_in(from: u64, to: u64) -> Self {
        FaultPolicy {
            kind: FaultKind::Write,
            lba_range: (from, to),
            every: 1,
            mode: FaultMode::Permanent,
        }
    }

    /// Fails the first `fail_times` read attempts of every block in the LBA
    /// range with a transient media error, then lets retries through.
    pub fn transient_reads_in(from: u64, to: u64, fail_times: u32) -> Self {
        FaultPolicy {
            kind: FaultKind::Read,
            lba_range: (from, to),
            every: 1,
            mode: FaultMode::Transient { fail_times },
        }
    }

    /// Fails the first `fail_times` write attempts of every block in the LBA
    /// range with a transient media error, then lets retries through.
    pub fn transient_writes_in(from: u64, to: u64, fail_times: u32) -> Self {
        FaultPolicy {
            kind: FaultKind::Write,
            lba_range: (from, to),
            every: 1,
            mode: FaultMode::Transient { fail_times },
        }
    }
}

/// A [`BlockStore`] wrapper that injects [`BlockError::OutOfRange`]-class
/// failures per a [`FaultPolicy`]. Counts injected faults.
pub struct FaultyStore {
    inner: Arc<dyn BlockStore>,
    policy: FaultPolicy,
    matches: AtomicU64,
    injected: AtomicU64,
    /// Transient mode: failed-attempt count per `(lba, is_read)` pair.
    attempts: Mutex<HashMap<(u64, bool), u32>>,
    /// Telemetry: mirrors `injected` into a registry counter once attached.
    injected_metric: OnceLock<Counter>,
    /// Event layer: emits a [`EventKind::FaultInjected`] per injection once
    /// attached.
    recorder: OnceLock<Arc<FlightRecorder>>,
}

impl FaultyStore {
    /// Wraps `inner` with the policy.
    pub fn new(inner: Arc<dyn BlockStore>, policy: FaultPolicy) -> Self {
        assert!(policy.every >= 1);
        FaultyStore {
            inner,
            policy,
            matches: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            attempts: Mutex::new(HashMap::new()),
            injected_metric: OnceLock::new(),
            recorder: OnceLock::new(),
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Registers `cam_fault_injected_total` in `reg` and counts every
    /// injected fault from now on. One-shot; later calls are ignored.
    pub fn attach_telemetry(&self, reg: &MetricsRegistry) {
        let _ = self
            .injected_metric
            .set(reg.counter("cam_fault_injected_total"));
    }

    /// Event layer: emits a fault event per injection into `rec` from now
    /// on (timestamped at the injection site, so post-mortem dumps show the
    /// fault in sequence with the batch that absorbed it). One-shot; later
    /// calls are ignored.
    pub fn attach_recorder(&self, rec: Arc<FlightRecorder>) {
        let _ = self.recorder.set(rec);
    }

    fn should_fail(&self, lba: Lba, is_read: bool) -> bool {
        let dir_match = match self.policy.kind {
            FaultKind::Read => is_read,
            FaultKind::Write => !is_read,
            FaultKind::Both => true,
        };
        if !dir_match
            || lba.index() < self.policy.lba_range.0
            || lba.index() >= self.policy.lba_range.1
        {
            return false;
        }
        let fail = match self.policy.mode {
            FaultMode::Permanent => {
                let n = self.matches.fetch_add(1, Ordering::Relaxed);
                n.is_multiple_of(self.policy.every)
            }
            FaultMode::Transient { fail_times } => {
                let mut attempts = self.attempts.lock();
                let seen = attempts.entry((lba.index(), is_read)).or_insert(0);
                if *seen < fail_times {
                    *seen = seen.saturating_add(1);
                    true
                } else {
                    false
                }
            }
        };
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = self.injected_metric.get() {
                c.inc();
            }
            if let Some(rec) = self.recorder.get() {
                rec.emit(EventKind::FaultInjected {
                    lba: lba.index(),
                    read: is_read,
                });
            }
        }
        fail
    }

    fn fault(&self, lba: Lba, len: usize) -> BlockError {
        match self.policy.mode {
            // Media error surfaced as an addressing failure: the command
            // layer maps any BlockError to a failed completion status.
            FaultMode::Permanent => BlockError::OutOfRange {
                lba,
                count: (len / self.inner.geometry().block_size as usize) as u64,
                blocks: self.inner.geometry().blocks,
            },
            FaultMode::Transient { .. } => BlockError::Media {
                lba,
                transient: true,
            },
        }
    }
}

impl BlockStore for FaultyStore {
    fn geometry(&self) -> BlockGeometry {
        self.inner.geometry()
    }

    fn read(&self, lba: Lba, buf: &mut [u8]) -> Result<(), BlockError> {
        if self.should_fail(lba, true) {
            return Err(self.fault(lba, buf.len()));
        }
        self.inner.read(lba, buf)
    }

    fn write(&self, lba: Lba, buf: &[u8]) -> Result<(), BlockError> {
        if self.should_fail(lba, false) {
            return Err(self.fault(lba, buf.len()));
        }
        self.inner.write(lba, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SparseMemStore;

    fn wrapped(policy: FaultPolicy) -> FaultyStore {
        let inner: Arc<dyn BlockStore> =
            Arc::new(SparseMemStore::new(BlockGeometry::new(512, 1024)));
        FaultyStore::new(inner, policy)
    }

    #[test]
    fn reads_fail_in_range_writes_pass() {
        let s = wrapped(FaultPolicy::reads_in(10, 20));
        let mut buf = vec![0u8; 512];
        s.write(Lba(15), &buf).unwrap();
        assert!(s.read(Lba(15), &mut buf).is_err());
        assert!(s.read(Lba(9), &mut buf).is_ok());
        assert!(s.read(Lba(20), &mut buf).is_ok());
        assert_eq!(s.injected(), 1);
    }

    #[test]
    fn every_nth_failure() {
        let s = wrapped(FaultPolicy {
            kind: FaultKind::Read,
            lba_range: (0, 1024),
            every: 3,
            mode: FaultMode::Permanent,
        });
        let mut buf = vec![0u8; 512];
        let mut failures = 0;
        for i in 0..9 {
            if s.read(Lba(i), &mut buf).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
        assert_eq!(s.injected(), 3);
    }

    #[test]
    fn injected_faults_reach_the_registry() {
        let s = wrapped(FaultPolicy::reads_in(0, 4));
        let reg = MetricsRegistry::new();
        s.attach_telemetry(&reg);
        let mut buf = vec![0u8; 512];
        for i in 0..8 {
            let _ = s.read(Lba(i), &mut buf);
        }
        assert_eq!(s.injected(), 4);
        assert_eq!(reg.snapshot().counter("cam_fault_injected_total"), 4);
        // A second attach is a no-op: the original counter keeps counting.
        let reg2 = MetricsRegistry::new();
        s.attach_telemetry(&reg2);
        let _ = s.read(Lba(0), &mut buf);
        assert_eq!(reg.snapshot().counter("cam_fault_injected_total"), 5);
        assert_eq!(reg2.snapshot().counter("cam_fault_injected_total"), 0);
    }

    #[test]
    fn transient_faults_clear_after_fail_times_attempts() {
        let s = wrapped(FaultPolicy::transient_reads_in(0, 8, 2));
        let mut buf = vec![0u8; 512];
        // First two attempts on the same block fail transiently, then clear.
        assert_eq!(
            s.read(Lba(3), &mut buf),
            Err(BlockError::Media {
                lba: Lba(3),
                transient: true
            })
        );
        assert!(s.read(Lba(3), &mut buf).is_err());
        assert!(s.read(Lba(3), &mut buf).is_ok());
        assert!(s.read(Lba(3), &mut buf).is_ok());
        // Attempt counters are per block: a different LBA starts fresh.
        assert!(s.read(Lba(4), &mut buf).is_err());
        assert_eq!(s.injected(), 3);
        // Writes are unaffected by a read-only transient policy.
        assert!(s.write(Lba(3), &buf).is_ok());
    }

    #[test]
    fn stuck_transient_fault_never_clears() {
        let s = wrapped(FaultPolicy::transient_reads_in(0, 8, u32::MAX));
        let mut buf = vec![0u8; 512];
        for _ in 0..16 {
            assert!(s.read(Lba(1), &mut buf).is_err());
        }
        assert_eq!(s.injected(), 16);
    }

    #[test]
    fn write_faults_do_not_corrupt_media() {
        let s = wrapped(FaultPolicy::writes_in(0, 5));
        let mut buf = vec![7u8; 512];
        assert!(s.write(Lba(2), &buf).is_err());
        s.read(Lba(2), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "failed write must not land");
    }
}
