//! [`Raid0`] — stripe aggregation across block stores.
//!
//! The paper's POSIX baseline presents 12 SSDs as one RAID-0 array
//! ("we create a widely adopted method of RAID 0 array to support multiple
//! SSDs because POSIX I/O doesn't support varying SSD numbers", § IV-B).
//! CAM itself also stripes datasets across SSDs; this type provides the
//! address math for both.

use std::sync::Arc;

use crate::lba::{BlockGeometry, Lba};
use crate::store::{BlockError, BlockStore};

/// A RAID-0 (striping) view over equal-geometry child stores.
pub struct Raid0 {
    children: Vec<Arc<dyn BlockStore>>,
    stripe_blocks: u64,
    geometry: BlockGeometry,
}

impl Raid0 {
    /// Builds a stripe set. All children must share a block size; the array
    /// capacity is `n × min(child blocks)` rounded down to whole stripes.
    ///
    /// # Panics
    /// If `children` is empty, `stripe_blocks` is zero, or block sizes differ.
    pub fn new(children: Vec<Arc<dyn BlockStore>>, stripe_blocks: u64) -> Self {
        assert!(!children.is_empty(), "RAID-0 needs at least one member");
        assert!(stripe_blocks > 0, "stripe size must be at least one block");
        let block_size = children[0].geometry().block_size;
        let mut min_blocks = u64::MAX;
        for c in &children {
            let g = c.geometry();
            assert_eq!(
                g.block_size, block_size,
                "RAID-0 members must share a block size"
            );
            min_blocks = min_blocks.min(g.blocks);
        }
        let usable_per_child = (min_blocks / stripe_blocks) * stripe_blocks;
        let geometry = BlockGeometry::new(block_size, usable_per_child * children.len() as u64);
        Raid0 {
            children,
            stripe_blocks,
            geometry,
        }
    }

    /// Number of member stores.
    pub fn width(&self) -> usize {
        self.children.len()
    }

    /// Maps an array LBA to `(member index, member LBA)`.
    pub fn map(&self, lba: Lba) -> (usize, Lba) {
        let stripe = lba.0 / self.stripe_blocks;
        let within = lba.0 % self.stripe_blocks;
        let child = (stripe % self.children.len() as u64) as usize;
        let child_stripe = stripe / self.children.len() as u64;
        (child, Lba(child_stripe * self.stripe_blocks + within))
    }

    /// Splits an access into per-member contiguous runs and applies `f`.
    fn for_each_run(
        &self,
        lba: Lba,
        count: u64,
        mut f: impl FnMut(usize, Lba, u64, usize) -> Result<(), BlockError>,
    ) -> Result<(), BlockError> {
        let mut done = 0u64;
        while done < count {
            let cur = lba + done;
            let (child, child_lba) = self.map(cur);
            let left_in_stripe = self.stripe_blocks - cur.0 % self.stripe_blocks;
            let run = left_in_stripe.min(count - done);
            f(child, child_lba, run, done as usize)?;
            done += run;
        }
        Ok(())
    }
}

impl BlockStore for Raid0 {
    fn geometry(&self) -> BlockGeometry {
        self.geometry
    }

    fn read(&self, lba: Lba, buf: &mut [u8]) -> Result<(), BlockError> {
        self.check_access(lba, buf.len())?;
        let bs = self.geometry.block_size as usize;
        let count = (buf.len() / bs) as u64;
        self.for_each_run(lba, count, |child, child_lba, run, off_blocks| {
            let s = off_blocks * bs;
            let e = s + run as usize * bs;
            self.children[child].read(child_lba, &mut buf[s..e])
        })
    }

    fn write(&self, lba: Lba, buf: &[u8]) -> Result<(), BlockError> {
        self.check_access(lba, buf.len())?;
        let bs = self.geometry.block_size as usize;
        let count = (buf.len() / bs) as u64;
        self.for_each_run(lba, count, |child, child_lba, run, off_blocks| {
            let s = off_blocks * bs;
            let e = s + run as usize * bs;
            self.children[child].write(child_lba, &buf[s..e])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SparseMemStore;

    fn array(n: usize, stripe: u64) -> Raid0 {
        let children: Vec<Arc<dyn BlockStore>> = (0..n)
            .map(|_| {
                Arc::new(SparseMemStore::new(BlockGeometry::new(512, 4096))) as Arc<dyn BlockStore>
            })
            .collect();
        Raid0::new(children, stripe)
    }

    #[test]
    fn geometry_is_sum_of_usable() {
        let r = array(4, 8);
        assert_eq!(r.geometry().blocks, 4 * 4096);
        assert_eq!(r.width(), 4);
    }

    #[test]
    fn capacity_rounds_down_to_stripes() {
        let a: Arc<dyn BlockStore> = Arc::new(SparseMemStore::new(BlockGeometry::new(512, 100)));
        let b: Arc<dyn BlockStore> = Arc::new(SparseMemStore::new(BlockGeometry::new(512, 97)));
        let r = Raid0::new(vec![a, b], 8);
        // min(100, 97) = 97 → 96 usable per member → 192 total.
        assert_eq!(r.geometry().blocks, 192);
    }

    #[test]
    fn mapping_round_robins_stripes() {
        let r = array(3, 4);
        assert_eq!(r.map(Lba(0)), (0, Lba(0)));
        assert_eq!(r.map(Lba(3)), (0, Lba(3)));
        assert_eq!(r.map(Lba(4)), (1, Lba(0)));
        assert_eq!(r.map(Lba(8)), (2, Lba(0)));
        assert_eq!(r.map(Lba(12)), (0, Lba(4)));
        assert_eq!(r.map(Lba(13)), (0, Lba(5)));
    }

    #[test]
    fn read_after_write_across_stripe_boundaries() {
        let r = array(3, 4);
        let data: Vec<u8> = (0..512 * 11).map(|i| (i % 247) as u8).collect();
        r.write(Lba(2), &data).unwrap();
        let mut out = vec![0u8; data.len()];
        r.read(Lba(2), &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn members_see_only_their_share() {
        let children: Vec<Arc<SparseMemStore>> = (0..2)
            .map(|_| Arc::new(SparseMemStore::new(BlockGeometry::new(512, 1024))))
            .collect();
        let dyns: Vec<Arc<dyn BlockStore>> = children
            .iter()
            .map(|c| Arc::clone(c) as Arc<dyn BlockStore>)
            .collect();
        let r = Raid0::new(dyns, 2);
        // Write 8 blocks = 4 stripes, alternating members, 2 stripes each.
        r.write(Lba(0), &vec![7u8; 512 * 8]).unwrap();
        assert_eq!(children[0].resident_blocks(), 4);
        assert_eq!(children[1].resident_blocks(), 4);
    }

    #[test]
    fn out_of_range_rejected() {
        let r = array(2, 4);
        let mut buf = vec![0u8; 512];
        assert!(r.read(Lba(2 * 4096), &mut buf).is_err());
    }

    #[test]
    #[should_panic(expected = "share a block size")]
    fn mixed_block_sizes_rejected() {
        let a: Arc<dyn BlockStore> = Arc::new(SparseMemStore::new(BlockGeometry::new(512, 100)));
        let b: Arc<dyn BlockStore> = Arc::new(SparseMemStore::new(BlockGeometry::new(4096, 100)));
        Raid0::new(vec![a, b], 8);
    }
}
