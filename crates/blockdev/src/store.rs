//! The [`BlockStore`] trait and the sparse in-memory implementation that
//! stands in for multi-terabyte SSD media.

use std::collections::HashMap;
use std::fmt;

use parking_lot::Mutex;

use crate::lba::{BlockGeometry, Lba};

/// Errors from block-store operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockError {
    /// The addressed range falls outside the store.
    OutOfRange {
        /// First block of the attempted access.
        lba: Lba,
        /// Number of blocks in the attempted access.
        count: u64,
        /// Store capacity in blocks.
        blocks: u64,
    },
    /// The buffer length is not a nonzero multiple of the block size.
    BadBuffer {
        /// Buffer length supplied.
        len: usize,
        /// Store block size.
        block_size: u32,
    },
    /// The media failed the access (injected by [`crate::FaultyStore`]).
    /// Transient media errors clear on a later attempt; permanent ones
    /// never do.
    Media {
        /// First block of the failed access.
        lba: Lba,
        /// Whether a retry of the same access may succeed.
        transient: bool,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfRange { lba, count, blocks } => {
                write!(f, "{count} blocks at {lba} exceed capacity {blocks}")
            }
            BlockError::BadBuffer { len, block_size } => {
                write!(
                    f,
                    "buffer of {len} bytes is not a nonzero multiple of block size {block_size}"
                )
            }
            BlockError::Media { lba, transient } => {
                let class = if *transient { "transient" } else { "permanent" };
                write!(f, "{class} media error at {lba}")
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// Raw block storage: whole-block reads and writes, no filesystem.
///
/// Implementations must be thread-safe; simulated NVMe devices service
/// queues from their own threads while workloads touch other ranges.
pub trait BlockStore: Send + Sync {
    /// Block size and capacity.
    fn geometry(&self) -> BlockGeometry;

    /// Reads `buf.len() / block_size` blocks starting at `lba`.
    /// Blocks never written read as zeroes.
    fn read(&self, lba: Lba, buf: &mut [u8]) -> Result<(), BlockError>;

    /// Writes `buf.len() / block_size` blocks starting at `lba`.
    fn write(&self, lba: Lba, buf: &[u8]) -> Result<(), BlockError>;

    /// Validates an access and returns its block count.
    fn check_access(&self, lba: Lba, len: usize) -> Result<u64, BlockError> {
        let g = self.geometry();
        if len == 0 || !len.is_multiple_of(g.block_size as usize) {
            return Err(BlockError::BadBuffer {
                len,
                block_size: g.block_size,
            });
        }
        let count = (len / g.block_size as usize) as u64;
        if !g.contains(lba, count) {
            return Err(BlockError::OutOfRange {
                lba,
                count,
                blocks: g.blocks,
            });
        }
        Ok(count)
    }
}

/// A sparse, sharded, thread-safe in-memory block store.
///
/// Only blocks that have been written consume memory, so a simulated
/// 3.84 TB P5510 namespace costs nothing until data lands on it. Shard
/// locks keep concurrent device threads off each other's necks.
pub struct SparseMemStore {
    geometry: BlockGeometry,
    shards: Vec<Mutex<HashMap<u64, Box<[u8]>>>>,
    shard_mask: u64,
}

impl SparseMemStore {
    /// Default number of lock shards (power of two).
    const SHARDS: usize = 64;

    /// Creates an empty store with the given geometry.
    pub fn new(geometry: BlockGeometry) -> Self {
        let shards = (0..Self::SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect();
        SparseMemStore {
            geometry,
            shards,
            shard_mask: (Self::SHARDS - 1) as u64,
        }
    }

    /// Convenience constructor: 4 KiB blocks, `bytes` total capacity.
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        Self::new(BlockGeometry::with_capacity_bytes(4096, bytes))
    }

    #[inline]
    fn shard(&self, block: u64) -> &Mutex<HashMap<u64, Box<[u8]>>> {
        // Mix the low bits a little so striped access doesn't hammer one shard.
        &self.shards[((block ^ (block >> 7)) & self.shard_mask) as usize]
    }

    /// Number of blocks currently materialized in memory.
    pub fn resident_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

impl BlockStore for SparseMemStore {
    fn geometry(&self) -> BlockGeometry {
        self.geometry
    }

    fn read(&self, lba: Lba, buf: &mut [u8]) -> Result<(), BlockError> {
        let count = self.check_access(lba, buf.len())?;
        let bs = self.geometry.block_size as usize;
        for i in 0..count {
            let block = lba.0 + i;
            let dst = &mut buf[i as usize * bs..(i as usize + 1) * bs];
            match self.shard(block).lock().get(&block) {
                Some(data) => dst.copy_from_slice(data),
                None => dst.fill(0),
            }
        }
        Ok(())
    }

    fn write(&self, lba: Lba, buf: &[u8]) -> Result<(), BlockError> {
        let count = self.check_access(lba, buf.len())?;
        let bs = self.geometry.block_size as usize;
        for i in 0..count {
            let block = lba.0 + i;
            let src = &buf[i as usize * bs..(i as usize + 1) * bs];
            self.shard(block)
                .lock()
                .insert(block, src.to_vec().into_boxed_slice());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn store() -> SparseMemStore {
        SparseMemStore::new(BlockGeometry::new(512, 1000))
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let s = store();
        let mut buf = vec![0xAAu8; 1024];
        s.read(Lba(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(s.resident_blocks(), 0);
    }

    #[test]
    fn read_after_write_round_trips() {
        let s = store();
        let data: Vec<u8> = (0..1536).map(|i| (i % 251) as u8).collect();
        s.write(Lba(10), &data).unwrap();
        let mut out = vec![0u8; 1536];
        s.read(Lba(10), &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(s.resident_blocks(), 3);
    }

    #[test]
    fn partial_overwrite_is_block_granular() {
        let s = store();
        s.write(Lba(0), &[1u8; 1024]).unwrap();
        s.write(Lba(1), &[2u8; 512]).unwrap();
        let mut out = vec![0u8; 1024];
        s.read(Lba(0), &mut out).unwrap();
        assert!(out[..512].iter().all(|&b| b == 1));
        assert!(out[512..].iter().all(|&b| b == 2));
    }

    #[test]
    fn out_of_range_rejected() {
        let s = store();
        let mut buf = vec![0u8; 1024];
        assert_eq!(
            s.read(Lba(999), &mut buf),
            Err(BlockError::OutOfRange {
                lba: Lba(999),
                count: 2,
                blocks: 1000
            })
        );
    }

    #[test]
    fn misaligned_buffer_rejected() {
        let s = store();
        let mut buf = vec![0u8; 100];
        assert!(matches!(
            s.read(Lba(0), &mut buf),
            Err(BlockError::BadBuffer { len: 100, .. })
        ));
        assert!(matches!(
            s.write(Lba(0), &[]),
            Err(BlockError::BadBuffer { len: 0, .. })
        ));
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let s = Arc::new(SparseMemStore::new(BlockGeometry::new(512, 4096)));
        let mut handles = Vec::new();
        for t in 0u64..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let pattern = vec![t as u8 + 1; 512];
                for b in (t * 512)..(t * 512 + 512) {
                    s.write(Lba(b), &pattern).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut buf = vec![0u8; 512];
        for t in 0u64..8 {
            s.read(Lba(t * 512 + 100), &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == t as u8 + 1));
        }
        assert_eq!(s.resident_blocks(), 8 * 512);
    }

    #[test]
    fn error_display() {
        let e = BlockError::BadBuffer {
            len: 7,
            block_size: 512,
        };
        assert!(e.to_string().contains("7 bytes"));
    }
}
