//! # cam-blockdev — block-storage substrate
//!
//! CAM (§ III-C) requires SSDs to operate **without a pre-existing
//! filesystem**: applications address raw logical blocks. This crate provides
//! that raw-block world for the reproduction:
//!
//! * [`Lba`] — typed logical block addresses and size math;
//! * [`BlockStore`] — the storage trait the simulated NVMe namespaces and
//!   all I/O backends read from and write to;
//! * [`SparseMemStore`] — a thread-safe, sparse, in-memory store standing in
//!   for a multi-terabyte SSD (only touched blocks consume host memory);
//! * [`Raid0`] — stripe aggregation across stores, used to present multiple
//!   SSDs as one address space (the paper's POSIX baseline uses RAID 0, and
//!   CAM itself stripes batches across SSDs);
//! * [`ExtentAllocator`] — first-fit extent allocation with coalescing, used
//!   by the mini filesystem in `cam-hostos` and by workloads that place
//!   datasets on raw devices;
//! * [`FaultyStore`] — deterministic fault injection for failure-path
//!   testing of every layer above.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod extent;
mod fault;
mod lba;
mod raid;
mod store;

pub use extent::{Extent, ExtentAllocator};
pub use fault::{FaultKind, FaultMode, FaultPolicy, FaultyStore};
pub use lba::{BlockGeometry, Lba};
pub use raid::Raid0;
pub use store::{BlockError, BlockStore, SparseMemStore};
