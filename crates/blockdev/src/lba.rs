//! Logical block addressing: the [`Lba`] newtype and [`BlockGeometry`]
//! byte/block conversions.

use std::fmt;
use std::ops::{Add, Sub};

/// A logical block address on some device or address space.
///
/// An `Lba` is meaningless without the [`BlockGeometry`] of the space it
/// indexes; keeping it a distinct type prevents accidentally mixing block
/// numbers with byte offsets (the classic off-by-512 bug family).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lba(pub u64);

impl Lba {
    /// Block index as a raw `u64`.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl Add<u64> for Lba {
    type Output = Lba;
    #[inline]
    fn add(self, rhs: u64) -> Lba {
        Lba(self.0 + rhs)
    }
}

impl Sub<Lba> for Lba {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Lba) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lba:{}", self.0)
    }
}

impl fmt::Display for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Block size and capacity of an address space, with byte/block math.
///
/// The paper's access granularities are 512 B and 4 KiB blocks; geometry is
/// parameterized so both are first-class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockGeometry {
    /// Bytes per block. Must be a power of two.
    pub block_size: u32,
    /// Total number of blocks.
    pub blocks: u64,
}

impl BlockGeometry {
    /// Creates a geometry; `block_size` must be a nonzero power of two.
    pub fn new(block_size: u32, blocks: u64) -> Self {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two, got {block_size}"
        );
        BlockGeometry { block_size, blocks }
    }

    /// Geometry of a store with 4 KiB blocks and the given total bytes
    /// (rounded down to whole blocks).
    pub fn with_capacity_bytes(block_size: u32, bytes: u64) -> Self {
        Self::new(block_size, bytes / block_size as u64)
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.blocks * self.block_size as u64
    }

    /// Byte offset of `lba`.
    #[inline]
    pub fn byte_offset(&self, lba: Lba) -> u64 {
        lba.0 * self.block_size as u64
    }

    /// Number of blocks needed to hold `bytes` (rounded up).
    #[inline]
    pub fn blocks_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_size as u64)
    }

    /// Whether the `count`-block range at `lba` lies inside the space.
    #[inline]
    pub fn contains(&self, lba: Lba, count: u64) -> bool {
        lba.0
            .checked_add(count)
            .map(|end| end <= self.blocks)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lba_arithmetic() {
        let a = Lba(10);
        assert_eq!(a + 5, Lba(15));
        assert_eq!(Lba(15) - a, 5);
        assert_eq!(format!("{a}"), "lba:10");
    }

    #[test]
    fn geometry_math() {
        let g = BlockGeometry::new(4096, 1024);
        assert_eq!(g.capacity_bytes(), 4 << 20);
        assert_eq!(g.byte_offset(Lba(2)), 8192);
        assert_eq!(g.blocks_for_bytes(1), 1);
        assert_eq!(g.blocks_for_bytes(4096), 1);
        assert_eq!(g.blocks_for_bytes(4097), 2);
        assert!(g.contains(Lba(1023), 1));
        assert!(!g.contains(Lba(1023), 2));
        assert!(!g.contains(Lba(u64::MAX), 2)); // overflow-safe
    }

    #[test]
    fn capacity_constructor_rounds_down() {
        let g = BlockGeometry::with_capacity_bytes(512, 1_000_000);
        assert_eq!(g.blocks, 1953);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        BlockGeometry::new(1000, 1);
    }
}
