//! [`ExtentAllocator`] — first-fit extent allocation over a block range,
//! with free-list coalescing.
//!
//! Used by the mini filesystem in `cam-hostos` (files map to extents, which
//! is exactly why the kernel path must do LBA lookup per request, Fig. 3)
//! and by workloads that carve a raw device into regions.

use std::collections::BTreeMap;

use crate::lba::Lba;

/// A contiguous run of blocks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Extent {
    /// First block.
    pub start: Lba,
    /// Length in blocks (> 0).
    pub blocks: u64,
}

impl Extent {
    /// Creates an extent; `blocks` must be nonzero.
    pub fn new(start: Lba, blocks: u64) -> Self {
        assert!(blocks > 0, "extent must be nonempty");
        Extent { start, blocks }
    }

    /// One past the last block.
    #[inline]
    pub fn end(&self) -> u64 {
        self.start.0 + self.blocks
    }

    /// Whether two extents overlap.
    pub fn overlaps(&self, other: &Extent) -> bool {
        self.start.0 < other.end() && other.start.0 < self.end()
    }
}

/// First-fit extent allocator with coalescing free list.
pub struct ExtentAllocator {
    /// Free runs keyed by start block.
    free: BTreeMap<u64, u64>,
    total: u64,
    allocated: u64,
}

impl ExtentAllocator {
    /// Creates an allocator over blocks `0..blocks`.
    pub fn new(blocks: u64) -> Self {
        let mut free = BTreeMap::new();
        if blocks > 0 {
            free.insert(0, blocks);
        }
        ExtentAllocator {
            free,
            total: blocks,
            allocated: 0,
        }
    }

    /// Total managed blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total
    }

    /// Blocks currently allocated.
    pub fn allocated_blocks(&self) -> u64 {
        self.allocated
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> u64 {
        self.total - self.allocated
    }

    /// Allocates `blocks` contiguous blocks (first fit), or `None` if no
    /// free run is large enough (external fragmentation included).
    pub fn alloc(&mut self, blocks: u64) -> Option<Extent> {
        if blocks == 0 {
            return None;
        }
        let (&start, &len) = self.free.iter().find(|(_, &len)| len >= blocks)?;
        self.free.remove(&start);
        if len > blocks {
            self.free.insert(start + blocks, len - blocks);
        }
        self.allocated += blocks;
        Some(Extent::new(Lba(start), blocks))
    }

    /// Returns an extent to the free list, coalescing with neighbours.
    ///
    /// # Panics
    /// If the extent overlaps a free run (double free) or exceeds the range.
    pub fn free(&mut self, extent: Extent) {
        assert!(
            extent.end() <= self.total,
            "extent {extent:?} exceeds managed range of {} blocks",
            self.total
        );
        let mut start = extent.start.0;
        let mut len = extent.blocks;

        // Check and merge with the predecessor run.
        if let Some((&p_start, &p_len)) = self.free.range(..start).next_back() {
            assert!(
                p_start + p_len <= start,
                "double free: {extent:?} overlaps free run at {p_start}+{p_len}"
            );
            if p_start + p_len == start {
                self.free.remove(&p_start);
                start = p_start;
                len += p_len;
            }
        }
        // Check and merge with the successor run.
        if let Some((&n_start, &n_len)) = self.free.range(extent.start.0..).next() {
            assert!(
                extent.end() <= n_start,
                "double free: {extent:?} overlaps free run at {n_start}+{n_len}"
            );
            if extent.end() == n_start {
                self.free.remove(&n_start);
                len += n_len;
            }
        }
        self.free.insert(start, len);
        self.allocated -= extent.blocks;
    }

    /// Number of distinct free runs (fragmentation indicator).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_first_fit_and_exact() {
        let mut a = ExtentAllocator::new(100);
        let e1 = a.alloc(10).unwrap();
        let e2 = a.alloc(20).unwrap();
        assert_eq!(e1, Extent::new(Lba(0), 10));
        assert_eq!(e2, Extent::new(Lba(10), 20));
        assert_eq!(a.allocated_blocks(), 30);
        assert_eq!(a.free_blocks(), 70);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = ExtentAllocator::new(10);
        assert!(a.alloc(11).is_none());
        assert!(a.alloc(10).is_some());
        assert!(a.alloc(1).is_none());
        assert!(a.alloc(0).is_none());
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut a = ExtentAllocator::new(30);
        let e1 = a.alloc(10).unwrap();
        let e2 = a.alloc(10).unwrap();
        let e3 = a.alloc(10).unwrap();
        a.free(e1);
        a.free(e3);
        assert_eq!(a.fragments(), 2);
        a.free(e2); // merges all three back into one run
        assert_eq!(a.fragments(), 1);
        assert_eq!(a.alloc(30).unwrap(), Extent::new(Lba(0), 30));
    }

    #[test]
    fn fragmentation_can_block_large_allocs() {
        let mut a = ExtentAllocator::new(30);
        let e1 = a.alloc(10).unwrap();
        let _e2 = a.alloc(10).unwrap();
        let e3 = a.alloc(10).unwrap();
        a.free(e1);
        a.free(e3);
        // 20 free blocks but no contiguous 20.
        assert_eq!(a.free_blocks(), 20);
        assert!(a.alloc(20).is_none());
        assert!(a.alloc(10).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut a = ExtentAllocator::new(10);
        let e = a.alloc(5).unwrap();
        a.free(e);
        a.free(e);
    }

    #[test]
    fn extent_overlap_math() {
        let a = Extent::new(Lba(0), 10);
        let b = Extent::new(Lba(9), 1);
        let c = Extent::new(Lba(10), 5);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }
}
