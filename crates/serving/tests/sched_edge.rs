//! Scheduler and serving-plane edge cases: starvation under an
//! overwhelmingly hot tenant, idle-tenant admission, session eviction
//! with requests in flight, and fairness after a mid-burst disconnect.

use cam_serving::{
    AdmissionConfig, FairScheduler, Policy, ServingConfig, ServingCore, SessionConfig,
    SessionTable, WorkItem, N_CHANNELS,
};
use cam_workloads::kv_cache::KvCacheConfig;

fn item(tenant: usize, session: usize, blocks: u64, admit_ns: u64) -> WorkItem {
    WorkItem {
        tenant,
        key: (tenant, session),
        lbas: (0..blocks)
            .map(|b| (tenant * 1000 + session) as u64 * 64 + b)
            .collect(),
        resident_target: blocks,
        admit_ns,
    }
}

/// A 99%-hot tenant must not starve the cold tenant under DRR: every
/// batch carries the cold tenant's queued work, so its worst-case queue
/// delay is O(1) batches. Under FIFO the cold item waits behind the
/// entire hot backlog.
#[test]
fn drr_bounds_cold_tenant_delay_under_99_percent_hot_tenant() {
    let hot_items = 990;
    let measure = |policy: Policy| -> usize {
        let mut s = FairScheduler::new(policy, 2, 16);
        for i in 0..hot_items {
            s.push(item(0, i, 4, 0));
        }
        for i in 0..10 {
            s.push(item(1, i, 4, 0));
        }
        // Count batches until the cold tenant's last item ships.
        let mut batches = 0;
        let mut cold_left = 10;
        while cold_left > 0 {
            let batch = s.next_batch(128);
            assert!(!batch.is_empty(), "scheduler stalled");
            batches += 1;
            cold_left -= batch.iter().filter(|i| i.tenant == 1).count();
        }
        batches
    };
    let drr = measure(Policy::Drr);
    let fifo = measure(Policy::Fifo);
    // 1000 items of 4 blocks in 128-block batches ⇒ ~32 batches total.
    // DRR interleaves the 10 cold items into the first few batches; FIFO
    // ships them dead last.
    assert!(drr <= 3, "cold tenant waited {drr} batches under DRR");
    assert!(
        fifo >= 5 * drr,
        "FIFO should starve the cold tenant (drr {drr}, fifo {fifo})"
    );
}

/// An idle tenant (empty queue) earns no deficit while idle and admits
/// immediately when it wakes — backlogged tenants cannot lock it out, and
/// its idle time does not bank credit to monopolize later batches.
#[test]
fn idle_tenant_admits_immediately_and_banks_no_credit() {
    let mut s = FairScheduler::new(Policy::Drr, 3, 8);
    for i in 0..50 {
        s.push(item(0, i, 8, 0));
        s.push(item(2, i, 8, 0));
    }
    // Tenant 1 idles through several rounds of service.
    for _ in 0..4 {
        let b = s.next_batch(32);
        assert!(b.iter().all(|i| i.tenant != 1));
    }
    // It wakes with one item: the very next batch must carry it (no
    // warm-up rounds), and only it (no banked deficit from idling).
    s.push(item(1, 0, 8, 0));
    let batch = s.next_batch(32);
    let t1: Vec<_> = batch.iter().filter(|i| i.tenant == 1).collect();
    assert_eq!(t1.len(), 1, "woken tenant missing from the next batch");
}

/// Eviction under GPU-budget pressure must skip sessions with requests in
/// flight (pinned), and a close during flight defers until the last pin
/// drops — the retiring batch never addresses a recycled extent.
#[test]
fn eviction_and_close_respect_in_flight_pins() {
    let mut t = SessionTable::new(SessionConfig {
        session_blocks: 16,
        capacity_blocks: 160,
        gpu_budget_blocks: 32,
    });
    // Session A is mid-request: pinned with full residency.
    t.ensure_open((0, 0), 1);
    t.append((0, 0), 16, 1);
    t.pin((0, 0));
    // Sessions B and C overflow the budget; only B (unpinned LRU) and C
    // may lose residency, never pinned A.
    t.ensure_open((0, 1), 2);
    t.append((0, 1), 16, 2);
    t.ensure_open((0, 2), 3);
    t.append((0, 2), 16, 3);
    assert_eq!(t.resident((0, 0)), 16, "pinned session evicted");
    assert!(t.resident_total() <= 32 + 16, "budget overshot beyond pins");
    // Close A mid-flight: the extent must survive until unpin.
    let extent_lba = t.lba((0, 0), 0);
    t.close((0, 0));
    assert!(t.is_open((0, 0)), "close must defer while pinned");
    assert_eq!(t.lba((0, 0), 0), extent_lba);
    t.unpin((0, 0));
    assert!(!t.is_open((0, 0)), "deferred close must complete at unpin");
    // The freed extent recycles to the next open.
    t.ensure_open((9, 9), 4);
    assert_eq!(t.lba((9, 9), 0), extent_lba);
}

/// End-to-end pump used by the disconnect test: fixed service time per
/// batch on a virtual timeline (same contract as the DES driver).
fn pump_until(core: &mut ServingCore, service_ns: u64, stop_after_batches: u64) -> u64 {
    let mut now = 0;
    let mut batches = 0;
    while !core.is_drained() && batches < stop_after_batches {
        let mut published = false;
        for ch in 0..N_CHANNELS {
            if let Some((_lbas, _op)) = core.next_batch(ch, now) {
                published = true;
                batches += 1;
                now += service_ns;
                core.on_retire(ch, now, 0);
            }
        }
        if !published {
            match core.next_ready_ns(now) {
                Some(t) => now = t.max(now + 1),
                None => break,
            }
        }
    }
    now
}

/// A tenant disconnecting mid-burst cancels its queued work; the
/// remaining tenants keep their full service and the run drains cleanly
/// (no leaked pins, no stuck queues).
#[test]
fn disconnect_mid_burst_releases_queue_and_keeps_serving_others() {
    let mut wl = KvCacheConfig::uniform(3, 8, 200);
    wl.seed = 99;
    let mut cfg = ServingConfig::for_workload(wl, Policy::Drr);
    cfg.gpu_budget_blocks = cfg.workload.session_blocks * 2; // force paging
    cfg.max_batch_blocks = 32;
    // Unthrottled admission: tenant 0's whole backlog is queued when it
    // leaves, so the disconnect has real work to cancel.
    cfg.admission = vec![
        AdmissionConfig {
            rate_blocks_per_s: 1e9,
            burst_blocks: 1e9,
        };
        3
    ];
    let mut core = ServingCore::new(cfg, None);
    // Let the run get going, then yank tenant 0 mid-burst.
    let now = pump_until(&mut core, 50_000, 6);
    core.disconnect(0, now);
    let end = pump_until(&mut core, 50_000, u64::MAX);
    assert!(core.is_drained(), "run must drain after a disconnect");
    let stats = core.report(end);
    // Tenants 1 and 2 retire their entire traces.
    assert_eq!(stats.tenants[1].completed, stats.tenants[1].admitted);
    assert_eq!(stats.tenants[2].completed, stats.tenants[2].admitted);
    assert_eq!(stats.tenants[1].admitted, 200);
    assert_eq!(stats.tenants[2].admitted, 200);
    // Tenant 0 stopped early: no new admissions after the disconnect, and
    // every step that was in flight still retired (completed ≤ admitted).
    assert!(stats.tenants[0].admitted < 200);
    assert!(stats.tenants[0].completed <= stats.tenants[0].admitted);
}

/// The disconnect also composes with FIFO (the baseline policy drains the
/// departed tenant's queued items out of the global queue).
#[test]
fn disconnect_under_fifo_drains_global_queue() {
    let mut s = FairScheduler::new(Policy::Fifo, 2, 8);
    for i in 0..6 {
        s.push(item(i % 2, i, 2, 0));
    }
    let gone = s.drain_tenant(0);
    assert_eq!(gone.len(), 3);
    let batch = s.next_batch(64);
    assert_eq!(batch.len(), 3);
    assert!(batch.iter().all(|i| i.tenant == 1));
}
