//! # cam-serving — the multi-tenant serving front-end
//!
//! The ROADMAP's "millions of users" story needs a request plane above
//! `CamContext`: tenants submitting concurrent session streams, with
//! admission control, fairness across tenants, and per-tenant SLO
//! accounting. This crate is that plane, grounded in the Tutti workload
//! (SSD-backed KV cache for long-context LLM serving, see PAPERS.md):
//! each session pages fixed-size attention-cache blocks through the
//! striped namespace, with Zipf session popularity inside every tenant.
//!
//! The pieces, bottom-up:
//!
//! * [`SessionTable`] — (tenant, session) → KV-block extents with
//!   pin-aware GPU-residency accounting and LRU eviction under a budget;
//! * [`TokenBucket`] — per-tenant admission metered in KV blocks on an
//!   explicit nanosecond timeline;
//! * [`FairScheduler`] — deficit round robin (or the FIFO baseline) that
//!   builds each demand-read batch from the per-tenant queues, so a hot
//!   tenant's backlog cannot starve cold tenants;
//! * [`ServingCore`] — the clock-agnostic state machine tying them
//!   together over the three CAM channels (0 demand, 1 write-back,
//!   2 readahead), recording per-tenant latency/SLO/hit-rate into
//!   [`cam_telemetry::TenantMetrics`] and a per-tenant
//!   `SloTracker`;
//! * [`drivers`] — the DES pump (virtual time, thousands of sessions) and
//!   the threaded pump (real `CamContext` tickets, wall clock), sharing
//!   one pump contract and one metric schema.
//!
//! See `docs/SERVING.md` for the architecture and policy write-up.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod admission;
pub mod core;
pub mod drivers;
pub mod sched;
pub mod session;

pub use crate::core::{
    ServingConfig, ServingCore, ServingStats, TenantStats, CH_DEMAND, CH_READAHEAD, CH_WRITEBACK,
    N_CHANNELS,
};
pub use admission::{AdmissionConfig, TokenBucket};
pub use drivers::{run_serving_des, run_serving_threaded, CoreSource, ServingRun};
pub use sched::{FairScheduler, Policy, WorkItem};
pub use session::{SessionConfig, SessionKey, SessionTable};
