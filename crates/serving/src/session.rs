//! The session table: (tenant, session) → KV-block extents on the striped
//! namespace, plus GPU-residency accounting.
//!
//! Every session owns one fixed-size extent of `session_blocks` array LBAs
//! (bump-allocated, recycled through a free list). The KV cache grows
//! append-only inside the extent; the GPU holds a *suffix* of each
//! session's written blocks (the most recent context), and the table
//! enforces a global GPU budget by evicting the least-recently-used
//! unpinned session's residency — evicted context pages back in from SSD
//! on the session's next decode step.
//!
//! Sessions with requests in flight are *pinned*: eviction skips them and
//! [`SessionTable::close`] defers the actual free until the last unpin,
//! so a retiring batch never touches a recycled extent.

use std::collections::BTreeMap;

/// Session-table shape.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Array LBAs per session extent (the per-session KV capacity).
    pub session_blocks: u64,
    /// Total array LBAs available for extents.
    pub capacity_blocks: u64,
    /// GPU KV-residency budget across all sessions, blocks.
    pub gpu_budget_blocks: u64,
}

/// Key of a session: tenant id + tenant-local session id.
pub type SessionKey = (usize, usize);

#[derive(Debug)]
struct Session {
    /// First array LBA of the extent.
    extent: u64,
    /// Blocks written so far (≤ `session_blocks`).
    written: u64,
    /// GPU-resident suffix length: the last `resident` written blocks are
    /// on the GPU and read for free.
    resident: u64,
    /// In-flight requests referencing this session.
    pins: u32,
    /// Close requested while pinned; freed at the last unpin.
    closing: bool,
    /// Last touch instant, the LRU eviction key.
    last_use_ns: u64,
}

/// The table. Clock-agnostic: every mutation takes an explicit `now_ns`
/// used only for LRU ordering.
#[derive(Debug)]
pub struct SessionTable {
    cfg: SessionConfig,
    /// Ordered map: eviction scans must be deterministic (LRU ties break
    /// on the session key), so runs replay identically on both drivers.
    sessions: BTreeMap<SessionKey, Session>,
    free: Vec<u64>,
    next_extent: u64,
    resident_total: u64,
    evictions: u64,
}

impl SessionTable {
    /// An empty table.
    pub fn new(cfg: SessionConfig) -> Self {
        assert!(cfg.session_blocks > 0);
        SessionTable {
            cfg,
            sessions: BTreeMap::new(),
            free: Vec::new(),
            next_extent: 0,
            resident_total: 0,
            evictions: 0,
        }
    }

    /// Opens `key` if it is not already open. Returns `true` on first open.
    /// Panics when the namespace is out of extents — sizing the array is
    /// the caller's contract, not a runtime condition.
    pub fn ensure_open(&mut self, key: SessionKey, now_ns: u64) -> bool {
        if self.sessions.contains_key(&key) {
            self.touch(key, now_ns);
            return false;
        }
        let extent = self.free.pop().unwrap_or_else(|| {
            let e = self.next_extent;
            assert!(
                e + self.cfg.session_blocks <= self.cfg.capacity_blocks,
                "session capacity exhausted: {} extents of {} blocks in {} total",
                self.sessions.len(),
                self.cfg.session_blocks,
                self.cfg.capacity_blocks
            );
            self.next_extent = e + self.cfg.session_blocks;
            e
        });
        self.sessions.insert(
            key,
            Session {
                extent,
                written: 0,
                resident: 0,
                pins: 0,
                closing: false,
                last_use_ns: now_ns,
            },
        );
        true
    }

    fn get(&self, key: SessionKey) -> &Session {
        self.sessions.get(&key).expect("session not open")
    }

    fn get_mut(&mut self, key: SessionKey) -> &mut Session {
        self.sessions.get_mut(&key).expect("session not open")
    }

    /// Array LBA of the session's `block`-th KV block.
    pub fn lba(&self, key: SessionKey, block: u64) -> u64 {
        let s = self.get(key);
        debug_assert!(block < self.cfg.session_blocks);
        s.extent + block
    }

    /// Blocks the session has written.
    pub fn written(&self, key: SessionKey) -> u64 {
        self.get(key).written
    }

    /// GPU-resident suffix length of the session.
    pub fn resident(&self, key: SessionKey) -> u64 {
        self.get(key).resident
    }

    /// Appends `blocks` to the session (clamped to the extent size) and
    /// extends the resident suffix by the same amount — freshly produced
    /// KV blocks are born on the GPU. Returns the block indices appended.
    pub fn append(&mut self, key: SessionKey, blocks: u64, now_ns: u64) -> std::ops::Range<u64> {
        let limit = self.cfg.session_blocks;
        let s = self.get_mut(key);
        let start = s.written;
        let end = (s.written + blocks).min(limit);
        s.written = end;
        let grow = (s.resident + (end - start)).min(end) - s.resident;
        s.resident += grow;
        s.last_use_ns = now_ns;
        self.resident_total += grow;
        self.enforce_budget(Some(key));
        start..end
    }

    /// Raises the session's resident suffix to `target` blocks (clamped to
    /// what is written), evicting other sessions if the GPU budget
    /// overflows. Called when paged-in context lands on the GPU.
    pub fn mark_resident(&mut self, key: SessionKey, target: u64, now_ns: u64) {
        let s = self.get_mut(key);
        let target = target.min(s.written);
        if target > s.resident {
            let grow = target - s.resident;
            s.resident = target;
            s.last_use_ns = now_ns;
            self.resident_total += grow;
            self.enforce_budget(Some(key));
        } else {
            s.last_use_ns = now_ns;
        }
    }

    /// Evicts LRU unpinned sessions (other than `keep`) until the resident
    /// total fits the GPU budget. An evicted session's context pages back
    /// in from SSD on its next read.
    fn enforce_budget(&mut self, keep: Option<SessionKey>) {
        while self.resident_total > self.cfg.gpu_budget_blocks {
            let victim = self
                .sessions
                .iter()
                .filter(|(k, s)| s.resident > 0 && s.pins == 0 && Some(**k) != keep)
                .min_by_key(|(k, s)| (s.last_use_ns, **k))
                .map(|(k, _)| *k);
            let Some(victim) = victim else {
                // Everything left is pinned (or the protected session):
                // transiently over budget until the in-flight work retires.
                return;
            };
            let s = self.sessions.get_mut(&victim).expect("victim exists");
            self.resident_total -= s.resident;
            s.resident = 0;
            self.evictions += 1;
        }
    }

    /// Updates the session's LRU stamp.
    pub fn touch(&mut self, key: SessionKey, now_ns: u64) {
        self.get_mut(key).last_use_ns = now_ns;
    }

    /// Pins the session against eviction and close while a request holds
    /// references to its extent.
    pub fn pin(&mut self, key: SessionKey) {
        self.get_mut(key).pins += 1;
    }

    /// Drops one pin; completes a deferred [`close`](Self::close) when the
    /// last pin goes away.
    pub fn unpin(&mut self, key: SessionKey) {
        let s = self.get_mut(key);
        assert!(s.pins > 0, "unpin without pin");
        s.pins -= 1;
        if s.pins == 0 && s.closing {
            self.free_session(key);
        }
    }

    /// Closes the session: frees its extent and residency now if unpinned,
    /// or defers to the last [`unpin`](Self::unpin) while requests are in
    /// flight.
    pub fn close(&mut self, key: SessionKey) {
        let Some(s) = self.sessions.get_mut(&key) else {
            return;
        };
        if s.pins > 0 {
            s.closing = true;
        } else {
            self.free_session(key);
        }
    }

    fn free_session(&mut self, key: SessionKey) {
        let s = self.sessions.remove(&key).expect("session open");
        self.resident_total -= s.resident;
        self.free.push(s.extent);
    }

    /// Whether the session is currently open.
    pub fn is_open(&self, key: SessionKey) -> bool {
        self.sessions.contains_key(&key)
    }

    /// Open sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// GPU-resident blocks across all sessions.
    pub fn resident_total(&self) -> u64 {
        self.resident_total
    }

    /// Residency evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(budget: u64) -> SessionTable {
        SessionTable::new(SessionConfig {
            session_blocks: 8,
            capacity_blocks: 64,
            gpu_budget_blocks: budget,
        })
    }

    #[test]
    fn extents_are_disjoint_and_recycled() {
        let mut t = table(1000);
        assert!(t.ensure_open((0, 0), 1));
        assert!(t.ensure_open((0, 1), 2));
        assert!(!t.ensure_open((0, 0), 3));
        let a = t.lba((0, 0), 0);
        let b = t.lba((0, 1), 0);
        assert_ne!(a, b);
        t.close((0, 0));
        assert!(!t.is_open((0, 0)));
        t.ensure_open((1, 7), 4);
        assert_eq!(t.lba((1, 7), 0), a, "freed extent is recycled");
    }

    #[test]
    fn append_grows_written_and_residency_within_extent() {
        let mut t = table(1000);
        t.ensure_open((0, 0), 1);
        assert_eq!(t.append((0, 0), 5, 1), 0..5);
        assert_eq!(t.written((0, 0)), 5);
        assert_eq!(t.resident((0, 0)), 5);
        // Clamp at the extent boundary.
        assert_eq!(t.append((0, 0), 10, 2), 5..8);
        assert_eq!(t.written((0, 0)), 8);
        assert_eq!(t.resident_total(), 8);
    }

    #[test]
    fn budget_evicts_lru_but_never_pinned() {
        let mut t = table(12);
        t.ensure_open((0, 0), 1);
        t.append((0, 0), 6, 1);
        t.ensure_open((0, 1), 2);
        t.append((0, 1), 6, 2);
        assert_eq!(t.resident_total(), 12);
        // Opening a third session overflows the budget: LRU (0,0) evicts.
        t.ensure_open((0, 2), 3);
        t.append((0, 2), 6, 3);
        assert_eq!(t.resident((0, 0)), 0);
        assert_eq!(t.resident_total(), 12);
        assert_eq!(t.evictions(), 1);
        // Pin (0,1); it must survive the next overflow even though it is
        // now the LRU.
        t.pin((0, 1));
        t.ensure_open((0, 3), 4);
        t.append((0, 3), 6, 4);
        assert_eq!(t.resident((0, 1)), 6, "pinned session evicted");
        assert_eq!(t.resident((0, 2)), 0);
        t.unpin((0, 1));
    }

    #[test]
    fn close_defers_until_last_unpin() {
        let mut t = table(1000);
        t.ensure_open((0, 0), 1);
        t.append((0, 0), 4, 1);
        t.pin((0, 0));
        t.pin((0, 0));
        t.close((0, 0));
        assert!(t.is_open((0, 0)), "close must defer while pinned");
        t.unpin((0, 0));
        assert!(t.is_open((0, 0)));
        t.unpin((0, 0));
        assert!(!t.is_open((0, 0)), "last unpin completes the close");
        assert_eq!(t.resident_total(), 0);
    }
}
