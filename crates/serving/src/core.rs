//! [`ServingCore`] — the tenant-facing request plane.
//!
//! The core is a clock-agnostic state machine (every entry point takes an
//! explicit `now_ns`), pumped by whichever driver owns the channels:
//!
//! * the **DES driver** wraps it in a `DesBatchSource` and runs it on the
//!   virtual timeline (thousands of sessions in milliseconds of CPU);
//! * the **threaded driver** polls it from a wall-clock loop over real
//!   `CamContext` batch tickets.
//!
//! Pump contract, per channel (0 = demand reads, 1 = write-back,
//! 2 = readahead): call [`ServingCore::next_batch`] only while the channel
//! is idle; when the published batch retires, call
//! [`ServingCore::on_retire`] and re-poll every idle channel. When every
//! channel idles with work still pending (admission-throttled tenants),
//! [`ServingCore::next_ready_ns`] names the instant to re-poll.
//!
//! A step's life: the tenant's trace head is **admitted** when its token
//! bucket grants the step's block cost. Admission opens the session,
//! counts GPU-residency hits, turns the missing context blocks into a
//! demand-read [`WorkItem`] (plus a readahead item on a cold restore) and
//! appends the step's new KV blocks (write-back is fire-and-forget).
//! Hit-only steps complete at admission with zero latency; miss steps
//! complete when their demand read retires — that span is the per-tenant
//! latency the SLO accounting records.

use std::collections::VecDeque;

use cam_protocol::ChannelOp;
use cam_telemetry::{
    MetricsRegistry, SloConfig, SloTracker, TenantMetrics, WindowConfig, WindowedHistogram,
};
use cam_workloads::kv_cache::{self, KvCacheConfig, KvStep};

use crate::admission::{AdmissionConfig, TokenBucket};
use crate::sched::{FairScheduler, Policy, WorkItem};
use crate::session::{SessionConfig, SessionTable};

/// Demand-read channel.
pub const CH_DEMAND: usize = 0;
/// Write-back channel.
pub const CH_WRITEBACK: usize = 1;
/// Readahead channel.
pub const CH_READAHEAD: usize = 2;
/// Channels the serving plane drives.
pub const N_CHANNELS: usize = 3;

/// Full serving-plane configuration.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// The KV-cache workload (tenant count, traces, session shape).
    pub workload: KvCacheConfig,
    /// Demand-read scheduling policy.
    pub policy: Policy,
    /// DRR deficit earned per backlogged tenant per round, blocks.
    pub quantum_blocks: u64,
    /// Per-tenant admission buckets (length = tenant count).
    pub admission: Vec<AdmissionConfig>,
    /// GPU KV-residency budget across all sessions, blocks.
    pub gpu_budget_blocks: u64,
    /// Largest batch published on any channel, blocks.
    pub max_batch_blocks: u64,
    /// Extra older-context blocks prefetched on a cold session restore.
    pub readahead_blocks: u64,
    /// Per-tenant concurrent-step cap (clamped to the tenant's session
    /// count — a tenant's concurrency is its active sessions).
    pub max_inflight_per_tenant: usize,
    /// The latency objective per-tenant burn rates track.
    pub slo: SloConfig,
}

impl ServingConfig {
    /// A ready-to-run config over `workload`: generous admission, GPU
    /// budget at ~¼ of the total KV footprint (so the session tail pages),
    /// 512-block batches.
    pub fn for_workload(workload: KvCacheConfig, policy: Policy) -> Self {
        let tenants = workload.tenants();
        let footprint = workload.total_sessions() as u64 * workload.session_blocks;
        ServingConfig {
            policy,
            quantum_blocks: 32,
            admission: vec![AdmissionConfig::default(); tenants],
            gpu_budget_blocks: (footprint / 4).max(workload.session_blocks),
            max_batch_blocks: 512,
            readahead_blocks: 4,
            max_inflight_per_tenant: 1024,
            slo: SloConfig::default(),
            workload,
        }
    }

    /// Array capacity the session table needs, blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.workload.total_sessions() as u64 * self.workload.session_blocks
    }
}

/// Per-tenant accumulators (exact, whole-run).
#[derive(Debug, Default)]
struct TenantAccum {
    admitted: u64,
    throttled: u64,
    completed: u64,
    hits: u64,
    accesses: u64,
    latencies: Vec<u64>,
    stalled: bool,
}

/// Per-tenant results of a finished run.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Steps admitted past the token bucket.
    pub admitted: u64,
    /// Admission-stall episodes.
    pub throttled: u64,
    /// Steps completed.
    pub completed: u64,
    /// GPU-resident context blocks served without I/O.
    pub hits: u64,
    /// Context blocks requested.
    pub accesses: u64,
    /// Exact median step latency, ns.
    pub p50_ns: u64,
    /// Exact 99th-percentile step latency, ns.
    pub p99_ns: u64,
    /// Completed steps per second of run time.
    pub rps: f64,
    /// Short-window SLO burn rate at end of run.
    pub burn_short: f64,
    /// Long-window SLO burn rate at end of run.
    pub burn_long: f64,
}

impl TenantStats {
    /// Block hit rate (1.0 when no context was requested).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Whole-run results.
#[derive(Clone, Debug)]
pub struct ServingStats {
    /// Per-tenant results, indexed by tenant id.
    pub tenants: Vec<TenantStats>,
    /// Batches published per channel.
    pub batches: [u64; N_CHANNELS],
    /// Blocks moved per channel.
    pub blocks: [u64; N_CHANNELS],
    /// GPU-residency evictions.
    pub evictions: u64,
    /// Run duration, ns.
    pub duration_ns: u64,
}

/// One in-flight batch's bookkeeping, per channel.
enum Inflight {
    /// Demand reads / readahead: the items riding the batch.
    Items(Vec<WorkItem>),
    /// Write-back: fire-and-forget, nothing to resolve at retire.
    Writeback,
}

/// The serving state machine. Drivers own it behind a mutex and pump it
/// through [`next_batch`](Self::next_batch) / [`on_retire`](Self::on_retire).
pub struct ServingCore {
    cfg: ServingConfig,
    traces: Vec<VecDeque<KvStep>>,
    buckets: Vec<TokenBucket>,
    table: SessionTable,
    sched: FairScheduler,
    ra_queue: VecDeque<WorkItem>,
    wb_queue: VecDeque<u64>,
    inflight: [Option<Inflight>; N_CHANNELS],
    inflight_steps: Vec<usize>,
    max_inflight: Vec<usize>,
    accum: Vec<TenantAccum>,
    /// First pump instant — anchors duration on the threaded driver's
    /// absolute wall clock (the DES timeline starts at ~0 anyway).
    start_ns: Option<u64>,
    slo: SloTracker,
    lat_windows: Vec<WindowedHistogram>,
    metrics: Option<TenantMetrics>,
    batches: [u64; N_CHANNELS],
    moved: [u64; N_CHANNELS],
}

impl ServingCore {
    /// Builds the core: generates the workload traces and sizes the
    /// session table. When `registry` is given, per-tenant gauges and
    /// counters ([`TenantMetrics`]) are kept live as the run progresses.
    pub fn new(cfg: ServingConfig, registry: Option<&MetricsRegistry>) -> Self {
        let tenants = cfg.workload.tenants();
        assert_eq!(
            cfg.admission.len(),
            tenants,
            "one admission bucket per tenant"
        );
        let traces: Vec<VecDeque<KvStep>> = kv_cache::generate(&cfg.workload)
            .into_iter()
            .map(VecDeque::from)
            .collect();
        let table = SessionTable::new(SessionConfig {
            session_blocks: cfg.workload.session_blocks,
            capacity_blocks: cfg.capacity_blocks(),
            gpu_budget_blocks: cfg.gpu_budget_blocks,
        });
        let max_inflight = cfg
            .workload
            .sessions
            .iter()
            .map(|&s| s.min(cfg.max_inflight_per_tenant))
            .collect();
        let window_cfg = WindowConfig::new(cfg.slo.short.window_ns(), 8);
        ServingCore {
            sched: FairScheduler::new(cfg.policy, tenants, cfg.quantum_blocks),
            buckets: cfg.admission.iter().map(|&a| TokenBucket::new(a)).collect(),
            slo: SloTracker::new(cfg.slo, tenants),
            lat_windows: (0..tenants)
                .map(|_| WindowedHistogram::new(window_cfg))
                .collect(),
            metrics: registry.map(|r| TenantMetrics::new(r, tenants)),
            traces,
            table,
            ra_queue: VecDeque::new(),
            wb_queue: VecDeque::new(),
            inflight: [None, None, None],
            inflight_steps: vec![0; tenants],
            max_inflight,
            accum: (0..tenants).map(|_| TenantAccum::default()).collect(),
            start_ns: None,
            batches: [0; N_CHANNELS],
            moved: [0; N_CHANNELS],
            cfg,
        }
    }

    /// Tenants in the plane.
    pub fn n_tenants(&self) -> usize {
        self.traces.len()
    }

    /// Array capacity the session table was sized for, blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.cfg.capacity_blocks()
    }

    /// Largest batch the core publishes on any channel, blocks.
    pub fn max_batch_blocks(&self) -> u64 {
        self.cfg.max_batch_blocks
    }

    /// Pulls admissible steps from every tenant's trace head.
    fn admit(&mut self, now_ns: u64) {
        for t in 0..self.traces.len() {
            while self.inflight_steps[t] < self.max_inflight[t] {
                let Some(&step) = self.traces[t].front() else {
                    break;
                };
                let cost = (step.read_blocks + step.write_blocks) as f64;
                if !self.buckets[t].try_take(now_ns, cost) {
                    if !self.accum[t].stalled {
                        self.accum[t].stalled = true;
                        self.accum[t].throttled += 1;
                        if let Some(m) = &self.metrics {
                            m.throttled[t].inc();
                        }
                    }
                    break;
                }
                self.accum[t].stalled = false;
                self.traces[t].pop_front();
                self.admit_step(t, step, now_ns);
            }
        }
    }

    fn admit_step(&mut self, t: usize, step: KvStep, now_ns: u64) {
        let key = (t, step.session);
        self.table.ensure_open(key, now_ns);
        self.accum[t].admitted += 1;
        if let Some(m) = &self.metrics {
            m.admitted[t].inc();
        }

        // Demand reads over the context window written *before* this step.
        let written = self.table.written(key);
        let resident = self.table.resident(key);
        let window = step.read_blocks.min(written);
        let hits = window.min(resident);
        let misses = window - hits;
        self.accum[t].accesses += window;
        self.accum[t].hits += hits;
        if misses > 0 {
            // The resident suffix covers [written-resident, written); the
            // missing prefix of the window pages in from SSD.
            let lbas: Vec<u64> = (written - window..written - hits)
                .map(|b| self.table.lba(key, b))
                .collect();
            self.table.pin(key);
            self.inflight_steps[t] += 1;
            // Cold restore: prefetch older context beyond the demand
            // window on the readahead channel.
            if resident == 0 && written > window && self.cfg.readahead_blocks > 0 {
                let ra = self.cfg.readahead_blocks.min(written - window);
                let ra_lbas: Vec<u64> = (written - window - ra..written - window)
                    .map(|b| self.table.lba(key, b))
                    .collect();
                self.table.pin(key);
                self.ra_queue.push_back(WorkItem {
                    tenant: t,
                    key,
                    lbas: ra_lbas,
                    resident_target: window + ra,
                    admit_ns: now_ns,
                });
            }
            self.sched.push(WorkItem {
                tenant: t,
                key,
                lbas,
                resident_target: window,
                admit_ns: now_ns,
            });
        } else {
            // Every context block is GPU-resident (or the step reads
            // nothing): the step completes at admission.
            self.complete_step(t, 0, 0, now_ns);
        }

        // Appends: new KV blocks are born resident and written back
        // asynchronously on the write-back channel.
        if step.write_blocks > 0 {
            let range = self.table.append(key, step.write_blocks, now_ns);
            for b in range {
                self.wb_queue.push_back(self.table.lba(key, b));
            }
        }
    }

    fn complete_step(&mut self, t: usize, latency_ns: u64, errors: u64, now_ns: u64) {
        self.accum[t].completed += 1;
        self.accum[t].latencies.push(latency_ns);
        self.slo.record(t, latency_ns, errors, now_ns);
        self.lat_windows[t].record_at(now_ns, latency_ns);
        if let Some(m) = &self.metrics {
            m.completed[t].inc();
            let burn = self.slo.burn_rate(t, now_ns);
            m.slo_burn[t].set((burn.max() * 1000.0) as u64);
            m.latency_p50_ns[t].set(self.lat_windows[t].quantile_at(now_ns, 0.50));
            m.latency_p99_ns[t].set(self.lat_windows[t].quantile_at(now_ns, 0.99));
            let a = &self.accum[t];
            let rate = (a.hits * 1000).checked_div(a.accesses).unwrap_or(1000);
            m.hit_rate_milli[t].set(rate);
        }
    }

    /// Builds the next batch for an idle `channel`, or `None` when the
    /// channel has nothing to do right now. Runs admission first, so the
    /// driver never has to call it separately.
    pub fn next_batch(&mut self, channel: usize, now_ns: u64) -> Option<(Vec<u64>, ChannelOp)> {
        assert!(
            self.inflight[channel].is_none(),
            "channel {channel} already has a batch in flight"
        );
        self.start_ns.get_or_insert(now_ns);
        self.admit(now_ns);
        let (lbas, op, inflight) = match channel {
            CH_DEMAND => {
                let items = self.sched.next_batch(self.cfg.max_batch_blocks);
                if items.is_empty() {
                    return None;
                }
                let lbas: Vec<u64> = items.iter().flat_map(|i| i.lbas.iter().copied()).collect();
                (lbas, ChannelOp::Read, Inflight::Items(items))
            }
            CH_WRITEBACK => {
                if self.wb_queue.is_empty() {
                    return None;
                }
                let take = (self.cfg.max_batch_blocks as usize).min(self.wb_queue.len());
                let lbas: Vec<u64> = self.wb_queue.drain(..take).collect();
                (lbas, ChannelOp::Write, Inflight::Writeback)
            }
            CH_READAHEAD => {
                let mut items = Vec::new();
                let mut blocks = 0;
                while let Some(front) = self.ra_queue.front() {
                    if !items.is_empty() && blocks + front.cost() > self.cfg.max_batch_blocks {
                        break;
                    }
                    let item = self.ra_queue.pop_front().expect("front exists");
                    blocks += item.cost();
                    items.push(item);
                }
                if items.is_empty() {
                    return None;
                }
                let lbas: Vec<u64> = items.iter().flat_map(|i| i.lbas.iter().copied()).collect();
                (lbas, ChannelOp::Read, Inflight::Items(items))
            }
            _ => panic!("serving drives channels 0..{N_CHANNELS}"),
        };
        self.batches[channel] += 1;
        self.moved[channel] += lbas.len() as u64;
        self.inflight[channel] = Some(inflight);
        Some((lbas, op))
    }

    /// Retires the channel's in-flight batch at `now_ns`: installs
    /// residency, releases pins, and records per-tenant latency/SLO for
    /// demand reads.
    pub fn on_retire(&mut self, channel: usize, now_ns: u64, errors: u64) {
        let inflight = self.inflight[channel]
            .take()
            .expect("retire without a batch in flight");
        match inflight {
            Inflight::Writeback => {}
            Inflight::Items(items) => {
                let errored = u64::from(errors > 0);
                for item in items {
                    self.table
                        .mark_resident(item.key, item.resident_target, now_ns);
                    self.table.unpin(item.key);
                    if channel == CH_DEMAND {
                        self.inflight_steps[item.tenant] -= 1;
                        let latency = now_ns.saturating_sub(item.admit_ns);
                        self.complete_step(item.tenant, latency, errored, now_ns);
                    }
                }
            }
        }
    }

    /// Earliest instant at which an admission-throttled tenant's bucket
    /// could grant its head-of-line step; `None` when no tenant is
    /// throttle-stalled (any other stall resolves at the next retire).
    pub fn next_ready_ns(&mut self, now_ns: u64) -> Option<u64> {
        let _ = now_ns;
        (0..self.traces.len())
            .filter_map(|t| {
                let step = self.traces[t].front()?;
                if self.inflight_steps[t] >= self.max_inflight[t] {
                    return None;
                }
                let cost = (step.read_blocks + step.write_blocks) as f64;
                Some(self.buckets[t].ready_at(cost))
            })
            .min()
    }

    /// Whether every trace is consumed and every queue and channel drained.
    pub fn is_drained(&self) -> bool {
        self.traces.iter().all(VecDeque::is_empty)
            && self.sched.is_empty()
            && self.ra_queue.is_empty()
            && self.wb_queue.is_empty()
            && self.inflight.iter().all(Option::is_none)
    }

    /// Disconnects `tenant` mid-burst: its remaining trace is dropped and
    /// its queued (not-yet-published) items are cancelled. In-flight
    /// batches retire normally — sessions stay pinned until then.
    pub fn disconnect(&mut self, tenant: usize, now_ns: u64) {
        self.traces[tenant].clear();
        for item in self.sched.drain_tenant(tenant) {
            self.table.unpin(item.key);
            self.inflight_steps[tenant] -= 1;
        }
        let mut kept = VecDeque::new();
        while let Some(item) = self.ra_queue.pop_front() {
            if item.tenant == tenant {
                self.table.unpin(item.key);
            } else {
                kept.push_back(item);
            }
        }
        self.ra_queue = kept;
        let _ = now_ns;
    }

    /// Closes a session explicitly (frees its extent once unpinned).
    pub fn close_session(&mut self, tenant: usize, session: usize) {
        self.table.close((tenant, session));
    }

    /// GPU-resident blocks across all sessions right now.
    pub fn resident_blocks(&self) -> u64 {
        self.table.resident_total()
    }

    /// Snapshot of the finished (or in-progress) run at `end_ns`.
    pub fn report(&self, end_ns: u64) -> ServingStats {
        let duration_ns = end_ns.saturating_sub(self.start_ns.unwrap_or(0)).max(1);
        let dur_s = duration_ns as f64 * 1e-9;
        let tenants = self
            .accum
            .iter()
            .enumerate()
            .map(|(t, a)| {
                let mut lat = a.latencies.clone();
                lat.sort_unstable();
                let q = |q: f64| -> u64 {
                    if lat.is_empty() {
                        0
                    } else {
                        lat[((lat.len() - 1) as f64 * q).round() as usize]
                    }
                };
                let burn = self.slo.burn_rate(t, end_ns);
                TenantStats {
                    admitted: a.admitted,
                    throttled: a.throttled,
                    completed: a.completed,
                    hits: a.hits,
                    accesses: a.accesses,
                    p50_ns: q(0.50),
                    p99_ns: q(0.99),
                    rps: a.completed as f64 / dur_s,
                    burn_short: burn.short,
                    burn_long: burn.long,
                }
            })
            .collect();
        ServingStats {
            tenants,
            batches: self.batches,
            blocks: self.moved,
            evictions: self.table.evictions(),
            duration_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(policy: Policy) -> ServingConfig {
        let mut wl = KvCacheConfig::uniform(2, 8, 60);
        wl.seed = 7;
        let mut cfg = ServingConfig::for_workload(wl, policy);
        cfg.max_batch_blocks = 32;
        cfg
    }

    /// Pumps the core synchronously: every published batch retires after a
    /// fixed virtual service time. A minimal single-threaded driver.
    fn pump(core: &mut ServingCore, service_ns: u64) -> u64 {
        let mut now = 0;
        let mut guard = 0;
        while !core.is_drained() {
            let mut published = false;
            for ch in 0..N_CHANNELS {
                if core.inflight[ch].is_none() {
                    if let Some((lbas, _op)) = core.next_batch(ch, now) {
                        assert!(!lbas.is_empty());
                        published = true;
                        now += service_ns;
                        core.on_retire(ch, now, 0);
                    }
                }
            }
            if !published {
                now = core
                    .next_ready_ns(now)
                    .expect("stalled with no wake-up")
                    .max(now + 1);
            }
            guard += 1;
            assert!(guard < 1_000_000, "pump did not converge");
        }
        now
    }

    #[test]
    fn every_step_completes_and_counters_balance() {
        for policy in [Policy::Drr, Policy::Fifo] {
            let mut core = ServingCore::new(small_cfg(policy), None);
            let end = pump(&mut core, 100_000);
            let stats = core.report(end);
            for (t, s) in stats.tenants.iter().enumerate() {
                assert_eq!(s.admitted, 60, "tenant {t} admitted");
                assert_eq!(s.completed, 60, "tenant {t} completed");
                assert!(s.hits <= s.accesses);
            }
            assert!(stats.batches[CH_DEMAND] > 0, "no demand traffic");
            assert!(stats.batches[CH_WRITEBACK] > 0, "no write-back traffic");
        }
    }

    #[test]
    fn runs_are_deterministic_on_the_virtual_timeline() {
        let run = || {
            let mut core = ServingCore::new(small_cfg(Policy::Drr), None);
            let end = pump(&mut core, 100_000);
            let s = core.report(end);
            (
                end,
                s.batches,
                s.blocks,
                s.tenants.iter().map(|t| t.p99_ns).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn admission_throttling_stretches_the_run() {
        let mut cfg = small_cfg(Policy::Drr);
        let fast = {
            let mut core = ServingCore::new(cfg.clone(), None);
            pump(&mut core, 100_000)
        };
        // 5k blocks/s over ~60 steps × ~9 blocks per tenant ⇒ the bucket,
        // not the device, paces the run.
        for a in &mut cfg.admission {
            a.rate_blocks_per_s = 5_000.0;
            a.burst_blocks = 16.0;
        }
        let mut core = ServingCore::new(cfg, None);
        let slow = pump(&mut core, 100_000);
        let stats = core.report(slow);
        assert!(slow > fast * 2, "throttled run {slow} vs {fast}");
        assert!(stats.tenants.iter().all(|t| t.throttled > 0));
        assert!(stats.tenants.iter().all(|t| t.completed == 60));
    }

    #[test]
    fn eviction_under_tight_budget_forces_paging_and_readahead() {
        let mut cfg = small_cfg(Policy::Drr);
        cfg.gpu_budget_blocks = cfg.workload.session_blocks * 2;
        let mut core = ServingCore::new(cfg, None);
        let end = pump(&mut core, 100_000);
        let stats = core.report(end);
        assert!(stats.evictions > 0, "tight budget must evict");
        assert!(
            stats.batches[CH_READAHEAD] > 0,
            "cold restores must prefetch"
        );
        let hit_rate: f64 = stats.tenants.iter().map(TenantStats::hit_rate).sum::<f64>() / 2.0;
        assert!(hit_rate < 1.0, "tight budget must miss");
        assert!(core.resident_blocks() <= cfg_budget(&core));
    }

    fn cfg_budget(core: &ServingCore) -> u64 {
        core.cfg.gpu_budget_blocks
    }
}
