//! Deficit-round-robin fair scheduling of tenant queues onto a channel.
//!
//! Each CAM channel carries one outstanding batch at a time, so fairness
//! is decided at batch-build time: [`FairScheduler::next_batch`] assembles
//! the next batch from the per-tenant queues. Under [`Policy::Drr`] every
//! backlogged tenant earns `quantum_blocks` of deficit per round and
//! spends it on its queued items, so a tenant with a huge backlog cannot
//! monopolize the channel — cold tenants ride in *every* batch. Under
//! [`Policy::Fifo`] (the unfair baseline the skew experiment compares
//! against) items drain in arrival order and a hot tenant's backlog heads
//! everyone else off.

use std::collections::VecDeque;

use crate::session::SessionKey;

/// Batch-building policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Deficit round robin across tenants (the fair scheduler).
    Drr,
    /// Global arrival order (the unfair baseline).
    Fifo,
}

/// One schedulable unit of work: the demand reads (or readahead) of one
/// admitted step. Items are never split across batches.
#[derive(Clone, Debug)]
pub struct WorkItem {
    /// Owning tenant.
    pub tenant: usize,
    /// Session the blocks belong to (pinned while the item is in flight).
    pub key: SessionKey,
    /// Array LBAs to move.
    pub lbas: Vec<u64>,
    /// Resident suffix length to install once the blocks land on the GPU.
    pub resident_target: u64,
    /// Admission instant — the latency clock starts here.
    pub admit_ns: u64,
}

impl WorkItem {
    /// Scheduling cost of the item, blocks.
    pub fn cost(&self) -> u64 {
        self.lbas.len() as u64
    }
}

/// A per-channel scheduler multiplexing tenant queues.
#[derive(Debug)]
pub struct FairScheduler {
    policy: Policy,
    quantum: u64,
    queues: Vec<VecDeque<WorkItem>>,
    deficit: Vec<u64>,
    /// Round-robin position, persistent across batches so service rotates.
    cursor: usize,
    fifo: VecDeque<WorkItem>,
    queued: usize,
}

impl FairScheduler {
    /// A scheduler over `n_tenants` queues. `quantum_blocks` is the DRR
    /// deficit earned per backlogged tenant per round (≥ 1).
    pub fn new(policy: Policy, n_tenants: usize, quantum_blocks: u64) -> Self {
        FairScheduler {
            policy,
            quantum: quantum_blocks.max(1),
            queues: (0..n_tenants).map(|_| VecDeque::new()).collect(),
            deficit: vec![0; n_tenants],
            cursor: 0,
            fifo: VecDeque::new(),
            queued: 0,
        }
    }

    /// Enqueues an item on its tenant's queue.
    pub fn push(&mut self, item: WorkItem) {
        self.queued += 1;
        match self.policy {
            Policy::Drr => self.queues[item.tenant].push_back(item),
            Policy::Fifo => self.fifo.push_back(item),
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.queued
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Builds the next batch, at most `max_blocks` blocks. Returns an
    /// empty vec when nothing is queued; otherwise always makes progress
    /// (at least one item, even if it alone exceeds `max_blocks`).
    pub fn next_batch(&mut self, max_blocks: u64) -> Vec<WorkItem> {
        match self.policy {
            Policy::Fifo => self.next_batch_fifo(max_blocks),
            Policy::Drr => self.next_batch_drr(max_blocks),
        }
    }

    fn next_batch_fifo(&mut self, max_blocks: u64) -> Vec<WorkItem> {
        let mut batch = Vec::new();
        let mut blocks = 0;
        while let Some(front) = self.fifo.front() {
            if !batch.is_empty() && blocks + front.cost() > max_blocks {
                break;
            }
            let item = self.fifo.pop_front().expect("front exists");
            self.queued -= 1;
            blocks += item.cost();
            batch.push(item);
        }
        batch
    }

    fn next_batch_drr(&mut self, max_blocks: u64) -> Vec<WorkItem> {
        let n = self.queues.len();
        let mut batch = Vec::new();
        let mut blocks = 0u64;
        // Rounds continue until the batch fills or a full round makes no
        // progress (every backlogged tenant's head item no longer fits).
        loop {
            let mut progressed = false;
            for off in 0..n {
                let t = (self.cursor + off) % n;
                if self.queues[t].is_empty() {
                    // An idle tenant carries no deficit into its next
                    // burst — DRR's standard reset keeps long-idle tenants
                    // from hoarding credit.
                    self.deficit[t] = 0;
                    continue;
                }
                self.deficit[t] = (self.deficit[t] + self.quantum).min(self.quantum * n as u64);
                while let Some(front) = self.queues[t].front() {
                    let cost = front.cost();
                    let fits = blocks + cost <= max_blocks || batch.is_empty();
                    if !fits || self.deficit[t] < cost {
                        break;
                    }
                    let item = self.queues[t].pop_front().expect("front exists");
                    self.queued -= 1;
                    self.deficit[t] -= cost;
                    blocks += cost;
                    batch.push(item);
                    progressed = true;
                    if blocks >= max_blocks {
                        self.cursor = (t + 1) % n;
                        return batch;
                    }
                }
                if self.queues[t].is_empty() {
                    self.deficit[t] = 0;
                }
            }
            if !progressed {
                if batch.is_empty() && self.queued > 0 {
                    // Oversize guard: a lone item larger than the whole
                    // batch budget still ships, alone.
                    for t in 0..n {
                        let q = (self.cursor + t) % n;
                        if let Some(item) = self.queues[q].pop_front() {
                            self.queued -= 1;
                            self.deficit[q] = 0;
                            self.cursor = (q + 1) % n;
                            return vec![item];
                        }
                    }
                }
                return batch;
            }
        }
    }

    /// Removes every queued item of `tenant` (disconnect mid-burst) and
    /// returns them so the caller can release session pins. In-flight
    /// items are not affected — they retire normally.
    pub fn drain_tenant(&mut self, tenant: usize) -> Vec<WorkItem> {
        let drained: Vec<WorkItem> = match self.policy {
            Policy::Drr => {
                self.deficit[tenant] = 0;
                std::mem::take(&mut self.queues[tenant]).into()
            }
            Policy::Fifo => {
                let (keep, drop): (VecDeque<_>, VecDeque<_>) = std::mem::take(&mut self.fifo)
                    .into_iter()
                    .partition(|i| i.tenant != tenant);
                self.fifo = keep;
                drop.into()
            }
        };
        self.queued -= drained.len();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(tenant: usize, blocks: u64) -> WorkItem {
        WorkItem {
            tenant,
            key: (tenant, 0),
            lbas: (0..blocks).collect(),
            resident_target: blocks,
            admit_ns: 0,
        }
    }

    #[test]
    fn drr_shares_a_batch_between_backlogged_tenants() {
        let mut s = FairScheduler::new(Policy::Drr, 2, 4);
        for _ in 0..10 {
            s.push(item(0, 4));
        }
        s.push(item(1, 4));
        let batch = s.next_batch(16);
        // Tenant 1's single item must ride in the first batch despite
        // tenant 0's 10-item backlog.
        assert!(batch.iter().any(|i| i.tenant == 1), "cold tenant starved");
        assert_eq!(batch.iter().map(WorkItem::cost).sum::<u64>(), 16);
    }

    #[test]
    fn fifo_serves_strictly_in_arrival_order() {
        let mut s = FairScheduler::new(Policy::Fifo, 2, 4);
        for _ in 0..10 {
            s.push(item(0, 4));
        }
        s.push(item(1, 4));
        let batch = s.next_batch(16);
        assert!(batch.iter().all(|i| i.tenant == 0), "FIFO must not reorder");
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn oversize_item_ships_alone() {
        let mut s = FairScheduler::new(Policy::Drr, 2, 4);
        s.push(item(0, 100));
        s.push(item(1, 2));
        let a = s.next_batch(8);
        let b = s.next_batch(8);
        let mut sizes = vec![a.len(), b.len()];
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1]);
        assert!(s.is_empty());
    }

    #[test]
    fn cursor_rotates_service_across_batches() {
        let mut s = FairScheduler::new(Policy::Drr, 3, 2);
        for t in 0..3 {
            for _ in 0..4 {
                s.push(item(t, 2));
            }
        }
        // Batches of one quantum each: first-served tenant rotates.
        let first: Vec<usize> = (0..3).map(|_| s.next_batch(2)[0].tenant).collect();
        assert_eq!(first.len(), 3);
        assert!(first[0] != first[1] || first[1] != first[2]);
    }

    #[test]
    fn drain_tenant_removes_only_that_tenant() {
        for policy in [Policy::Drr, Policy::Fifo] {
            let mut s = FairScheduler::new(policy, 2, 4);
            s.push(item(0, 2));
            s.push(item(1, 2));
            s.push(item(0, 2));
            let drained = s.drain_tenant(0);
            assert_eq!(drained.len(), 2);
            assert!(drained.iter().all(|i| i.tenant == 0));
            assert_eq!(s.len(), 1);
            let rest = s.next_batch(64);
            assert!(rest.iter().all(|i| i.tenant == 1));
        }
    }
}
