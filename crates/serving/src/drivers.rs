//! The two drivers that pump a [`ServingCore`]: the DES driver (virtual
//! time, thousands of sessions in milliseconds of CPU) and the threaded
//! driver (real `CamContext` batch tickets on the wall clock). Both obey
//! the same pump contract, so a run's metric schema is identical across
//! drivers — only the timeline differs.

use std::sync::Arc;

use cam_core::{CamConfig, CamContext};
use cam_iostacks::cam_des::{
    run_cam_des_source, CamDesBatch, CamDesConfig, CamDesObs, CamDesReport, CpuPipeModel,
    DesBatchSource,
};
use cam_iostacks::des::cam_thread_cost;
use cam_iostacks::{Rig, RigConfig};
use cam_nvme::SsdModel;
use cam_protocol::ChannelOp;
use cam_telemetry::{clock, MetricsRegistry, Observability};
use parking_lot::Mutex;

use crate::core::{ServingCore, ServingStats, N_CHANNELS};

/// Adapts a shared [`ServingCore`] to the DES driver's batch-source hook.
pub struct CoreSource(pub Arc<Mutex<ServingCore>>);

impl DesBatchSource for CoreSource {
    fn next_batch(&mut self, channel: usize, now_ns: u64) -> Option<(CamDesBatch, ChannelOp)> {
        self.0
            .lock()
            .next_batch(channel, now_ns)
            .map(|(lbas, op)| (CamDesBatch { lbas, blocks: 1 }, op))
    }

    fn on_retire(&mut self, channel: usize, now_ns: u64, errors: u64) {
        self.0.lock().on_retire(channel, now_ns, errors);
    }

    fn next_ready_ns(&mut self, now_ns: u64) -> Option<u64> {
        self.0.lock().next_ready_ns(now_ns)
    }

    fn is_drained(&self) -> bool {
        self.0.lock().is_drained()
    }
}

/// One driver's results: the serving stats plus what the substrate saw.
pub struct ServingRun {
    /// Per-tenant serving stats (identical schema across drivers).
    pub stats: ServingStats,
    /// Batches the substrate retired (cross-check against `stats.batches`).
    pub substrate_batches: u64,
}

/// Runs the core to completion on the DES driver (fault-free calibrated
/// P5510 array, pipelined reactor). Returns the serving stats and the
/// underlying [`CamDesReport`].
pub fn run_serving_des(core: Arc<Mutex<ServingCore>>, n_ssds: usize) -> (ServingRun, CamDesReport) {
    let cfg = CamDesConfig {
        n_ssds,
        block_size: 4096,
        stripe_blocks: 1,
        op: ChannelOp::Read, // ignored: each serving batch brings its own op
        threads: 2.min(n_ssds),
        queue_depth: CamConfig::default().queue_depth,
        pipelined: true,
        thread_cost: cam_thread_cost(n_ssds as f64),
        cpu_pipe: CpuPipeModel::calibrated(),
        host_gbps: 21.0,
        retry: CamDesConfig::inert_retry(),
        fault: None,
        ssd_model: SsdModel::p5510(),
    };
    let report = run_cam_des_source(
        cfg,
        N_CHANNELS,
        Box::new(CoreSource(Arc::clone(&core))),
        None,
        CamDesObs {
            windows: None,
            slo: None,
            lifecycle: false,
        },
    );
    let stats = core.lock().report(report.duration.as_ns());
    (
        ServingRun {
            stats,
            substrate_batches: report.batches,
        },
        report,
    )
}

/// Runs the core to completion on the threaded functional driver: a real
/// `CamContext` over sparse media, one outstanding batch ticket per
/// channel, polled on the wall clock. `registry` (when given) should be
/// the registry the core's [`TenantMetrics`](cam_telemetry::TenantMetrics)
/// were built against, so control-plane and tenant metrics land together.
pub fn run_serving_threaded(
    core: Arc<Mutex<ServingCore>>,
    n_ssds: usize,
    registry: Option<Arc<MetricsRegistry>>,
) -> ServingRun {
    let (capacity, max_batch) = {
        let c = core.lock();
        (c.capacity_blocks(), c.max_batch_blocks())
    };
    let rig_cfg = RigConfig {
        n_ssds,
        blocks_per_ssd: capacity.div_ceil(n_ssds as u64).max(64),
        ..RigConfig::default()
    };
    let block_size = u64::from(rig_cfg.block_size);
    let rig = Rig::new(rig_cfg);
    let obs = match registry {
        Some(reg) => Observability::with_registry(reg),
        None => Observability::default(),
    };
    let cam = CamContext::attach_observed(
        &rig,
        CamConfig {
            n_channels: N_CHANNELS,
            workers: Some(2.min(n_ssds)),
            ..CamConfig::default()
        },
        obs,
    );
    let dev = cam.device();
    // One buffer per channel, sized for the largest batch; the oversize
    // guard can exceed it, so destinations wrap (read data is not
    // consumed by the serving model).
    let buf_blocks = max_batch.max(1);
    let bufs: Vec<_> = (0..N_CHANNELS)
        .map(|_| {
            cam.alloc(buf_blocks as usize * block_size as usize)
                .expect("serving buffer")
        })
        .collect();
    let mut tickets: [Option<cam_core::BatchTicket>; N_CHANNELS] = [None, None, None];

    loop {
        let mut all_idle = true;
        for ch in 0..N_CHANNELS {
            if let Some(t) = &tickets[ch] {
                if !t.is_done() {
                    all_idle = false;
                    continue;
                }
                tickets[ch] = None;
                core.lock().on_retire(ch, clock::now_ns(), 0);
            }
            let next = core.lock().next_batch(ch, clock::now_ns());
            if let Some((lbas, op)) = next {
                let addr = bufs[ch].addr();
                let ticket = dev
                    .submit_scatter(
                        ch,
                        op,
                        &lbas,
                        |i| addr + (i as u64 % buf_blocks) * block_size,
                        1,
                    )
                    .expect("serving submit");
                tickets[ch] = Some(ticket);
                all_idle = false;
            }
        }
        if all_idle {
            if core.lock().is_drained() {
                break;
            }
            // Admission-throttled on the wall clock: let time pass.
            std::thread::yield_now();
        }
    }
    let stats = core.lock().report(clock::now_ns());
    let substrate_batches = cam.stats().batches;
    drop(cam);
    ServingRun {
        stats,
        substrate_batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServingConfig;
    use crate::sched::Policy;
    use cam_workloads::kv_cache::KvCacheConfig;

    fn small_core(seed: u64) -> ServingCore {
        let mut wl = KvCacheConfig::uniform(3, 6, 40);
        wl.seed = seed;
        let mut cfg = ServingConfig::for_workload(wl, Policy::Drr);
        cfg.max_batch_blocks = 64;
        // Two sessions' worth of GPU budget: the other sixteen page.
        cfg.gpu_budget_blocks = cfg.workload.session_blocks * 2;
        ServingCore::new(cfg, None)
    }

    #[test]
    fn des_driver_retires_every_tenant_and_is_deterministic() {
        let run = || {
            let core = Arc::new(Mutex::new(small_core(11)));
            let (run, report) = run_serving_des(core, 2);
            assert!(report.duration.as_ns() > 0);
            (
                report.duration.as_ns(),
                run.stats.batches,
                run.stats
                    .tenants
                    .iter()
                    .map(|t| (t.completed, t.p99_ns))
                    .collect::<Vec<_>>(),
            )
        };
        let a = run();
        assert!(a.2.iter().all(|&(completed, _)| completed == 40));
        assert_eq!(a, run(), "DES serving run must be deterministic");
    }

    #[test]
    fn threaded_driver_retires_every_tenant_with_the_same_schema() {
        let core = Arc::new(Mutex::new(small_core(13)));
        let run = run_serving_threaded(core, 2, None);
        assert_eq!(run.stats.tenants.len(), 3);
        for t in &run.stats.tenants {
            assert_eq!(t.completed, 40);
            assert!(t.rps > 0.0);
        }
        assert!(run.stats.batches[0] > 0);
        assert_eq!(
            run.substrate_batches,
            run.stats.batches.iter().sum::<u64>(),
            "every published batch must retire through the substrate"
        );
    }
}
