//! Per-tenant token-bucket admission.
//!
//! Cost is measured in KV *blocks* (reads + writes a step implies), so a
//! tenant's rate limit is a paging-bandwidth budget, not a request count.
//! Like everything in this crate the bucket is clock-agnostic: callers
//! pass the timeline instant explicitly, so the same code meters wall time
//! under the threaded driver and virtual time under the DES.

/// Token-bucket parameters.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Sustained refill rate, KV blocks per second.
    pub rate_blocks_per_s: f64,
    /// Bucket capacity — the largest burst admitted at once, blocks.
    pub burst_blocks: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_blocks_per_s: 100_000.0,
            burst_blocks: 256.0,
        }
    }
}

/// A classic token bucket on an explicit nanosecond timeline.
#[derive(Debug)]
pub struct TokenBucket {
    cfg: AdmissionConfig,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(cfg: AdmissionConfig) -> Self {
        TokenBucket {
            tokens: cfg.burst_blocks,
            cfg,
            last_ns: 0,
        }
    }

    fn refill(&mut self, now_ns: u64) {
        let dt = now_ns.saturating_sub(self.last_ns);
        if dt > 0 {
            self.tokens = (self.tokens + dt as f64 * 1e-9 * self.cfg.rate_blocks_per_s)
                .min(self.cfg.burst_blocks);
            self.last_ns = now_ns;
        }
    }

    /// Admits `cost` blocks at `now_ns` if the bucket holds enough tokens.
    /// A cost above the burst capacity is clamped to it — an oversized step
    /// admits once the bucket is full rather than never.
    pub fn try_take(&mut self, now_ns: u64, cost: f64) -> bool {
        self.refill(now_ns);
        let cost = cost.min(self.cfg.burst_blocks);
        if self.tokens + 1e-9 >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Earliest instant at which `try_take(_, cost)` could succeed, given
    /// the balance left by the last call. Used to arm the DES wake-up timer
    /// when every tenant is admission-stalled.
    pub fn ready_at(&self, cost: f64) -> u64 {
        let cost = cost.min(self.cfg.burst_blocks);
        let deficit = cost - self.tokens;
        if deficit <= 0.0 {
            return self.last_ns;
        }
        let wait_ns = (deficit / self.cfg.rate_blocks_per_s * 1e9).ceil() as u64;
        self.last_ns + wait_ns.max(1)
    }

    /// Tokens currently in the bucket (after the last refill).
    pub fn balance(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(rate: f64, burst: f64) -> TokenBucket {
        TokenBucket::new(AdmissionConfig {
            rate_blocks_per_s: rate,
            burst_blocks: burst,
        })
    }

    #[test]
    fn starts_full_then_meters_at_rate() {
        // 1000 blocks/s, burst 10: the initial burst admits 10, then one
        // block per millisecond.
        let mut b = bucket(1000.0, 10.0);
        assert!(b.try_take(0, 10.0));
        assert!(!b.try_take(0, 1.0));
        let t = b.ready_at(1.0);
        assert!((900_000..=1_100_000).contains(&t), "ready_at = {t}");
        assert!(!b.try_take(t - 500_000, 1.0));
        assert!(b.try_take(t, 1.0));
    }

    #[test]
    fn refill_caps_at_burst_and_oversize_clamps() {
        let mut b = bucket(1_000_000.0, 4.0);
        assert!(b.try_take(0, 4.0));
        // A long idle period refills to burst, not beyond.
        b.refill(1_000_000_000);
        assert!(b.balance() <= 4.0 + 1e-9);
        // A 100-block step clamps to the 4-block burst: admits when full.
        assert!(b.try_take(1_000_000_000, 100.0));
        assert!(b.balance() < 1.0);
    }

    #[test]
    fn ready_at_never_moves_backwards_in_need() {
        let mut b = bucket(500.0, 8.0);
        assert!(b.try_take(0, 8.0));
        assert!(b.ready_at(4.0) < b.ready_at(8.0));
    }
}
