//! [`MiniFs`] — a minimal extent-based filesystem over a raw block store.
//!
//! Exists to make the paper's "file system" layer cost *real* rather than a
//! bare constant: files are allocated as extents that can be fragmented
//! (files "are not always mapped to continuous blocks", § II-A), so every
//! O_DIRECT-style read must first translate (file, offset) → LBA runs. The
//! POSIX and GDS baselines in `cam-iostacks` run on this; CAM bypasses it by
//! requiring raw block devices (§ III-C, limitation 1).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use cam_blockdev::{BlockError, BlockStore, Extent, ExtentAllocator, Lba};
use parking_lot::{Mutex, RwLock};

/// Handle to a file in a [`MiniFs`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FileId(u32);

/// Filesystem errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsError {
    /// Not enough contiguous-or-fragmented space for the file.
    NoSpace,
    /// Unknown file handle.
    NoSuchFile,
    /// Access past the end of the file.
    BeyondEof,
    /// Offset or length not block-aligned (O_DIRECT semantics).
    Misaligned,
    /// Underlying store error.
    Store(BlockError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoSuchFile => write!(f, "no such file"),
            FsError::BeyondEof => write!(f, "access beyond end of file"),
            FsError::Misaligned => write!(f, "offset/length not block-aligned"),
            FsError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for FsError {}

struct FileMeta {
    size_bytes: u64,
    extents: Vec<Extent>,
}

/// The filesystem. Thread-safe; lookups are counted so experiments can
/// report LBA-retrieval work.
pub struct MiniFs {
    store: Arc<dyn BlockStore>,
    alloc: Mutex<ExtentAllocator>,
    files: RwLock<HashMap<u32, FileMeta>>,
    next_id: AtomicU32,
    lookups: AtomicU64,
}

impl MiniFs {
    /// Formats (takes over) a block store.
    pub fn format(store: Arc<dyn BlockStore>) -> Self {
        let blocks = store.geometry().blocks;
        MiniFs {
            store,
            alloc: Mutex::new(ExtentAllocator::new(blocks)),
            files: RwLock::new(HashMap::new()),
            next_id: AtomicU32::new(1),
            lookups: AtomicU64::new(0),
        }
    }

    /// Block size of the underlying store.
    pub fn block_size(&self) -> u32 {
        self.store.geometry().block_size
    }

    /// Creates a file of `size_bytes`, allocated in extents of at most
    /// `max_extent_blocks` (smaller values model fragmentation).
    pub fn create_with_max_extent(
        &self,
        size_bytes: u64,
        max_extent_blocks: u64,
    ) -> Result<FileId, FsError> {
        assert!(max_extent_blocks >= 1);
        let bs = self.block_size() as u64;
        let mut remaining = size_bytes.div_ceil(bs);
        let mut extents = Vec::new();
        let mut alloc = self.alloc.lock();
        while remaining > 0 {
            let want = remaining.min(max_extent_blocks);
            // First fit at the wanted size, falling back to whatever run
            // exists (so nearly-full disks still fill up, fragmenting).
            let got = alloc.alloc(want).or_else(|| {
                let mut sz = want / 2;
                while sz >= 1 {
                    if let Some(e) = alloc.alloc(sz) {
                        return Some(e);
                    }
                    sz /= 2;
                }
                None
            });
            match got {
                Some(e) => {
                    remaining -= e.blocks;
                    extents.push(e);
                }
                None => {
                    for e in extents {
                        alloc.free(e);
                    }
                    return Err(FsError::NoSpace);
                }
            }
        }
        drop(alloc);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.files.write().insert(
            id,
            FileMeta {
                size_bytes,
                extents,
            },
        );
        Ok(FileId(id))
    }

    /// Creates a file with the default maximal extent size (128 MiB worth
    /// of blocks, like ext4's extent limit order of magnitude).
    pub fn create(&self, size_bytes: u64) -> Result<FileId, FsError> {
        let max = (128u64 << 20) / self.block_size() as u64;
        self.create_with_max_extent(size_bytes, max.max(1))
    }

    /// Deletes a file, freeing its extents.
    pub fn delete(&self, file: FileId) -> Result<(), FsError> {
        let meta = self
            .files
            .write()
            .remove(&file.0)
            .ok_or(FsError::NoSuchFile)?;
        let mut alloc = self.alloc.lock();
        for e in meta.extents {
            alloc.free(e);
        }
        Ok(())
    }

    /// File size in bytes.
    pub fn size_of(&self, file: FileId) -> Result<u64, FsError> {
        self.files
            .read()
            .get(&file.0)
            .map(|m| m.size_bytes)
            .ok_or(FsError::NoSuchFile)
    }

    /// Number of extents backing the file (fragmentation indicator).
    pub fn extent_count(&self, file: FileId) -> Result<usize, FsError> {
        self.files
            .read()
            .get(&file.0)
            .map(|m| m.extents.len())
            .ok_or(FsError::NoSuchFile)
    }

    /// Total LBA lookups performed (the "file system layer" work).
    pub fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Translates `(file, offset, len)` into contiguous `(Lba, blocks)`
    /// runs — the logical-block-address retrieval every kernel-path request
    /// performs. Offset and length must be block-aligned.
    pub fn lookup(&self, file: FileId, offset: u64, len: u64) -> Result<Vec<(Lba, u64)>, FsError> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let bs = self.block_size() as u64;
        if !offset.is_multiple_of(bs) || !len.is_multiple_of(bs) || len == 0 {
            return Err(FsError::Misaligned);
        }
        let files = self.files.read();
        let meta = files.get(&file.0).ok_or(FsError::NoSuchFile)?;
        let file_blocks = meta.size_bytes.div_ceil(bs);
        let mut block = offset / bs;
        let mut remaining = len / bs;
        if block + remaining > file_blocks {
            return Err(FsError::BeyondEof);
        }
        let mut runs: Vec<(Lba, u64)> = Vec::new();
        // Walk extents to find the run containing `block`.
        let mut skipped = 0u64;
        for e in &meta.extents {
            if remaining == 0 {
                break;
            }
            if block >= skipped + e.blocks {
                skipped += e.blocks;
                continue;
            }
            let within = block - skipped;
            let take = (e.blocks - within).min(remaining);
            let lba = e.start + within;
            match runs.last_mut() {
                Some((last_lba, last_n)) if last_lba.index() + *last_n == lba.index() => {
                    *last_n += take;
                }
                _ => runs.push((lba, take)),
            }
            block += take;
            remaining -= take;
            skipped += e.blocks;
        }
        debug_assert_eq!(remaining, 0, "extent walk must cover the range");
        Ok(runs)
    }

    /// O_DIRECT-style read: block-aligned offset and buffer.
    pub fn read(&self, file: FileId, offset: u64, buf: &mut [u8]) -> Result<(), FsError> {
        let bs = self.block_size() as usize;
        let runs = self.lookup(file, offset, buf.len() as u64)?;
        let mut done = 0usize;
        for (lba, blocks) in runs {
            let n = blocks as usize * bs;
            self.store
                .read(lba, &mut buf[done..done + n])
                .map_err(FsError::Store)?;
            done += n;
        }
        Ok(())
    }

    /// O_DIRECT-style write: block-aligned offset and buffer.
    pub fn write(&self, file: FileId, offset: u64, buf: &[u8]) -> Result<(), FsError> {
        let bs = self.block_size() as usize;
        let runs = self.lookup(file, offset, buf.len() as u64)?;
        let mut done = 0usize;
        for (lba, blocks) in runs {
            let n = blocks as usize * bs;
            self.store
                .write(lba, &buf[done..done + n])
                .map_err(FsError::Store)?;
            done += n;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_blockdev::{BlockGeometry, SparseMemStore};

    fn fs_with(blocks: u64) -> MiniFs {
        MiniFs::format(Arc::new(SparseMemStore::new(BlockGeometry::new(
            512, blocks,
        ))))
    }

    #[test]
    fn create_read_write_round_trip() {
        let fs = fs_with(1024);
        let f = fs.create(10 * 512).unwrap();
        assert_eq!(fs.size_of(f).unwrap(), 5120);
        let data: Vec<u8> = (0..2048).map(|i| (i % 241) as u8).collect();
        fs.write(f, 512, &data).unwrap();
        let mut out = vec![0u8; 2048];
        fs.read(f, 512, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn fragmented_files_span_multiple_extents() {
        let fs = fs_with(1024);
        let f = fs.create_with_max_extent(100 * 512, 16).unwrap();
        assert_eq!(fs.extent_count(f).unwrap(), 100usize.div_ceil(16));
        // Data still reads back correctly across fragment boundaries.
        let data: Vec<u8> = (0..100 * 512).map(|i| (i % 233) as u8).collect();
        fs.write(f, 0, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        fs.read(f, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn deletions_fragment_later_files() {
        // Fill the disk with small files, delete every other one, then
        // allocate a large file into the holes: its LBA runs cannot be
        // contiguous — the situation that forces real filesystems to do
        // per-request LBA lookup.
        let fs = fs_with(128);
        let files: Vec<FileId> = (0..16)
            .map(|_| fs.create_with_max_extent(8 * 512, 8).unwrap())
            .collect();
        for f in files.iter().step_by(2) {
            fs.delete(*f).unwrap();
        }
        let big = fs.create(64 * 512).unwrap();
        let runs = fs.lookup(big, 0, 64 * 512).unwrap();
        assert!(runs.len() > 1, "expected fragmentation, got {runs:?}");
        // Still reads back correctly across the scattered runs.
        let data: Vec<u8> = (0..64 * 512).map(|i| (i % 229) as u8).collect();
        fs.write(big, 0, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        fs.read(big, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn lookup_coalesces_adjacent_extents() {
        let fs = fs_with(1024);
        // Two extents allocated back-to-back are physically contiguous,
        // so lookup should return one run.
        let f = fs.create_with_max_extent(32 * 512, 16).unwrap();
        assert_eq!(fs.extent_count(f).unwrap(), 2);
        let runs = fs.lookup(f, 0, 32 * 512).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].1, 32);
    }

    #[test]
    fn lookup_counts_accumulate() {
        let fs = fs_with(256);
        let f = fs.create(512).unwrap();
        let before = fs.lookup_count();
        let mut buf = vec![0u8; 512];
        fs.read(f, 0, &mut buf).unwrap();
        fs.read(f, 0, &mut buf).unwrap();
        assert_eq!(fs.lookup_count() - before, 2);
    }

    #[test]
    fn alignment_and_bounds_enforced() {
        let fs = fs_with(256);
        let f = fs.create(4 * 512).unwrap();
        let mut buf = vec![0u8; 512];
        assert_eq!(fs.read(f, 100, &mut buf), Err(FsError::Misaligned));
        assert_eq!(fs.read(f, 4 * 512, &mut buf), Err(FsError::BeyondEof));
        let mut odd = vec![0u8; 100];
        assert_eq!(fs.read(f, 0, &mut odd), Err(FsError::Misaligned));
    }

    #[test]
    fn delete_frees_space() {
        let fs = fs_with(64);
        let f = fs.create(64 * 512).unwrap();
        assert!(matches!(fs.create(512), Err(FsError::NoSpace)));
        fs.delete(f).unwrap();
        assert!(fs.create(64 * 512).is_ok());
        assert_eq!(fs.delete(f), Err(FsError::NoSuchFile));
    }

    #[test]
    fn no_space_rolls_back_partial_allocation() {
        let fs = fs_with(64);
        let _a = fs.create(32 * 512).unwrap();
        assert!(matches!(fs.create(40 * 512), Err(FsError::NoSpace)));
        // The failed create must not leak its partial extents.
        let b = fs.create(32 * 512).unwrap();
        assert_eq!(fs.size_of(b).unwrap(), 32 * 512);
    }
}
