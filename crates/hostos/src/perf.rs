//! [`CpuModel`] — instructions/cycles per request (Fig. 13).
//!
//! The paper measures CPU *instructions* and *cycles* spent per request for
//! CAM, SPDK and libaio, and explains the asymmetry: kernel bypass removes
//! instructions; polling converts waiting into a short, high-IPC loop while
//! interrupt-driven completion burns stall-heavy cycles in IRQ + context
//! switch. This module reproduces that mechanism:
//!
//! * submit-side instructions ≈ layer CPU time × frequency × layer IPC;
//! * interrupt stacks add IRQ/context-switch instructions at very low IPC;
//! * polled stacks add `poll iterations per completion × instructions per
//!   iteration` at high IPC — and the iteration count *grows when the
//!   device is slower* (writes), which is exactly why the paper sees
//!   "slightly fewer instructions but significantly fewer cycles" for
//!   CAM/SPDK on writes.

use cam_simkit::Dur;

use crate::stacks::{IoDir, IoStackKind};

/// Instruction/cycle totals attributed to one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfCounts {
    /// Retired instructions.
    pub instructions: u64,
    /// CPU cycles.
    pub cycles: u64,
}

/// Microarchitectural parameters of the host CPU.
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// Core frequency, GHz.
    pub freq_ghz: f64,
    /// IPC of kernel I/O-path code (branchy, cache-missy).
    pub kernel_ipc: f64,
    /// IPC of user-space submission code.
    pub user_ipc: f64,
    /// IPC of a tight poll loop (the paper: "this polling method has a high
    /// instructions per cycle ratio").
    pub poll_ipc: f64,
    /// Instructions of one poll-loop iteration.
    pub poll_iter_instructions: u64,
    /// Wall time of one poll-loop iteration.
    pub poll_iter_time: Dur,
    /// Instructions charged to IRQ + completion context switch.
    pub irq_instructions: u64,
    /// Cycles charged to IRQ + completion context switch (stall heavy).
    pub irq_cycles: u64,
}

impl CpuModel {
    /// Completion-rate floor for [`per_request`](Self::per_request).
    /// A non-finite or sub-floor rate (an idle or unmeasured core) saturates
    /// here rather than producing an unbounded — or, for NaN, silently
    /// arbitrary — poll-iteration count: the model then charges at most one
    /// second of polling per request.
    pub const MIN_RATE_PER_CORE: f64 = 1.0;

    /// The testbed's Xeon Gold 5320 @ 2.20 GHz.
    pub fn xeon_gold_5320() -> Self {
        CpuModel {
            freq_ghz: 2.2,
            kernel_ipc: 0.9,
            user_ipc: 2.5,
            poll_ipc: 3.0,
            poll_iter_instructions: 60,
            poll_iter_time: Dur::ns(100),
            irq_instructions: 2_000,
            irq_cycles: 9_000,
        }
    }

    /// Instructions/cycles one request costs on `stack`, given the
    /// per-core completion rate the stack achieves (requests/s) — slower
    /// completion means more empty polls per request. Rates below
    /// [`MIN_RATE_PER_CORE`](Self::MIN_RATE_PER_CORE) (including 0, NaN and
    /// infinities from degenerate measurements) saturate to that floor.
    pub fn per_request(&self, stack: IoStackKind, dir: IoDir, rate_per_core: f64) -> PerfCounts {
        let rate_per_core = if rate_per_core.is_finite() {
            rate_per_core.max(Self::MIN_RATE_PER_CORE)
        } else if rate_per_core == f64::INFINITY {
            rate_per_core
        } else {
            // NaN or -inf: no meaningful measurement — saturate.
            Self::MIN_RATE_PER_CORE
        };
        let costs = stack.layer_costs(dir);
        let (submit_cycles, submit_instr) = if stack.uses_kernel() {
            let user_cycles = costs.user.as_ns() as f64 * self.freq_ghz;
            let kernel_ns = (costs.filesystem + costs.io_map + costs.block_io).as_ns() as f64;
            let kernel_cycles = kernel_ns * self.freq_ghz;
            (
                user_cycles + kernel_cycles,
                user_cycles * self.user_ipc + kernel_cycles * self.kernel_ipc,
            )
        } else {
            let user_cycles = costs.user.as_ns() as f64 * self.freq_ghz;
            (user_cycles, user_cycles * self.user_ipc)
        };

        let (wait_instr, wait_cycles) = if stack.interrupt_driven() {
            (self.irq_instructions as f64, self.irq_cycles as f64)
        } else {
            // Mean time between completions on this core, spent polling.
            let interval_ns = 1e9 / rate_per_core;
            let submit_ns = costs.total().as_ns() as f64;
            let poll_ns = (interval_ns - submit_ns).max(0.0);
            let iters = poll_ns / self.poll_iter_time.as_ns() as f64;
            let instr = iters * self.poll_iter_instructions as f64;
            (instr, instr / self.poll_ipc)
        };

        PerfCounts {
            instructions: (submit_instr + wait_instr) as u64,
            cycles: (submit_cycles + wait_cycles) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const READ_RATE: f64 = 427_000.0; // per-core 4 KiB read completions/s
    const WRITE_RATE: f64 = 166_000.0;

    fn counts(stack: IoStackKind, dir: IoDir) -> PerfCounts {
        let rate = match dir {
            IoDir::Read => READ_RATE,
            IoDir::Write => WRITE_RATE,
        };
        CpuModel::xeon_gold_5320().per_request(stack, dir, rate)
    }

    #[test]
    fn cam_and_spdk_use_fewer_instructions_than_libaio_on_reads() {
        let libaio = counts(IoStackKind::Libaio, IoDir::Read);
        let spdk = counts(IoStackKind::Spdk, IoDir::Read);
        let cam = counts(IoStackKind::Cam, IoDir::Read);
        assert!(cam.instructions < libaio.instructions);
        assert!(spdk.instructions < libaio.instructions);
        assert!(cam.cycles < libaio.cycles / 3, "{cam:?} vs {libaio:?}");
    }

    #[test]
    fn writes_cost_polled_stacks_more_than_reads() {
        // Slower completions → more poll iterations per request.
        let r = counts(IoStackKind::Cam, IoDir::Read);
        let w = counts(IoStackKind::Cam, IoDir::Write);
        assert!(w.instructions > r.instructions);
        assert!(w.cycles > r.cycles);
    }

    #[test]
    fn write_gap_is_slight_in_instructions_large_in_cycles() {
        // The paper: "when comparing random write workloads, CAM and SPDK
        // incur slightly fewer instructions but significantly fewer cycles
        // than libaio."
        let libaio = counts(IoStackKind::Libaio, IoDir::Write);
        let cam = counts(IoStackKind::Cam, IoDir::Write);
        assert!(cam.instructions < libaio.instructions);
        let instr_ratio = libaio.instructions as f64 / cam.instructions as f64;
        assert!(
            instr_ratio < 2.5,
            "instruction gap too large: {instr_ratio}"
        );
        let cycle_ratio = libaio.cycles as f64 / cam.cycles as f64;
        assert!(cycle_ratio > 3.0, "cycle gap too small: {cycle_ratio}");
    }

    #[test]
    fn polling_has_high_ipc() {
        let cam = counts(IoStackKind::Cam, IoDir::Write);
        let ipc = cam.instructions as f64 / cam.cycles as f64;
        assert!(ipc > 1.5, "polled IPC should be high, got {ipc}");
        let libaio = counts(IoStackKind::Libaio, IoDir::Write);
        let ipc = libaio.instructions as f64 / libaio.cycles as f64;
        assert!(ipc < 1.0, "interrupt IPC should be low, got {ipc}");
    }

    #[test]
    fn zero_rate_saturates_at_documented_floor() {
        // Regression: a 0.0 completion rate (idle core) must behave exactly
        // like MIN_RATE_PER_CORE — one second of polling charged — not
        // divide by zero or blow up the iteration count.
        let m = CpuModel::xeon_gold_5320();
        let zero = m.per_request(IoStackKind::Cam, IoDir::Read, 0.0);
        let floor = m.per_request(IoStackKind::Cam, IoDir::Read, CpuModel::MIN_RATE_PER_CORE);
        assert_eq!(zero, floor);
        // ~1 s / 100 ns poll iteration × 60 instructions ≈ 6e8 instructions.
        assert!(zero.instructions > 100_000_000);
        assert!(zero.instructions < 1_000_000_000);
        // Negative rates saturate identically.
        assert_eq!(m.per_request(IoStackKind::Cam, IoDir::Read, -5.0), floor);
    }

    #[test]
    fn non_finite_rates_do_not_poison_the_model() {
        let m = CpuModel::xeon_gold_5320();
        let floor = m.per_request(IoStackKind::Cam, IoDir::Read, CpuModel::MIN_RATE_PER_CORE);
        // NaN previously slipped through `.max(1.0)` as rate = 1 by accident
        // of f64::max's NaN handling; now it saturates by contract.
        assert_eq!(
            m.per_request(IoStackKind::Cam, IoDir::Read, f64::NAN),
            floor
        );
        assert_eq!(
            m.per_request(IoStackKind::Cam, IoDir::Read, f64::NEG_INFINITY),
            floor
        );
        // +inf means zero wait: only submit-side costs remain.
        let inf = m.per_request(IoStackKind::Cam, IoDir::Read, f64::INFINITY);
        assert!(inf.instructions < floor.instructions);
        assert!(inf.instructions > 0);
    }

    #[test]
    fn cam_and_spdk_within_noise_of_each_other() {
        for dir in [IoDir::Read, IoDir::Write] {
            let cam = counts(IoStackKind::Cam, dir);
            let spdk = counts(IoStackKind::Spdk, dir);
            let rel = (cam.cycles as f64 - spdk.cycles as f64).abs() / spdk.cycles as f64;
            assert!(rel < 0.2, "{dir:?}: {cam:?} vs {spdk:?}");
        }
    }
}
