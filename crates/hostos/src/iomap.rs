//! [`IoMapper`] — the I/O-mapping layer's functional counterpart: page
//! pin/unpin accounting.
//!
//! The paper's "Opportunity for Improvement" (§ II-A): kernel stacks pin
//! and unpin the destination pages *per request* because "they don't know
//! the total request size ahead of time, so they can't map once in a
//! single batching access", whereas a batching design can map once before
//! the batch and unmap once after. `IoMapper` makes that cost observable:
//! the POSIX path pins per request; CAM's pinned GPU memory is mapped once
//! at `CAM_alloc` time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Page pin/unpin accounting for one address space.
#[derive(Default)]
pub struct IoMapper {
    pins: AtomicU64,
    unpins: AtomicU64,
    pinned_pages: AtomicU64,
    peak_pinned: AtomicU64,
}

/// Pages held pinned; unpins on drop.
pub struct PinnedPages {
    mapper: Arc<IoMapper>,
    pages: u64,
}

impl IoMapper {
    /// Host page size.
    pub const PAGE: u64 = 4096;

    /// Creates a mapper.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Pins the pages covering `bytes` (one `io_map` call). Returns a
    /// guard that unpins on drop.
    pub fn pin(self: &Arc<Self>, bytes: u64) -> PinnedPages {
        let pages = bytes.div_ceil(Self::PAGE).max(1);
        self.pins.fetch_add(1, Ordering::Relaxed);
        let now = self.pinned_pages.fetch_add(pages, Ordering::Relaxed) + pages;
        self.peak_pinned.fetch_max(now, Ordering::Relaxed);
        PinnedPages {
            mapper: Arc::clone(self),
            pages,
        }
    }

    /// `io_map` (pin) calls so far.
    pub fn pin_calls(&self) -> u64 {
        self.pins.load(Ordering::Relaxed)
    }

    /// Unpin calls so far.
    pub fn unpin_calls(&self) -> u64 {
        self.unpins.load(Ordering::Relaxed)
    }

    /// Pages currently pinned.
    pub fn pinned_pages(&self) -> u64 {
        self.pinned_pages.load(Ordering::Relaxed)
    }

    /// High-water mark of pinned pages.
    pub fn peak_pinned_pages(&self) -> u64 {
        self.peak_pinned.load(Ordering::Relaxed)
    }
}

impl Drop for PinnedPages {
    fn drop(&mut self) {
        self.mapper.unpins.fetch_add(1, Ordering::Relaxed);
        self.mapper
            .pinned_pages
            .fetch_sub(self.pages, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_unpin_balance() {
        let m = IoMapper::new();
        {
            let _a = m.pin(8192); // 2 pages
            let _b = m.pin(1); // 1 page (rounded up)
            assert_eq!(m.pin_calls(), 2);
            assert_eq!(m.pinned_pages(), 3);
        }
        assert_eq!(m.unpin_calls(), 2);
        assert_eq!(m.pinned_pages(), 0);
        assert_eq!(m.peak_pinned_pages(), 3);
    }

    #[test]
    fn per_request_vs_batched_mapping() {
        // The Opportunity: N requests pinned one-by-one cost N io_map
        // round trips; the same bytes mapped once cost 1.
        let per_request = IoMapper::new();
        for _ in 0..64 {
            let _g = per_request.pin(4096);
        }
        assert_eq!(per_request.pin_calls() + per_request.unpin_calls(), 128);

        let batched = IoMapper::new();
        {
            let _g = batched.pin(64 * 4096);
        }
        assert_eq!(batched.pin_calls() + batched.unpin_calls(), 2);
        assert_eq!(batched.peak_pinned_pages(), 64);
    }
}
