//! [`IoStackKind`] — calibrated per-request CPU costs of the software I/O
//! stacks, split by the paper's four layers.
//!
//! Fig. 3 divides each request's host-side time into **User**, **file
//! system** (LBA retrieval), **I/O mapping** (page pin/unpin + add to bio),
//! and **Block I/O** (request-queue handling + device notification). The
//! kernel stacks pay all four per request; SPDK and CAM run entirely in user
//! space and pay only a (small) user-layer cost. The constants below are
//! calibrated so that the derived maximum 4 KiB command rates reproduce
//! Fig. 2's ordering and magnitudes against the P5510 model:
//!
//! | stack         | 4 KiB read CPU/req | max rate vs device 427 K |
//! |---------------|--------------------|--------------------------|
//! | POSIX pread   | ~4.5 µs            | ~222 K — far below       |
//! | libaio        | ~2.8 µs            | ~357 K — below           |
//! | io_uring int  | ~2.4 µs            | ~417 K — just below      |
//! | io_uring poll | ~1.9 µs            | device-bound (~427 K)    |
//! | SPDK          | ~0.45 µs           | device-bound             |
//! | CAM           | ~0.50 µs           | device-bound             |
//!
//! and the fs + io_map share of the kernel stacks exceeds the paper's
//! "more than 34%" observation.

use cam_simkit::Dur;

/// Transfer direction (writes cost slightly more in the kernel layers:
/// dirty-page bookkeeping and stricter pinning).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum IoDir {
    /// Device → memory.
    Read,
    /// Memory → device.
    Write,
}

/// Per-request CPU time in each of the paper's four layers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LayerCosts {
    /// Application + syscall entry/exit.
    pub user: Dur,
    /// File system: logical-block-address retrieval.
    pub filesystem: Dur,
    /// I/O mapping: pin kernel pages, build the bio.
    pub io_map: Dur,
    /// Block I/O: request queue + SSD notification (+ interrupt handling).
    pub block_io: Dur,
}

impl LayerCosts {
    /// Total CPU time per request.
    pub fn total(&self) -> Dur {
        self.user + self.filesystem + self.io_map + self.block_io
    }

    /// Fraction of the total spent in filesystem + io_map (the share the
    /// paper singles out as avoidable for batched fixed-layout access).
    pub fn avoidable_fraction(&self) -> f64 {
        let t = self.total().as_ns() as f64;
        if t == 0.0 {
            return 0.0;
        }
        (self.filesystem + self.io_map).as_ns() as f64 / t
    }
}

/// The software I/O stacks compared throughout the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum IoStackKind {
    /// POSIX `pread`/`pwrite` with `O_DIRECT` (synchronous, per-call kernel
    /// traversal).
    Posix,
    /// Linux native AIO (`io_submit`/`io_getevents`), interrupt completion.
    Libaio,
    /// `io_uring`, interrupt-driven completion.
    IoUringInt,
    /// `io_uring` with kernel-side polling (`IORING_SETUP_IOPOLL`).
    IoUringPoll,
    /// SPDK user-space driver (kernel bypass, polled completions, data
    /// staged through CPU memory when feeding a GPU).
    Spdk,
    /// CAM's CPU user-space control plane (kernel bypass, polled, direct
    /// SSD↔GPU data path).
    Cam,
}

impl IoStackKind {
    /// All stacks, in the order the paper's figures list them.
    pub const ALL: [IoStackKind; 6] = [
        IoStackKind::Posix,
        IoStackKind::Libaio,
        IoStackKind::IoUringInt,
        IoStackKind::IoUringPoll,
        IoStackKind::Spdk,
        IoStackKind::Cam,
    ];

    /// Display name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            IoStackKind::Posix => "POSIX I/O",
            IoStackKind::Libaio => "libaio",
            IoStackKind::IoUringInt => "io_uring int",
            IoStackKind::IoUringPoll => "io_uring poll",
            IoStackKind::Spdk => "SPDK",
            IoStackKind::Cam => "CAM",
        }
    }

    /// Whether the stack goes through the OS kernel per request.
    pub fn uses_kernel(self) -> bool {
        !matches!(self, IoStackKind::Spdk | IoStackKind::Cam)
    }

    /// Whether completions are interrupt-driven (vs. polled).
    pub fn interrupt_driven(self) -> bool {
        matches!(
            self,
            IoStackKind::Posix | IoStackKind::Libaio | IoStackKind::IoUringInt
        )
    }

    /// Per-request CPU cost by layer (Fig. 3's bars).
    pub fn layer_costs(self, dir: IoDir) -> LayerCosts {
        let c = match self {
            IoStackKind::Posix => LayerCosts {
                user: Dur::ns(400),
                filesystem: Dur::ns(900),
                io_map: Dur::ns(1600),
                block_io: Dur::ns(1600),
            },
            IoStackKind::Libaio => LayerCosts {
                user: Dur::ns(300),
                filesystem: Dur::ns(700),
                io_map: Dur::ns(1000),
                block_io: Dur::ns(800),
            },
            IoStackKind::IoUringInt => LayerCosts {
                user: Dur::ns(250),
                filesystem: Dur::ns(650),
                io_map: Dur::ns(900),
                block_io: Dur::ns(600),
            },
            IoStackKind::IoUringPoll => LayerCosts {
                user: Dur::ns(250),
                filesystem: Dur::ns(600),
                io_map: Dur::ns(700),
                block_io: Dur::ns(350),
            },
            IoStackKind::Spdk => LayerCosts {
                user: Dur::ns(450),
                ..LayerCosts::default()
            },
            IoStackKind::Cam => LayerCosts {
                user: Dur::ns(500),
                ..LayerCosts::default()
            },
        };
        match dir {
            IoDir::Read => c,
            // Writes pin pages for reading and mark them dirty; kernel
            // layers cost ~15% more. User-space stacks are symmetric.
            IoDir::Write => LayerCosts {
                user: c.user,
                filesystem: scale(c.filesystem, 1.15),
                io_map: scale(c.io_map, 1.15),
                block_io: scale(c.block_io, 1.15),
            },
        }
    }

    /// Total submit-side CPU time per request.
    pub fn cpu_per_request(self, dir: IoDir) -> Dur {
        self.layer_costs(dir).total()
    }

    /// Maximum request rate one submitting core sustains (requests/s).
    pub fn max_rate_per_core(self, dir: IoDir) -> f64 {
        1e9 / self.cpu_per_request(dir).as_ns() as f64
    }
}

fn scale(d: Dur, f: f64) -> Dur {
    Dur::from_ns_f64(d.as_ns() as f64 * f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_fig2() {
        // POSIX < libaio < io_uring int < io_uring poll < SPDK≈CAM.
        let rates: Vec<f64> = IoStackKind::ALL
            .iter()
            .map(|s| s.max_rate_per_core(IoDir::Read))
            .collect();
        assert!(rates[0] < rates[1]);
        assert!(rates[1] < rates[2]);
        assert!(rates[2] < rates[3]);
        assert!(rates[3] < rates[4]);
        // SPDK and CAM are within 15% of each other.
        assert!((rates[4] - rates[5]).abs() / rates[4] < 0.15);
    }

    #[test]
    fn kernel_stacks_spend_over_34_percent_in_fs_plus_iomap() {
        for s in [
            IoStackKind::Posix,
            IoStackKind::Libaio,
            IoStackKind::IoUringInt,
            IoStackKind::IoUringPoll,
        ] {
            for d in [IoDir::Read, IoDir::Write] {
                let f = s.layer_costs(d).avoidable_fraction();
                assert!(f > 0.34, "{} {:?}: {f}", s.name(), d);
            }
        }
    }

    #[test]
    fn user_space_stacks_have_no_kernel_layers() {
        for s in [IoStackKind::Spdk, IoStackKind::Cam] {
            let c = s.layer_costs(IoDir::Read);
            assert_eq!(c.filesystem, Dur::ZERO);
            assert_eq!(c.io_map, Dur::ZERO);
            assert_eq!(c.block_io, Dur::ZERO);
            assert!(!s.uses_kernel());
            assert!(!s.interrupt_driven());
        }
        assert!(IoStackKind::Posix.uses_kernel());
        assert!(IoStackKind::Libaio.interrupt_driven());
        assert!(!IoStackKind::IoUringPoll.interrupt_driven());
    }

    #[test]
    fn writes_cost_more_in_kernel_layers_only() {
        let r = IoStackKind::Libaio.layer_costs(IoDir::Read);
        let w = IoStackKind::Libaio.layer_costs(IoDir::Write);
        assert_eq!(r.user, w.user);
        assert!(w.io_map > r.io_map);
        let sr = IoStackKind::Spdk.cpu_per_request(IoDir::Read);
        let sw = IoStackKind::Spdk.cpu_per_request(IoDir::Write);
        assert_eq!(sr, sw);
    }

    #[test]
    fn posix_cannot_reach_p5510_read_rate() {
        // Device 4 KiB read ≈ 427 K IOPS; POSIX tops out well below.
        let r = IoStackKind::Posix.max_rate_per_core(IoDir::Read);
        assert!(r < 300_000.0, "posix rate {r}");
        let p = IoStackKind::IoUringPoll.max_rate_per_core(IoDir::Read);
        assert!(p > 427_000.0, "io_uring poll rate {p}");
    }
}
