//! # cam-hostos — host/OS substrate
//!
//! The paper's Issue 1 is that kernel I/O stacks burn per-request CPU time
//! in four layers — **User**, **file system** (logical-block-address
//! retrieval), **I/O mapping** (page pin/unpin), and **Block I/O** — and
//! that this throttles the NVMe command rate (Figs. 2 and 3). This crate
//! models the host side of that story:
//!
//! * [`MiniFs`] — a real extent-based mini filesystem over a raw
//!   [`BlockStore`](cam_blockdev::BlockStore). Files map to (possibly
//!   fragmented) extents, so reading at a file offset genuinely requires the
//!   LBA lookup the paper charges to the "file system" layer, and the POSIX
//!   baseline in `cam-iostacks` pays it for real.
//! * [`IoStackKind`] / [`LayerCosts`] — the calibrated per-request CPU cost
//!   of each kernel stack, split by layer (Fig. 3), plus derived maximum
//!   command rates (Fig. 2).
//! * [`CpuModel`] + [`PerfCounts`] — instructions/cycles per request for
//!   CAM, SPDK, and libaio, separating "fewer instructions" (kernel bypass)
//!   from "fewer cycles" (polling's high IPC vs. interrupt stalls) — Fig. 13.
//! * [`MemoryModel`] — DDR channel bandwidth and the 2× staging cost of the
//!   bounce-buffer data path (Figs. 14 and 15).

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod fs;
mod iomap;
mod membw;
mod perf;
mod stacks;

pub use fs::{FileId, FsError, MiniFs};
pub use iomap::{IoMapper, PinnedPages};
pub use membw::MemoryModel;
pub use perf::{CpuModel, PerfCounts};
pub use stacks::{IoDir, IoStackKind, LayerCosts};
