//! [`MemoryModel`] — CPU memory-channel bandwidth and the cost of the
//! bounce-buffer data path (Figs. 14 and 15).
//!
//! When a GPU reads SSDs through a CPU-staged path (SPDK and every kernel
//! stack), each payload byte crosses CPU DRAM **twice**: the SSD DMA-writes
//! it into a host buffer, then the GPU DMA-reads it back out
//! ("Reading from SSDs consumes two times the CPU memory bandwidth",
//! § IV-J). CAM's direct path touches DRAM only for queue entries and
//! doorbells. The model exposes both the traffic accounting (Fig. 14) and
//! the delivered-throughput cap when channels are scarce (Fig. 15).

/// DRAM configuration and efficiency parameters.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    /// Populated DDR channels.
    pub channels: u32,
    /// Raw per-channel bandwidth, GB/s (DDR4-3200 = 25.6).
    pub per_channel_gbps: f64,
    /// Fraction of raw bandwidth sustainable by the mixed read+write
    /// streaming pattern of a bounce buffer (measured STREAM-like
    /// efficiencies with bidirectional DMA land near half the peak).
    pub mixed_stream_efficiency: f64,
    /// Bytes of DRAM traffic per payload byte on the *direct* path
    /// (submission/completion entries, doorbells): a few percent.
    pub direct_overhead_ratio: f64,
}

impl MemoryModel {
    /// The testbed's fully-populated configuration (16 channels across two
    /// Xeon Gold 5320 sockets) — the paper's "16c".
    pub fn xeon_16ch() -> Self {
        Self::with_channels(16)
    }

    /// The paper's throttled "2c" configuration.
    pub fn xeon_2ch() -> Self {
        Self::with_channels(2)
    }

    /// An arbitrary channel count with testbed DDR4-3200 parameters.
    pub fn with_channels(channels: u32) -> Self {
        assert!(channels >= 1);
        MemoryModel {
            channels,
            per_channel_gbps: 25.6,
            mixed_stream_efficiency: 0.55,
            direct_overhead_ratio: 0.03,
        }
    }

    /// DRAM bandwidth usable by the staging path, GB/s.
    pub fn usable_gbps(&self) -> f64 {
        self.channels as f64 * self.per_channel_gbps * self.mixed_stream_efficiency
    }

    /// DRAM traffic generated when moving `ssd_gbps` of payload, GB/s.
    /// This is Fig. 14's y-axis.
    pub fn traffic_gbps(&self, ssd_gbps: f64, staged: bool) -> f64 {
        if staged {
            2.0 * ssd_gbps
        } else {
            self.direct_overhead_ratio * ssd_gbps
        }
    }

    /// Payload throughput the staged path actually delivers when the
    /// SSDs could supply `demand_gbps` (Fig. 15's bars).
    ///
    /// The hard cap is `usable / 2` (two crossings per byte); above 50%
    /// channel utilization a queueing derate of 10% applies — partially
    /// loaded channels already lose efficiency to bank conflicts between
    /// the inbound and outbound streams.
    pub fn staged_delivered_gbps(&self, demand_gbps: f64) -> f64 {
        let cap = self.usable_gbps() / 2.0;
        let delivered = demand_gbps.min(cap);
        let utilization = self.traffic_gbps(delivered, true) / self.usable_gbps();
        if utilization > 0.5 {
            delivered * 0.9
        } else {
            delivered
        }
    }

    /// Direct-path delivered throughput: DRAM is never the binding
    /// constraint (queue-entry traffic is ~3% of payload).
    pub fn direct_delivered_gbps(&self, demand_gbps: f64) -> f64 {
        let cap = self.usable_gbps() / self.direct_overhead_ratio;
        demand_gbps.min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_path_doubles_traffic() {
        let m = MemoryModel::xeon_16ch();
        assert_eq!(m.traffic_gbps(21.0, true), 42.0);
        assert!(m.traffic_gbps(21.0, false) < 1.0);
    }

    #[test]
    fn sixteen_channels_do_not_constrain_the_paper_workload() {
        let m = MemoryModel::xeon_16ch();
        // Read: 21 GB/s demand passes through intact.
        assert!((m.staged_delivered_gbps(21.0) - 21.0).abs() < 1e-9);
        // Write: 8 GB/s likewise.
        assert!((m.staged_delivered_gbps(8.2) - 8.2).abs() < 1e-9);
    }

    #[test]
    fn two_channels_throttle_spdk_reads_but_not_cam() {
        let m = MemoryModel::xeon_2ch();
        let spdk = m.staged_delivered_gbps(21.0);
        assert!(
            spdk < 15.0 && spdk > 10.0,
            "2c staged read should drop well below 21, got {spdk}"
        );
        let cam = m.direct_delivered_gbps(21.0);
        assert!((cam - 21.0).abs() < 1e-9);
    }

    #[test]
    fn two_channels_derate_writes_modestly() {
        let m = MemoryModel::xeon_2ch();
        let w = m.staged_delivered_gbps(8.2);
        assert!(w < 8.2, "some derate expected");
        assert!(w > 6.5, "writes should not collapse, got {w}");
    }

    #[test]
    fn delivered_is_monotone_in_channels() {
        let mut last = 0.0;
        for ch in [1, 2, 4, 8, 16] {
            let d = MemoryModel::with_channels(ch).staged_delivered_gbps(21.0);
            assert!(d >= last, "channels {ch}: {d} < {last}");
            last = d;
        }
        assert!((last - 21.0).abs() < 1e-9);
    }
}
