//! Engine lifecycle regressions across both thread models:
//!
//! * **Bounded shutdown** — `drop(cam)` must return promptly even when
//!   every worker is parked (thread-per-core) or blocked on its MPMC
//!   receive (central poller). `stop()` wakes parked workers explicitly;
//!   without that wake, shutdown latency is bounded only by park/poll
//!   timeouts — and a lost token would hang the join forever.
//! * **Rescale epochs** — with dynamic scaling on, the active-worker
//!   count moves while batches are in flight. Group ownership
//!   (`ssd % active`) migrates between workers across epochs, but each
//!   queue pair stays driven by exactly one thread: the debug-build
//!   host-owner assertion in `cam-nvme` panics the worker (hanging the
//!   ticket) if a pair is ever polled off its owning thread, so a clean
//!   run *is* the single-driver proof.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cam_core::{CamConfig, CamContext, ChannelOp, ThreadModel};
use cam_iostacks::{Rig, RigConfig};
use cam_telemetry::{MetricsRegistry, Observability};

/// Generous hang guard: actual shutdown is a few milliseconds (stop flag +
/// unpark + join); a missing wake shows up as multi-second waits or a
/// full hang once workers park without a timeout safety net.
const SHUTDOWN_BOUND: Duration = Duration::from_millis(500);

fn shutdown_elapsed(thread_model: ThreadModel, submit_first: bool) -> Duration {
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    });
    let cfg = CamConfig {
        workers: Some(2),
        thread_model,
        ..CamConfig::default()
    };
    let cam = CamContext::attach(&rig, cfg);
    if submit_first {
        let dev = cam.device();
        let buf = cam.alloc(4 * 4096).unwrap();
        let t = dev
            .submit(0, ChannelOp::Read, &[0, 1, 2, 3], buf.addr())
            .unwrap();
        t.wait().unwrap();
    }
    // Let the workers go fully idle: thread-per-core workers are deep in
    // a (50 ms-bounded) park by now, the legacy workers deep in their
    // receive timeout — the exact states shutdown must punch through.
    std::thread::sleep(Duration::from_millis(60));
    let start = Instant::now();
    drop(cam);
    start.elapsed()
}

#[test]
fn shutdown_is_bounded_with_parked_workers() {
    for model in [ThreadModel::ThreadPerCore, ThreadModel::CentralPoller] {
        for submit_first in [false, true] {
            let elapsed = shutdown_elapsed(model, submit_first);
            assert!(
                elapsed < SHUTDOWN_BOUND,
                "{model:?} (submit_first={submit_first}) took {elapsed:?} to stop"
            );
        }
    }
}

/// Drives the scaler through shrink and grow epochs: slow I/O
/// (`burst_latency`) with back-to-back batches makes I/O the critical
/// path (grow); the same I/O behind a long host-side gap hides under
/// compute (shrink). 8 SSDs bound the scaler to [2, 4] workers.
fn run_rescale_epochs(thread_model: ThreadModel) {
    let rig = Rig::new(RigConfig {
        n_ssds: 8,
        blocks_per_ssd: 4096,
        burst_latency: Some(Duration::from_micros(500)),
        ..RigConfig::default()
    });
    let registry = Arc::new(MetricsRegistry::new());
    let obs = Observability::with_registry(Arc::clone(&registry));
    let cfg = CamConfig {
        n_channels: 2,
        dynamic_scaling: true,
        thread_model,
        ..CamConfig::default()
    };
    let cam = CamContext::attach_observed(&rig, cfg, obs);
    let dev = cam.device();
    let buf = cam.alloc(16 * 4096).unwrap();
    // 16 consecutive blocks fan out across all 8 SSDs, so every batch
    // exercises the ssd % active routing at whatever the current epoch is.
    let lbas: Vec<u64> = (0..16).collect();

    let mut batches = 0u64;
    for cycle in 0..3 {
        // Compute-heavy epoch: retire → next-doorbell gaps dwarf the
        // ~0.5 ms I/O time, so the scaler walks down toward min.
        for i in 0..4 {
            let ch = (cycle + i) % 2;
            let t = dev.submit(ch, ChannelOp::Read, &lbas, buf.addr()).unwrap();
            t.wait().unwrap();
            batches += 1;
            std::thread::sleep(Duration::from_millis(4));
        }
        // I/O-heavy epoch: back-to-back batches leave no compute gap to
        // hide the injected device latency, so the scaler walks back up.
        for i in 0..4 {
            let ch = (cycle + i) % 2;
            let t = dev.submit(ch, ChannelOp::Read, &lbas, buf.addr()).unwrap();
            t.wait().unwrap();
            batches += 1;
        }
    }

    let stats = cam.stats();
    assert_eq!(stats.batches, batches, "{stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
    assert_eq!(stats.requests, batches * 16, "{stats:?}");

    // The run only proves epoch handoff if the active count actually
    // moved. Shrinks are deterministic (4 ms gap vs 0.5 ms I/O clears the
    // 1.3× margin); at least one rescale in either direction must land.
    let prom = registry.to_prometheus();
    let decisions = ["cam_scaler_grow_total", "cam_scaler_shrink_total"]
        .iter()
        .map(|name| counter_value(&prom, name))
        .sum::<u64>();
    assert!(
        decisions >= 1,
        "scaler never rescaled; the test exercised nothing:\n{prom}"
    );
    drop(cam);
}

fn counter_value(prom: &str, name: &str) -> u64 {
    prom.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

#[test]
fn rescale_epochs_never_double_drive_a_queue_pair_thread_per_core() {
    run_rescale_epochs(ThreadModel::ThreadPerCore);
}

#[test]
fn rescale_epochs_never_double_drive_a_queue_pair_central_poller() {
    run_rescale_epochs(ThreadModel::CentralPoller);
}
