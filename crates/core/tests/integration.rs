//! End-to-end tests of the CAM protocol over the full functional substrate:
//! simulated GPU kernels initiating I/O, the CPU control plane managing
//! simulated NVMe devices, and data landing in pinned GPU memory.

use cam_blockdev::{BlockStore, Lba};
use cam_core::{CamConfig, CamContext, ChannelOp, DoubleBuffer};
use cam_iostacks::{Rig, RigConfig};

fn small_rig(n_ssds: usize) -> Rig {
    Rig::new(RigConfig {
        n_ssds,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    })
}

/// Loads a recognizable pattern into array blocks via the raid view.
fn load_pattern(rig: &Rig, blocks: u64) {
    let raid = rig.raid_view();
    let bs = rig.block_size() as usize;
    for b in 0..blocks {
        let fill = (b % 251) as u8 + 1;
        raid.write(Lba(b), &vec![fill; bs]).unwrap();
    }
}

#[test]
fn fig7_pipeline_from_a_kernel() {
    // The canonical CAM loop: prefetch_synchronize → swap → prefetch next →
    // compute on current, all inside one GPU kernel.
    let rig = small_rig(3);
    load_pattern(&rig, 256);
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let bs = rig.block_size() as usize;
    let batch = 16usize;
    let db = DoubleBuffer::new(&cam, batch * bs).unwrap();

    let iterations = 8u64;
    let sums = std::sync::Mutex::new(Vec::<u64>::new());

    // Warm-up prefetch for iteration 0 (Fig. 7 primes the pipeline).
    let lbas: Vec<u64> = (0..batch as u64).collect();
    dev.prefetch(&lbas, db.read_buf().addr()).unwrap();

    rig.gpu().launch(1, |_ctx| {
        // The kernel body borrows the double buffer mutably via interior
        // steps; we model Fig. 7's single logical control flow.
        let mut local = Vec::new();
        let mut front_read; // tracks which buffer was just filled
        let mut db_front;
        let bufs = [db.compute_buf(), db.read_buf()];
        // Addresses are fixed; track roles by index to avoid aliasing.
        let addr_of = |idx: usize| bufs[idx].addr();
        let read_into = 1usize; // warm-up targeted read_buf()
        front_read = read_into;
        for it in 0..iterations {
            dev.prefetch_synchronize().unwrap();
            // Swap: the freshly-read buffer becomes the compute buffer.
            db_front = front_read;
            // Issue next prefetch into the other buffer.
            if it + 1 < iterations {
                let next: Vec<u64> = ((it + 1) * batch as u64..(it + 2) * batch as u64).collect();
                front_read = 1 - db_front;
                dev.prefetch(&next, addr_of(front_read)).unwrap();
            }
            // "Compute": checksum the current buffer.
            let data = bufs[db_front].to_vec();
            let sum: u64 = data.iter().map(|&b| b as u64).sum();
            local.push(sum);
        }
        sums.lock().unwrap().extend(local);
    });

    let sums = sums.into_inner().unwrap();
    assert_eq!(sums.len(), iterations as usize);
    // Every iteration saw exactly its own blocks' pattern.
    let bs64 = bs as u64;
    for (it, sum) in sums.iter().enumerate() {
        let expect: u64 = (it as u64 * batch as u64..(it as u64 + 1) * batch as u64)
            .map(|b| ((b % 251) + 1) * bs64)
            .sum();
        assert_eq!(*sum, expect, "iteration {it}");
    }
    let stats = cam.stats();
    assert_eq!(stats.batches, iterations);
    assert_eq!(stats.requests, iterations * batch as u64);
    assert_eq!(stats.errors, 0);
}

#[test]
fn write_back_then_prefetch_round_trip() {
    let rig = small_rig(2);
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let src = cam.alloc(32 * 4096).unwrap();
    for i in 0..32usize {
        src.write(i * 4096, &vec![(i * 3) as u8 + 1; 4096]);
    }
    let lbas: Vec<u64> = (100..132).collect();
    dev.write_back(&lbas, src.addr()).unwrap();
    dev.write_back_synchronize().unwrap();

    let dst = cam.alloc(32 * 4096).unwrap();
    dev.prefetch(&lbas, dst.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();
    assert_eq!(src.to_vec(), dst.to_vec());
}

#[test]
fn prefetch_and_write_back_channels_are_independent() {
    // Fig. 5/6: read and write streams overlap; each has its own regions.
    let rig = small_rig(2);
    load_pattern(&rig, 64);
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let rbuf = cam.alloc(8 * 4096).unwrap();
    let wbuf = cam.alloc(8 * 4096).unwrap();
    wbuf.write(0, &vec![0xEE; 8 * 4096]);

    // Issue both before synchronizing either.
    dev.prefetch(&(0..8).collect::<Vec<_>>(), rbuf.addr())
        .unwrap();
    dev.write_back(&(200..208).collect::<Vec<_>>(), wbuf.addr())
        .unwrap();
    dev.prefetch_synchronize().unwrap();
    dev.write_back_synchronize().unwrap();

    assert_eq!(rbuf.to_vec()[0], 1); // block 0 pattern
    let raid = rig.raid_view();
    let mut out = vec![0u8; 4096];
    raid.read(Lba(203), &mut out).unwrap();
    assert!(out.iter().all(|&b| b == 0xEE));
}

#[test]
fn sync_api_equals_async_api_results() {
    // CAM-Sync (prefetch/synchronize) and CAM-Async (submit/ticket) must
    // deliver identical data — Fig. 11's premise.
    let rig = small_rig(2);
    load_pattern(&rig, 128);
    let cam = CamContext::attach(
        &rig,
        CamConfig {
            n_channels: 3,
            ..CamConfig::default()
        },
    );
    let dev = cam.device();
    let lbas: Vec<u64> = (32..64).collect();

    let sync_buf = cam.alloc(32 * 4096).unwrap();
    dev.prefetch(&lbas, sync_buf.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();

    let async_buf = cam.alloc(32 * 4096).unwrap();
    let ticket = dev
        .submit(2, ChannelOp::Read, &lbas, async_buf.addr())
        .unwrap();
    ticket.wait().unwrap();

    assert_eq!(sync_buf.to_vec(), async_buf.to_vec());
}

#[test]
fn io_errors_surface_at_synchronize() {
    let rig = small_rig(2);
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let buf = cam.alloc(4096).unwrap();
    let far = rig.array_blocks() * 8;
    dev.prefetch(&[far], buf.addr()).unwrap();
    let err = dev.prefetch_synchronize().unwrap_err();
    assert!(matches!(err, cam_core::CamError::Io { failed: 1 }));
    // The channel recovers: a valid prefetch afterwards succeeds.
    dev.prefetch(&[0], buf.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();
}

#[test]
fn channel_busy_is_reported_not_hung() {
    let rig = small_rig(1);
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let buf = cam.alloc(64 * 4096).unwrap();
    // Two prefetches without an intervening synchronize: the second must
    // either succeed (first already retired) or report ChannelBusy.
    dev.prefetch(&(0..64).collect::<Vec<_>>(), buf.addr())
        .unwrap();
    match dev.prefetch(&[0], buf.addr()) {
        Ok(()) | Err(cam_core::CamError::ChannelBusy) => {}
        other => panic!("unexpected: {other:?}"),
    }
    dev.prefetch_synchronize().unwrap();
}

#[test]
fn batch_too_large_is_reported() {
    let rig = small_rig(1);
    let cam = CamContext::attach(
        &rig,
        CamConfig {
            max_batch: 8,
            ..CamConfig::default()
        },
    );
    let dev = cam.device();
    let buf = cam.alloc(16 * 4096).unwrap();
    let err = dev
        .prefetch(&(0..16).collect::<Vec<_>>(), buf.addr())
        .unwrap_err();
    assert!(matches!(
        err,
        cam_core::CamError::BatchTooLarge {
            requested: 16,
            capacity: 8
        }
    ));
}

#[test]
fn dynamic_scaling_shrinks_under_compute_heavy_load() {
    let rig = Rig::new(RigConfig {
        n_ssds: 8,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    });
    load_pattern(&rig, 512);
    let cam = CamContext::attach(
        &rig,
        CamConfig {
            dynamic_scaling: true,
            ..CamConfig::default()
        },
    );
    assert_eq!(cam.max_workers(), 4); // ceil(8/2)
    let dev = cam.device();
    let buf = cam.alloc(4 * 4096).unwrap();
    // Compute-heavy loop: tiny I/O, long "computation" gaps.
    for it in 0..12u64 {
        dev.prefetch(&[(it * 4) % 256, 1, 2, 3], buf.addr())
            .unwrap();
        dev.prefetch_synchronize().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(8)); // "compute"
    }
    let stats = cam.stats();
    // ceil(8/4) = 2 is the floor; compute-dominated batches must have
    // driven the active worker count down from 4.
    assert!(
        stats.active_workers < 4,
        "expected shrink below max, got {}",
        stats.active_workers
    );
    assert!(stats.active_workers >= 2);
    // Both means exist (batches retired, gaps observed) and compute
    // dominates I/O in this workload.
    let mean_compute = stats.mean_compute.expect("compute gaps observed");
    let mean_io = stats.mean_io.expect("batches retired");
    assert!(mean_compute > mean_io);
}

#[test]
fn many_batches_stress_protocol() {
    let rig = small_rig(4);
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let buf = cam.alloc(64 * 4096).unwrap();
    let src = cam.alloc(64 * 4096).unwrap();
    src.write(0, &vec![0xAB; 64 * 4096]);
    for round in 0..50u64 {
        let base = (round * 64) % 8192;
        let lbas: Vec<u64> = (base..base + 64).collect();
        dev.write_back(&lbas, src.addr()).unwrap();
        dev.write_back_synchronize().unwrap();
        dev.prefetch(&lbas, buf.addr()).unwrap();
        dev.prefetch_synchronize().unwrap();
        assert_eq!(buf.to_vec()[round as usize % (64 * 4096)], 0xAB);
    }
    let stats = cam.stats();
    assert_eq!(stats.batches, 100);
    assert_eq!(stats.requests, 100 * 64);
}
