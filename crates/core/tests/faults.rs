//! Failure-injection tests: device errors must surface as `CamError::Io`
//! at the synchronization points, never as silent corruption, and channels
//! must keep working after a failed batch.

use std::sync::Arc;

use cam_blockdev::{
    BlockGeometry, BlockStore, FaultKind, FaultMode, FaultPolicy, FaultyStore, SparseMemStore,
};
use cam_core::{CamBackend, CamConfig, CamContext, CamError};
use cam_iostacks::{IoRequest, Rig, RigConfig, StorageBackend};
use cam_telemetry::{
    FlightRecorder, MetricsRegistry, Observability, PostmortemConfig, PostmortemDumper,
};

/// Builds a rig whose first SSD fails reads on device LBAs 100..200.
fn faulty_rig(n_ssds: usize, policy: FaultPolicy) -> (Rig, Arc<FaultyStore>) {
    let cfg = RigConfig {
        n_ssds,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    };
    let faulty = Arc::new(FaultyStore::new(
        Arc::new(SparseMemStore::new(BlockGeometry::new(
            cfg.block_size,
            cfg.blocks_per_ssd,
        ))),
        policy,
    ));
    let mut stores: Vec<Arc<dyn BlockStore>> = vec![Arc::clone(&faulty) as Arc<dyn BlockStore>];
    for _ in 1..n_ssds {
        stores.push(Arc::new(SparseMemStore::new(BlockGeometry::new(
            cfg.block_size,
            cfg.blocks_per_ssd,
        ))));
    }
    (Rig::with_stores(cfg, stores), faulty)
}

#[test]
fn read_faults_surface_as_io_errors() {
    // With 2 SSDs and stripe 1, array LBA 2k lands on SSD 0 at device LBA k.
    // Device LBAs 100..200 fail → array LBAs 200, 202, ... fail.
    let (rig, faulty) = faulty_rig(2, FaultPolicy::reads_in(100, 200));
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let buf = cam.alloc(8 * 4096).unwrap();

    // Healthy region: fine.
    dev.prefetch(&(0..8).collect::<Vec<_>>(), buf.addr())
        .unwrap();
    dev.prefetch_synchronize().unwrap();

    // Batch straddling the faulty region: exactly the SSD-0 requests fail.
    let lbas: Vec<u64> = (200..216).collect(); // 8 on ssd0 (faulty), 8 on ssd1
    dev.prefetch(&lbas, buf.addr()).unwrap();
    match dev.prefetch_synchronize() {
        Err(CamError::Io { failed }) => assert_eq!(failed, 8),
        other => panic!("expected Io error, got {other:?}"),
    }
    assert_eq!(faulty.injected(), 8);

    // The channel recovers for subsequent healthy batches.
    dev.prefetch(&(0..8).collect::<Vec<_>>(), buf.addr())
        .unwrap();
    dev.prefetch_synchronize().unwrap();
    assert_eq!(cam.stats().errors, 8);
}

#[test]
fn write_faults_do_not_ack_durability() {
    let (rig, _faulty) = faulty_rig(1, FaultPolicy::writes_in(50, 60));
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let src = cam.alloc(4096).unwrap();
    src.write(0, &[0x44u8; 4096]);

    dev.write_back(&[55], src.addr()).unwrap();
    assert!(matches!(
        dev.write_back_synchronize(),
        Err(CamError::Io { failed: 1 })
    ));
    // Media unchanged: reading the block back returns zeroes, not 0x44.
    let out = cam.alloc(4096).unwrap();
    dev.prefetch(&[55], out.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();
    assert!(out.to_vec().iter().all(|&b| b == 0), "failed write leaked");
}

#[test]
fn backend_adapter_propagates_injected_faults() {
    let (rig, _faulty) = faulty_rig(
        2,
        FaultPolicy {
            kind: FaultKind::Read,
            lba_range: (0, 4096),
            every: 1,
            mode: FaultMode::Permanent,
        },
    );
    let cam = CamContext::attach(&rig, CamConfig::default());
    let be = CamBackend::new(cam.device(), 1024);
    let buf = rig.gpu().alloc(4 * 4096).unwrap();
    // All four requests hit SSD 0 (even array LBAs) → all fail.
    let reads: Vec<IoRequest> = (0..4u64)
        .map(|i| IoRequest::read(i * 2, 1, buf.addr() + i * 4096))
        .collect();
    assert!(be.execute_batch(&reads).is_err());
    // Odd array LBAs live on the healthy SSD 1 → fine.
    let reads: Vec<IoRequest> = (0..4u64)
        .map(|i| IoRequest::read(i * 2 + 1, 1, buf.addr() + i * 4096))
        .collect();
    be.execute_batch(&reads).unwrap();
}

#[test]
fn failed_batch_triggers_a_post_mortem_dump_with_its_events() {
    let dump_path =
        std::env::temp_dir().join(format!("cam-postmortem-fault-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&dump_path);

    let (rig, faulty) = faulty_rig(2, FaultPolicy::reads_in(100, 200));
    let recorder = Arc::new(FlightRecorder::new());
    let registry = Arc::new(MetricsRegistry::new());
    let dumper = Arc::new(PostmortemDumper::new(
        Arc::clone(&recorder),
        Arc::clone(&registry),
        PostmortemConfig::new(&dump_path),
    ));
    faulty.attach_recorder(Arc::clone(&recorder));
    let obs = Observability::recorded(Arc::clone(&registry), Arc::clone(&recorder))
        .with_postmortem(Arc::clone(&dumper));
    let cam = CamContext::attach_observed(&rig, CamConfig::default(), obs);
    let dev = cam.device();
    let buf = cam.alloc(16 * 4096).unwrap();

    // A healthy batch first, then the failing one.
    dev.prefetch(&(0..8).collect::<Vec<_>>(), buf.addr())
        .unwrap();
    dev.prefetch_synchronize().unwrap();
    let lbas: Vec<u64> = (200..216).collect(); // 8 requests hit the faulty SSD
    dev.prefetch(&lbas, buf.addr()).unwrap();
    assert!(dev.prefetch_synchronize().is_err());
    // Stop the control plane so the retire-side trigger has finished.
    drop(cam);

    assert_eq!(dumper.dumps(), 1, "exactly one dump for one failed batch");
    let dump = std::fs::read_to_string(&dump_path).expect("dump written");
    // The reason names the failing batch; the event window contains the
    // batch's lifecycle and the injected faults that sank it.
    assert!(dump.contains("retired with 8 error(s)"), "reason: {dump}");
    for needle in [
        "\"batch_doorbell\"",
        "\"batch_retire\"",
        "\"fault_injected\"",
        "\"group_complete\"",
        "\"metrics\"",
    ] {
        assert!(dump.contains(needle), "missing {needle} in dump");
    }
    let _ = std::fs::remove_file(&dump_path);
}

#[test]
fn deadline_overrun_triggers_a_post_mortem_without_errors() {
    let dump_path = std::env::temp_dir().join(format!(
        "cam-postmortem-deadline-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&dump_path);

    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    });
    let recorder = Arc::new(FlightRecorder::new());
    let registry = Arc::new(MetricsRegistry::new());
    let dumper = Arc::new(PostmortemDumper::new(
        Arc::clone(&recorder),
        Arc::clone(&registry),
        PostmortemConfig::new(&dump_path),
    ));
    // A 1 ns doorbell→retire budget: every healthy batch overruns it.
    let obs = Observability::recorded(Arc::clone(&registry), recorder)
        .with_postmortem(Arc::clone(&dumper))
        .with_deadline_ns(1);
    let cam = CamContext::attach_observed(&rig, CamConfig::default(), obs);
    let dev = cam.device();
    let buf = cam.alloc(8 * 4096).unwrap();
    dev.prefetch(&(0..8).collect::<Vec<_>>(), buf.addr())
        .unwrap();
    dev.prefetch_synchronize().unwrap();
    drop(cam);

    assert!(dumper.dumps() >= 1);
    let dump = std::fs::read_to_string(&dump_path).expect("dump written");
    assert!(dump.contains("overran deadline"), "reason: {dump}");
    let _ = std::fs::remove_file(&dump_path);
}

#[test]
fn intermittent_faults_fail_some_batches_only() {
    // Every 4th matching read fails: a 16-request batch on the faulty SSD
    // reports exactly 4 failures.
    let (rig, faulty) = faulty_rig(
        1,
        FaultPolicy {
            kind: FaultKind::Read,
            lba_range: (0, 4096),
            every: 4,
            mode: FaultMode::Permanent,
        },
    );
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let buf = cam.alloc(16 * 4096).unwrap();
    dev.prefetch(&(0..16).collect::<Vec<_>>(), buf.addr())
        .unwrap();
    match dev.prefetch_synchronize() {
        Err(CamError::Io { failed }) => assert_eq!(failed, 4),
        other => panic!("expected 4 failures, got {other:?}"),
    }
    assert_eq!(faulty.injected(), 4);
}
