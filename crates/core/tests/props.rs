//! Property-based tests of the CAM protocol: arbitrary batch sequences
//! through the full stack (regions → control plane → NVMe → media) must
//! behave exactly like a flat shadow model of the array.

use std::collections::HashMap;

use cam_core::{CamConfig, CamContext, DynamicScaler};
use cam_iostacks::{Rig, RigConfig};
use cam_simkit::Dur;
use proptest::prelude::*;

/// One protocol operation in a generated scenario.
#[derive(Clone, Debug)]
enum Op {
    /// Write `count` blocks at `lba`, filled with `fill`.
    WriteBack { lba: u64, count: u8, fill: u8 },
    /// Read `count` blocks at `lba` and check against the shadow.
    Prefetch { lba: u64, count: u8 },
}

fn op_strategy(max_lba: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_lba, 1u8..16, 1u8..255).prop_map(|(lba, count, fill)| Op::WriteBack {
            lba,
            count,
            fill
        }),
        (0..max_lba, 1u8..16).prop_map(|(lba, count)| Op::Prefetch { lba, count }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case spins up real device/control threads
        .. ProptestConfig::default()
    })]

    /// Any interleaving of write_back and prefetch batches agrees with a
    /// block-granular shadow model, across SSD counts and stripe widths.
    #[test]
    fn cam_matches_shadow_model(
        n_ssds in 1usize..4,
        stripe in 1u64..4,
        ops in proptest::collection::vec(op_strategy(192), 1..12),
    ) {
        let rig = Rig::new(RigConfig {
            n_ssds,
            blocks_per_ssd: 256,
            stripe_blocks: stripe,
            ..RigConfig::default()
        });
        let cam = CamContext::attach(&rig, CamConfig::default());
        let dev = cam.device();
        let bs = rig.block_size() as usize;
        let buf = cam.alloc(16 * bs).unwrap();
        let mut shadow: HashMap<u64, u8> = HashMap::new();
        let cap = rig.array_blocks();

        for op in &ops {
            match *op {
                Op::WriteBack { lba, count, fill } => {
                    let count = count as u64;
                    let lba = lba.min(cap.saturating_sub(count + 1));
                    // Fill the staging buffer: block i gets `fill + i`.
                    for i in 0..count {
                        buf.write(i as usize * bs, &vec![fill.wrapping_add(i as u8); bs]);
                    }
                    let lbas: Vec<u64> = (lba..lba + count).collect();
                    dev.write_back(&lbas, buf.addr()).unwrap();
                    dev.write_back_synchronize().unwrap();
                    for i in 0..count {
                        shadow.insert(lba + i, fill.wrapping_add(i as u8));
                    }
                }
                Op::Prefetch { lba, count } => {
                    let count = count as u64;
                    let lba = lba.min(cap.saturating_sub(count + 1));
                    let lbas: Vec<u64> = (lba..lba + count).collect();
                    dev.prefetch(&lbas, buf.addr()).unwrap();
                    dev.prefetch_synchronize().unwrap();
                    let data = buf.to_vec();
                    for i in 0..count {
                        let want = shadow.get(&(lba + i)).copied().unwrap_or(0);
                        let got = &data[i as usize * bs..(i as usize + 1) * bs];
                        prop_assert!(
                            got.iter().all(|&b| b == want),
                            "block {} expected {want}, got {:?}...",
                            lba + i,
                            &got[..4]
                        );
                    }
                }
            }
        }
        prop_assert_eq!(cam.stats().errors, 0);
    }

    /// Scattered single-block batches with arbitrary (deduplicated) LBA
    /// sets land each block at exactly its own destination slot.
    #[test]
    fn scattered_prefetch_preserves_request_order(
        mut lbas in proptest::collection::hash_set(0u64..128, 1..32),
    ) {
        let lbas: Vec<u64> = {
            let mut v: Vec<u64> = lbas.drain().collect();
            v.sort_unstable();
            v.reverse(); // arbitrary, non-monotone submission order
            v
        };
        let rig = Rig::new(RigConfig {
            n_ssds: 3,
            blocks_per_ssd: 128,
            ..RigConfig::default()
        });
        // Tag every block with its own LBA via the raid view.
        let raid = rig.raid_view();
        let bs = rig.block_size() as usize;
        for b in 0..128u64 {
            cam_blockdev::BlockStore::write(
                &raid,
                cam_blockdev::Lba(b),
                &vec![(b % 251) as u8 + 1; bs],
            )
            .unwrap();
        }
        let cam = CamContext::attach(&rig, CamConfig::default());
        let dev = cam.device();
        let buf = cam.alloc(lbas.len() * bs).unwrap();
        dev.prefetch(&lbas, buf.addr()).unwrap();
        dev.prefetch_synchronize().unwrap();
        let data = buf.to_vec();
        for (i, &lba) in lbas.iter().enumerate() {
            let want = (lba % 251) as u8 + 1;
            prop_assert!(
                data[i * bs..(i + 1) * bs].iter().all(|&b| b == want),
                "slot {i} (lba {lba})"
            );
        }
    }
}

proptest! {
    /// § III-A: under *any* sequence of compute/IO feedback the active
    /// worker count never leaves `[ceil(N/4), ceil(N/2)]`, and `observe`'s
    /// return value always equals `active()`.
    #[test]
    fn scaler_stays_within_paper_bounds(
        n_ssds in 1usize..65,
        feedback in proptest::collection::vec((0u64..5_000_000, 0u64..5_000_000), 0..64),
    ) {
        let mut s = DynamicScaler::for_ssds(n_ssds);
        let min = n_ssds.div_ceil(4).max(1);
        let max = n_ssds.div_ceil(2).max(1);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
        prop_assert_eq!(s.active(), max, "cold start at the maximum");
        for &(compute, io) in &feedback {
            let active = s.observe(Dur::ns(compute), Dur::ns(io));
            prop_assert!(
                (min..=max).contains(&active),
                "active {active} left [{min}, {max}] on compute={compute} io={io}"
            );
            prop_assert_eq!(active, s.active());
        }
    }

    /// The `SHRINK_MARGIN` hysteresis means a *constant* workload moves the
    /// count in one direction only — it may walk to a bound and stop, but
    /// never grows and shrinks in the same run (no oscillation), and it
    /// settles: once steady, further identical batches change nothing.
    #[test]
    fn scaler_hysteresis_never_oscillates_on_constant_workload(
        n_ssds in 1usize..65,
        compute in 0u64..5_000_000,
        io in 0u64..5_000_000,
    ) {
        let mut s = DynamicScaler::for_ssds(n_ssds);
        let (mut grew, mut shrank) = (false, false);
        let mut prev = s.active();
        // Enough steps to cross the whole [min, max] range and then some.
        for _ in 0..(2 * n_ssds + 4) {
            let now = s.observe(Dur::ns(compute), Dur::ns(io));
            grew |= now > prev;
            shrank |= now < prev;
            prev = now;
        }
        prop_assert!(
            !(grew && shrank),
            "constant workload (compute={compute}, io={io}) oscillated"
        );
        let settled = s.observe(Dur::ns(compute), Dur::ns(io));
        prop_assert_eq!(settled, prev, "did not settle");
        prop_assert_eq!(s.observe(Dur::ns(compute), Dur::ns(io)), settled);
    }
}
