//! Property-based tests of the CAM protocol: arbitrary batch sequences
//! through the full stack (regions → control plane → NVMe → media) must
//! behave exactly like a flat shadow model of the array.

use std::collections::HashMap;

use cam_core::{CamConfig, CamContext};
use cam_iostacks::{Rig, RigConfig};
use proptest::prelude::*;

/// One protocol operation in a generated scenario.
#[derive(Clone, Debug)]
enum Op {
    /// Write `count` blocks at `lba`, filled with `fill`.
    WriteBack { lba: u64, count: u8, fill: u8 },
    /// Read `count` blocks at `lba` and check against the shadow.
    Prefetch { lba: u64, count: u8 },
}

fn op_strategy(max_lba: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_lba, 1u8..16, 1u8..255).prop_map(|(lba, count, fill)| Op::WriteBack {
            lba,
            count,
            fill
        }),
        (0..max_lba, 1u8..16).prop_map(|(lba, count)| Op::Prefetch { lba, count }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case spins up real device/control threads
        .. ProptestConfig::default()
    })]

    /// Any interleaving of write_back and prefetch batches agrees with a
    /// block-granular shadow model, across SSD counts and stripe widths.
    #[test]
    fn cam_matches_shadow_model(
        n_ssds in 1usize..4,
        stripe in 1u64..4,
        ops in proptest::collection::vec(op_strategy(192), 1..12),
    ) {
        let rig = Rig::new(RigConfig {
            n_ssds,
            blocks_per_ssd: 256,
            stripe_blocks: stripe,
            ..RigConfig::default()
        });
        let cam = CamContext::attach(&rig, CamConfig::default());
        let dev = cam.device();
        let bs = rig.block_size() as usize;
        let buf = cam.alloc(16 * bs).unwrap();
        let mut shadow: HashMap<u64, u8> = HashMap::new();
        let cap = rig.array_blocks();

        for op in &ops {
            match *op {
                Op::WriteBack { lba, count, fill } => {
                    let count = count as u64;
                    let lba = lba.min(cap.saturating_sub(count + 1));
                    // Fill the staging buffer: block i gets `fill + i`.
                    for i in 0..count {
                        buf.write(i as usize * bs, &vec![fill.wrapping_add(i as u8); bs]);
                    }
                    let lbas: Vec<u64> = (lba..lba + count).collect();
                    dev.write_back(&lbas, buf.addr()).unwrap();
                    dev.write_back_synchronize().unwrap();
                    for i in 0..count {
                        shadow.insert(lba + i, fill.wrapping_add(i as u8));
                    }
                }
                Op::Prefetch { lba, count } => {
                    let count = count as u64;
                    let lba = lba.min(cap.saturating_sub(count + 1));
                    let lbas: Vec<u64> = (lba..lba + count).collect();
                    dev.prefetch(&lbas, buf.addr()).unwrap();
                    dev.prefetch_synchronize().unwrap();
                    let data = buf.to_vec();
                    for i in 0..count {
                        let want = shadow.get(&(lba + i)).copied().unwrap_or(0);
                        let got = &data[i as usize * bs..(i as usize + 1) * bs];
                        prop_assert!(
                            got.iter().all(|&b| b == want),
                            "block {} expected {want}, got {:?}...",
                            lba + i,
                            &got[..4]
                        );
                    }
                }
            }
        }
        prop_assert_eq!(cam.stats().errors, 0);
    }

    /// Scattered single-block batches with arbitrary (deduplicated) LBA
    /// sets land each block at exactly its own destination slot.
    #[test]
    fn scattered_prefetch_preserves_request_order(
        mut lbas in proptest::collection::hash_set(0u64..128, 1..32),
    ) {
        let lbas: Vec<u64> = {
            let mut v: Vec<u64> = lbas.drain().collect();
            v.sort_unstable();
            v.reverse(); // arbitrary, non-monotone submission order
            v
        };
        let rig = Rig::new(RigConfig {
            n_ssds: 3,
            blocks_per_ssd: 128,
            ..RigConfig::default()
        });
        // Tag every block with its own LBA via the raid view.
        let raid = rig.raid_view();
        let bs = rig.block_size() as usize;
        for b in 0..128u64 {
            cam_blockdev::BlockStore::write(
                &raid,
                cam_blockdev::Lba(b),
                &vec![(b % 251) as u8 + 1; bs],
            )
            .unwrap();
        }
        let cam = CamContext::attach(&rig, CamConfig::default());
        let dev = cam.device();
        let buf = cam.alloc(lbas.len() * bs).unwrap();
        dev.prefetch(&lbas, buf.addr()).unwrap();
        dev.prefetch_synchronize().unwrap();
        let data = buf.to_vec();
        for (i, &lba) in lbas.iter().enumerate() {
            let want = (lba % 251) as u8 + 1;
            prop_assert!(
                data[i * bs..(i + 1) * bs].iter().all(|&b| b == want),
                "slot {i} (lba {lba})"
            );
        }
    }
}
