//! End-to-end telemetry tests: the functional engine drives a multi-batch
//! workload and the metrics registry must tell the same story as
//! `ControlStats` — batch counts agree, every protocol stage histogram is
//! populated, and per-SSD submit/complete counters sum to the request total.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cam_blockdev::{BlockStore, Lba};
use cam_core::{CamConfig, CamContext, ControlStats};
use cam_iostacks::{Rig, RigConfig};
use cam_telemetry::{BatchSpan, MetricsRegistry, Stage, TelemetrySink};

fn small_rig(n_ssds: usize) -> Rig {
    Rig::new(RigConfig {
        n_ssds,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    })
}

fn load_pattern(rig: &Rig, blocks: u64) {
    let raid = rig.raid_view();
    let bs = rig.block_size() as usize;
    for b in 0..blocks {
        raid.write(Lba(b), &vec![(b % 251) as u8 + 1; bs]).unwrap();
    }
}

/// Drives `rounds` prefetch+write-back rounds of `batch` requests each and
/// returns the context for inspection.
fn drive(cam: &CamContext, rounds: u64, batch: u64) {
    let dev = cam.device();
    let bs = cam.block_size() as usize;
    let rbuf = cam.alloc(batch as usize * bs).unwrap();
    let wbuf = cam.alloc(batch as usize * bs).unwrap();
    wbuf.write(0, &vec![0x5A; batch as usize * bs]);
    for round in 0..rounds {
        let base = round * batch;
        let lbas: Vec<u64> = (base..base + batch).collect();
        dev.prefetch(&lbas, rbuf.addr()).unwrap();
        dev.prefetch_synchronize().unwrap();
        dev.write_back(&lbas, wbuf.addr()).unwrap();
        dev.write_back_synchronize().unwrap();
    }
}

#[test]
fn registry_agrees_with_control_stats() {
    let rig = small_rig(3);
    load_pattern(&rig, 512);
    let registry = Arc::new(MetricsRegistry::new());
    let cam = CamContext::attach_with(
        &rig,
        CamConfig::default(),
        Arc::clone(&registry),
        Arc::new(cam_telemetry::NoopSink),
    );
    let rounds = 10u64;
    let batch = 24u64;
    drive(&cam, rounds, batch);

    let stats = cam.stats();
    let snap = registry.snapshot();

    // Batch and request counters: registry == ControlStats == workload.
    assert_eq!(stats.batches, 2 * rounds);
    assert_eq!(snap.counter("cam_batches_total"), stats.batches);
    assert_eq!(stats.requests, 2 * rounds * batch);
    assert_eq!(snap.counter("cam_requests_total"), stats.requests);
    assert_eq!(snap.counter("cam_errors_total"), 0);

    // Every protocol stage histogram is populated for both ops. Each
    // batch crosses pickup/retire once and dispatch/submit/complete once
    // per SSD group, so every stage has at least `rounds` samples per op.
    for op in ["read", "write"] {
        for stage in Stage::ALL {
            let name = format!("cam_stage_ns{{op=\"{op}\",stage=\"{}\"}}", stage.name());
            let h = snap
                .histogram(&name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(h.count >= rounds, "{name}: count {} < {rounds}", h.count);
        }
    }

    // Per-SSD submitted/completed counters sum to the request total
    // (stripe_blocks=1 and 1 block per request → one SQE run per request).
    let submitted = snap.sum_counters("cam_ssd_submitted_total{");
    let completed = snap.sum_counters("cam_ssd_completed_total{");
    assert_eq!(submitted, stats.requests);
    assert_eq!(completed, stats.requests);
    // Striping across 3 SSDs means every SSD saw traffic.
    for ssd in 0..3 {
        let c = snap.counter(&format!("cam_ssd_submitted_total{{ssd=\"{ssd}\"}}"));
        assert!(c > 0, "ssd {ssd} got no requests");
    }

    // Doorbell→retire span per (channel, op): reads on channel 0, writes
    // on channel 1, one sample per round.
    let read_total = snap
        .histogram("cam_batch_total_ns{channel=\"0\",op=\"read\"}")
        .expect("read batch_total histogram");
    assert_eq!(read_total.count, rounds);
    assert!(read_total.p99 >= read_total.p50);
    let write_total = snap
        .histogram("cam_batch_total_ns{channel=\"1\",op=\"write\"}")
        .expect("write batch_total histogram");
    assert_eq!(write_total.count, rounds);

    // The host spun in synchronize_* once per round per op.
    assert!(snap.histogram("cam_sync_wait_ns").unwrap().count >= 2 * rounds);
}

/// A sink counting spans and checking their internal consistency.
#[derive(Default)]
struct RecordingSink {
    spans: Mutex<Vec<BatchSpan>>,
    scaled: AtomicU64,
}

impl TelemetrySink for RecordingSink {
    fn batch_retired(&self, span: &BatchSpan) {
        self.spans.lock().unwrap().push(span.clone());
    }

    fn workers_scaled(&self, _active: usize) {
        self.scaled.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn sink_sees_every_batch_span() {
    let rig = small_rig(2);
    load_pattern(&rig, 256);
    let sink = Arc::new(RecordingSink::default());
    let cam = CamContext::attach_with(
        &rig,
        CamConfig::default(),
        Arc::new(MetricsRegistry::new()),
        Arc::clone(&sink) as Arc<dyn TelemetrySink>,
    );
    drive(&cam, 6, 16);

    let spans = sink.spans.lock().unwrap();
    assert_eq!(spans.len(), 12);
    for span in spans.iter() {
        assert_eq!(span.requests, 16);
        assert_eq!(span.errors, 0);
        // The span timeline is ordered: doorbell ≤ pickup ≤ retire.
        assert!(span.doorbell_ns <= span.pickup_ns, "doorbell after pickup");
        assert!(span.pickup_ns <= span.retire_ns, "pickup after retire");
        assert_eq!(span.total_ns(), span.retire_ns - span.doorbell_ns);
        let ch = match span.op {
            "read" => 0,
            "write" => 1,
            other => panic!("unexpected op {other}"),
        };
        assert_eq!(span.channel, ch);
    }
    // Sequence numbers per channel are strictly increasing.
    for ch in 0..2 {
        let seqs: Vec<u64> = spans
            .iter()
            .filter(|s| s.channel == ch)
            .map(|s| s.seq)
            .collect();
        assert_eq!(seqs.len(), 6);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs {seqs:?}");
    }
}

#[test]
fn stats_diff_isolates_a_phase() {
    let rig = small_rig(2);
    load_pattern(&rig, 512);
    let cam = CamContext::attach(&rig, CamConfig::default());
    drive(&cam, 4, 8);
    let mark = cam.stats();
    drive(&cam, 3, 32);
    let delta = cam.stats().diff(&mark);

    assert_eq!(delta.batches, 6);
    assert_eq!(delta.requests, 6 * 32);
    assert_eq!(delta.errors, 0);
    assert!(delta.total_io > cam_simkit::Dur::ZERO);
    let mean_io = delta.mean_io.expect("batches retired, mean must exist");
    assert!(mean_io > cam_simkit::Dur::ZERO);
    // The diff means are per-interval, not cumulative: they reflect only
    // the second phase's batches.
    assert_eq!(
        mean_io,
        cam_simkit::Dur::ns(delta.total_io.as_ns() / delta.batches)
    );
    // A snapshot diffed against itself has no batches — the mean is absent,
    // not a silent 0.
    let none = cam.stats().diff(&cam.stats());
    assert_eq!(none.batches, 0);
    assert_eq!(none.mean_io, None);
    assert_eq!(none.mean_compute, None);
    assert_eq!(none.mean_io_secs(), None);
    // Diffing against a fresh default gives back the later snapshot's
    // cumulative counters.
    let full = cam.stats().diff(&ControlStats::default());
    assert_eq!(full.batches, 14);
}
