//! Retry and deadline coverage: transient device faults must be retired
//! transparently by the reactor's retry policy (zero batch errors), while
//! permanently-failing commands are bounded by their deadline — failing the
//! command, never wedging the worker.

use std::sync::Arc;

use cam_blockdev::{BlockGeometry, BlockStore, FaultPolicy, FaultyStore, SparseMemStore};
use cam_core::{CamConfig, CamContext, CamError};
use cam_iostacks::{Rig, RigConfig};
use cam_telemetry::{EventKind, FlightRecorder, MetricsRegistry, Observability};

/// Builds a rig whose first SSD injects faults per `policy`; the second SSD
/// (when present) stays healthy.
fn faulty_rig(n_ssds: usize, policy: FaultPolicy) -> (Rig, Arc<FaultyStore>) {
    let cfg = RigConfig {
        n_ssds,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    };
    let faulty = Arc::new(FaultyStore::new(
        Arc::new(SparseMemStore::new(BlockGeometry::new(
            cfg.block_size,
            cfg.blocks_per_ssd,
        ))),
        policy,
    ));
    let mut stores: Vec<Arc<dyn BlockStore>> = vec![Arc::clone(&faulty) as Arc<dyn BlockStore>];
    for _ in 1..n_ssds {
        stores.push(Arc::new(SparseMemStore::new(BlockGeometry::new(
            cfg.block_size,
            cfg.blocks_per_ssd,
        ))));
    }
    (Rig::with_stores(cfg, stores), faulty)
}

/// A config with fast retries so tests complete quickly.
fn retrying_config() -> CamConfig {
    CamConfig {
        max_retries: 3,
        retry_backoff_ns: 1_000,
        ..CamConfig::default()
    }
}

#[test]
fn transient_faults_are_retired_transparently() {
    // Every read on SSD 0 fails its first two attempts with a transient
    // media error, then succeeds. With max_retries = 3 the whole batch must
    // retire with zero errors — the GPU never sees the faults.
    let (rig, faulty) = faulty_rig(2, FaultPolicy::transient_reads_in(0, 4096, 2));
    let registry = Arc::new(MetricsRegistry::new());
    let recorder = Arc::new(FlightRecorder::new());
    let obs = Observability::recorded(Arc::clone(&registry), Arc::clone(&recorder));
    let cam = CamContext::attach_observed(&rig, retrying_config(), obs);
    let dev = cam.device();
    let buf = cam.alloc(16 * 4096).unwrap();

    dev.prefetch(&(0..16).collect::<Vec<_>>(), buf.addr())
        .unwrap();
    dev.prefetch_synchronize()
        .expect("transient faults must not surface");

    let stats = cam.stats();
    assert_eq!(stats.errors, 0, "no batch errors after retries");
    // 8 requests land on the faulty SSD, each failing twice before success.
    assert_eq!(stats.retries, 16);
    assert_eq!(faulty.injected(), 16);
    assert_eq!(stats.cmd_timeouts, 0);

    // The retries are visible in both exposition layers.
    let text = registry.to_prometheus();
    assert!(text.contains("cam_retries_total 16"), "prometheus: {text}");
    let retry_events = recorder
        .snapshot()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CmdRetry { .. }))
        .count();
    assert_eq!(retry_events, 16);
}

#[test]
fn transient_write_faults_are_retried_too() {
    let (rig, faulty) = faulty_rig(1, FaultPolicy::transient_writes_in(0, 4096, 1));
    let cam = CamContext::attach(&rig, retrying_config());
    let dev = cam.device();
    let src = cam.alloc(4 * 4096).unwrap();
    src.write(0, &[0x5au8; 4 * 4096]);

    dev.write_back(&[10, 11, 12, 13], src.addr()).unwrap();
    dev.write_back_synchronize().unwrap();
    assert_eq!(cam.stats().retries, 4);
    assert_eq!(faulty.injected(), 4);

    // The retried writes actually landed on media.
    let out = cam.alloc(4 * 4096).unwrap();
    dev.prefetch(&[10, 11, 12, 13], out.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();
    assert!(out.to_vec().iter().all(|&b| b == 0x5a));
}

#[test]
fn permanent_faults_are_not_retried() {
    // Legacy every-Nth policies inject deterministic (non-transient)
    // errors: the retry engine must fail them immediately, preserving the
    // exact error counts the fault suite asserts.
    let (rig, faulty) = faulty_rig(2, FaultPolicy::reads_in(100, 200));
    let cam = CamContext::attach(&rig, retrying_config());
    let dev = cam.device();
    let buf = cam.alloc(16 * 4096).unwrap();

    let lbas: Vec<u64> = (200..216).collect(); // 8 requests hit the faulty SSD
    dev.prefetch(&lbas, buf.addr()).unwrap();
    match dev.prefetch_synchronize() {
        Err(CamError::Io { failed }) => assert_eq!(failed, 8),
        other => panic!("expected Io error, got {other:?}"),
    }
    let stats = cam.stats();
    assert_eq!(stats.retries, 0, "deterministic faults must not retry");
    assert_eq!(faulty.injected(), 8, "exactly one attempt per command");
}

#[test]
fn stuck_command_fails_by_deadline_without_wedging_the_worker() {
    // LBA range 0..1 on the only SSD never stops failing transiently. With
    // an effectively unbounded retry budget, only the per-command deadline
    // ends it — as a failed command, after which the channel keeps working.
    let (rig, _faulty) = faulty_rig(1, FaultPolicy::transient_reads_in(0, 1, u32::MAX));
    let registry = Arc::new(MetricsRegistry::new());
    let cfg = CamConfig {
        max_retries: u32::MAX,
        retry_backoff_ns: 1_000,
        cmd_deadline_ns: Some(3_000_000), // 3 ms
        ..CamConfig::default()
    };
    let obs = Observability::with_registry(Arc::clone(&registry));
    let cam = CamContext::attach_observed(&rig, cfg, obs);
    let dev = cam.device();
    let buf = cam.alloc(4 * 4096).unwrap();

    // One stuck command amid healthy ones: exactly one failure surfaces.
    dev.prefetch(&[0, 1, 2, 3], buf.addr()).unwrap();
    match dev.prefetch_synchronize() {
        Err(CamError::Io { failed }) => assert_eq!(failed, 1),
        other => panic!("expected the stuck command to fail, got {other:?}"),
    }
    let stats = cam.stats();
    assert!(stats.cmd_timeouts >= 1, "stats: {stats:?}");
    assert!(
        stats.retries > 0,
        "the command was retried before timing out"
    );
    assert!(registry.to_prometheus().contains("cam_cmd_timeouts_total"));

    // The worker thread survived: a healthy batch retires normally.
    dev.prefetch(&[2, 3], buf.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();
}

#[test]
fn blocking_baseline_still_retries() {
    // The blocking (non-pipelined) mode shares the reactor code path, so
    // retry transparency holds there too.
    let (rig, _faulty) = faulty_rig(1, FaultPolicy::transient_reads_in(0, 4096, 1));
    let cfg = CamConfig {
        pipelined: false,
        ..retrying_config()
    };
    let cam = CamContext::attach(&rig, cfg);
    let dev = cam.device();
    let buf = cam.alloc(4 * 4096).unwrap();
    dev.prefetch(&[0, 1, 2, 3], buf.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();
    assert_eq!(cam.stats().retries, 4);
}
