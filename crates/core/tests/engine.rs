//! Engine-level regressions: channel-count scaling of the compute-gap
//! tracker and the stripe-split metric.

use std::sync::Arc;

use cam_core::{CamConfig, CamContext, ChannelOp};
use cam_iostacks::{Rig, RigConfig};
use cam_telemetry::{MetricsRegistry, Observability};

#[test]
fn channels_beyond_64_track_compute_gaps() {
    // The compute-gap tracker was once a hard-coded 64-slot array: batches
    // on channel ≥ 64 crashed the retiring worker (out-of-bounds store) and
    // gap samples were silently dropped. It must now scale with the
    // configured channel count.
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    });
    let cfg = CamConfig {
        n_channels: 66,
        ..CamConfig::default()
    };
    let cam = CamContext::attach(&rig, cfg);
    let dev = cam.device();
    let buf = cam.alloc(4 * 4096).unwrap();

    // Two batches on the highest channel with a gap between them: the
    // second pickup must observe the retire→doorbell gap as compute time.
    let t = dev
        .submit(65, ChannelOp::Read, &[0, 1, 2, 3], buf.addr())
        .unwrap();
    t.wait().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(2));
    let t = dev
        .submit(65, ChannelOp::Read, &[4, 5, 6, 7], buf.addr())
        .unwrap();
    t.wait().unwrap();

    let stats = cam.stats();
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.errors, 0);
    assert!(
        stats.compute_samples >= 1,
        "gap on channel 65 dropped: {stats:?}"
    );
}

#[test]
fn stripe_boundary_splits_are_counted() {
    // Stripe width 4, requests of 8 blocks starting on a stripe boundary:
    // each request splits into exactly 2 stripe-contiguous runs, so 4
    // requests yield 4 extra submissions.
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        blocks_per_ssd: 4096,
        stripe_blocks: 4,
        ..RigConfig::default()
    });
    let registry = Arc::new(MetricsRegistry::new());
    let obs = Observability::with_registry(Arc::clone(&registry));
    let cam = CamContext::attach_observed(&rig, CamConfig::default(), obs);
    let dev = cam.device();
    let buf = cam.alloc(4 * 8 * 4096).unwrap();

    let lbas = [0u64, 8, 16, 24];
    let bs = 8 * 4096u64;
    let t = dev
        .submit_scatter(0, ChannelOp::Read, &lbas, |i| buf.addr() + i as u64 * bs, 8)
        .unwrap();
    t.wait().unwrap();

    assert_eq!(cam.stats().stripe_splits, 4, "{:?}", cam.stats());
    let text = registry.to_prometheus();
    assert!(text.contains("cam_stripe_splits_total 4"), "{text}");

    // Single-block requests never split.
    let t = dev
        .submit(0, ChannelOp::Read, &[0, 1, 2, 3], buf.addr())
        .unwrap();
    t.wait().unwrap();
    assert_eq!(cam.stats().stripe_splits, 4);
}
