//! [`CamBackend`] — CAM exposed through the common
//! [`StorageBackend`](cam_iostacks::StorageBackend) trait, so every
//! workload in `cam-workloads` runs unchanged on POSIX, SPDK, BaM, or CAM.

use cam_hostos::IoDir;
use cam_iostacks::{BackendError, IoRequest, StorageBackend};
use cam_nvme::spec::Status;

use crate::api::{CamDevice, CamError};
use crate::regions::ChannelOp;

/// Adapter holding a device handle; batches are carried over the regular
/// CAM channels (reads on channel 0, writes on channel 1).
pub struct CamBackend {
    device: CamDevice,
    max_batch: usize,
}

impl CamBackend {
    /// Wraps a device handle. `max_batch` must not exceed the context's
    /// region-1 capacity.
    pub fn new(device: CamDevice, max_batch: usize) -> Self {
        assert!(max_batch >= 1);
        CamBackend { device, max_batch }
    }

    fn run_chunk(&self, chunk: &[&IoRequest]) -> Result<(), BackendError> {
        let dir = chunk[0].dir;
        let blocks = chunk[0].blocks;
        let (channel, op) = match dir {
            IoDir::Read => (0, ChannelOp::Read),
            IoDir::Write => (1, ChannelOp::Write),
        };
        let lbas: Vec<u64> = chunk.iter().map(|r| r.lba).collect();
        let ticket = self
            .device
            .submit_scatter(channel, op, &lbas, |i| chunk[i].addr, blocks)
            .map_err(cam_to_backend)?;
        ticket.wait().map_err(cam_to_backend)
    }
}

fn cam_to_backend(e: CamError) -> BackendError {
    match e {
        // A sync timeout means the batch never retired — surface it as a
        // failed command like any other lost I/O.
        CamError::Io { .. } | CamError::SyncTimeout { .. } => {
            BackendError::Command(Status::DataTransferError)
        }
        CamError::BatchTooLarge {
            requested,
            capacity,
        } => BackendError::BatchTooLarge {
            needed: requested,
            capacity,
        },
        // Spawn can't reach here (the backend wraps an already-running
        // context), but map it to a command failure rather than panic.
        CamError::ChannelBusy | CamError::BadChannel(_) | CamError::Spawn => {
            BackendError::Command(Status::InvalidField)
        }
    }
}

impl StorageBackend for CamBackend {
    fn name(&self) -> &'static str {
        "CAM"
    }

    fn staged_data_path(&self) -> bool {
        false
    }

    fn execute_batch(&self, reqs: &[IoRequest]) -> Result<(), BackendError> {
        // Chunk by (direction, per-request block count) and capacity,
        // preserving order across direction changes.
        let mut chunk: Vec<&IoRequest> = Vec::new();
        for req in reqs {
            let brk = chunk
                .last()
                .map(|p| p.dir != req.dir || p.blocks != req.blocks)
                .unwrap_or(false);
            if brk || chunk.len() == self.max_batch {
                self.run_chunk(&chunk)?;
                chunk.clear();
            }
            chunk.push(req);
        }
        if !chunk.is_empty() {
            self.run_chunk(&chunk)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CamConfig, CamContext};
    use cam_iostacks::{Rig, RigConfig};

    #[test]
    fn cam_backend_round_trip() {
        let rig = Rig::new(RigConfig {
            n_ssds: 3,
            ..RigConfig::default()
        });
        let cam = CamContext::attach(&rig, CamConfig::default());
        let be = CamBackend::new(cam.device(), 4096);
        let n = 48u64;
        let src = rig.gpu().alloc((n as usize) * 4096).unwrap();
        for i in 0..n {
            src.write(i as usize * 4096, &vec![(i % 200) as u8 + 1; 4096]);
        }
        let writes: Vec<IoRequest> = (0..n)
            .map(|i| IoRequest::write(i, 1, src.addr() + i * 4096))
            .collect();
        be.execute_batch(&writes).unwrap();
        let dst = rig.gpu().alloc((n as usize) * 4096).unwrap();
        let reads: Vec<IoRequest> = (0..n)
            .map(|i| IoRequest::read(i, 1, dst.addr() + i * 4096))
            .collect();
        be.execute_batch(&reads).unwrap();
        assert_eq!(src.to_vec(), dst.to_vec());
        assert!(!be.staged_data_path());
        assert_eq!(be.name(), "CAM");
    }

    #[test]
    fn mixed_direction_batch_respects_order() {
        let rig = Rig::new(RigConfig::default());
        let cam = CamContext::attach(&rig, CamConfig::default());
        let be = CamBackend::new(cam.device(), 16);
        let a = rig.gpu().alloc(4096).unwrap();
        let b = rig.gpu().alloc(4096).unwrap();
        a.write(0, &[0x31u8; 4096]);
        be.execute_batch(&[
            IoRequest::write(7, 1, a.addr()),
            IoRequest::read(7, 1, b.addr()),
        ])
        .unwrap();
        assert!(b.to_vec().iter().all(|&x| x == 0x31));
    }

    #[test]
    fn errors_propagate() {
        let rig = Rig::new(RigConfig::default());
        let cam = CamContext::attach(&rig, CamConfig::default());
        let be = CamBackend::new(cam.device(), 16);
        let buf = rig.gpu().alloc(4096).unwrap();
        let far = rig.array_blocks() * 4;
        assert!(be
            .execute_batch(&[IoRequest::read(far, 1, buf.addr())])
            .is_err());
    }
}
