//! [`DynamicScaler`] — the dynamic CPU-core adjustment of § III-A.
//!
//! "If computation takes a longer time, the total execution time is bounded
//! by computation because I/O time completely overlaps with computation
//! time. Less I/O throughput may also be no longer than the computation
//! time, allowing CAM to dynamically reduce the CPU cores without affecting
//! performance. CAM records computation and I/O time [and] adjusts the
//! number of cores for CPU-based SSD control according to the relative time
//! of computation and I/O in the last batch."
//!
//! With `N` SSDs the active-worker count ranges over `[ceil(N/4),
//! ceil(N/2)]` — the upper bound because one thread drives two SSDs for
//! free (Fig. 12), the lower bound because ~4 SSDs/thread costs ~25%, which
//! only pays off when computation dominates anyway.

use cam_simkit::Dur;

/// Hysteresis thresholds: shrink when I/O (including slack) would still fit
/// under computation; grow as soon as I/O is the critical path.
const SHRINK_MARGIN: f64 = 1.3;

/// Adaptive controller for the number of active I/O worker threads.
#[derive(Clone, Copy, Debug)]
pub struct DynamicScaler {
    min: usize,
    max: usize,
    current: usize,
}

impl DynamicScaler {
    /// Creates a scaler for `n_ssds` SSDs, starting at the maximum
    /// (`ceil(N/2)`) so cold-start batches aren't I/O-starved.
    pub fn for_ssds(n_ssds: usize) -> Self {
        assert!(n_ssds >= 1);
        let min = n_ssds.div_ceil(4).max(1);
        let max = n_ssds.div_ceil(2).max(1);
        DynamicScaler {
            min,
            max,
            current: max,
        }
    }

    /// Creates a scaler with explicit bounds (for experiments).
    pub fn with_bounds(min: usize, max: usize) -> Self {
        assert!(1 <= min && min <= max);
        DynamicScaler {
            min,
            max,
            current: max,
        }
    }

    /// Current active worker count.
    pub fn active(&self) -> usize {
        self.current
    }

    /// Lower bound (`ceil(N/4)`).
    pub fn min(&self) -> usize {
        self.min
    }

    /// Upper bound (`ceil(N/2)`).
    pub fn max(&self) -> usize {
        self.max
    }

    /// Feeds the last batch's observed computation and I/O durations and
    /// returns the (possibly updated) active worker count.
    ///
    /// * I/O slower than computation → the pipeline is I/O-bound: grow.
    /// * I/O faster than computation by a safety margin → even a slower
    ///   I/O plane would hide under compute: shrink.
    pub fn observe(&mut self, compute: Dur, io: Dur) -> usize {
        let c = compute.as_ns() as f64;
        let i = io.as_ns() as f64;
        if i > c {
            if self.current < self.max {
                self.current += 1;
            }
        } else if i * SHRINK_MARGIN < c && self.current > self.min {
            // Losing one worker multiplies per-request cost modestly; the
            // margin guarantees the slower I/O still hides under compute.
            self.current -= 1;
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_follow_the_paper() {
        let s = DynamicScaler::for_ssds(12);
        assert_eq!(s.min(), 3); // N/4
        assert_eq!(s.max(), 6); // N/2
        assert_eq!(s.active(), 6);
        let s = DynamicScaler::for_ssds(1);
        assert_eq!((s.min(), s.max()), (1, 1));
    }

    #[test]
    fn compute_bound_batches_shrink_to_min() {
        let mut s = DynamicScaler::for_ssds(12);
        for _ in 0..10 {
            s.observe(Dur::ms(10), Dur::ms(2));
        }
        assert_eq!(s.active(), s.min());
    }

    #[test]
    fn io_bound_batches_grow_to_max() {
        let mut s = DynamicScaler::with_bounds(3, 6);
        s.current = 3;
        for _ in 0..10 {
            s.observe(Dur::ms(2), Dur::ms(10));
        }
        assert_eq!(s.active(), 6);
    }

    #[test]
    fn balanced_batches_hold_steady() {
        let mut s = DynamicScaler::for_ssds(12);
        let before = s.active();
        for _ in 0..10 {
            // I/O just under compute but inside the margin: no change.
            s.observe(Dur::ms(10), Dur::ms(9));
        }
        assert_eq!(s.active(), before);
    }

    #[test]
    fn oscillating_workload_tracks() {
        let mut s = DynamicScaler::for_ssds(8);
        for _ in 0..6 {
            s.observe(Dur::ms(10), Dur::ms(1));
        }
        assert_eq!(s.active(), s.min());
        for _ in 0..6 {
            s.observe(Dur::ms(1), Dur::ms(10));
        }
        assert_eq!(s.active(), s.max());
    }
}
