//! [`Channel`] — the four pre-allocated memory regions of § III-B.
//!
//! One channel carries one stream of batches with single-outstanding-batch
//! semantics (Fig. 7 issues `prefetch` for batch *n+1* only after
//! `prefetch_synchronize` retired batch *n*). [`CamContext`] allocates one
//! channel for prefetch and one for write-back by default; extra channels
//! let several thread blocks drive independent streams.
//!
//! Ownership discipline (quoted from the paper): "The first three regions
//! are only written by the GPU and read by the CPU, whereas the last region
//! is only written by the CPU and read by the GPU."
//!
//! [`CamContext`]: crate::CamContext

use std::sync::atomic::{AtomicU64, Ordering};

/// Why a publish was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PublishError {
    /// A batch is still in flight on this channel.
    Busy,
    /// The batch exceeds region-1 capacity.
    TooLarge,
}

// The op enum lives in the protocol layer (both drivers plan and submit
// by it); re-exported here because the channel regions are its producer.
pub use cam_protocol::ChannelOp;

/// The four regions for one batch stream.
pub struct Channel {
    // -- Region 1: "an array of logical blocks that need to be processed",
    //    extended with a per-request destination address so scattered
    //    batches (and the StorageBackend adapter) are expressible.
    lbas: Vec<AtomicU64>,
    addrs: Vec<AtomicU64>,
    // -- Region 2: "arguments for the CPU to process a batch of requests".
    req_num: AtomicU64,
    op: AtomicU64, // 0 = read, 1 = write
    blocks_per_req: AtomicU64,
    // -- Region 3: "informed when the GPU has finished writing all the
    //    block IDs" — a monotone batch sequence number.
    doorbell: AtomicU64,
    // -- Region 4: "notifies the GPU when the CPU has processed all
    //    requests" — the retired batch sequence number.
    complete: AtomicU64,
    /// Commands of the current batch that completed with an error
    /// (CPU-written, GPU-read alongside region 4).
    errors: AtomicU64,
    /// Errors already reported to a `synchronize` caller.
    acked_errors: AtomicU64,
    /// Telemetry: when the current batch's doorbell was rung, on the
    /// [`cam_telemetry::clock`] timeline. Stamped just before the region-3
    /// release-store, so the poller reads a coherent value.
    published_ns: AtomicU64,
    /// Guards region 1+2 writes: the protocol has a single leading thread,
    /// but a racing misuse must fail with `Busy`, not corrupt the regions.
    publishing: std::sync::atomic::AtomicBool,
    /// Invoked after every doorbell publish — the control plane installs a
    /// hook that unparks the worker owning this channel, so an idle
    /// (parked) thread-per-core engine wakes without polling. `None` until
    /// installed; the legacy central-poller engine installs nothing.
    waker: parking_lot::Mutex<Option<std::sync::Arc<dyn Fn() + Send + Sync>>>,
}

impl Channel {
    /// Allocates a channel able to carry `max_batch` requests per batch.
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch >= 1);
        Channel {
            lbas: (0..max_batch).map(|_| AtomicU64::new(0)).collect(),
            addrs: (0..max_batch).map(|_| AtomicU64::new(0)).collect(),
            req_num: AtomicU64::new(0),
            op: AtomicU64::new(0),
            blocks_per_req: AtomicU64::new(1),
            doorbell: AtomicU64::new(0),
            complete: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            acked_errors: AtomicU64::new(0),
            published_ns: AtomicU64::new(0),
            publishing: std::sync::atomic::AtomicBool::new(false),
            waker: parking_lot::Mutex::new(None),
        }
    }

    /// Installs the post-publish wakeup hook (replacing any previous one).
    /// Called by the control plane at attach; the hook runs on the
    /// publishing (GPU-side) thread after the region-3 doorbell store.
    pub fn set_waker(&self, waker: std::sync::Arc<dyn Fn() + Send + Sync>) {
        *self.waker.lock() = Some(waker);
    }

    /// Maximum requests per batch (region-1 capacity).
    pub fn capacity(&self) -> usize {
        self.lbas.len()
    }

    /// GPU side: whether the previous batch has fully retired, i.e. the
    /// regions may be overwritten.
    pub fn idle(&self) -> bool {
        self.complete.load(Ordering::Acquire) == self.doorbell.load(Ordering::Acquire)
    }

    /// GPU side (leading thread): publish a batch. Regions 1 and 2 are
    /// filled, then the region-3 doorbell releases them to the CPU.
    /// Returns the batch's sequence number.
    ///
    /// # Panics
    /// If the batch exceeds capacity or the channel is busy (the protocol
    /// requires `synchronize` between batches on one channel). Use
    /// [`try_publish`](Self::try_publish) for a fallible variant.
    pub fn publish(
        &self,
        op: ChannelOp,
        lbas: &[u64],
        addrs: impl Fn(usize) -> u64,
        blocks_per_req: u32,
    ) -> u64 {
        match self.try_publish(op, lbas, addrs, blocks_per_req) {
            Ok(seq) => seq,
            Err(PublishError::TooLarge) => panic!("batch exceeds region-1 capacity"),
            Err(PublishError::Busy) => panic!("channel busy: synchronize before re-publishing"),
        }
    }

    /// Fallible [`publish`](Self::publish).
    pub fn try_publish(
        &self,
        op: ChannelOp,
        lbas: &[u64],
        addrs: impl Fn(usize) -> u64,
        blocks_per_req: u32,
    ) -> Result<u64, PublishError> {
        if lbas.len() > self.capacity() {
            return Err(PublishError::TooLarge);
        }
        // Claim exclusive publish rights before touching regions 1+2 — a
        // second concurrent publisher gets `Busy` instead of interleaving
        // region writes with ours.
        if self
            .publishing
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return Err(PublishError::Busy);
        }
        if !self.idle() {
            self.publishing.store(false, Ordering::Release);
            return Err(PublishError::Busy);
        }
        for (i, &lba) in lbas.iter().enumerate() {
            self.lbas[i].store(lba, Ordering::Relaxed);
            self.addrs[i].store(addrs(i), Ordering::Relaxed);
        }
        self.req_num.store(lbas.len() as u64, Ordering::Relaxed);
        self.op.store(
            match op {
                ChannelOp::Read => 0,
                ChannelOp::Write => 1,
            },
            Ordering::Relaxed,
        );
        self.blocks_per_req
            .store(blocks_per_req as u64, Ordering::Relaxed);
        self.published_ns
            .store(cam_telemetry::clock::now_ns(), Ordering::Relaxed);
        // Region 3: one release-store makes regions 1+2 visible — this is
        // the single "doorbell" write the leading thread performs.
        let seq = self.doorbell.load(Ordering::Relaxed) + 1;
        self.doorbell.store(seq, Ordering::Release);
        self.publishing.store(false, Ordering::Release);
        // Wake the owning worker *after* the doorbell is visible: a worker
        // that wakes and sees nothing simply re-parks (token protocol).
        let waker = self.waker.lock().clone();
        if let Some(w) = waker {
            w();
        }
        Ok(seq)
    }

    /// CPU side (poller): returns the pending batch sequence if a new
    /// doorbell has been rung.
    pub fn pending(&self, last_seen: u64) -> Option<u64> {
        let db = self.doorbell.load(Ordering::Acquire);
        (db > last_seen).then_some(db)
    }

    /// CPU side: snapshot the published batch (after observing `pending`).
    pub fn snapshot(&self) -> (ChannelOp, u32, Vec<(u64, u64)>) {
        let n = self.req_num.load(Ordering::Relaxed) as usize;
        let op = if self.op.load(Ordering::Relaxed) == 0 {
            ChannelOp::Read
        } else {
            ChannelOp::Write
        };
        let blocks = self.blocks_per_req.load(Ordering::Relaxed) as u32;
        let reqs = (0..n)
            .map(|i| {
                (
                    self.lbas[i].load(Ordering::Relaxed),
                    self.addrs[i].load(Ordering::Relaxed),
                )
            })
            .collect();
        (op, blocks, reqs)
    }

    /// CPU side: retire batch `seq`, adding `errors` failed commands.
    /// The region-4 store is the only CPU→GPU write.
    pub fn retire(&self, seq: u64, errors: u64) {
        if errors > 0 {
            self.errors.fetch_add(errors, Ordering::Relaxed);
        }
        self.complete.store(seq, Ordering::Release);
    }

    /// GPU side: whether batch `seq` has retired.
    pub fn retired(&self, seq: u64) -> bool {
        self.complete.load(Ordering::Acquire) >= seq
    }

    /// Cumulative failed commands on this channel.
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// GPU side: errors that appeared since the last call (consumed by
    /// `synchronize` so each failure is reported exactly once).
    pub fn take_new_errors(&self) -> u64 {
        let now = self.errors.load(Ordering::Relaxed);
        let prev = self.acked_errors.swap(now, Ordering::Relaxed);
        now - prev
    }

    /// Latest published sequence number.
    pub fn current_seq(&self) -> u64 {
        self.doorbell.load(Ordering::Acquire)
    }

    /// Telemetry: when the current batch's doorbell was rung
    /// ([`cam_telemetry::clock`] nanoseconds). Meaningful after observing
    /// [`pending`](Self::pending) for that batch.
    pub fn published_at_ns(&self) -> u64 {
        self.published_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_snapshot_retire_cycle() {
        let ch = Channel::new(8);
        assert!(ch.idle());
        let seq = ch.publish(
            ChannelOp::Read,
            &[10, 20, 30],
            |i| 0x1000 + i as u64 * 4096,
            2,
        );
        assert_eq!(seq, 1);
        assert!(!ch.idle());
        assert_eq!(ch.pending(0), Some(1));
        assert_eq!(ch.pending(1), None);
        let (op, blocks, reqs) = ch.snapshot();
        assert_eq!(op, ChannelOp::Read);
        assert_eq!(blocks, 2);
        assert_eq!(reqs, vec![(10, 0x1000), (20, 0x2000), (30, 0x3000)]);
        assert!(!ch.retired(1));
        ch.retire(1, 0);
        assert!(ch.retired(1));
        assert!(ch.idle());
        assert_eq!(ch.error_count(), 0);
    }

    #[test]
    fn sequences_are_monotone() {
        let ch = Channel::new(4);
        for expect in 1..=5u64 {
            let seq = ch.publish(ChannelOp::Write, &[1], |_| 0, 1);
            assert_eq!(seq, expect);
            ch.retire(seq, 0);
        }
        assert_eq!(ch.current_seq(), 5);
    }

    #[test]
    fn errors_accumulate() {
        let ch = Channel::new(4);
        let s = ch.publish(ChannelOp::Read, &[1, 2], |_| 0, 1);
        ch.retire(s, 2);
        assert_eq!(ch.error_count(), 2);
    }

    #[test]
    #[should_panic(expected = "channel busy")]
    fn republish_without_retire_panics() {
        let ch = Channel::new(4);
        ch.publish(ChannelOp::Read, &[1], |_| 0, 1);
        ch.publish(ChannelOp::Read, &[2], |_| 0, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn oversized_batch_panics() {
        let ch = Channel::new(2);
        ch.publish(ChannelOp::Read, &[1, 2, 3], |_| 0, 1);
    }

    #[test]
    fn racing_publishers_cannot_interleave() {
        // Many threads race to publish on one channel; per protocol round
        // exactly one may win, and the snapshot must always be internally
        // consistent (all entries from one winner).
        let ch = std::sync::Arc::new(Channel::new(64));
        let rounds = 50u64;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let ch = std::sync::Arc::clone(&ch);
                handles.push(s.spawn(move || {
                    let mut wins = 0u64;
                    for _ in 0..rounds {
                        let lbas = [t * 1000, t * 1000 + 1, t * 1000 + 2];
                        if ch.try_publish(ChannelOp::Read, &lbas, |_| t, 1).is_ok() {
                            wins += 1;
                        }
                        std::thread::yield_now();
                    }
                    wins
                }));
            }
            // "CPU": retire whatever appears, checking consistency. The
            // deadline panics rather than silently breaking out — a wedged
            // channel must fail the test loudly, not trickle into the
            // win/retire-count mismatch below.
            let mut last = 0;
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let mut retired = 0u64;
            loop {
                assert!(
                    std::time::Instant::now() < deadline,
                    "retire loop exceeded its 10 s deadline with publishers still running \
                     ({retired} batches retired so far)"
                );
                if let Some(seq) = ch.pending(last) {
                    let (_, _, reqs) = ch.snapshot();
                    assert_eq!(reqs.len(), 3);
                    let owner = reqs[0].1; // addr encodes the winner
                    let base = owner * 1000;
                    assert_eq!(
                        reqs.iter().map(|r| r.0).collect::<Vec<_>>(),
                        vec![base, base + 1, base + 2],
                        "interleaved publish detected"
                    );
                    ch.retire(seq, 0);
                    retired += 1;
                    last = seq;
                } else if handles.iter().all(|h| h.is_finished()) {
                    break;
                } else {
                    std::thread::yield_now();
                }
            }
            let total_wins: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total_wins, retired);
            assert!(retired >= 1);
        });
    }

    #[test]
    fn cross_thread_handoff() {
        // GPU thread publishes; CPU thread snapshots and retires.
        let ch = std::sync::Arc::new(Channel::new(64));
        let cpu = {
            let ch = std::sync::Arc::clone(&ch);
            std::thread::spawn(move || {
                let mut last = 0;
                let mut total = 0u64;
                while total < 10 {
                    if let Some(seq) = ch.pending(last) {
                        let (_, _, reqs) = ch.snapshot();
                        total += reqs.len() as u64;
                        ch.retire(seq, 0);
                        last = seq;
                    } else {
                        std::thread::yield_now();
                    }
                }
                total
            })
        };
        for batch in 0..5u64 {
            let seq = ch.publish(ChannelOp::Read, &[batch, batch + 100], |_| 0, 1);
            while !ch.retired(seq) {
                std::thread::yield_now();
            }
        }
        assert_eq!(cpu.join().unwrap(), 10);
    }
}
