//! The CPU user-space control plane (§ III-A).
//!
//! One persistent **polling thread** watches every channel's doorbell
//! ("CAM does not require persistent threads on the GPU. Instead, it
//! requires a persistent thread on the CPU"). When a batch arrives it is
//! split by stripe across SSDs and dispatched to **worker threads**; each
//! worker owns a private queue pair per SSD (SPDK's no-locks-in-the-I/O-path
//! discipline), stages the whole group, rings one doorbell, and polls
//! completions. The last worker of a batch retires it by writing region 4
//! and feeds the [`DynamicScaler`] with the batch's compute/I/O times.
//!
//! [`DynamicScaler`]: crate::DynamicScaler

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use cam_nvme::spec::{Sqe, Status};
use cam_nvme::{DmaSpace, NvmeDevice, QueuePair};
use cam_simkit::Dur;
use cam_telemetry::{
    clock, BatchSpan, ControlMetrics, EventKind, FlightRecorder, Observability, PostmortemDumper,
    Stage, TelemetrySink,
};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::regions::{Channel, ChannelOp};
use crate::scaler::DynamicScaler;

/// Index into [`ControlMetrics::OPS`] for a channel operation.
fn op_index(op: ChannelOp) -> usize {
    match op {
        ChannelOp::Read => 0,
        ChannelOp::Write => 1,
    }
}

/// Control-plane configuration (subset of [`CamConfig`]).
///
/// [`CamConfig`]: crate::CamConfig
#[derive(Clone, Copy, Debug)]
pub(crate) struct ControlConfig {
    pub queue_depth: usize,
    pub dynamic_scaling: bool,
    /// Worker threads spawned (= the scaler's upper bound).
    pub max_workers: usize,
    pub stripe_blocks: u64,
    pub block_size: u32,
}

/// A point-in-time snapshot of control-plane counters.
///
/// Derived from the telemetry registry: every field is readable as a
/// `cam_*` metric too (see [`ControlMetrics`]); this struct is the
/// ergonomic host-API view.
#[derive(Clone, Copy, Debug, Default)]
pub struct ControlStats {
    /// Batches retired.
    pub batches: u64,
    /// Requests completed.
    pub requests: u64,
    /// Commands that failed.
    pub errors: u64,
    /// Workers currently active (≤ spawned workers).
    pub active_workers: usize,
    /// Mean I/O time per batch (doorbell → region-4 write). `None` until a
    /// batch has retired — a snapshot with no batches has no mean, and
    /// reporting 0 silently would poison downstream rate math.
    pub mean_io: Option<Dur>,
    /// Mean GPU-side gap between batches (retire → next doorbell), the
    /// control plane's estimate of computation time. `None` until the first
    /// gap is observed.
    pub mean_compute: Option<Dur>,
    /// Cumulative I/O time across all batches (the numerator of
    /// [`mean_io`](Self::mean_io); kept so snapshots can be diffed).
    pub total_io: Dur,
    /// Cumulative observed compute gaps (numerator of
    /// [`mean_compute`](Self::mean_compute)).
    pub total_compute: Dur,
    /// Number of compute-gap observations (denominator of
    /// [`mean_compute`](Self::mean_compute)).
    pub compute_samples: u64,
}

impl ControlStats {
    /// Counters accumulated since `earlier` (an older snapshot of the same
    /// control plane): cumulative fields are subtracted and the means
    /// recomputed over the interval, so per-phase workloads can be measured
    /// without resetting the registry. `active_workers` is a gauge and keeps
    /// the current (later) value.
    pub fn diff(&self, earlier: &ControlStats) -> ControlStats {
        let batches = self.batches.saturating_sub(earlier.batches);
        let io_ns = self
            .total_io
            .as_ns()
            .saturating_sub(earlier.total_io.as_ns());
        let compute_ns = self
            .total_compute
            .as_ns()
            .saturating_sub(earlier.total_compute.as_ns());
        let samples = self.compute_samples.saturating_sub(earlier.compute_samples);
        ControlStats {
            batches,
            requests: self.requests.saturating_sub(earlier.requests),
            errors: self.errors.saturating_sub(earlier.errors),
            active_workers: self.active_workers,
            mean_io: mean_dur(io_ns, batches),
            mean_compute: mean_dur(compute_ns, samples),
            total_io: Dur::ns(io_ns),
            total_compute: Dur::ns(compute_ns),
            compute_samples: samples,
        }
    }

    /// Mean I/O time in seconds, NaN-safe: `None` when no batch retired.
    pub fn mean_io_secs(&self) -> Option<f64> {
        self.mean_io.map(|d| d.as_secs_f64())
    }

    /// Mean compute gap in seconds, NaN-safe: `None` without observations.
    pub fn mean_compute_secs(&self) -> Option<f64> {
        self.mean_compute.map(|d| d.as_secs_f64())
    }
}

/// `total / n` as a duration, or `None` when there are no observations —
/// never a silent 0.
fn mean_dur(total_ns: u64, n: u64) -> Option<Dur> {
    (n > 0).then(|| Dur::ns(total_ns / n))
}

struct WorkItem {
    ssd: usize,
    op: ChannelOp,
    /// (device LBA, pinned address, blocks) — stripe-contiguous runs.
    reqs: Vec<(u64, u64, u32)>,
    batch: Arc<BatchState>,
}

struct BatchState {
    channel: usize,
    seq: u64,
    op: usize,
    remaining: AtomicUsize,
    errors: AtomicU64,
    requests: u64,
    dispatched: Instant,
    compute_gap: Dur,
    /// Telemetry timeline ([`clock::now_ns`]) anchors of this batch's span.
    doorbell_ns: u64,
    pickup_ns: u64,
    /// Duplicate read requests removed before dispatch: `(primary address,
    /// duplicate address)` pairs, replicated by a host-side DMA copy right
    /// before retire so every destination the GPU asked for is populated.
    dups: Vec<(u64, u64)>,
    /// Blocks per request (the replication copy length, in blocks).
    blocks: u32,
}

struct Shared {
    channels: Arc<Vec<Channel>>,
    /// Pinned address space shared with the SSDs, for host-side copies
    /// (duplicate-LBA replication at retire).
    dma: Arc<dyn DmaSpace>,
    /// `qps[ssd][worker]` — each worker's private queue pair per SSD.
    qps: Vec<Vec<Arc<QueuePair>>>,
    n_ssds: usize,
    stripe_blocks: u64,
    block_size: u32,
    active_workers: AtomicUsize,
    stop: AtomicBool,
    scaler: Mutex<DynamicScaler>,
    dynamic: bool,
    /// All counters/histograms live in the registry behind these handles —
    /// the control plane keeps no parallel ad-hoc stat atomics.
    metrics: Arc<ControlMetrics>,
    sink: Arc<dyn TelemetrySink>,
    /// Event layer: protocol-stage events per batch when attached.
    recorder: Option<Arc<FlightRecorder>>,
    /// Post-mortem dumper, triggered at retire on errors or deadline
    /// overrun.
    postmortem: Option<Arc<PostmortemDumper>>,
    /// Doorbell→retire budget for the post-mortem trigger.
    deadline_ns: Option<u64>,
    last_retire: Mutex<Vec<Option<Instant>>>,
}

impl Shared {
    fn map(&self, lba: u64) -> (usize, u64) {
        let n = self.n_ssds as u64;
        let stripe = lba / self.stripe_blocks;
        let within = lba % self.stripe_blocks;
        (
            (stripe % n) as usize,
            (stripe / n) * self.stripe_blocks + within,
        )
    }
}

/// The running control plane. Stops and joins its threads on drop.
pub(crate) struct ControlPlane {
    shared: Arc<Shared>,
    senders: Vec<Sender<WorkItem>>,
    poller: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ControlPlane {
    /// Spawns the poller and worker threads.
    ///
    /// Fails with the OS error if any thread cannot be spawned (resource
    /// exhaustion); threads spawned before the failure are stopped and
    /// joined, so an `Err` leaves nothing running.
    pub(crate) fn start(
        devices: &[NvmeDevice],
        dma: Arc<dyn DmaSpace>,
        channels: Arc<Vec<Channel>>,
        cfg: ControlConfig,
        metrics: Arc<ControlMetrics>,
        obs: &Observability,
    ) -> std::io::Result<Self> {
        let n_ssds = devices.len();
        assert!(n_ssds >= 1);
        let max_workers = cfg.max_workers.max(1);
        let qps: Vec<Vec<Arc<QueuePair>>> = devices
            .iter()
            .map(|d| {
                (0..max_workers)
                    .map(|_| d.add_queue_pair(cfg.queue_depth))
                    .collect()
            })
            .collect();
        let scaler = if cfg.dynamic_scaling {
            DynamicScaler::for_ssds(n_ssds)
        } else {
            DynamicScaler::with_bounds(max_workers, max_workers)
        };
        let initial = scaler.active().min(max_workers);
        metrics.active_workers.set(initial as u64);
        metrics.workers_min.set(scaler.min() as u64);
        metrics.workers_max.set(scaler.max() as u64);
        let shared = Arc::new(Shared {
            channels,
            dma,
            qps,
            n_ssds,
            stripe_blocks: cfg.stripe_blocks,
            block_size: cfg.block_size,
            active_workers: AtomicUsize::new(initial),
            stop: AtomicBool::new(false),
            scaler: Mutex::new(scaler),
            dynamic: cfg.dynamic_scaling,
            metrics,
            sink: Arc::clone(&obs.sink),
            recorder: obs.recorder.clone(),
            postmortem: obs.postmortem.clone(),
            deadline_ns: obs.batch_deadline_ns,
            last_retire: Mutex::new(vec![None; 64]),
        });

        // Any spawn failure unwinds what was already started: without the
        // stop flag + joins, a half-built plane would leak live workers
        // holding the shared state.
        let abort = |shared: &Arc<Shared>, workers: Vec<JoinHandle<()>>, e: std::io::Error| {
            shared.stop.store(true, Ordering::Release);
            for w in workers {
                let _ = w.join();
            }
            e
        };
        let mut senders = Vec::with_capacity(max_workers);
        let mut workers = Vec::with_capacity(max_workers);
        for wid in 0..max_workers {
            let (tx, rx) = crossbeam::channel::unbounded::<WorkItem>();
            let sh = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("cam-worker{wid}"))
                .spawn(move || worker_loop(&sh, wid, rx))
            {
                Ok(h) => {
                    senders.push(tx);
                    workers.push(h);
                }
                Err(e) => {
                    drop(tx);
                    drop(senders); // disconnect worker queues
                    return Err(abort(&shared, workers, e));
                }
            }
        }
        let poller = {
            let sh = Arc::clone(&shared);
            let poller_senders = senders.clone();
            match std::thread::Builder::new()
                .name("cam-poller".to_string())
                .spawn(move || poller_loop(&sh, &poller_senders))
            {
                Ok(h) => h,
                Err(e) => {
                    drop(senders);
                    return Err(abort(&shared, workers, e));
                }
            }
        };
        Ok(ControlPlane {
            shared,
            senders,
            poller: Some(poller),
            workers,
        })
    }

    pub(crate) fn stats(&self) -> ControlStats {
        let sh = &self.shared;
        let m = &sh.metrics;
        let batches = m.batches.get();
        let samples = m.compute_samples.get();
        let io_ns = m.io_time_ns.get();
        let compute_ns = m.compute_time_ns.get();
        ControlStats {
            batches,
            requests: m.requests.get(),
            errors: m.errors.get(),
            active_workers: sh.active_workers.load(Ordering::Relaxed),
            mean_io: mean_dur(io_ns, batches),
            mean_compute: mean_dur(compute_ns, samples),
            total_io: Dur::ns(io_ns),
            total_compute: Dur::ns(compute_ns),
            compute_samples: samples,
        }
    }

    /// Number of worker threads spawned (scaling happens within these).
    pub(crate) fn max_workers(&self) -> usize {
        self.workers.len()
    }

    pub(crate) fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.senders.clear(); // disconnect worker queues
        if let Some(p) = self.poller.take() {
            let _ = p.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        self.stop();
    }
}

fn poller_loop(sh: &Shared, senders: &[Sender<WorkItem>]) {
    if let Some(rec) = &sh.recorder {
        rec.name_current_thread("cam-poller");
    }
    let mut last_seen = vec![0u64; sh.channels.len()];
    let mut groups: Vec<Vec<(u64, u64, u32)>> = vec![Vec::new(); sh.n_ssds];
    while !sh.stop.load(Ordering::Acquire) {
        let mut progress = false;
        for (ch_idx, ch) in sh.channels.iter().enumerate() {
            let Some(seq) = ch.pending(last_seen[ch_idx]) else {
                continue;
            };
            progress = true;
            last_seen[ch_idx] = seq;
            let (op, blocks, mut reqs) = ch.snapshot();
            let pickup_ns = clock::now_ns();
            let doorbell_ns = ch.published_at_ns();
            let now = Instant::now();
            let compute_gap = {
                let mut lr = sh.last_retire.lock();
                match lr.get_mut(ch_idx).and_then(|o| o.take()) {
                    Some(t) => Dur::from_secs_f64(now.duration_since(t).as_secs_f64()),
                    None => Dur::ZERO,
                }
            };
            if reqs.is_empty() {
                ch.retire(seq, 0);
                continue;
            }
            let op_idx = op_index(op);
            sh.metrics
                .stage(op_idx, Stage::Pickup)
                .record(pickup_ns.saturating_sub(doorbell_ns));
            if let Some(rec) = &sh.recorder {
                // The doorbell fired on the GPU side before this thread saw
                // it — emit retroactively at the region-3 publish timestamp
                // so the trace span starts where the batch actually started.
                // Empty batches never get here, so every doorbell span is
                // closed by a retire.
                rec.emit_at(
                    doorbell_ns,
                    EventKind::BatchDoorbell {
                        channel: ch_idx as u16,
                        seq,
                        op: op_idx as u8,
                        requests: reqs.len() as u32,
                    },
                );
                rec.emit_at(
                    pickup_ns,
                    EventKind::BatchPickup {
                        channel: ch_idx as u16,
                        seq,
                    },
                );
            }
            // Duplicate LBAs in one read batch would fetch the same blocks
            // from the SSD several times. Keep the first destination per
            // LBA, drop the rest from dispatch, and remember them as copy
            // pairs: the retiring worker replicates the fetched data to
            // every duplicate destination before region 4 is written, so
            // the GPU still sees all of its destinations populated.
            // Requests in a batch share `blocks`, so equal start LBAs cover
            // identical ranges. Writes are left untouched (last-writer
            // semantics would change if we collapsed them).
            let requests = reqs.len() as u64;
            let mut dups: Vec<(u64, u64)> = Vec::new();
            if op == ChannelOp::Read {
                let mut first: std::collections::HashMap<u64, u64> =
                    std::collections::HashMap::with_capacity(reqs.len());
                reqs.retain(|&(lba, addr)| match first.entry(lba) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        dups.push((*e.get(), addr));
                        false
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(addr);
                        true
                    }
                });
                if !dups.is_empty() {
                    sh.metrics.dedup_dropped.add(dups.len() as u64);
                }
            }
            // Split the batch by stripe across SSDs. Requests that cross a
            // stripe boundary become several stripe-contiguous runs — the
            // CPU control plane owns the striping, so GPU code never needs
            // to know the array layout.
            for g in &mut groups {
                g.clear();
            }
            let bs = sh.block_size as u64;
            let mut total_requests = 0u64;
            for (lba, addr) in &reqs {
                let mut done = 0u64;
                while done < blocks as u64 {
                    let cur = lba + done;
                    let left = sh.stripe_blocks - cur % sh.stripe_blocks;
                    let run = left.min(blocks as u64 - done) as u32;
                    let (ssd, dev_lba) = sh.map(cur);
                    groups[ssd].push((dev_lba, addr + done * bs, run));
                    total_requests += 1;
                    done += run as u64;
                }
            }
            let _ = total_requests;
            let n_groups = groups.iter().filter(|g| !g.is_empty()).count();
            let batch = Arc::new(BatchState {
                channel: ch_idx,
                seq,
                op: op_idx,
                remaining: AtomicUsize::new(n_groups),
                errors: AtomicU64::new(0),
                requests,
                dispatched: now,
                compute_gap,
                doorbell_ns,
                pickup_ns,
                dups,
                blocks,
            });
            let active = sh
                .active_workers
                .load(Ordering::Relaxed)
                .clamp(1, senders.len());
            for (ssd, g) in groups.iter_mut().enumerate() {
                if g.is_empty() {
                    continue;
                }
                let item = WorkItem {
                    ssd,
                    op,
                    reqs: std::mem::take(g),
                    batch: Arc::clone(&batch),
                };
                // An SSD is always handled by the worker `ssd % active`, so
                // one SSD's queue pairs are never polled by two threads at
                // once within an active-count epoch.
                let _ = senders[ssd % active].send(item);
            }
        }
        if !progress {
            std::thread::yield_now();
        }
    }
}

fn worker_loop(sh: &Shared, wid: usize, rx: Receiver<WorkItem>) {
    if let Some(rec) = &sh.recorder {
        rec.name_current_thread(&format!("cam-worker{wid}"));
    }
    loop {
        let item = match rx.recv_timeout(std::time::Duration::from_millis(5)) {
            Ok(item) => item,
            Err(RecvTimeoutError::Timeout) => {
                if sh.stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let qp = &sh.qps[item.ssd][wid];
        let recv_ns = clock::now_ns();
        let op_idx = item.batch.op;
        sh.metrics
            .stage(op_idx, Stage::Dispatch)
            .record(recv_ns.saturating_sub(item.batch.pickup_ns));
        if let Some(rec) = &sh.recorder {
            rec.emit_at(
                recv_ns,
                EventKind::GroupDispatch {
                    channel: item.batch.channel as u16,
                    seq: item.batch.seq,
                    ssd: item.ssd as u16,
                    worker: wid as u16,
                },
            );
        }
        let mut submitted = 0usize;
        let mut completed = 0usize;
        let mut errors = 0u64;
        // Stage the whole group; one doorbell unless the ring fills
        // (batched submission is the point of the CPU control plane).
        while submitted < item.reqs.len() {
            let (dev_lba, addr, run_blocks) = item.reqs[submitted];
            let cid = (submitted % u16::MAX as usize) as u16;
            let sqe = match item.op {
                ChannelOp::Read => Sqe::read(cid, dev_lba, run_blocks, addr),
                ChannelOp::Write => Sqe::write(cid, dev_lba, run_blocks, addr),
            };
            if qp.push_sqe(sqe).is_ok() {
                submitted += 1;
            } else {
                qp.ring_doorbell();
                // Ring full: reap a few completions to make room.
                while let Some(cqe) = qp.poll_cqe() {
                    completed += 1;
                    if cqe.status != Status::Success {
                        errors += 1;
                    }
                }
                std::thread::yield_now();
            }
        }
        qp.ring_doorbell();
        let submit_ns = clock::now_ns();
        let submit_span = submit_ns.saturating_sub(recv_ns);
        sh.metrics.stage(op_idx, Stage::Submit).record(submit_span);
        sh.metrics.ssd_submit_ns[item.ssd].record(submit_span);
        sh.metrics.ssd_submitted[item.ssd].add(item.reqs.len() as u64);
        if let Some(rec) = &sh.recorder {
            rec.emit_at(
                submit_ns,
                EventKind::GroupSubmit {
                    channel: item.batch.channel as u16,
                    seq: item.batch.seq,
                    ssd: item.ssd as u16,
                    worker: wid as u16,
                    sqes: item.reqs.len() as u32,
                },
            );
        }
        while completed < item.reqs.len() {
            match qp.poll_cqe() {
                Some(cqe) => {
                    completed += 1;
                    if cqe.status != Status::Success {
                        errors += 1;
                    }
                }
                None => std::thread::yield_now(),
            }
        }
        if errors > 0 {
            item.batch.errors.fetch_add(errors, Ordering::Relaxed);
        }
        let complete_ns = clock::now_ns();
        let complete_span = complete_ns.saturating_sub(submit_ns);
        sh.metrics
            .stage(op_idx, Stage::Complete)
            .record(complete_span);
        sh.metrics.ssd_complete_ns[item.ssd].record(complete_span);
        sh.metrics.ssd_completed[item.ssd].add(item.reqs.len() as u64);
        if let Some(rec) = &sh.recorder {
            rec.emit_at(
                complete_ns,
                EventKind::GroupComplete {
                    channel: item.batch.channel as u16,
                    seq: item.batch.seq,
                    ssd: item.ssd as u16,
                    worker: wid as u16,
                    errors: errors as u32,
                },
            );
        }
        // Last group retires the batch: region-4 write + bookkeeping.
        if item.batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let b = &item.batch;
            let m = &sh.metrics;
            // Replicate deduplicated reads to their duplicate destinations
            // before region 4 is written — after retire the GPU is free to
            // read any of them.
            if !b.dups.is_empty() {
                let mut buf = vec![0u8; b.blocks as usize * sh.block_size as usize];
                for &(src, dst) in &b.dups {
                    if sh.dma.dma_read(src, &mut buf).is_err()
                        || sh.dma.dma_write(dst, &buf).is_err()
                    {
                        b.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let batch_errors = b.errors.load(Ordering::Relaxed);
            let io = Dur::from_secs_f64(b.dispatched.elapsed().as_secs_f64());
            sh.channels[b.channel].retire(b.seq, batch_errors);
            let retire_ns = clock::now_ns();
            sh.last_retire.lock()[b.channel] = Some(Instant::now());
            m.stage(op_idx, Stage::Retire)
                .record(retire_ns.saturating_sub(complete_ns));
            m.batch_total(b.channel, op_idx)
                .record(retire_ns.saturating_sub(b.doorbell_ns));
            if let Some(rec) = &sh.recorder {
                rec.emit_at(
                    retire_ns,
                    EventKind::BatchRetire {
                        channel: b.channel as u16,
                        seq: b.seq,
                        errors: batch_errors as u32,
                    },
                );
            }
            m.batches.inc();
            m.requests.add(b.requests);
            m.errors.add(batch_errors);
            m.io_time_ns.add(io.as_ns());
            if b.compute_gap > Dur::ZERO {
                m.compute_time_ns.add(b.compute_gap.as_ns());
                m.compute_samples.inc();
            }
            if sh.dynamic && b.compute_gap > Dur::ZERO {
                let prev = sh.active_workers.load(Ordering::Relaxed);
                let active = sh.scaler.lock().observe(b.compute_gap, io);
                sh.active_workers.store(active, Ordering::Relaxed);
                if active != prev {
                    m.active_workers.set(active as u64);
                    if active > prev {
                        m.scaler_grow.inc();
                    } else {
                        m.scaler_shrink.inc();
                    }
                    if let Some(rec) = &sh.recorder {
                        rec.emit(EventKind::ScalerDecision {
                            active: active as u32,
                            grew: active > prev,
                        });
                    }
                    sh.sink.workers_scaled(active);
                }
            }
            sh.sink.batch_retired(&BatchSpan {
                channel: b.channel,
                op: ControlMetrics::OPS[op_idx],
                seq: b.seq,
                requests: b.requests,
                errors: batch_errors,
                doorbell_ns: b.doorbell_ns,
                pickup_ns: b.pickup_ns,
                retire_ns,
            });
            if let Some(pm) = &sh.postmortem {
                let total_ns = retire_ns.saturating_sub(b.doorbell_ns);
                if batch_errors > 0 {
                    pm.trigger(&format!(
                        "batch ch{} seq {} retired with {} error(s)",
                        b.channel, b.seq, batch_errors
                    ));
                } else if sh.deadline_ns.is_some_and(|d| total_ns > d) {
                    pm.trigger(&format!(
                        "batch ch{} seq {} overran deadline: {} ns doorbell->retire",
                        b.channel, b.seq, total_ns
                    ));
                }
            }
        }
    }
}
