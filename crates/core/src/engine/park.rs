//! A token-based parker for idle workers.
//!
//! Each thread-per-core worker owns one [`Parker`]; doorbell publishes,
//! cross-worker ring pushes and `stop` all call [`unpark`](Parker::unpark)
//! on the owning worker. The token makes the protocol lost-wakeup-safe:
//! an unpark that races a worker *about to* park leaves the token set, so
//! the park returns immediately. Spurious wakeups are benign — the worker
//! loop re-derives what to do from protocol state every iteration.
//!
//! [`unpark`](Parker::unpark) sits on hot paths (every doorbell publish,
//! every ring push), so it is a single atomic swap unless the target is
//! actually parked — only then does it take the lock to notify.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// No token banked, nobody waiting.
const EMPTY: u32 = 0;
/// A token is banked; the next park consumes it without blocking.
const TOKEN: u32 = 1;
/// The worker is parked (or committing to park) on the condvar.
const PARKED: u32 = 2;

/// A one-token park/unpark primitive (atomic state + condvar; the
/// vendored `parking_lot` shim has no `Parker` of its own).
pub(crate) struct Parker {
    state: AtomicU32,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Parker {
    pub(crate) fn new() -> Self {
        Parker {
            state: AtomicU32::new(EMPTY),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Consumes a banked token without blocking, if one is present.
    fn try_take_token(&self) -> bool {
        self.state
            .compare_exchange(TOKEN, EMPTY, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Blocks until a token is available (possibly already), consuming it.
    #[cfg(test)]
    pub(crate) fn park(&self) {
        loop {
            if self.try_take_token() {
                return;
            }
            if self
                .state
                .compare_exchange(EMPTY, PARKED, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue; // an unpark landed in between; take its token
            }
            let mut g = self.lock.lock();
            while self.state.load(Ordering::Acquire) == PARKED {
                self.cv.wait(&mut g);
            }
            drop(g);
            // Only an unpark moves PARKED → TOKEN, so the token is ours.
            if self.state.swap(EMPTY, Ordering::AcqRel) == TOKEN {
                return;
            }
        }
    }

    /// Blocks until a token is available or `timeout` elapses, consuming
    /// any token present on exit. May return early on a spurious wakeup.
    pub(crate) fn park_timeout(&self, timeout: Duration) {
        if self.try_take_token() {
            return;
        }
        if self
            .state
            .compare_exchange(EMPTY, PARKED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // An unpark landed between the two exchanges: consume it.
            self.state.swap(EMPTY, Ordering::Acquire);
            return;
        }
        // An unpark that raced ahead of this lock has already swapped the
        // state to TOKEN, and its notify (taken under the same lock)
        // cannot fire before our wait starts — so the re-check under the
        // lock makes the wakeup un-losable.
        let mut g = self.lock.lock();
        if self.state.load(Ordering::Acquire) == PARKED {
            let _ = self.cv.wait_for(&mut g, timeout);
        }
        drop(g);
        self.state.swap(EMPTY, Ordering::AcqRel);
    }

    /// Deposits a token and wakes the parked worker, if any. Tokens do not
    /// accumulate — many unparks before a park still cost one wakeup. One
    /// atomic swap unless the target is actually parked.
    pub(crate) fn unpark(&self) {
        if self.state.swap(TOKEN, Ordering::AcqRel) == PARKED {
            // Taking the lock orders this notify after the parker either
            // started waiting or observed the TOKEN state.
            drop(self.lock.lock());
            self.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn unpark_before_park_returns_immediately() {
        let p = Parker::new();
        p.unpark();
        let start = Instant::now();
        p.park();
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn park_timeout_expires_without_a_token() {
        let p = Parker::new();
        let start = Instant::now();
        p.park_timeout(Duration::from_millis(10));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn unpark_wakes_a_parked_thread() {
        let p = Arc::new(Parker::new());
        let waiter = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || p.park())
        };
        // Give the waiter a moment to actually park, then wake it; the
        // token protocol makes the race benign either way.
        std::thread::sleep(Duration::from_millis(5));
        p.unpark();
        waiter.join().unwrap();
    }

    #[test]
    fn tokens_do_not_accumulate() {
        let p = Parker::new();
        p.unpark();
        p.unpark();
        p.park(); // consumes the single token
        let start = Instant::now();
        p.park_timeout(Duration::from_millis(10));
        assert!(
            start.elapsed() >= Duration::from_millis(5),
            "second park must block: only one token may be banked"
        );
    }

    #[test]
    fn unpark_storm_against_a_parking_thread_never_hangs() {
        // Hammers the racy window (try_take_token / commit-to-park /
        // wait) from another thread; every park_timeout must return
        // promptly because a token is always in flight.
        let p = Arc::new(Parker::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let storm = {
            let p = Arc::clone(&p);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    p.unpark();
                }
            })
        };
        let start = Instant::now();
        for _ in 0..10_000 {
            p.park_timeout(Duration::from_secs(5));
        }
        stop.store(true, Ordering::Relaxed);
        storm.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "parks stalled under an unpark storm"
        );
    }
}
