//! The CPU user-space control plane (§ III-A): the threaded driver over
//! the pure protocol layer.
//!
//! The default engine ([`ThreadModel::ThreadPerCore`]) is a set of
//! lcore-style **run-to-completion workers** ([`shard`]): worker *w* owns
//! channels `ch % workers` outright, performs doorbell pickup and
//! [`cam_protocol::plan_batch`] planning inline, routes each per-SSD group
//! to the worker owning that SSD over bounded SPSC rings ([`ring`]), and
//! drives a [`cam_protocol::WorkerCore`] state machine over private queue
//! pairs (SPDK's no-locks-in-the-I/O-path discipline), executing the
//! [`cam_protocol::Command`]s it emits — SQE pushes, doorbell rings,
//! telemetry records. When the protocol reports nothing actionable
//! ([`cam_protocol::ParkHint`]), the worker parks on a [`park::Parker`]
//! woken by doorbell publishes, ring pushes and stop — idle CPU burn goes
//! to ~0 instead of a spin loop.
//!
//! The legacy engine ([`ThreadModel::CentralPoller`]) keeps the paper's
//! original shape for comparison benchmarks: one persistent **polling
//! thread** ([`dispatch`]) watches every channel's doorbell ("CAM does not
//! require persistent threads on the GPU. Instead, it requires a
//! persistent thread on the CPU") and fans planned groups out to worker
//! threads ([`reactor`]) over MPMC channels. Both engines share the same
//! pickup/planning code ([`dispatch::poll_channel`]), command execution
//! ([`reactor::execute`]) and retirement ([`retire`]): the last group of a
//! batch retires it by writing region 4 and feeds the [`DynamicScaler`]
//! with the batch's compute/I/O times.
//!
//! All protocol decisions live in `cam-protocol` and are clock-agnostic;
//! this module is the *only* place wall-clock time enters — [`WallClock`]
//! adapts the telemetry timeline to the protocol's
//! [`Clock`](cam_protocol::Clock). The DES driver
//! (`cam_iostacks::cam_des`) steps the same protocol objects in virtual
//! time; `docs/TIMING.md` describes the split.
//!
//! [`DynamicScaler`]: crate::DynamicScaler

mod dispatch;
mod park;
mod reactor;
mod retire;
mod ring;
mod shard;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use cam_nvme::{DmaSpace, NvmeDevice, QueuePair};
use cam_protocol::{Clock, GroupSpec, HealthTransition, PlanConfig, RetryPolicy};
use cam_simkit::Dur;
use cam_telemetry::{
    ControlMetrics, EventKind, FlightRecorder, Observability, OpsWindows, PostmortemDumper,
    SloTracker, TelemetrySink,
};
use crossbeam::channel::Sender;
use parking_lot::Mutex;

use crate::regions::Channel;
use crate::scaler::DynamicScaler;

/// The threaded driver's clock: the telemetry timeline
/// ([`cam_telemetry::clock::now_ns`]), so protocol timestamps and trace
/// events share one time base. This adapter is the only point where real
/// time enters the control plane.
struct WallClock;

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        cam_telemetry::clock::now_ns()
    }
}

/// Which threaded engine drives the control plane.
///
/// Both models execute identical protocol decisions (`cam-protocol` plans,
/// admits, retries and retires; the fidelity matrix asserts byte-identical
/// decision counters across them) — they differ only in which thread does
/// what, and what an idle thread costs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ThreadModel {
    /// Legacy engine: one central poller thread picks up every channel's
    /// doorbells, plans batches, and fans groups out to reactor workers
    /// over MPMC channels. Idle threads spin/sleep-poll. Kept for the
    /// mode-comparison benchmarks.
    CentralPoller,
    /// lcore-style run-to-completion engine: each worker owns channels
    /// `ch % workers`, picks up and plans inline, exchanges cross-worker
    /// groups over bounded SPSC rings, and parks on a condvar when the
    /// protocol reports nothing actionable.
    #[default]
    ThreadPerCore,
}

/// Control-plane configuration (subset of [`CamConfig`]).
///
/// [`CamConfig`]: crate::CamConfig
#[derive(Clone, Copy, Debug)]
pub(crate) struct ControlConfig {
    pub queue_depth: usize,
    pub dynamic_scaling: bool,
    /// Worker threads spawned (= the scaler's upper bound).
    pub max_workers: usize,
    pub stripe_blocks: u64,
    pub block_size: u32,
    /// Re-submissions allowed per command after a transient NVMe failure.
    pub max_retries: u32,
    /// Base of the exponential retry backoff (doubles per attempt).
    pub retry_backoff_ns: u64,
    /// Per-command budget from group dispatch to final completion; a
    /// command over it is failed (the command, not the worker thread).
    pub cmd_deadline_ns: Option<u64>,
    /// Pipelined reactor (in-flight depth > 1 per SSD across batches) vs.
    /// the blocking group-at-a-time baseline.
    pub pipelined: bool,
    /// Threading model: run-to-completion shards (default) or the legacy
    /// central poller.
    pub thread_model: ThreadModel,
}

/// A point-in-time snapshot of control-plane counters.
///
/// Derived from the telemetry registry: every field is readable as a
/// `cam_*` metric too (see [`ControlMetrics`]); this struct is the
/// ergonomic host-API view.
#[derive(Clone, Copy, Debug, Default)]
pub struct ControlStats {
    /// Batches retired.
    pub batches: u64,
    /// Requests completed.
    pub requests: u64,
    /// Commands that failed.
    pub errors: u64,
    /// Commands re-submitted after a transient NVMe failure.
    pub retries: u64,
    /// Commands abandoned because their deadline expired.
    pub cmd_timeouts: u64,
    /// Extra requests created by stripe-boundary splitting.
    pub stripe_splits: u64,
    /// Workers currently active (≤ spawned workers).
    pub active_workers: usize,
    /// Mean I/O time per batch (doorbell → region-4 write). `None` until a
    /// batch has retired — a snapshot with no batches has no mean, and
    /// reporting 0 silently would poison downstream rate math.
    pub mean_io: Option<Dur>,
    /// Mean GPU-side gap between batches (retire → next doorbell), the
    /// control plane's estimate of computation time. `None` until the first
    /// gap is observed.
    pub mean_compute: Option<Dur>,
    /// Cumulative I/O time across all batches (the numerator of
    /// [`mean_io`](Self::mean_io); kept so snapshots can be diffed).
    pub total_io: Dur,
    /// Cumulative observed compute gaps (numerator of
    /// [`mean_compute`](Self::mean_compute)).
    pub total_compute: Dur,
    /// Number of compute-gap observations (denominator of
    /// [`mean_compute`](Self::mean_compute)).
    pub compute_samples: u64,
}

impl ControlStats {
    /// Counters accumulated since `earlier` (an older snapshot of the same
    /// control plane): cumulative fields are subtracted and the means
    /// recomputed over the interval, so per-phase workloads can be measured
    /// without resetting the registry. `active_workers` is a gauge and keeps
    /// the current (later) value.
    pub fn diff(&self, earlier: &ControlStats) -> ControlStats {
        let batches = self.batches.saturating_sub(earlier.batches);
        let io_ns = self
            .total_io
            .as_ns()
            .saturating_sub(earlier.total_io.as_ns());
        let compute_ns = self
            .total_compute
            .as_ns()
            .saturating_sub(earlier.total_compute.as_ns());
        let samples = self.compute_samples.saturating_sub(earlier.compute_samples);
        ControlStats {
            batches,
            requests: self.requests.saturating_sub(earlier.requests),
            errors: self.errors.saturating_sub(earlier.errors),
            retries: self.retries.saturating_sub(earlier.retries),
            cmd_timeouts: self.cmd_timeouts.saturating_sub(earlier.cmd_timeouts),
            stripe_splits: self.stripe_splits.saturating_sub(earlier.stripe_splits),
            active_workers: self.active_workers,
            mean_io: mean_dur(io_ns, batches),
            mean_compute: mean_dur(compute_ns, samples),
            total_io: Dur::ns(io_ns),
            total_compute: Dur::ns(compute_ns),
            compute_samples: samples,
        }
    }

    /// Mean I/O time in seconds, NaN-safe: `None` when no batch retired.
    pub fn mean_io_secs(&self) -> Option<f64> {
        self.mean_io.map(|d| d.as_secs_f64())
    }

    /// Mean compute gap in seconds, NaN-safe: `None` without observations.
    pub fn mean_compute_secs(&self) -> Option<f64> {
        self.mean_compute.map(|d| d.as_secs_f64())
    }
}

/// `total / n` as a duration, or `None` when there are no observations —
/// never a silent 0.
fn mean_dur(total_ns: u64, n: u64) -> Option<Dur> {
    (n > 0).then(|| Dur::ns(total_ns / n))
}

/// State shared by the poller, the workers, and the host-facing
/// [`ControlPlane`] handle.
struct Shared {
    channels: Arc<Vec<Channel>>,
    /// Pinned address space shared with the SSDs, for host-side copies
    /// (duplicate-LBA replication at retire).
    dma: Arc<dyn DmaSpace>,
    /// `qps[ssd][worker]` — each worker's private queue pair per SSD.
    qps: Vec<Vec<Arc<QueuePair>>>,
    n_ssds: usize,
    /// Array geometry for dispatch planning (and the block size for the
    /// dedup replication copies at retire).
    plan: PlanConfig,
    active_workers: AtomicUsize,
    stop: AtomicBool,
    scaler: Mutex<DynamicScaler>,
    dynamic: bool,
    /// All counters/histograms live in the registry behind these handles —
    /// the control plane keeps no parallel ad-hoc stat atomics.
    metrics: Arc<ControlMetrics>,
    sink: Arc<dyn TelemetrySink>,
    /// Event layer: protocol-stage events per batch when attached.
    recorder: Option<Arc<FlightRecorder>>,
    /// Post-mortem dumper, triggered at retire on errors or deadline
    /// overrun.
    postmortem: Option<Arc<PostmortemDumper>>,
    /// Doorbell→retire budget for the post-mortem trigger.
    deadline_ns: Option<u64>,
    /// Per-command retry/backoff/deadline policy for the workers' protocol
    /// cores.
    retry: RetryPolicy,
    /// Pipelined reactor vs. blocking group-at-a-time baseline.
    pipelined: bool,
    /// The driver clock every timestamp flows through (wall clock here;
    /// the DES driver substitutes virtual time).
    clock: Arc<dyn Clock>,
    /// Per-channel retire timestamps (driver-clock ns; 0 = no retire yet)
    /// for compute-gap estimation, sized to the channel count.
    last_retire: Vec<AtomicU64>,
    /// Live ops plane: rolling-window samplers, when attached.
    windows: Option<Arc<OpsWindows>>,
    /// Live ops plane: per-channel SLO accounting, when attached.
    slo: Option<Arc<SloTracker>>,
    /// Cross-worker SPSC handoff fabric: `rings[consumer][producer]`.
    /// Only the thread-per-core engine pushes/pops; the legacy engine
    /// leaves them empty.
    rings: Vec<Vec<ring::SpscRing<GroupSpec>>>,
    /// One parker per worker, woken by doorbell publishes (channel
    /// wakers), ring pushes, and stop. `Arc`ed individually so channel
    /// waker closures don't hold `Shared` (which holds the channels —
    /// that cycle would leak the control plane).
    parkers: Vec<Arc<park::Parker>>,
}

/// Publishes a lane-health transition: gauge update plus a typed
/// flight-recorder event stamped at `now_ns` on the driver clock.
fn emit_lane_transition(sh: &Shared, t: HealthTransition, now_ns: u64) {
    sh.metrics.lane_health[t.ssd].set(u64::from(t.to.code()));
    if let Some(rec) = &sh.recorder {
        rec.emit_at(
            now_ns,
            EventKind::LaneHealth {
                ssd: t.ssd as u16,
                from: t.from.code(),
                to: t.to.code(),
                retries: t.faults,
            },
        );
    }
}

/// The running control plane. Stops and joins its threads on drop.
pub(crate) struct ControlPlane {
    shared: Arc<Shared>,
    senders: Vec<Sender<GroupSpec>>,
    poller: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ControlPlane {
    /// Spawns the poller and worker threads.
    ///
    /// Fails with the OS error if any thread cannot be spawned (resource
    /// exhaustion); threads spawned before the failure are stopped and
    /// joined, so an `Err` leaves nothing running.
    pub(crate) fn start(
        devices: &[NvmeDevice],
        dma: Arc<dyn DmaSpace>,
        channels: Arc<Vec<Channel>>,
        cfg: ControlConfig,
        metrics: Arc<ControlMetrics>,
        obs: &Observability,
    ) -> std::io::Result<Self> {
        let n_ssds = devices.len();
        assert!(n_ssds >= 1);
        let max_workers = cfg.max_workers.max(1);
        let qps: Vec<Vec<Arc<QueuePair>>> = devices
            .iter()
            .map(|d| {
                (0..max_workers)
                    .map(|_| d.add_queue_pair(cfg.queue_depth))
                    .collect()
            })
            .collect();
        let scaler = if cfg.dynamic_scaling {
            DynamicScaler::for_ssds(n_ssds)
        } else {
            DynamicScaler::with_bounds(max_workers, max_workers)
        };
        let initial = scaler.active().min(max_workers);
        metrics.active_workers.set(initial as u64);
        metrics.workers_min.set(scaler.min() as u64);
        metrics.workers_max.set(scaler.max() as u64);
        let n_channels = channels.len();
        let shared = Arc::new(Shared {
            channels,
            dma,
            qps,
            n_ssds,
            plan: PlanConfig {
                n_ssds,
                stripe_blocks: cfg.stripe_blocks,
                block_size: cfg.block_size,
            },
            active_workers: AtomicUsize::new(initial),
            stop: AtomicBool::new(false),
            scaler: Mutex::new(scaler),
            dynamic: cfg.dynamic_scaling,
            metrics,
            sink: Arc::clone(&obs.sink),
            recorder: obs.recorder.clone(),
            postmortem: obs.postmortem.clone(),
            deadline_ns: obs.batch_deadline_ns,
            retry: RetryPolicy {
                max_retries: cfg.max_retries,
                backoff_base_ns: cfg.retry_backoff_ns,
                deadline_ns: cfg.cmd_deadline_ns,
            },
            pipelined: cfg.pipelined,
            clock: Arc::new(WallClock),
            last_retire: (0..n_channels).map(|_| AtomicU64::new(0)).collect(),
            windows: obs.windows.clone(),
            slo: obs.slo.clone(),
            // Ring capacity: a producer owns ceil(C/W) channels, each with
            // one outstanding batch fanning out to at most n_ssds groups —
            // a push can only find the ring full under a transient drain
            // lag, which the producer rides out by spinning (and draining
            // its own inbound rings to avoid a mutual-push deadlock).
            rings: (0..max_workers)
                .map(|_| {
                    (0..max_workers)
                        .map(|_| {
                            ring::SpscRing::with_capacity(
                                n_channels.div_ceil(max_workers) * n_ssds,
                            )
                        })
                        .collect()
                })
                .collect(),
            parkers: (0..max_workers)
                .map(|_| Arc::new(park::Parker::new()))
                .collect(),
        });

        // Any spawn failure unwinds what was already started: without the
        // stop flag + joins, a half-built plane would leak live workers
        // holding the shared state.
        let abort = |shared: &Arc<Shared>, workers: Vec<JoinHandle<()>>, e: std::io::Error| {
            shared.stop.store(true, Ordering::Release);
            for p in &shared.parkers {
                p.unpark();
            }
            for w in workers {
                let _ = w.join();
            }
            e
        };
        let mut senders = Vec::with_capacity(max_workers);
        let mut workers = Vec::with_capacity(max_workers);
        let mut poller = None;
        match cfg.thread_model {
            ThreadModel::ThreadPerCore => {
                // Doorbell publishes wake the worker owning the channel
                // (`ch % workers` — the same static shard the workers
                // poll), so an idle engine burns no CPU waiting for work.
                for (ch_idx, ch) in shared.channels.iter().enumerate() {
                    let parker = Arc::clone(&shared.parkers[ch_idx % max_workers]);
                    ch.set_waker(Arc::new(move || parker.unpark()));
                }
                for wid in 0..max_workers {
                    let sh = Arc::clone(&shared);
                    match std::thread::Builder::new()
                        .name(format!("cam-worker{wid}"))
                        .spawn(move || shard::shard_loop(&sh, wid))
                    {
                        Ok(h) => workers.push(h),
                        Err(e) => return Err(abort(&shared, workers, e)),
                    }
                }
            }
            ThreadModel::CentralPoller => {
                for wid in 0..max_workers {
                    let (tx, rx) = crossbeam::channel::unbounded::<GroupSpec>();
                    let sh = Arc::clone(&shared);
                    match std::thread::Builder::new()
                        .name(format!("cam-worker{wid}"))
                        .spawn(move || reactor::worker_loop(&sh, wid, rx))
                    {
                        Ok(h) => {
                            senders.push(tx);
                            workers.push(h);
                        }
                        Err(e) => {
                            drop(tx);
                            drop(senders); // disconnect worker queues
                            return Err(abort(&shared, workers, e));
                        }
                    }
                }
                let sh = Arc::clone(&shared);
                let poller_senders = senders.clone();
                match std::thread::Builder::new()
                    .name("cam-poller".to_string())
                    .spawn(move || dispatch::poller_loop(&sh, &poller_senders))
                {
                    Ok(h) => poller = Some(h),
                    Err(e) => {
                        drop(senders);
                        return Err(abort(&shared, workers, e));
                    }
                }
            }
        }
        Ok(ControlPlane {
            shared,
            senders,
            poller,
            workers,
        })
    }

    pub(crate) fn stats(&self) -> ControlStats {
        let sh = &self.shared;
        let m = &sh.metrics;
        let batches = m.batches.get();
        let samples = m.compute_samples.get();
        let io_ns = m.io_time_ns.get();
        let compute_ns = m.compute_time_ns.get();
        ControlStats {
            batches,
            requests: m.requests.get(),
            errors: m.errors.get(),
            retries: m.retries.get(),
            cmd_timeouts: m.cmd_timeouts.get(),
            stripe_splits: m.stripe_splits.get(),
            active_workers: sh.active_workers.load(Ordering::Relaxed),
            mean_io: mean_dur(io_ns, batches),
            mean_compute: mean_dur(compute_ns, samples),
            total_io: Dur::ns(io_ns),
            total_compute: Dur::ns(compute_ns),
            compute_samples: samples,
        }
    }

    /// Number of worker threads spawned (scaling happens within these).
    pub(crate) fn max_workers(&self) -> usize {
        self.workers.len()
    }

    pub(crate) fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.senders.clear(); // disconnect worker queues
        // Wake every parked (or recv-blocked) worker so shutdown latency
        // is bounded by the join, not by a park/poll timeout.
        for p in &self.shared.parkers {
            p.unpark();
        }
        if let Some(p) = self.poller.take() {
            let _ = p.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Lane quiescence (degraded/overloaded → recovered) is emitted by
        // each worker as it exits — the lane-health machines are
        // worker-owned state, and the workers have all joined by now. The
        // DES driver performs the identical drain at the end of its
        // calendar, keeping the transition sequences comparable.
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        self.stop();
    }
}
