//! Doorbell pickup and dispatch planning.
//!
//! [`poll_channel`] is the single pickup path both threaded engines share:
//! it snapshots a channel whose region-3 doorbell advanced and hands the
//! batch to [`cam_protocol::plan_batch`] — dedup, stripe split, per-SSD
//! grouping all happen in the shared protocol layer, so the DES driver
//! plans identically. The rest is threaded-driver glue: timestamps,
//! metrics, events, and one [`GroupSpec`] per non-empty group.
//!
//! [`poller_loop`] is the legacy central-poller engine: one persistent
//! thread runs `poll_channel` over every channel and fans the groups out
//! to the reactor workers over MPMC channels. The thread-per-core engine
//! (`shard`) instead calls `poll_channel` inline on the channels each
//! worker owns.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cam_protocol::{op_index, plan_batch, BatchCore, GroupSpec};
use cam_telemetry::{EventKind, Stage};
use crossbeam::channel::Sender;

use super::Shared;

/// Polls channel `ch_idx` once. On a new doorbell (relative to
/// `*last_seen`, which is advanced), snapshots and plans the batch,
/// records the pickup metrics/events, and returns one [`GroupSpec`] per
/// non-empty per-SSD group. Returns `None` when no doorbell is pending;
/// `Some(vec![])` for an empty batch (retired inline) — still progress.
pub(super) fn poll_channel(
    sh: &Shared,
    ch_idx: usize,
    last_seen: &mut u64,
) -> Option<Vec<GroupSpec>> {
    let ch = &sh.channels[ch_idx];
    let seq = ch.pending(*last_seen)?;
    *last_seen = seq;
    let (op, blocks, reqs) = ch.snapshot();
    let pickup_ns = sh.clock.now_ns();
    let doorbell_ns = ch.published_at_ns();
    // Compute-gap estimate: the GPU-side interval between the
    // channel's previous retire and this pickup. The retire path
    // stores its timestamp; swapping it out consumes the sample.
    let prev_retire = sh.last_retire[ch_idx].swap(0, Ordering::Relaxed);
    let compute_gap_ns = if prev_retire > 0 {
        pickup_ns.saturating_sub(prev_retire)
    } else {
        0
    };
    if reqs.is_empty() {
        ch.retire(seq, 0);
        return Some(Vec::new());
    }
    let op_idx = op_index(op);
    sh.metrics
        .stage(op_idx, Stage::Pickup)
        .record(pickup_ns.saturating_sub(doorbell_ns));
    if let Some(rec) = &sh.recorder {
        // The doorbell fired on the GPU side before this thread saw
        // it — emit retroactively at the region-3 publish timestamp
        // so the trace span starts where the batch actually started.
        // Empty batches never get here, so every doorbell span is
        // closed by a retire.
        rec.emit_at(
            doorbell_ns,
            EventKind::BatchDoorbell {
                channel: ch_idx as u16,
                seq,
                op: op_idx as u8,
                requests: reqs.len() as u32,
            },
        );
        rec.emit_at(
            pickup_ns,
            EventKind::BatchPickup {
                channel: ch_idx as u16,
                seq,
            },
        );
    }
    let plan = plan_batch(&sh.plan, op, blocks, reqs);
    if !plan.dups.is_empty() {
        sh.metrics.dedup_dropped.add(plan.dups.len() as u64);
    }
    if plan.stripe_splits > 0 {
        sh.metrics.stripe_splits.add(plan.stripe_splits);
    }
    let batch = Arc::new(BatchCore {
        channel: ch_idx,
        seq,
        op,
        remaining: AtomicUsize::new(plan.n_groups()),
        errors: AtomicU64::new(0),
        requests: plan.requests,
        dispatched_ns: pickup_ns,
        compute_gap_ns,
        doorbell_ns,
        pickup_ns,
        dups: plan.dups,
        blocks,
    });
    Some(
        plan.groups
            .into_iter()
            .enumerate()
            .filter(|(_, reqs)| !reqs.is_empty())
            .map(|(ssd, reqs)| GroupSpec {
                ssd,
                reqs,
                batch: Arc::clone(&batch),
            })
            .collect(),
    )
}

pub(super) fn poller_loop(sh: &Shared, senders: &[Sender<GroupSpec>]) {
    if let Some(rec) = &sh.recorder {
        rec.name_current_thread("cam-poller");
    }
    let mut last_seen = vec![0u64; sh.channels.len()];
    while !sh.stop.load(Ordering::Acquire) {
        let mut progress = false;
        for ch_idx in 0..sh.channels.len() {
            let Some(specs) = poll_channel(sh, ch_idx, &mut last_seen[ch_idx]) else {
                continue;
            };
            progress = true;
            let active = sh
                .active_workers
                .load(Ordering::Relaxed)
                .clamp(1, senders.len());
            for spec in specs {
                // An SSD is always handled by the worker `ssd % active`, so
                // one SSD's queue pairs are never polled by two threads at
                // once within an active-count epoch.
                let _ = senders[spec.ssd % active].send(spec);
            }
        }
        if !progress {
            std::thread::yield_now();
        }
    }
}
