//! The poller: doorbell pickup, read deduplication, and stripe-splitting.
//!
//! One persistent thread snapshots each channel whose region-3 doorbell
//! advanced, collapses duplicate read LBAs into host-side copy pairs,
//! splits the batch by stripe across SSDs (counting the requests amplified
//! by stripe-boundary crossings into `cam_stripe_splits_total`), and ships
//! one [`WorkItem`] per non-empty per-SSD group to the reactor workers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cam_simkit::Dur;
use cam_telemetry::{clock, EventKind, Stage};
use crossbeam::channel::Sender;

use crate::regions::ChannelOp;

use super::retire::BatchState;
use super::{op_index, Shared};

/// One per-SSD group of a batch, on its way to a worker.
pub(super) struct WorkItem {
    pub ssd: usize,
    pub op: ChannelOp,
    /// (device LBA, pinned address, blocks) — stripe-contiguous runs.
    pub reqs: Vec<(u64, u64, u32)>,
    pub batch: Arc<BatchState>,
}

pub(super) fn poller_loop(sh: &Shared, senders: &[Sender<WorkItem>]) {
    if let Some(rec) = &sh.recorder {
        rec.name_current_thread("cam-poller");
    }
    let mut last_seen = vec![0u64; sh.channels.len()];
    let mut groups: Vec<Vec<(u64, u64, u32)>> = vec![Vec::new(); sh.n_ssds];
    while !sh.stop.load(Ordering::Acquire) {
        let mut progress = false;
        for (ch_idx, ch) in sh.channels.iter().enumerate() {
            let Some(seq) = ch.pending(last_seen[ch_idx]) else {
                continue;
            };
            progress = true;
            last_seen[ch_idx] = seq;
            let (op, blocks, mut reqs) = ch.snapshot();
            let pickup_ns = clock::now_ns();
            let doorbell_ns = ch.published_at_ns();
            let now = Instant::now();
            let compute_gap = {
                let mut lr = sh.last_retire.lock();
                match lr.get_mut(ch_idx).and_then(|o| o.take()) {
                    Some(t) => Dur::from_secs_f64(now.duration_since(t).as_secs_f64()),
                    None => Dur::ZERO,
                }
            };
            if reqs.is_empty() {
                ch.retire(seq, 0);
                continue;
            }
            let op_idx = op_index(op);
            sh.metrics
                .stage(op_idx, Stage::Pickup)
                .record(pickup_ns.saturating_sub(doorbell_ns));
            if let Some(rec) = &sh.recorder {
                // The doorbell fired on the GPU side before this thread saw
                // it — emit retroactively at the region-3 publish timestamp
                // so the trace span starts where the batch actually started.
                // Empty batches never get here, so every doorbell span is
                // closed by a retire.
                rec.emit_at(
                    doorbell_ns,
                    EventKind::BatchDoorbell {
                        channel: ch_idx as u16,
                        seq,
                        op: op_idx as u8,
                        requests: reqs.len() as u32,
                    },
                );
                rec.emit_at(
                    pickup_ns,
                    EventKind::BatchPickup {
                        channel: ch_idx as u16,
                        seq,
                    },
                );
            }
            // Duplicate LBAs in one read batch would fetch the same blocks
            // from the SSD several times. Keep the first destination per
            // LBA, drop the rest from dispatch, and remember them as copy
            // pairs: the retiring worker replicates the fetched data to
            // every duplicate destination before region 4 is written, so
            // the GPU still sees all of its destinations populated.
            // Requests in a batch share `blocks`, so equal start LBAs cover
            // identical ranges. Writes are left untouched (last-writer
            // semantics would change if we collapsed them).
            let requests = reqs.len() as u64;
            let mut dups: Vec<(u64, u64)> = Vec::new();
            if op == ChannelOp::Read {
                let mut first: std::collections::HashMap<u64, u64> =
                    std::collections::HashMap::with_capacity(reqs.len());
                reqs.retain(|&(lba, addr)| match first.entry(lba) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        dups.push((*e.get(), addr));
                        false
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(addr);
                        true
                    }
                });
                if !dups.is_empty() {
                    sh.metrics.dedup_dropped.add(dups.len() as u64);
                }
            }
            // Split the batch by stripe across SSDs. Requests that cross a
            // stripe boundary become several stripe-contiguous runs — the
            // CPU control plane owns the striping, so GPU code never needs
            // to know the array layout.
            for g in &mut groups {
                g.clear();
            }
            let bs = sh.block_size as u64;
            let mut total_runs = 0u64;
            for (lba, addr) in &reqs {
                let mut done = 0u64;
                while done < blocks as u64 {
                    let cur = lba + done;
                    let left = sh.stripe_blocks - cur % sh.stripe_blocks;
                    let run = left.min(blocks as u64 - done) as u32;
                    let (ssd, dev_lba) = sh.map(cur);
                    groups[ssd].push((dev_lba, addr + done * bs, run));
                    total_runs += 1;
                    done += run as u64;
                }
            }
            let splits = total_runs.saturating_sub(reqs.len() as u64);
            if splits > 0 {
                sh.metrics.stripe_splits.add(splits);
            }
            let n_groups = groups.iter().filter(|g| !g.is_empty()).count();
            let batch = Arc::new(BatchState {
                channel: ch_idx,
                seq,
                op: op_idx,
                remaining: AtomicUsize::new(n_groups),
                errors: AtomicU64::new(0),
                requests,
                dispatched: now,
                compute_gap,
                doorbell_ns,
                pickup_ns,
                dups,
                blocks,
            });
            let active = sh
                .active_workers
                .load(Ordering::Relaxed)
                .clamp(1, senders.len());
            for (ssd, g) in groups.iter_mut().enumerate() {
                if g.is_empty() {
                    continue;
                }
                let item = WorkItem {
                    ssd,
                    op,
                    reqs: std::mem::take(g),
                    batch: Arc::clone(&batch),
                };
                // An SSD is always handled by the worker `ssd % active`, so
                // one SSD's queue pairs are never polled by two threads at
                // once within an active-count epoch.
                let _ = senders[ssd % active].send(item);
            }
        }
        if !progress {
            std::thread::yield_now();
        }
    }
}
