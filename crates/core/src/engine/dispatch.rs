//! The poller: doorbell pickup and dispatch planning.
//!
//! One persistent thread snapshots each channel whose region-3 doorbell
//! advanced and hands the batch to [`cam_protocol::plan_batch`] — dedup,
//! stripe split, per-SSD grouping all happen in the shared protocol layer,
//! so the DES driver plans identically. The poller's own job is the
//! threaded-driver glue: timestamps, metrics, events, and shipping one
//! [`GroupSpec`] per non-empty group to the reactor workers.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cam_protocol::{op_index, plan_batch, BatchCore, GroupSpec};
use cam_telemetry::{EventKind, Stage};
use crossbeam::channel::Sender;

use super::Shared;

pub(super) fn poller_loop(sh: &Shared, senders: &[Sender<GroupSpec>]) {
    if let Some(rec) = &sh.recorder {
        rec.name_current_thread("cam-poller");
    }
    let mut last_seen = vec![0u64; sh.channels.len()];
    while !sh.stop.load(Ordering::Acquire) {
        let mut progress = false;
        for (ch_idx, ch) in sh.channels.iter().enumerate() {
            let Some(seq) = ch.pending(last_seen[ch_idx]) else {
                continue;
            };
            progress = true;
            last_seen[ch_idx] = seq;
            let (op, blocks, reqs) = ch.snapshot();
            let pickup_ns = sh.clock.now_ns();
            let doorbell_ns = ch.published_at_ns();
            // Compute-gap estimate: the GPU-side interval between the
            // channel's previous retire and this pickup. The retire path
            // stores its timestamp; swapping it out consumes the sample.
            let prev_retire = sh.last_retire[ch_idx].swap(0, Ordering::Relaxed);
            let compute_gap_ns = if prev_retire > 0 {
                pickup_ns.saturating_sub(prev_retire)
            } else {
                0
            };
            if reqs.is_empty() {
                ch.retire(seq, 0);
                continue;
            }
            let op_idx = op_index(op);
            sh.metrics
                .stage(op_idx, Stage::Pickup)
                .record(pickup_ns.saturating_sub(doorbell_ns));
            if let Some(rec) = &sh.recorder {
                // The doorbell fired on the GPU side before this thread saw
                // it — emit retroactively at the region-3 publish timestamp
                // so the trace span starts where the batch actually started.
                // Empty batches never get here, so every doorbell span is
                // closed by a retire.
                rec.emit_at(
                    doorbell_ns,
                    EventKind::BatchDoorbell {
                        channel: ch_idx as u16,
                        seq,
                        op: op_idx as u8,
                        requests: reqs.len() as u32,
                    },
                );
                rec.emit_at(
                    pickup_ns,
                    EventKind::BatchPickup {
                        channel: ch_idx as u16,
                        seq,
                    },
                );
            }
            let plan = plan_batch(&sh.plan, op, blocks, reqs);
            if !plan.dups.is_empty() {
                sh.metrics.dedup_dropped.add(plan.dups.len() as u64);
            }
            if plan.stripe_splits > 0 {
                sh.metrics.stripe_splits.add(plan.stripe_splits);
            }
            let batch = Arc::new(BatchCore {
                channel: ch_idx,
                seq,
                op,
                remaining: AtomicUsize::new(plan.n_groups()),
                errors: AtomicU64::new(0),
                requests: plan.requests,
                dispatched_ns: pickup_ns,
                compute_gap_ns,
                doorbell_ns,
                pickup_ns,
                dups: plan.dups,
                blocks,
            });
            let active = sh
                .active_workers
                .load(Ordering::Relaxed)
                .clamp(1, senders.len());
            for (ssd, reqs) in plan.groups.into_iter().enumerate() {
                if reqs.is_empty() {
                    continue;
                }
                let spec = GroupSpec {
                    ssd,
                    reqs,
                    batch: Arc::clone(&batch),
                };
                // An SSD is always handled by the worker `ssd % active`, so
                // one SSD's queue pairs are never polled by two threads at
                // once within an active-count epoch.
                let _ = senders[ssd % active].send(spec);
            }
        }
        if !progress {
            std::thread::yield_now();
        }
    }
}
