//! Completion-accounting-driven batch retirement.
//!
//! The protocol layer decides *when* a batch retires (its last group's
//! [`BatchCore::finish_group`] returning true); this module is the
//! threaded driver's retirement effect: replicate deduplicated reads,
//! write region 4, feed the [`DynamicScaler`], fire the post-mortem
//! triggers.
//!
//! [`DynamicScaler`]: crate::DynamicScaler

use std::sync::atomic::Ordering;

use cam_protocol::{op_index, BatchCore};
use cam_simkit::Dur;
use cam_telemetry::{BatchSpan, ControlMetrics, EventKind, Stage};

use super::Shared;

/// Retires `b`: region-4 write + bookkeeping. Called by the reactor when
/// the batch's last group completed (at `complete_ns` on the driver
/// clock).
pub(super) fn retire_batch(sh: &Shared, b: &BatchCore, complete_ns: u64) {
    let m = &sh.metrics;
    let op_idx = op_index(b.op);
    // Replicate deduplicated reads to their duplicate destinations
    // before region 4 is written — after retire the GPU is free to
    // read any of them.
    if !b.dups.is_empty() {
        let mut buf = vec![0u8; b.blocks as usize * sh.plan.block_size as usize];
        for &(src, dst) in &b.dups {
            if sh.dma.dma_read(src, &mut buf).is_err() || sh.dma.dma_write(dst, &buf).is_err() {
                b.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let batch_errors = b.errors.load(Ordering::Relaxed);
    sh.channels[b.channel].retire(b.seq, batch_errors);
    let retire_ns = sh.clock.now_ns();
    let io = Dur::ns(retire_ns.saturating_sub(b.dispatched_ns));
    sh.last_retire[b.channel].store(retire_ns, Ordering::Relaxed);
    let retire_span = retire_ns.saturating_sub(complete_ns);
    let total_ns = retire_ns.saturating_sub(b.doorbell_ns);
    m.stage(op_idx, Stage::Retire).record(retire_span);
    m.batch_total(b.channel, op_idx).record(total_ns);
    if let Some(w) = &sh.windows {
        w.stage(Stage::Pickup)
            .record_at(retire_ns, b.pickup_ns.saturating_sub(b.doorbell_ns));
        w.stage(Stage::Retire).record_at(retire_ns, retire_span);
        w.channel_batch[b.channel].record_at(retire_ns, total_ns);
    }
    if let Some(slo) = &sh.slo {
        slo.record(b.channel, total_ns, batch_errors, retire_ns);
        let burn = slo.burn_rate(b.channel, retire_ns).max();
        m.slo_burn[b.channel].set((burn * 1000.0) as u64);
    }
    if let Some(rec) = &sh.recorder {
        rec.emit_at(
            retire_ns,
            EventKind::BatchRetire {
                channel: b.channel as u16,
                seq: b.seq,
                errors: batch_errors as u32,
            },
        );
    }
    m.batches.inc();
    m.requests.add(b.requests);
    m.errors.add(batch_errors);
    m.io_time_ns.add(io.as_ns());
    let compute_gap = Dur::ns(b.compute_gap_ns);
    if compute_gap > Dur::ZERO {
        m.compute_time_ns.add(compute_gap.as_ns());
        m.compute_samples.inc();
    }
    if sh.dynamic && compute_gap > Dur::ZERO {
        let prev = sh.active_workers.load(Ordering::Relaxed);
        let active = sh.scaler.lock().observe(compute_gap, io);
        sh.active_workers.store(active, Ordering::Relaxed);
        if active != prev {
            m.active_workers.set(active as u64);
            if active > prev {
                m.scaler_grow.inc();
            } else {
                m.scaler_shrink.inc();
            }
            if let Some(rec) = &sh.recorder {
                rec.emit(EventKind::ScalerDecision {
                    active: active as u32,
                    grew: active > prev,
                });
            }
            sh.sink.workers_scaled(active);
        }
    }
    sh.sink.batch_retired(&BatchSpan {
        channel: b.channel,
        op: ControlMetrics::OPS[op_idx],
        seq: b.seq,
        requests: b.requests,
        errors: batch_errors,
        doorbell_ns: b.doorbell_ns,
        pickup_ns: b.pickup_ns,
        retire_ns,
    });
    if let Some(pm) = &sh.postmortem {
        if batch_errors > 0 {
            pm.trigger(&format!(
                "batch ch{} seq {} retired with {} error(s)",
                b.channel, b.seq, batch_errors
            ));
        } else if sh.deadline_ns.is_some_and(|d| total_ns > d) {
            pm.trigger(&format!(
                "batch ch{} seq {} overran deadline: {} ns doorbell->retire",
                b.channel, b.seq, total_ns
            ));
        }
    }
}
