//! Completion-accounting-driven batch retirement.
//!
//! A batch is retired when its last per-SSD group completes — pure
//! accounting on [`BatchState::remaining`], no thread ever waits for it.
//! Retirement replicates deduplicated reads, writes region 4, feeds the
//! [`DynamicScaler`], and fires the post-mortem triggers.
//!
//! [`DynamicScaler`]: crate::DynamicScaler

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use cam_simkit::Dur;
use cam_telemetry::{clock, BatchSpan, ControlMetrics, EventKind, Stage};

use super::Shared;

/// Shared per-batch completion accounting, owned jointly by the batch's
/// per-SSD groups.
pub(super) struct BatchState {
    pub channel: usize,
    pub seq: u64,
    pub op: usize,
    /// Per-SSD groups still outstanding; the decrement that hits zero
    /// retires the batch.
    pub remaining: AtomicUsize,
    pub errors: AtomicU64,
    pub requests: u64,
    pub dispatched: Instant,
    pub compute_gap: Dur,
    /// Telemetry timeline ([`clock::now_ns`]) anchors of this batch's span.
    pub doorbell_ns: u64,
    pub pickup_ns: u64,
    /// Duplicate read requests removed before dispatch: `(primary address,
    /// duplicate address)` pairs, replicated by a host-side DMA copy right
    /// before retire so every destination the GPU asked for is populated.
    pub dups: Vec<(u64, u64)>,
    /// Blocks per request (the replication copy length, in blocks).
    pub blocks: u32,
}

/// Retires `b`: region-4 write + bookkeeping. Called by the reactor when
/// the batch's last group completed (at `complete_ns` on the telemetry
/// clock).
pub(super) fn retire_batch(sh: &Shared, b: &BatchState, complete_ns: u64) {
    let m = &sh.metrics;
    let op_idx = b.op;
    // Replicate deduplicated reads to their duplicate destinations
    // before region 4 is written — after retire the GPU is free to
    // read any of them.
    if !b.dups.is_empty() {
        let mut buf = vec![0u8; b.blocks as usize * sh.block_size as usize];
        for &(src, dst) in &b.dups {
            if sh.dma.dma_read(src, &mut buf).is_err() || sh.dma.dma_write(dst, &buf).is_err() {
                b.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let batch_errors = b.errors.load(Ordering::Relaxed);
    let io = Dur::from_secs_f64(b.dispatched.elapsed().as_secs_f64());
    sh.channels[b.channel].retire(b.seq, batch_errors);
    let retire_ns = clock::now_ns();
    sh.last_retire.lock()[b.channel] = Some(Instant::now());
    m.stage(op_idx, Stage::Retire)
        .record(retire_ns.saturating_sub(complete_ns));
    m.batch_total(b.channel, op_idx)
        .record(retire_ns.saturating_sub(b.doorbell_ns));
    if let Some(rec) = &sh.recorder {
        rec.emit_at(
            retire_ns,
            EventKind::BatchRetire {
                channel: b.channel as u16,
                seq: b.seq,
                errors: batch_errors as u32,
            },
        );
    }
    m.batches.inc();
    m.requests.add(b.requests);
    m.errors.add(batch_errors);
    m.io_time_ns.add(io.as_ns());
    if b.compute_gap > Dur::ZERO {
        m.compute_time_ns.add(b.compute_gap.as_ns());
        m.compute_samples.inc();
    }
    if sh.dynamic && b.compute_gap > Dur::ZERO {
        let prev = sh.active_workers.load(Ordering::Relaxed);
        let active = sh.scaler.lock().observe(b.compute_gap, io);
        sh.active_workers.store(active, Ordering::Relaxed);
        if active != prev {
            m.active_workers.set(active as u64);
            if active > prev {
                m.scaler_grow.inc();
            } else {
                m.scaler_shrink.inc();
            }
            if let Some(rec) = &sh.recorder {
                rec.emit(EventKind::ScalerDecision {
                    active: active as u32,
                    grew: active > prev,
                });
            }
            sh.sink.workers_scaled(active);
        }
    }
    sh.sink.batch_retired(&BatchSpan {
        channel: b.channel,
        op: ControlMetrics::OPS[op_idx],
        seq: b.seq,
        requests: b.requests,
        errors: batch_errors,
        doorbell_ns: b.doorbell_ns,
        pickup_ns: b.pickup_ns,
        retire_ns,
    });
    if let Some(pm) = &sh.postmortem {
        let total_ns = retire_ns.saturating_sub(b.doorbell_ns);
        if batch_errors > 0 {
            pm.trigger(&format!(
                "batch ch{} seq {} retired with {} error(s)",
                b.channel, b.seq, batch_errors
            ));
        } else if sh.deadline_ns.is_some_and(|d| total_ns > d) {
            pm.trigger(&format!(
                "batch ch{} seq {} overran deadline: {} ns doorbell->retire",
                b.channel, b.seq, total_ns
            ));
        }
    }
}
