//! The completion-driven worker reactor.
//!
//! Each worker multiplexes *all* of its accepted groups over one queue pair
//! per SSD: it submits as many staged commands as queue depth admits —
//! across batches — rings one doorbell per burst, then reaps whatever
//! completions have landed and matches them back through the
//! [`InflightTable`]. Nothing ever blocks on a single group, so an SSD's
//! in-flight depth stays above one whenever independent batches overlap
//! (the pipelining the blocking baseline forfeits). Transient failures are
//! re-queued with backoff per [`RetryPolicy`]; a command over its deadline
//! fails the command, never the thread.
//!
//! [`RetryPolicy`]: super::retry::RetryPolicy

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use cam_nvme::spec::{Cqe, Sqe, Status};
use cam_nvme::QueuePair;
use cam_telemetry::{clock, EventKind, Stage};
use crossbeam::channel::{Receiver, RecvTimeoutError};

use crate::regions::ChannelOp;

use super::dispatch::WorkItem;
use super::inflight::InflightTable;
use super::retire::{retire_batch, BatchState};
use super::retry::Verdict;
use super::Shared;

/// One command's reactor-side state, from dispatch to final completion.
struct PendingCmd {
    /// Key into the worker's group slab.
    group: u64,
    dev_lba: u64,
    addr: u64,
    blocks: u32,
    /// Submissions so far (0 = never hit the wire).
    attempts: u32,
    /// Backoff gate: not re-submitted before this timeline instant.
    earliest_ns: u64,
    /// Absolute deadline; `None` = unbounded.
    deadline_ns: Option<u64>,
    /// CID of the most recent attempt (for timeout events).
    last_cid: u16,
}

/// Per-SSD submission state: the private queue pair, commands waiting to be
/// (re-)submitted, and the CID-keyed in-flight table.
struct Lane {
    ssd: usize,
    qp: Arc<QueuePair>,
    queue: VecDeque<PendingCmd>,
    inflight: InflightTable<PendingCmd>,
}

/// One accepted per-SSD group and its completion accounting.
struct GroupState {
    batch: Arc<BatchState>,
    op: ChannelOp,
    ssd: usize,
    /// Commands in the group.
    total: usize,
    /// Commands finally completed (success, permanent failure, or timeout).
    done: usize,
    /// Failed commands among `done`.
    errors: u64,
    /// Commands submitted at least once — drives the one-doorbell-per-group
    /// submit telemetry without double-counting retries.
    submitted_first: usize,
    recv_ns: u64,
    /// Stamped when the last command of the group first hits the wire.
    submit_ns: u64,
}

pub(super) fn worker_loop(sh: &Shared, wid: usize, rx: Receiver<WorkItem>) {
    if let Some(rec) = &sh.recorder {
        rec.name_current_thread(&format!("cam-worker{wid}"));
    }
    let mut lanes: Vec<Lane> = (0..sh.n_ssds)
        .map(|ssd| Lane {
            ssd,
            qp: Arc::clone(&sh.qps[ssd][wid]),
            queue: VecDeque::new(),
            inflight: InflightTable::new(sh.qps[ssd][wid].depth()),
        })
        .collect();
    let mut groups: HashMap<u64, GroupState> = HashMap::new();
    let mut next_group = 0u64;
    let mut cqes: Vec<Cqe> = Vec::new();
    loop {
        let mut progress = false;
        if groups.is_empty() {
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(item) => {
                    accept(sh, wid, &mut lanes, &mut groups, &mut next_group, item);
                    progress = true;
                }
                Err(RecvTimeoutError::Timeout) => {
                    if sh.stop.load(Ordering::Acquire) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
        if sh.pipelined {
            // Pipelining: pull every already-dispatched group in before
            // submitting, so commands from several batches share the queue
            // depth. The blocking baseline skips this and runs one group at
            // a time — same code path, depth ≤ one group.
            while let Ok(item) = rx.try_recv() {
                accept(sh, wid, &mut lanes, &mut groups, &mut next_group, item);
                progress = true;
            }
        }
        for lane in &mut lanes {
            progress |= submit_lane(sh, wid, lane, &mut groups);
            progress |= reap_lane(sh, lane, &mut groups, &mut cqes);
        }
        progress |= finish_groups(sh, wid, &mut groups);
        if !progress {
            std::thread::yield_now();
        }
    }
}

/// Takes ownership of a dispatched group: stage its commands on the SSD's
/// lane and open its accounting record.
fn accept(
    sh: &Shared,
    wid: usize,
    lanes: &mut [Lane],
    groups: &mut HashMap<u64, GroupState>,
    next_group: &mut u64,
    item: WorkItem,
) {
    let recv_ns = clock::now_ns();
    let op_idx = item.batch.op;
    sh.metrics
        .stage(op_idx, Stage::Dispatch)
        .record(recv_ns.saturating_sub(item.batch.pickup_ns));
    if let Some(rec) = &sh.recorder {
        rec.emit_at(
            recv_ns,
            EventKind::GroupDispatch {
                channel: item.batch.channel as u16,
                seq: item.batch.seq,
                ssd: item.ssd as u16,
                worker: wid as u16,
            },
        );
    }
    let gid = *next_group;
    *next_group += 1;
    let deadline_ns = sh.retry.deadline_ns.map(|d| recv_ns + d);
    for &(dev_lba, addr, blocks) in &item.reqs {
        lanes[item.ssd].queue.push_back(PendingCmd {
            group: gid,
            dev_lba,
            addr,
            blocks,
            attempts: 0,
            earliest_ns: 0,
            deadline_ns,
            last_cid: 0,
        });
    }
    groups.insert(
        gid,
        GroupState {
            op: item.op,
            ssd: item.ssd,
            total: item.reqs.len(),
            done: 0,
            errors: 0,
            submitted_first: 0,
            recv_ns,
            submit_ns: 0,
            batch: item.batch,
        },
    );
}

/// Pushes as many of the lane's queued commands as the queue pair admits
/// and rings one doorbell for the burst. Returns whether anything moved.
fn submit_lane(
    sh: &Shared,
    wid: usize,
    lane: &mut Lane,
    groups: &mut HashMap<u64, GroupState>,
) -> bool {
    let now = clock::now_ns();
    let mut staged = 0usize;
    let mut moved = false;
    // Each queued command is examined at most once per pass: backoff-gated
    // commands rotate to the back and wait for a later pass.
    for _ in 0..lane.queue.len() {
        let Some(mut cmd) = lane.queue.pop_front() else {
            break;
        };
        if cmd.deadline_ns.is_some_and(|d| now >= d) {
            time_out(sh, lane.ssd, groups, &cmd, now);
            moved = true;
            continue;
        }
        if cmd.earliest_ns > now {
            lane.queue.push_back(cmd);
            continue;
        }
        let Some(cid) = lane.inflight.alloc_cid() else {
            lane.queue.push_front(cmd);
            break;
        };
        let g = groups.get_mut(&cmd.group).expect("command without group");
        let sqe = match g.op {
            ChannelOp::Read => Sqe::read(cid, cmd.dev_lba, cmd.blocks, cmd.addr),
            ChannelOp::Write => Sqe::write(cid, cmd.dev_lba, cmd.blocks, cmd.addr),
        };
        if lane.qp.push_sqe(sqe).is_err() {
            lane.queue.push_front(cmd);
            break;
        }
        let first = cmd.attempts == 0;
        cmd.attempts += 1;
        cmd.last_cid = cid;
        lane.inflight.put(cid, cmd);
        staged += 1;
        if first {
            // Retries are deliberately excluded: `cam_ssd_submitted_total`
            // counts logical requests, so its sum stays comparable to
            // `requests` retired.
            sh.metrics.ssd_submitted[lane.ssd].add(1);
            g.submitted_first += 1;
            if g.submitted_first == g.total {
                let submit_ns = clock::now_ns();
                g.submit_ns = submit_ns;
                let span = submit_ns.saturating_sub(g.recv_ns);
                let op_idx = super::op_index(g.op);
                sh.metrics.stage(op_idx, Stage::Submit).record(span);
                sh.metrics.ssd_submit_ns[lane.ssd].record(span);
                if let Some(rec) = &sh.recorder {
                    rec.emit_at(
                        submit_ns,
                        EventKind::GroupSubmit {
                            channel: g.batch.channel as u16,
                            seq: g.batch.seq,
                            ssd: lane.ssd as u16,
                            worker: wid as u16,
                            sqes: g.total as u32,
                        },
                    );
                }
            }
        }
    }
    if staged > 0 {
        lane.qp.ring_doorbell();
        update_inflight_gauges(sh, lane);
        moved = true;
    }
    moved
}

/// Drains landed completions, matches each back to its command, and applies
/// the retry policy to failures. Returns whether anything was reaped.
fn reap_lane(
    sh: &Shared,
    lane: &mut Lane,
    groups: &mut HashMap<u64, GroupState>,
    cqes: &mut Vec<Cqe>,
) -> bool {
    cqes.clear();
    let depth = lane.qp.depth();
    if lane.qp.poll_cqes(depth, cqes) == 0 {
        return false;
    }
    let now = clock::now_ns();
    for cqe in cqes.drain(..) {
        let Some(mut cmd) = lane.inflight.remove(cqe.cid) else {
            // Stale or unknown CID: nothing to attribute it to.
            continue;
        };
        if cqe.status == Status::Success {
            let g = groups.get_mut(&cmd.group).expect("command without group");
            g.done += 1;
            continue;
        }
        match sh
            .retry
            .classify(cqe.status, cmd.attempts, now, cmd.deadline_ns)
        {
            Verdict::Retry { at_ns } => {
                sh.metrics.retries.inc();
                if let Some(rec) = &sh.recorder {
                    let g = &groups[&cmd.group];
                    rec.emit_at(
                        now,
                        EventKind::CmdRetry {
                            channel: g.batch.channel as u16,
                            seq: g.batch.seq,
                            ssd: lane.ssd as u16,
                            cid: cqe.cid,
                            attempt: cmd.attempts,
                        },
                    );
                }
                cmd.earliest_ns = at_ns;
                lane.queue.push_back(cmd);
            }
            Verdict::TimedOut => time_out(sh, lane.ssd, groups, &cmd, now),
            Verdict::Permanent => {
                let g = groups.get_mut(&cmd.group).expect("command without group");
                g.done += 1;
                g.errors += 1;
            }
        }
    }
    update_inflight_gauges(sh, lane);
    true
}

/// Fails `cmd` terminally because its deadline expired: counted, recorded,
/// and accounted as a completed-with-error command — the worker moves on.
fn time_out(
    sh: &Shared,
    ssd: usize,
    groups: &mut HashMap<u64, GroupState>,
    cmd: &PendingCmd,
    now: u64,
) {
    sh.metrics.cmd_timeouts.inc();
    let g = groups.get_mut(&cmd.group).expect("command without group");
    g.done += 1;
    g.errors += 1;
    if let Some(rec) = &sh.recorder {
        rec.emit_at(
            now,
            EventKind::CmdTimeout {
                channel: g.batch.channel as u16,
                seq: g.batch.seq,
                ssd: ssd as u16,
                cid: cmd.last_cid,
                attempts: cmd.attempts,
            },
        );
    }
}

/// Closes every group whose commands have all reached a final state, and
/// retires batches whose last group closed. Returns whether any group
/// finished.
fn finish_groups(sh: &Shared, wid: usize, groups: &mut HashMap<u64, GroupState>) -> bool {
    let done_ids: Vec<u64> = groups
        .iter()
        .filter(|(_, g)| g.done >= g.total)
        .map(|(&id, _)| id)
        .collect();
    if done_ids.is_empty() {
        return false;
    }
    for id in done_ids {
        let g = groups.remove(&id).expect("group vanished");
        let complete_ns = clock::now_ns();
        let anchor = if g.submit_ns > 0 {
            g.submit_ns
        } else {
            g.recv_ns
        };
        let span = complete_ns.saturating_sub(anchor);
        let op_idx = super::op_index(g.op);
        sh.metrics.stage(op_idx, Stage::Complete).record(span);
        sh.metrics.ssd_complete_ns[g.ssd].record(span);
        sh.metrics.ssd_completed[g.ssd].add(g.total as u64);
        if let Some(rec) = &sh.recorder {
            rec.emit_at(
                complete_ns,
                EventKind::GroupComplete {
                    channel: g.batch.channel as u16,
                    seq: g.batch.seq,
                    ssd: g.ssd as u16,
                    worker: wid as u16,
                    errors: g.errors as u32,
                },
            );
        }
        if g.errors > 0 {
            g.batch.errors.fetch_add(g.errors, Ordering::Relaxed);
        }
        if g.batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            retire_batch(sh, &g.batch, complete_ns);
        }
    }
    true
}

/// Publishes the lane's live in-flight depth (and its high-water mark) to
/// the `cam_inflight{ssd}` gauges.
fn update_inflight_gauges(sh: &Shared, lane: &Lane) {
    let cur = lane.qp.in_flight();
    sh.metrics.inflight[lane.ssd].set(cur);
    if cur > sh.metrics.inflight_peak[lane.ssd].get() {
        sh.metrics.inflight_peak[lane.ssd].set(cur);
    }
}
