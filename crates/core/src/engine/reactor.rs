//! The threaded worker shell around [`WorkerCore`].
//!
//! [`execute`], [`accept`] and the per-SSD reap path are shared by both
//! threaded engines: the legacy central-poller workers ([`worker_loop`])
//! and the thread-per-core shards (`shard`). Each worker thread owns one
//! private queue pair per SSD, a [`WorkerCore`] protocol state machine,
//! and its own [`LaneHealth`] machines (worker-owned state — no per-lane
//! mutex; the lane-health CI workloads run single-worker configurations,
//! where the sequence is identical to a global machine's). The loop is
//! pure driver glue: feed accepted groups in, [`pump`](WorkerCore::pump)
//! at the wall clock, reap CQEs into [`on_cqe`](WorkerCore::on_cqe), and
//! [`execute`] whatever [`Command`]s come back — SQE pushes, doorbell
//! rings, metrics, flight-recorder events, batch retirement. Every
//! submission, retry, and closure *decision* is the protocol's; the DES
//! driver executes the same commands against a device timing model
//! instead.
//!
//! A `Submit` command is executed infallibly: the protocol admits a
//! command only when the lane's inflight table (sized to the queue depth)
//! has room, and the queue pair admits exactly `depth − in_flight` staged
//! SQEs — so admission there implies SQ room here.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use cam_nvme::spec::{Cqe, Sqe};
use cam_nvme::QueuePair;
use cam_protocol::{
    op_index, ChannelOp, Command, GroupSpec, HealthConfig, LaneHealth, WorkerCore,
};
use cam_telemetry::{EventKind, Stage};
use crossbeam::channel::{Receiver, RecvTimeoutError};

use super::retire::retire_batch;
use super::Shared;

/// Fresh per-worker lane-health machines, one per SSD.
pub(super) fn new_lane_health(n_ssds: usize) -> Vec<LaneHealth> {
    (0..n_ssds)
        .map(|ssd| LaneHealth::new(ssd, HealthConfig::default()))
        .collect()
}

/// Quiesces a worker's lanes at loop exit: every lane is drained once a
/// worker stops, so degraded/overloaded lanes are declared recovered. The
/// DES driver performs the identical drain at the end of its calendar,
/// keeping the transition sequences comparable.
pub(super) fn drain_lane_health(sh: &Shared, health: &mut [LaneHealth]) {
    let now = sh.clock.now_ns();
    for lane in health.iter_mut() {
        if let Some(t) = lane.on_drain() {
            super::emit_lane_transition(sh, t, now);
        }
    }
}

pub(super) fn worker_loop(sh: &Shared, wid: usize, rx: Receiver<GroupSpec>) {
    if let Some(rec) = &sh.recorder {
        rec.name_current_thread(&format!("cam-worker{wid}"));
    }
    let qps: Vec<Arc<QueuePair>> = (0..sh.n_ssds)
        .map(|ssd| Arc::clone(&sh.qps[ssd][wid]))
        .collect();
    // This thread is the only host-side driver of its queue-pair column
    // for the process lifetime; claim them so a sharding bug panics.
    for qp in &qps {
        qp.bind_host_owner();
    }
    let mut core = WorkerCore::new(sh.n_ssds, qps[0].depth(), sh.retry);
    let mut health = new_lane_health(sh.n_ssds);
    let mut out: Vec<Command> = Vec::new();
    let mut cqes: Vec<Cqe> = Vec::new();
    loop {
        let mut progress = false;
        if core.idle() {
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(spec) => {
                    accept(sh, wid, &mut core, spec);
                    progress = true;
                }
                Err(RecvTimeoutError::Timeout) => {
                    if sh.stop.load(Ordering::Acquire) {
                        break;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if sh.pipelined {
            // Pipelining: pull every already-dispatched group in before
            // submitting, so commands from several batches share the queue
            // depth. The blocking baseline skips this and runs one group at
            // a time — same code path, depth ≤ one group.
            while let Ok(spec) = rx.try_recv() {
                accept(sh, wid, &mut core, spec);
                progress = true;
            }
        }
        core.pump(sh.clock.now_ns(), &mut out);
        progress |= !out.is_empty();
        execute(sh, wid, &qps, &mut health, &mut out);
        progress |= reap(sh, &qps, &mut core, &mut health, &mut out, &mut cqes, wid);
        if !progress {
            std::thread::yield_now();
        }
    }
    drain_lane_health(sh, &mut health);
}

/// One reap pass over every queue pair: drains available CQEs into the
/// protocol core and executes the resulting commands. Returns whether any
/// completion arrived.
pub(super) fn reap(
    sh: &Shared,
    qps: &[Arc<QueuePair>],
    core: &mut WorkerCore,
    health: &mut [LaneHealth],
    out: &mut Vec<Command>,
    cqes: &mut Vec<Cqe>,
    wid: usize,
) -> bool {
    let mut progress = false;
    for (ssd, qp) in qps.iter().enumerate() {
        cqes.clear();
        if qp.poll_cqes(qp.depth(), cqes) == 0 {
            continue;
        }
        progress = true;
        let now = sh.clock.now_ns();
        for cqe in cqes.drain(..) {
            core.on_cqe(ssd, cqe.cid, cqe.status, now, out);
        }
        execute(sh, wid, qps, health, out);
        update_inflight_gauges(sh, ssd, qp, health);
    }
    progress
}

/// Takes ownership of a dispatched group: record the dispatch stage, then
/// hand it to the protocol core.
pub(super) fn accept(sh: &Shared, wid: usize, core: &mut WorkerCore, spec: GroupSpec) {
    let recv_ns = sh.clock.now_ns();
    let op_idx = op_index(spec.batch.op);
    let dispatch_span = recv_ns.saturating_sub(spec.batch.pickup_ns);
    sh.metrics
        .stage(op_idx, Stage::Dispatch)
        .record(dispatch_span);
    if let Some(w) = &sh.windows {
        w.stage(Stage::Dispatch).record_at(recv_ns, dispatch_span);
    }
    if let Some(rec) = &sh.recorder {
        rec.emit_at(
            recv_ns,
            EventKind::GroupDispatch {
                channel: spec.batch.channel as u16,
                seq: spec.batch.seq,
                ssd: spec.ssd as u16,
                worker: wid as u16,
            },
        );
    }
    core.on_group(spec, recv_ns);
}

/// Executes drained protocol commands against the real queue pairs and the
/// telemetry registry, in order (submissions precede their doorbell ring).
pub(super) fn execute(
    sh: &Shared,
    wid: usize,
    qps: &[Arc<QueuePair>],
    health: &mut [LaneHealth],
    out: &mut Vec<Command>,
) {
    for cmd in out.drain(..) {
        match cmd {
            Command::Submit(s) => {
                let sqe = match s.op {
                    ChannelOp::Read => Sqe::read(s.cid, s.dev_lba, s.blocks, s.addr),
                    ChannelOp::Write => Sqe::write(s.cid, s.dev_lba, s.blocks, s.addr),
                };
                qps[s.ssd]
                    .push_sqe(sqe)
                    .expect("protocol admission implies SQ room");
                if s.first {
                    // Retries are deliberately excluded:
                    // `cam_ssd_submitted_total` counts logical requests, so
                    // its sum stays comparable to `requests` retired.
                    sh.metrics.ssd_submitted[s.ssd].add(1);
                }
            }
            Command::RingDoorbell { ssd, .. } => {
                qps[ssd].ring_doorbell();
                update_inflight_gauges(sh, ssd, &qps[ssd], health);
            }
            Command::GroupSubmitted {
                batch,
                ssd,
                sqes,
                recv_ns,
                submit_ns,
            } => {
                let span = submit_ns.saturating_sub(recv_ns);
                let op_idx = op_index(batch.op);
                sh.metrics.stage(op_idx, Stage::Submit).record(span);
                sh.metrics.ssd_submit_ns[ssd].record(span);
                if let Some(w) = &sh.windows {
                    w.stage(Stage::Submit).record_at(submit_ns, span);
                }
                if let Some(rec) = &sh.recorder {
                    rec.emit_at(
                        submit_ns,
                        EventKind::GroupSubmit {
                            channel: batch.channel as u16,
                            seq: batch.seq,
                            ssd: ssd as u16,
                            worker: wid as u16,
                            sqes,
                        },
                    );
                }
            }
            Command::CmdRetry {
                batch,
                ssd,
                cid,
                attempt,
                now_ns,
                ..
            } => {
                sh.metrics.retries.inc();
                if let Some(w) = &sh.windows {
                    w.ssd_retries[ssd].add_at(now_ns, 1, 0);
                }
                if let Some(rec) = &sh.recorder {
                    rec.emit_at(
                        now_ns,
                        EventKind::CmdRetry {
                            channel: batch.channel as u16,
                            seq: batch.seq,
                            ssd: ssd as u16,
                            cid,
                            attempt,
                        },
                    );
                }
                if let Some(t) = health[ssd].on_retry() {
                    super::emit_lane_transition(sh, t, now_ns);
                }
            }
            Command::CmdTimeout {
                batch,
                ssd,
                cid,
                attempts,
                now_ns,
            } => {
                sh.metrics.cmd_timeouts.inc();
                if let Some(rec) = &sh.recorder {
                    rec.emit_at(
                        now_ns,
                        EventKind::CmdTimeout {
                            channel: batch.channel as u16,
                            seq: batch.seq,
                            ssd: ssd as u16,
                            cid,
                            attempts,
                        },
                    );
                }
                if let Some(t) = health[ssd].on_timeout() {
                    super::emit_lane_transition(sh, t, now_ns);
                }
            }
            Command::GroupComplete {
                batch,
                ssd,
                sqes,
                errors,
                anchor_ns,
                complete_ns,
            } => {
                let span = complete_ns.saturating_sub(anchor_ns);
                let op_idx = op_index(batch.op);
                sh.metrics.stage(op_idx, Stage::Complete).record(span);
                sh.metrics.ssd_complete_ns[ssd].record(span);
                sh.metrics.ssd_completed[ssd].add(sqes as u64);
                if let Some(w) = &sh.windows {
                    w.stage(Stage::Complete).record_at(complete_ns, span);
                    w.ssd_complete[ssd].record_at(complete_ns, span);
                    // Denominator of the windowed retry rate: groups closed.
                    w.ssd_retries[ssd].add_at(complete_ns, 0, 1);
                }
                if let Some(rec) = &sh.recorder {
                    rec.emit_at(
                        complete_ns,
                        EventKind::GroupComplete {
                            channel: batch.channel as u16,
                            seq: batch.seq,
                            ssd: ssd as u16,
                            worker: wid as u16,
                            errors: errors as u32,
                        },
                    );
                }
            }
            Command::RetireBatch { batch, complete_ns } => {
                retire_batch(sh, &batch, complete_ns);
            }
        }
    }
}

/// Publishes the lane's live in-flight depth (and its high-water mark) to
/// the `cam_inflight{ssd}` gauges, and feeds the lane-health saturation
/// watermark (which, by design, never gates a health transition — see
/// `cam_protocol::health`).
fn update_inflight_gauges(sh: &Shared, ssd: usize, qp: &QueuePair, health: &mut [LaneHealth]) {
    let cur = qp.in_flight();
    sh.metrics.inflight[ssd].set(cur);
    if cur > sh.metrics.inflight_peak[ssd].get() {
        sh.metrics.inflight_peak[ssd].set(cur);
    }
    health[ssd].observe_depth(cur as usize, qp.depth());
}
