//! The threaded worker shell around [`WorkerCore`].
//!
//! Each worker thread owns one private queue pair per SSD and a
//! [`WorkerCore`] protocol state machine. The loop is pure driver glue:
//! feed accepted groups in, [`pump`](WorkerCore::pump) at the wall clock,
//! reap CQEs into [`on_cqe`](WorkerCore::on_cqe), and [`execute`] whatever
//! [`Command`]s come back — SQE pushes, doorbell rings, metrics,
//! flight-recorder events, batch retirement. Every submission,
//! retry, and closure *decision* is the protocol's; the DES driver
//! executes the same commands against a device timing model instead.
//!
//! A `Submit` command is executed infallibly: the protocol admits a
//! command only when the lane's inflight table (sized to the queue depth)
//! has room, and the queue pair admits exactly `depth − in_flight` staged
//! SQEs — so admission there implies SQ room here.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use cam_nvme::spec::{Cqe, Sqe};
use cam_nvme::QueuePair;
use cam_protocol::{op_index, ChannelOp, Command, GroupSpec, WorkerCore};
use cam_telemetry::{EventKind, Stage};
use crossbeam::channel::{Receiver, RecvTimeoutError};

use super::retire::retire_batch;
use super::Shared;

pub(super) fn worker_loop(sh: &Shared, wid: usize, rx: Receiver<GroupSpec>) {
    if let Some(rec) = &sh.recorder {
        rec.name_current_thread(&format!("cam-worker{wid}"));
    }
    let qps: Vec<Arc<QueuePair>> = (0..sh.n_ssds)
        .map(|ssd| Arc::clone(&sh.qps[ssd][wid]))
        .collect();
    let mut core = WorkerCore::new(sh.n_ssds, qps[0].depth(), sh.retry);
    let mut out: Vec<Command> = Vec::new();
    let mut cqes: Vec<Cqe> = Vec::new();
    loop {
        let mut progress = false;
        if core.idle() {
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(spec) => {
                    accept(sh, wid, &mut core, spec);
                    progress = true;
                }
                Err(RecvTimeoutError::Timeout) => {
                    if sh.stop.load(Ordering::Acquire) {
                        return;
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
        if sh.pipelined {
            // Pipelining: pull every already-dispatched group in before
            // submitting, so commands from several batches share the queue
            // depth. The blocking baseline skips this and runs one group at
            // a time — same code path, depth ≤ one group.
            while let Ok(spec) = rx.try_recv() {
                accept(sh, wid, &mut core, spec);
                progress = true;
            }
        }
        core.pump(sh.clock.now_ns(), &mut out);
        progress |= !out.is_empty();
        execute(sh, wid, &qps, &mut out);
        for (ssd, qp) in qps.iter().enumerate() {
            cqes.clear();
            if qp.poll_cqes(qp.depth(), &mut cqes) == 0 {
                continue;
            }
            progress = true;
            let now = sh.clock.now_ns();
            for cqe in cqes.drain(..) {
                core.on_cqe(ssd, cqe.cid, cqe.status, now, &mut out);
            }
            execute(sh, wid, &qps, &mut out);
            update_inflight_gauges(sh, ssd, qp);
        }
        if !progress {
            std::thread::yield_now();
        }
    }
}

/// Takes ownership of a dispatched group: record the dispatch stage, then
/// hand it to the protocol core.
fn accept(sh: &Shared, wid: usize, core: &mut WorkerCore, spec: GroupSpec) {
    let recv_ns = sh.clock.now_ns();
    let op_idx = op_index(spec.batch.op);
    let dispatch_span = recv_ns.saturating_sub(spec.batch.pickup_ns);
    sh.metrics
        .stage(op_idx, Stage::Dispatch)
        .record(dispatch_span);
    if let Some(w) = &sh.windows {
        w.stage(Stage::Dispatch).record_at(recv_ns, dispatch_span);
    }
    if let Some(rec) = &sh.recorder {
        rec.emit_at(
            recv_ns,
            EventKind::GroupDispatch {
                channel: spec.batch.channel as u16,
                seq: spec.batch.seq,
                ssd: spec.ssd as u16,
                worker: wid as u16,
            },
        );
    }
    core.on_group(spec, recv_ns);
}

/// Executes drained protocol commands against the real queue pairs and the
/// telemetry registry, in order (submissions precede their doorbell ring).
fn execute(sh: &Shared, wid: usize, qps: &[Arc<QueuePair>], out: &mut Vec<Command>) {
    for cmd in out.drain(..) {
        match cmd {
            Command::Submit(s) => {
                let sqe = match s.op {
                    ChannelOp::Read => Sqe::read(s.cid, s.dev_lba, s.blocks, s.addr),
                    ChannelOp::Write => Sqe::write(s.cid, s.dev_lba, s.blocks, s.addr),
                };
                qps[s.ssd]
                    .push_sqe(sqe)
                    .expect("protocol admission implies SQ room");
                if s.first {
                    // Retries are deliberately excluded:
                    // `cam_ssd_submitted_total` counts logical requests, so
                    // its sum stays comparable to `requests` retired.
                    sh.metrics.ssd_submitted[s.ssd].add(1);
                }
            }
            Command::RingDoorbell { ssd, .. } => {
                qps[ssd].ring_doorbell();
                update_inflight_gauges(sh, ssd, &qps[ssd]);
            }
            Command::GroupSubmitted {
                batch,
                ssd,
                sqes,
                recv_ns,
                submit_ns,
            } => {
                let span = submit_ns.saturating_sub(recv_ns);
                let op_idx = op_index(batch.op);
                sh.metrics.stage(op_idx, Stage::Submit).record(span);
                sh.metrics.ssd_submit_ns[ssd].record(span);
                if let Some(w) = &sh.windows {
                    w.stage(Stage::Submit).record_at(submit_ns, span);
                }
                if let Some(rec) = &sh.recorder {
                    rec.emit_at(
                        submit_ns,
                        EventKind::GroupSubmit {
                            channel: batch.channel as u16,
                            seq: batch.seq,
                            ssd: ssd as u16,
                            worker: wid as u16,
                            sqes,
                        },
                    );
                }
            }
            Command::CmdRetry {
                batch,
                ssd,
                cid,
                attempt,
                now_ns,
                ..
            } => {
                sh.metrics.retries.inc();
                if let Some(w) = &sh.windows {
                    w.ssd_retries[ssd].add_at(now_ns, 1, 0);
                }
                if let Some(rec) = &sh.recorder {
                    rec.emit_at(
                        now_ns,
                        EventKind::CmdRetry {
                            channel: batch.channel as u16,
                            seq: batch.seq,
                            ssd: ssd as u16,
                            cid,
                            attempt,
                        },
                    );
                }
                let transition = sh.lane_health[ssd].lock().on_retry();
                if let Some(t) = transition {
                    super::emit_lane_transition(sh, t, now_ns);
                }
            }
            Command::CmdTimeout {
                batch,
                ssd,
                cid,
                attempts,
                now_ns,
            } => {
                sh.metrics.cmd_timeouts.inc();
                if let Some(rec) = &sh.recorder {
                    rec.emit_at(
                        now_ns,
                        EventKind::CmdTimeout {
                            channel: batch.channel as u16,
                            seq: batch.seq,
                            ssd: ssd as u16,
                            cid,
                            attempts,
                        },
                    );
                }
                let transition = sh.lane_health[ssd].lock().on_timeout();
                if let Some(t) = transition {
                    super::emit_lane_transition(sh, t, now_ns);
                }
            }
            Command::GroupComplete {
                batch,
                ssd,
                sqes,
                errors,
                anchor_ns,
                complete_ns,
            } => {
                let span = complete_ns.saturating_sub(anchor_ns);
                let op_idx = op_index(batch.op);
                sh.metrics.stage(op_idx, Stage::Complete).record(span);
                sh.metrics.ssd_complete_ns[ssd].record(span);
                sh.metrics.ssd_completed[ssd].add(sqes as u64);
                if let Some(w) = &sh.windows {
                    w.stage(Stage::Complete).record_at(complete_ns, span);
                    w.ssd_complete[ssd].record_at(complete_ns, span);
                    // Denominator of the windowed retry rate: groups closed.
                    w.ssd_retries[ssd].add_at(complete_ns, 0, 1);
                }
                if let Some(rec) = &sh.recorder {
                    rec.emit_at(
                        complete_ns,
                        EventKind::GroupComplete {
                            channel: batch.channel as u16,
                            seq: batch.seq,
                            ssd: ssd as u16,
                            worker: wid as u16,
                            errors: errors as u32,
                        },
                    );
                }
            }
            Command::RetireBatch { batch, complete_ns } => {
                retire_batch(sh, &batch, complete_ns);
            }
        }
    }
}

/// Publishes the lane's live in-flight depth (and its high-water mark) to
/// the `cam_inflight{ssd}` gauges, and feeds the lane-health saturation
/// watermark (which, by design, never gates a health transition — see
/// `cam_protocol::health`).
fn update_inflight_gauges(sh: &Shared, ssd: usize, qp: &QueuePair) {
    let cur = qp.in_flight();
    sh.metrics.inflight[ssd].set(cur);
    if cur > sh.metrics.inflight_peak[ssd].get() {
        sh.metrics.inflight_peak[ssd].set(cur);
    }
    sh.lane_health[ssd]
        .lock()
        .observe_depth(cur as usize, qp.depth());
}
