//! The thread-per-core run-to-completion worker.
//!
//! Worker *w* of *W* owns channels `ch % W` and the per-SSD lanes
//! `ssd % active` outright: it performs doorbell pickup and planning
//! inline ([`dispatch::poll_channel`] — no central poller hop), routes
//! each per-SSD group to the owning worker over the bounded SPSC fabric
//! (`rings[dst][src]`), and runs the shared reactor machinery
//! ([`reactor::accept`]/[`reactor::execute`]/[`reactor::reap`]) over its
//! private queue pairs. Groups for its own SSDs skip the fabric and go
//! straight into the local inbox.
//!
//! Idleness is protocol-driven: when [`WorkerCore::park_hint`] reports
//! nothing actionable, the worker parks on its [`Parker`] — woken by
//! doorbell publishes on owned channels (channel wakers), ring pushes
//! from peer workers, and stop. The parked-time share is exported as
//! `cam_worker_park_ratio{worker}` (milli-units, windowed), so the
//! idle-burn win over the legacy spin loop is observable.
//!
//! [`Parker`]: super::park::Parker
//! [`WorkerCore::park_hint`]: cam_protocol::WorkerCore::park_hint

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use cam_nvme::spec::Cqe;
use cam_nvme::QueuePair;
use cam_protocol::{Command, GroupSpec, ParkHint, WorkerCore};
use cam_telemetry::{WindowConfig, WindowedCounter};

use super::{dispatch, reactor, Shared};

/// Upper bound on one park: an idle worker re-checks the world (and
/// refreshes its park-ratio gauge) at least this often, so a hypothetical
/// lost wakeup degrades to latency, never to a hang.
const MAX_PARK: Duration = Duration::from_millis(50);

/// Consecutive empty iterations a worker rides out with a plain yield
/// before actually parking on an `Idle` hint. Under sustained load the
/// next doorbell or ring push lands within microseconds, and a futex
/// sleep+wake pair per batch costs more than the work itself; genuine
/// idleness still parks after ~this many yields, so the idle park ratio
/// stays high.
const IDLE_SPIN: u32 = 128;

/// Hot iterations between park-window flushes. Any iteration that
/// actually parked flushes immediately, so an idle worker's ratio stays
/// fresh; a busy worker amortizes the window lock over this many loops.
const FLUSH_ITERS: u32 = 512;

pub(super) fn shard_loop(sh: &Shared, wid: usize) {
    if let Some(rec) = &sh.recorder {
        rec.name_current_thread(&format!("cam-worker{wid}"));
    }
    let n_workers = sh.parkers.len();
    let qps: Vec<Arc<QueuePair>> = (0..sh.n_ssds)
        .map(|ssd| Arc::clone(&sh.qps[ssd][wid]))
        .collect();
    // Queue-pair columns are worker-private even across rescale epochs
    // (ownership moves change *which column* serves an SSD, not who
    // drives a pair); claim them so a double-poll bug panics at the site.
    for qp in &qps {
        qp.bind_host_owner();
    }
    let mut core = WorkerCore::new(sh.n_ssds, qps[0].depth(), sh.retry);
    let mut health = reactor::new_lane_health(sh.n_ssds);
    // Static channel shard: this worker is the only thread that ever polls
    // these channels' doorbells.
    let owned: Vec<usize> = (wid..sh.channels.len()).step_by(n_workers).collect();
    let mut last_seen = vec![0u64; owned.len()];
    let mut inbox: VecDeque<GroupSpec> = VecDeque::new();
    let mut out: Vec<Command> = Vec::new();
    let mut cqes: Vec<Cqe> = Vec::new();
    // Park accounting: parked-ns over elapsed-ns per rolling window,
    // exported ×1000 (the registry's milli-gauge convention, like
    // `cam_slo_burn_rate`).
    let park_win = WindowedCounter::new(WindowConfig::default());
    let mut last_mark = sh.clock.now_ns();
    let mut idle_streak = 0u32;
    // Window flushes are batched: the add/sum per iteration would cost
    // more than a hot iteration's useful work (a lock plus a slot scan).
    let mut iters_since_flush = 0u32;
    loop {
        let stopping = sh.stop.load(Ordering::Acquire);
        let mut progress = false;
        if !stopping {
            // 1. Doorbell pickup on owned channels, planning inline.
            for (i, &ch_idx) in owned.iter().enumerate() {
                if let Some(specs) = dispatch::poll_channel(sh, ch_idx, &mut last_seen[i]) {
                    progress = true;
                    route_groups(sh, wid, n_workers, specs, &mut inbox);
                }
            }
        }
        // 2. Drain groups routed here by peer workers.
        progress |= drain_rings(sh, wid, &mut inbox);
        // 3. Admission: pipelined takes everything (commands from several
        //    batches share the queue depth); the blocking baseline runs
        //    one group at a time — same code path, depth ≤ one group.
        if sh.pipelined {
            while let Some(spec) = inbox.pop_front() {
                reactor::accept(sh, wid, &mut core, spec);
                progress = true;
            }
        } else if core.idle() {
            if let Some(spec) = inbox.pop_front() {
                reactor::accept(sh, wid, &mut core, spec);
                progress = true;
            }
        }
        // 4. Pump submissions, execute effects, reap completions.
        core.pump(sh.clock.now_ns(), &mut out);
        progress |= !out.is_empty();
        reactor::execute(sh, wid, &qps, &mut health, &mut out);
        progress |= reactor::reap(sh, &qps, &mut core, &mut health, &mut out, &mut cqes, wid);

        if stopping && core.idle() && inbox.is_empty() {
            break;
        }
        // 5. Idle policy from the protocol: park instead of spinning.
        let mut parked_ns = 0u64;
        if progress {
            idle_streak = 0;
        } else if !stopping {
            idle_streak = idle_streak.saturating_add(1);
            match core.park_hint() {
                ParkHint::Poll => std::thread::yield_now(),
                ParkHint::Until(t) => {
                    let now = sh.clock.now_ns();
                    if t > now {
                        let before = now;
                        sh.parkers[wid].park_timeout(
                            Duration::from_nanos(t - now).min(MAX_PARK),
                        );
                        parked_ns = sh.clock.now_ns().saturating_sub(before);
                    } else {
                        std::thread::yield_now();
                    }
                }
                ParkHint::Idle if idle_streak < IDLE_SPIN => std::thread::yield_now(),
                ParkHint::Idle => {
                    // No token is lost to the publish→park race: a doorbell
                    // or ring push that lands just before this park leaves
                    // the token set, so the park returns immediately.
                    let before = sh.clock.now_ns();
                    sh.parkers[wid].park_timeout(MAX_PARK);
                    parked_ns = sh.clock.now_ns().saturating_sub(before);
                }
            }
        }
        iters_since_flush += 1;
        if parked_ns > 0 || iters_since_flush >= FLUSH_ITERS {
            let now = sh.clock.now_ns();
            park_win.add_at(now, parked_ns, now.saturating_sub(last_mark));
            last_mark = now;
            if let Some(ratio) = park_win.ratio_at(now) {
                sh.metrics.worker_park_ratio[wid].set((ratio * 1000.0) as u64);
            }
            iters_since_flush = 0;
        }
    }
    reactor::drain_lane_health(sh, &mut health);
}

/// Routes freshly planned groups: local SSDs go straight to the inbox,
/// remote ones over the SPSC fabric (waking the consumer). A full ring is
/// ridden out by spinning — while also draining our own inbound rings, so
/// two workers pushing at each other can never deadlock.
fn route_groups(
    sh: &Shared,
    wid: usize,
    n_workers: usize,
    specs: Vec<GroupSpec>,
    inbox: &mut VecDeque<GroupSpec>,
) {
    let active = sh
        .active_workers
        .load(Ordering::Relaxed)
        .clamp(1, n_workers);
    for spec in specs {
        // An SSD is always handled by the worker `ssd % active`, so one
        // SSD's queue pairs are never polled by two threads at once within
        // an active-count epoch.
        let dst = spec.ssd % active;
        if dst == wid {
            inbox.push_back(spec);
            continue;
        }
        let mut spec = spec;
        loop {
            match sh.rings[dst][wid].push(spec) {
                Ok(()) => {
                    sh.parkers[dst].unpark();
                    break;
                }
                Err(back) => {
                    spec = back;
                    sh.parkers[dst].unpark();
                    drain_rings(sh, wid, inbox);
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Drains every inbound ring into the local inbox; returns whether
/// anything arrived.
fn drain_rings(sh: &Shared, wid: usize, inbox: &mut VecDeque<GroupSpec>) -> bool {
    let mut any = false;
    for ring in &sh.rings[wid] {
        while let Some(spec) = ring.pop() {
            inbox.push_back(spec);
            any = true;
        }
    }
    any
}
