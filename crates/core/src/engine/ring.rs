//! A bounded single-producer / single-consumer ring for cross-worker
//! group handoff.
//!
//! The thread-per-core engine wires one ring per ordered worker pair:
//! worker *p* pushes a [`GroupSpec`] whose SSD is owned by worker *c* into
//! `rings[c][p]`, and only *c* ever pops it — so each ring has exactly one
//! producer and one consumer by construction. Position counters are the
//! only cross-thread coordination; the `tail` release-store publishes the
//! slot write, the `head` release-store publishes the slot take. The
//! workspace forbids `unsafe`, so slots are `Mutex<Option<T>>` rather than
//! `UnsafeCell`s — under SPSC discipline every lock is uncontended, and
//! the mutex cost is dwarfed by the planning work a `GroupSpec` carries.
//!
//! [`GroupSpec`]: cam_protocol::GroupSpec

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// A bounded SPSC queue. `push` from one thread, `pop` from one other;
/// both are wait-free apart from the uncontended slot lock.
pub(crate) struct SpscRing<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Next slot to pop (consumer-owned; producer reads it to detect full).
    head: AtomicUsize,
    /// Next slot to push (producer-owned; consumer reads it to detect
    /// empty).
    tail: AtomicUsize,
}

impl<T> SpscRing<T> {
    /// A ring holding up to `capacity` items (raised to 1 if 0).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        SpscRing {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Slots in the ring.
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: enqueues `v`, or returns it if the ring is full.
    pub(crate) fn push(&self, v: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            return Err(v);
        }
        *self.slots[tail % self.slots.len()].lock() = Some(v);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: dequeues the oldest item, if any.
    pub(crate) fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let v = self.slots[head % self.slots.len()].lock().take();
        self.head.store(head.wrapping_add(1), Ordering::Release);
        debug_assert!(v.is_some(), "SPSC slot empty between head and tail");
        v
    }

    /// Whether the ring currently holds nothing (racy by nature: only
    /// meaningful to the consumer as a park-side recheck).
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::Arc;

    #[test]
    fn empty_ring_pops_nothing() {
        let r: SpscRing<u64> = SpscRing::with_capacity(4);
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn full_ring_rejects_and_returns_the_value() {
        let r = SpscRing::with_capacity(2);
        assert_eq!(r.push(1), Ok(()));
        assert_eq!(r.push(2), Ok(()));
        assert_eq!(r.push(3), Err(3));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.push(3), Ok(()));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn zero_capacity_is_raised_to_one() {
        let r = SpscRing::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.push(7), Ok(()));
        assert_eq!(r.push(8), Err(8));
        assert_eq!(r.pop(), Some(7));
    }

    /// Property test against a model deque: a deterministic pseudo-random
    /// interleaving of pushes and pops must match `VecDeque` exactly,
    /// including full/empty refusals, across many wraps of a small ring.
    #[test]
    fn interleaved_ops_match_a_model_deque_across_wraps() {
        for cap in [1usize, 2, 3, 7] {
            let r = SpscRing::with_capacity(cap);
            let mut model: VecDeque<u64> = VecDeque::new();
            let mut rng: u64 = 0x9E37_79B9_7F4A_7C15 ^ cap as u64;
            let mut next_val = 0u64;
            for _ in 0..10_000 {
                // xorshift64
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                if rng % 2 == 0 {
                    let res = r.push(next_val);
                    if model.len() < cap {
                        assert_eq!(res, Ok(()), "cap {cap}: push into non-full ring");
                        model.push_back(next_val);
                    } else {
                        assert_eq!(res, Err(next_val), "cap {cap}: full ring must refuse");
                    }
                    next_val += 1;
                } else {
                    assert_eq!(r.pop(), model.pop_front(), "cap {cap}: FIFO order");
                }
            }
            assert_eq!(r.is_empty(), model.is_empty());
        }
    }

    /// Two-thread stress: one producer, one consumer, a ring much smaller
    /// than the item count (forcing constant wraps and full/empty edges).
    /// Every item must arrive exactly once, in order.
    #[test]
    fn two_thread_stress_preserves_order_and_loses_nothing() {
        const N: u64 = 200_000;
        let ring = Arc::new(SpscRing::with_capacity(8));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut v = 0u64;
                while v < N {
                    match ring.push(v) {
                        Ok(()) => v += 1,
                        Err(_) => std::thread::yield_now(),
                    }
                }
            })
        };
        let mut expected = 0u64;
        while expected < N {
            match ring.pop() {
                Some(v) => {
                    assert_eq!(v, expected, "reordered or duplicated item");
                    expected += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert!(ring.is_empty());
    }
}
