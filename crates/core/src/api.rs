//! The CAM API of Table II: host-side setup ([`CamContext`]) and the
//! device-side calls ([`CamDevice`]) kernels use to overlap computation
//! with SSD I/O while keeping a synchronous programming experience.

use std::fmt;
use std::sync::Arc;

use cam_gpu::{Gpu, GpuBuffer, OutOfMemory};
use cam_iostacks::Rig;
use cam_telemetry::{
    clock, ControlMetrics, EventKind, FlightRecorder, Histogram, HistogramHandle, MetricsRegistry,
    Observability, Stage, TelemetrySink,
};

use crate::engine::{ControlConfig, ControlPlane, ControlStats, ThreadModel};
use crate::regions::{Channel, ChannelOp, PublishError};

/// Configuration for [`CamContext::attach`] (`CAM_init`).
#[derive(Clone, Copy, Debug)]
pub struct CamConfig {
    /// Region-1 capacity: maximum requests per batch.
    pub max_batch: usize,
    /// Channels (independent batch streams). The default 2 carries
    /// prefetch on channel 0 and write-back on channel 1, as Fig. 7 uses.
    pub n_channels: usize,
    /// NVMe queue depth per worker per SSD.
    pub queue_depth: usize,
    /// Dynamic core adjustment (§ III-A). When off, all workers stay
    /// active.
    pub dynamic_scaling: bool,
    /// Worker threads to spawn; defaults to `ceil(N/2)` for `N` SSDs
    /// (Fig. 12: one thread drives two SSDs without degradation).
    pub workers: Option<usize>,
    /// Re-submissions allowed per command after a transient NVMe failure
    /// (0 disables retries).
    pub max_retries: u32,
    /// Base of the per-command exponential retry backoff; doubles per
    /// attempt.
    pub retry_backoff_ns: u64,
    /// Per-command deadline from dispatch to final completion. A command
    /// over it is failed (surfacing as [`CamError::Io`] at synchronize) —
    /// the worker thread is never wedged. `None` = unbounded.
    pub cmd_deadline_ns: Option<u64>,
    /// Pipelined reactor: workers keep commands from multiple batches in
    /// flight per SSD up to queue depth. Turn off for the blocking
    /// group-at-a-time baseline (benchmarks only).
    pub pipelined: bool,
    /// Threading model of the control plane. The default
    /// [`ThreadModel::ThreadPerCore`] runs lcore-style workers that own
    /// their channels, plan inline, and park when idle;
    /// [`ThreadModel::CentralPoller`] keeps the legacy poller + MPMC
    /// fan-out engine (mode-comparison benchmarks, and workloads
    /// calibrated against the poller's dispatch hop). Protocol decisions
    /// are identical under both.
    pub thread_model: ThreadModel,
    /// How long `synchronize_*` and [`BatchTicket::wait`] spin for region 4
    /// before giving up with [`CamError::SyncTimeout`] — a wedged control
    /// plane then surfaces as an error instead of a hung caller. `None` =
    /// wait forever.
    pub sync_timeout_ns: Option<u64>,
}

impl Default for CamConfig {
    fn default() -> Self {
        CamConfig {
            max_batch: 4096,
            n_channels: 2,
            queue_depth: 1024,
            dynamic_scaling: false,
            workers: None,
            max_retries: 3,
            retry_backoff_ns: 20_000,
            cmd_deadline_ns: None,
            pipelined: true,
            thread_model: ThreadModel::default(),
            sync_timeout_ns: Some(10_000_000_000),
        }
    }
}

/// CAM errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CamError {
    /// The batch exceeds region-1 capacity — split it.
    BatchTooLarge {
        /// Requests in the attempted batch.
        requested: usize,
        /// Region-1 capacity.
        capacity: usize,
    },
    /// A batch is still outstanding on the channel; call the matching
    /// `*_synchronize` first.
    ChannelBusy,
    /// Commands failed on the device.
    Io {
        /// Number of failed commands since the last synchronize.
        failed: u64,
    },
    /// No such channel.
    BadChannel(usize),
    /// A synchronize (or ticket wait) exceeded
    /// [`CamConfig::sync_timeout_ns`] without region 4 being written.
    SyncTimeout {
        /// How long the caller spun before giving up, nanoseconds.
        waited_ns: u64,
    },
    /// The OS refused to spawn a control-plane thread (resource
    /// exhaustion). Nothing was left running; retry with fewer workers.
    Spawn,
}

impl fmt::Display for CamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CamError::BatchTooLarge {
                requested,
                capacity,
            } => write!(f, "batch of {requested} exceeds capacity {capacity}"),
            CamError::ChannelBusy => write!(f, "channel busy: synchronize first"),
            CamError::Io { failed } => write!(f, "{failed} command(s) failed"),
            CamError::BadChannel(ch) => write!(f, "no such channel {ch}"),
            CamError::SyncTimeout { waited_ns } => write!(
                f,
                "synchronize timed out after {:.3} s without a retire",
                *waited_ns as f64 / 1e9
            ),
            CamError::Spawn => write!(f, "failed to spawn a control-plane thread"),
        }
    }
}

impl std::error::Error for CamError {}

/// The host-side context (`CAM_init`): owns the shared channels and the CPU
/// control plane. Stops the control plane on drop.
pub struct CamContext {
    gpu: Arc<Gpu>,
    channels: Arc<Vec<Channel>>,
    control: ControlPlane,
    block_size: u32,
    sync_timeout_ns: Option<u64>,
    registry: Arc<MetricsRegistry>,
    metrics: Arc<ControlMetrics>,
    /// Event layer, when the attachment was observed with a recorder.
    recorder: Option<Arc<FlightRecorder>>,
}

impl CamContext {
    /// `CAM_init`: sets up the four memory regions per channel, registers
    /// queue pairs on every SSD, and starts the persistent CPU polling
    /// thread and worker pool. Telemetry goes to a private registry
    /// (reachable via [`registry`](Self::registry)); use
    /// [`attach_with`](Self::attach_with) to supply your own.
    pub fn attach(rig: &Rig, cfg: CamConfig) -> Self {
        Self::attach_observed(rig, cfg, Observability::default())
    }

    /// [`attach`](Self::attach) with an explicit metrics registry and a
    /// [`TelemetrySink`] notified per retired batch and per scaler
    /// decision. The registry is shared: exporters snapshot it while the
    /// control plane records.
    pub fn attach_with(
        rig: &Rig,
        cfg: CamConfig,
        registry: Arc<MetricsRegistry>,
        sink: Arc<dyn TelemetrySink>,
    ) -> Self {
        Self::attach_observed(
            rig,
            cfg,
            Observability::with_registry(registry).with_sink(sink),
        )
    }

    /// [`attach`](Self::attach) with a full [`Observability`] bundle
    /// (registry + sink + optional flight recorder, post-mortem dumper and
    /// batch deadline). Panics on thread-spawn failure; use
    /// [`try_attach_observed`](Self::try_attach_observed) to handle it.
    pub fn attach_observed(rig: &Rig, cfg: CamConfig, obs: Observability) -> Self {
        Self::try_attach_observed(rig, cfg, obs).expect("start CAM control plane")
    }

    /// The fallible attachment path: everything `attach_observed` does, but
    /// surfaces [`CamError::Spawn`] instead of panicking when the OS cannot
    /// create the control-plane threads. On error nothing is left running.
    pub fn try_attach_observed(
        rig: &Rig,
        cfg: CamConfig,
        obs: Observability,
    ) -> Result<Self, CamError> {
        assert!(cfg.n_channels >= 1);
        let channels = Arc::new(
            (0..cfg.n_channels)
                .map(|_| Channel::new(cfg.max_batch))
                .collect::<Vec<_>>(),
        );
        let max_workers = cfg
            .workers
            .unwrap_or_else(|| rig.n_ssds().div_ceil(2))
            .max(1);
        let registry = Arc::clone(&obs.registry);
        let metrics = Arc::new(ControlMetrics::new(
            &registry,
            cfg.n_channels,
            rig.n_ssds(),
            max_workers,
        ));
        // Substrate hooks before the control plane creates queue pairs, so
        // every queue pair inherits the doorbell-batch histogram (and, when
        // a recorder is attached, the doorbell event stream).
        for (idx, dev) in rig.devices().iter().enumerate() {
            dev.attach_telemetry(&registry);
            if let Some(rec) = &obs.recorder {
                dev.attach_recorder(idx as u16, Arc::clone(rec));
            }
        }
        rig.gpu().attach_telemetry(&registry);
        if let Some(rec) = &obs.recorder {
            rig.gpu().attach_recorder(Arc::clone(rec));
        }
        let control = ControlPlane::start(
            rig.devices(),
            rig.dma_space(),
            Arc::clone(&channels),
            ControlConfig {
                queue_depth: cfg.queue_depth,
                dynamic_scaling: cfg.dynamic_scaling,
                max_workers,
                stripe_blocks: rig.stripe_blocks(),
                block_size: rig.block_size(),
                max_retries: cfg.max_retries,
                retry_backoff_ns: cfg.retry_backoff_ns,
                cmd_deadline_ns: cfg.cmd_deadline_ns,
                pipelined: cfg.pipelined,
                thread_model: cfg.thread_model,
            },
            Arc::clone(&metrics),
            &obs,
        )
        .map_err(|_| CamError::Spawn)?;
        Ok(CamContext {
            gpu: Arc::clone(rig.gpu()),
            channels,
            control,
            block_size: rig.block_size(),
            sync_timeout_ns: cfg.sync_timeout_ns,
            registry,
            metrics,
            recorder: obs.recorder,
        })
    }

    /// The metrics registry this context records into. Snapshot it for
    /// JSON/Prometheus exposition.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The pre-resolved control-plane metric handles (stage histograms,
    /// per-SSD counters, …).
    pub fn metrics(&self) -> &Arc<ControlMetrics> {
        &self.metrics
    }

    /// The flight recorder this context emits into, when attached with one.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Full-bin snapshots of every (`op`, stage) latency histogram, as
    /// `(op label, stage, merged histogram)` triples in
    /// [`ControlMetrics::OPS`] × [`Stage::ALL`] order. The registry's
    /// summaries keep only quantiles; the statistical regression gate and
    /// the queue-delay attribution need the bins themselves, so this is
    /// the threaded driver's per-stage snapshot hook (the DES driver's
    /// equivalent is its lifecycle event stream).
    pub fn stage_snapshots(&self) -> Vec<(&'static str, Stage, Histogram)> {
        let mut out = Vec::with_capacity(ControlMetrics::OPS.len() * Stage::ALL.len());
        for (op_idx, op) in ControlMetrics::OPS.iter().enumerate() {
            for stage in Stage::ALL {
                out.push((*op, stage, self.metrics.stage(op_idx, stage).snapshot()));
            }
        }
        out
    }

    /// `CAM_alloc`: pinned GPU memory SSDs can DMA into directly.
    pub fn alloc(&self, bytes: usize) -> Result<GpuBuffer, OutOfMemory> {
        self.gpu.alloc(bytes)
    }

    /// The device-side handle to pass into kernels.
    pub fn device(&self) -> CamDevice {
        CamDevice {
            channels: Arc::clone(&self.channels),
            block_size: self.block_size,
            sync_timeout_ns: self.sync_timeout_ns,
            sync_wait: self.metrics.sync_wait_ns.clone(),
            recorder: self.recorder.clone(),
        }
    }

    /// Control-plane counters (batches, errors, worker activity, compute
    /// vs. I/O time estimates).
    pub fn stats(&self) -> ControlStats {
        self.control.stats()
    }

    /// Worker threads spawned (the dynamic scaler works within these).
    pub fn max_workers(&self) -> usize {
        self.control.max_workers()
    }

    /// Array block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }
}

/// A handle to one asynchronous batch (the raw CAM-Async interface).
#[derive(Clone)]
pub struct BatchTicket {
    channels: Arc<Vec<Channel>>,
    channel: usize,
    seq: u64,
    timeout_ns: Option<u64>,
}

impl BatchTicket {
    /// Whether the batch has retired.
    pub fn is_done(&self) -> bool {
        self.channels[self.channel].retired(self.seq)
    }

    /// Blocks until the batch retires (bounded by
    /// [`CamConfig::sync_timeout_ns`]); reports command failures.
    pub fn wait(&self) -> Result<(), CamError> {
        let ch = &self.channels[self.channel];
        let start_ns = clock::now_ns();
        while !ch.retired(self.seq) {
            if let Some(limit) = self.timeout_ns {
                let waited_ns = clock::now_ns().saturating_sub(start_ns);
                if waited_ns > limit {
                    return Err(CamError::SyncTimeout { waited_ns });
                }
            }
            std::thread::yield_now();
        }
        let failed = ch.take_new_errors();
        if failed > 0 {
            Err(CamError::Io { failed })
        } else {
            Ok(())
        }
    }
}

/// The device-side API (Table II's `Run On: Device` rows). Cloneable and
/// thread-safe: pass it into kernels; its methods are what the *leading
/// thread* of a block executes.
#[derive(Clone)]
pub struct CamDevice {
    channels: Arc<Vec<Channel>>,
    block_size: u32,
    sync_timeout_ns: Option<u64>,
    /// Telemetry: time threads spend blocked in `synchronize_*`.
    sync_wait: HistogramHandle,
    /// Event layer: sync-wait spans when the context has a recorder.
    recorder: Option<Arc<FlightRecorder>>,
}

/// Channel conventions matching Fig. 7's usage.
const READ_CHANNEL: usize = 0;
const WRITE_CHANNEL: usize = 1;

impl CamDevice {
    /// Array block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Number of channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Raw asynchronous submit (CAM-Async): publishes a batch of
    /// single-block requests on `channel`; request `i` reads/writes array
    /// block `lbas[i]` at `dest_addr + i * block_size`. Returns immediately
    /// with a ticket.
    pub fn submit(
        &self,
        channel: usize,
        op: ChannelOp,
        lbas: &[u64],
        dest_addr: u64,
    ) -> Result<BatchTicket, CamError> {
        let bs = self.block_size as u64;
        self.submit_scatter(channel, op, lbas, |i| dest_addr + i as u64 * bs, 1)
    }

    /// Raw asynchronous submit with explicit per-request addresses and a
    /// uniform per-request block count.
    pub fn submit_scatter(
        &self,
        channel: usize,
        op: ChannelOp,
        lbas: &[u64],
        addrs: impl Fn(usize) -> u64,
        blocks_per_req: u32,
    ) -> Result<BatchTicket, CamError> {
        let ch = self
            .channels
            .get(channel)
            .ok_or(CamError::BadChannel(channel))?;
        let seq = ch
            .try_publish(op, lbas, addrs, blocks_per_req)
            .map_err(|e| match e {
                PublishError::Busy => CamError::ChannelBusy,
                PublishError::TooLarge => CamError::BatchTooLarge {
                    requested: lbas.len(),
                    capacity: ch.capacity(),
                },
            })?;
        Ok(BatchTicket {
            channels: Arc::clone(&self.channels),
            channel,
            seq,
            timeout_ns: self.sync_timeout_ns,
        })
    }

    /// `prefetch`: asynchronously fetch `lbas` from the SSDs into pinned
    /// GPU memory at `dest_addr` (block `i` lands at offset `i *
    /// block_size`). Only the leading thread does work; returns without
    /// blocking so computation on previously-fetched data proceeds.
    pub fn prefetch(&self, lbas: &[u64], dest_addr: u64) -> Result<(), CamError> {
        // An empty fetch has nothing to wait for: skip the doorbell round
        // trip entirely instead of publishing an empty batch.
        if lbas.is_empty() {
            return Ok(());
        }
        self.submit(READ_CHANNEL, ChannelOp::Read, lbas, dest_addr)
            .map(|_| ())
    }

    /// `prefetch_synchronize`: blocks until the last `prefetch` completed
    /// and its data is visible in GPU memory.
    pub fn prefetch_synchronize(&self) -> Result<(), CamError> {
        self.synchronize_channel(READ_CHANNEL)
    }

    /// `write_back`: asynchronously write pinned GPU memory at `src_addr`
    /// back to `lbas` on the SSDs.
    pub fn write_back(&self, lbas: &[u64], src_addr: u64) -> Result<(), CamError> {
        // Same as `prefetch`: nothing to make durable, nothing to publish.
        if lbas.is_empty() {
            return Ok(());
        }
        self.submit(WRITE_CHANNEL, ChannelOp::Write, lbas, src_addr)
            .map(|_| ())
    }

    /// `write_back_synchronize`: blocks until the last `write_back` is
    /// durable on the SSDs.
    pub fn write_back_synchronize(&self) -> Result<(), CamError> {
        self.synchronize_channel(WRITE_CHANNEL)
    }

    /// Synchronizes an arbitrary channel (multi-stream kernels).
    pub fn synchronize_channel(&self, channel: usize) -> Result<(), CamError> {
        let ch = self
            .channels
            .get(channel)
            .ok_or(CamError::BadChannel(channel))?;
        // "All threads are blocked and wait for the leading thread to check
        // if the fourth region has been written."
        let seq = ch.current_seq();
        let wait_start = clock::now_ns();
        while !ch.retired(seq) {
            if let Some(limit) = self.sync_timeout_ns {
                let waited_ns = clock::now_ns().saturating_sub(wait_start);
                if waited_ns > limit {
                    return Err(CamError::SyncTimeout { waited_ns });
                }
            }
            std::thread::yield_now();
        }
        self.sync_wait
            .record(clock::now_ns().saturating_sub(wait_start));
        if let Some(rec) = &self.recorder {
            rec.emit(EventKind::SyncWait {
                channel: channel as u16,
                start_ns: wait_start,
            });
        }
        let failed = ch.take_new_errors();
        if failed > 0 {
            Err(CamError::Io { failed })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A device over a channel nobody serves: region 4 never advances, so
    /// both wait paths must give up with `SyncTimeout` instead of hanging.
    fn orphan_device(timeout_ns: Option<u64>) -> CamDevice {
        CamDevice {
            channels: Arc::new(vec![Channel::new(4)]),
            block_size: 4096,
            sync_timeout_ns: timeout_ns,
            sync_wait: MetricsRegistry::new().histogram("test_sync_wait_ns"),
            recorder: None,
        }
    }

    #[test]
    fn ticket_wait_times_out_on_a_dead_channel() {
        let dev = orphan_device(Some(2_000_000));
        let ticket = dev.submit(0, ChannelOp::Read, &[1], 0).unwrap();
        match ticket.wait() {
            Err(CamError::SyncTimeout { waited_ns }) => assert!(waited_ns > 2_000_000),
            other => panic!("expected SyncTimeout, got {other:?}"),
        }
    }

    #[test]
    fn synchronize_times_out_on_a_dead_channel() {
        let dev = orphan_device(Some(2_000_000));
        dev.submit(0, ChannelOp::Read, &[1], 0).unwrap();
        match dev.synchronize_channel(0) {
            Err(CamError::SyncTimeout { waited_ns }) => assert!(waited_ns > 2_000_000),
            other => panic!("expected SyncTimeout, got {other:?}"),
        }
    }
}
