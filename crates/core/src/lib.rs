//! # cam-core — CAM: asynchronous GPU-initiated, CPU-managed SSD management
//!
//! This crate is the paper's primary contribution (§ III): the SSD **control
//! plane lives on the CPU in user space** (zero GPU SMs spent on I/O), the
//! GPU merely **initiates** batches by writing logical block addresses and a
//! doorbell into shared memory, and the **data plane is direct** — NVMe
//! commands carry physical addresses of pinned GPU memory. A small
//! synchronous-feeling device API hides the asynchrony:
//!
//! | Table II API             | here                                            |
//! |--------------------------|-------------------------------------------------|
//! | `CAM_init`               | [`CamContext::attach`]                          |
//! | `CAM_alloc` / `CAM_free` | [`CamContext::alloc`] / drop the buffer         |
//! | `prefetch`               | [`CamDevice::prefetch`]                         |
//! | `prefetch_synchronize`   | [`CamDevice::prefetch_synchronize`]             |
//! | `write_back`             | [`CamDevice::write_back`]                       |
//! | `write_back_synchronize` | [`CamDevice::write_back_synchronize`]           |
//!
//! ## The four memory regions (§ III-B)
//!
//! GPU↔CPU synchronization uses four pre-allocated regions per [`Channel`]:
//! (1) the LBA array, (2) batch arguments, (3) a GPU→CPU doorbell that says
//! "the block IDs are all written", and (4) a CPU→GPU completion word.
//! Regions 1–3 are written only by the GPU and read by the CPU; region 4
//! only by the CPU. The *leading thread* of a kernel performs the region-2/3
//! writes — our simulated thread blocks **are** their leading thread
//! (`cam-gpu`), so the protocol maps one-to-one.
//!
//! ## Control plane (§ III-A)
//!
//! A persistent CPU polling thread watches doorbells and dispatches batches
//! to worker threads; each worker owns the queue pairs of its SSDs (no locks
//! in the I/O path), submits the whole batch with one doorbell per SSD, and
//! polls completions. A [`DynamicScaler`] adjusts the number of active
//! workers between `N/4` and `N/2` for `N` SSDs from the observed
//! compute:I/O ratio of recent batches.
//!
//! ## Example
//!
//! The canonical Fig. 7 double-buffered loop, on the simulated testbed:
//!
//! ```
//! use cam_core::{CamConfig, CamContext};
//! use cam_iostacks::{Rig, RigConfig};
//!
//! let rig = Rig::new(RigConfig { n_ssds: 2, ..RigConfig::default() });
//! let cam = CamContext::attach(&rig, CamConfig::default());
//!
//! // CAM_alloc: pinned GPU buffers the SSDs can DMA into.
//! let read_buf = cam.alloc(4 * 4096).unwrap();
//! let dev = cam.device();
//!
//! // Seed the array with a pattern via write_back.
//! let src = cam.alloc(4 * 4096).unwrap();
//! src.write(0, &vec![7u8; 4 * 4096]);
//! dev.write_back(&[0, 1, 2, 3], src.addr()).unwrap();
//! dev.write_back_synchronize().unwrap();
//!
//! // GPU kernel: prefetch, synchronize, compute.
//! rig.gpu().launch(1, |_ctx| {
//!     dev.prefetch(&[0, 1, 2, 3], read_buf.addr()).unwrap();
//!     dev.prefetch_synchronize().unwrap();
//! });
//! assert!(read_buf.to_vec().iter().all(|&b| b == 7));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod api;
mod backend;
mod engine;
mod pipeline;
mod regions;
mod scaler;

pub use api::{BatchTicket, CamConfig, CamContext, CamDevice, CamError};
pub use backend::CamBackend;
pub use engine::{ControlStats, ThreadModel};
pub use pipeline::DoubleBuffer;
pub use regions::{Channel, ChannelOp, PublishError};
pub use scaler::DynamicScaler;
