//! [`DoubleBuffer`] — the read/compute buffer rotation of Fig. 7.
//!
//! The kernel loop keeps two pinned buffers: the CPU prefetches the next
//! batch into one while the GPU computes on the other, then the roles swap
//! after `prefetch_synchronize`. This helper owns the pair and the swap.

use cam_gpu::{GpuBuffer, OutOfMemory};

use crate::api::CamContext;

/// A pair of pinned GPU buffers rotated between "being prefetched into"
/// and "being computed on".
pub struct DoubleBuffer {
    bufs: [GpuBuffer; 2],
    front: usize,
}

impl DoubleBuffer {
    /// Allocates two `bytes`-sized pinned buffers (`CAM_alloc` twice,
    /// as in Fig. 7's host function).
    pub fn new(cam: &CamContext, bytes: usize) -> Result<Self, OutOfMemory> {
        Ok(DoubleBuffer {
            bufs: [cam.alloc(bytes)?, cam.alloc(bytes)?],
            front: 0,
        })
    }

    /// The buffer the kernel computes on this iteration.
    pub fn compute_buf(&self) -> &GpuBuffer {
        &self.bufs[self.front]
    }

    /// The buffer the next `prefetch` should target.
    pub fn read_buf(&self) -> &GpuBuffer {
        &self.bufs[1 - self.front]
    }

    /// Rotates the pair (`compute_buffer ← read_buffer`, Fig. 7 lines 5–6).
    pub fn swap(&mut self) {
        self.front = 1 - self.front;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CamConfig;
    use cam_iostacks::{Rig, RigConfig};

    #[test]
    fn swap_rotates_roles() {
        let rig = Rig::new(RigConfig::default());
        let cam = CamContext::attach(&rig, CamConfig::default());
        let mut db = DoubleBuffer::new(&cam, 8192).unwrap();
        let a = db.compute_buf().addr();
        let b = db.read_buf().addr();
        assert_ne!(a, b);
        db.swap();
        assert_eq!(db.compute_buf().addr(), b);
        assert_eq!(db.read_buf().addr(), a);
        db.swap();
        assert_eq!(db.compute_buf().addr(), a);
    }

    #[test]
    fn oom_propagates() {
        let rig = Rig::new(RigConfig {
            gpu_mem: 1 << 20,
            ..RigConfig::default()
        });
        let cam = CamContext::attach(&rig, CamConfig::default());
        assert!(DoubleBuffer::new(&cam, 1 << 20).is_err());
    }
}
