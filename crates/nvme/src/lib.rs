//! # cam-nvme — simulated NVMe substrate
//!
//! The paper's testbed is 12× Intel P5510 NVMe SSDs driven from user space
//! (SPDK for CAM and the SPDK baseline, GPU-resident queues for BaM, the
//! kernel block layer for POSIX/libaio/io_uring). This crate provides the
//! NVMe layer those systems are built on, twice over:
//!
//! 1. **Functionally** — [`QueuePair`]s are real lock-free submission /
//!    completion rings with doorbell semantics, and [`NvmeDevice`] services
//!    them from real threads, moving real bytes between a
//!    [`BlockStore`](cam_blockdev::BlockStore) (the flash) and a
//!    [`DmaSpace`] (pinned GPU or host memory). The "no locks in the I/O
//!    path" property the paper inherits from SPDK holds: one queue pair per
//!    submitting thread, lock-free rings in between.
//!
//! 2. **In virtual time** — [`DesSsd`] reproduces the P5510's latency and
//!    bandwidth envelope (15 µs random-read / 82 µs random-write latency,
//!    per-command FTL overhead, bounded internal parallelism, a PCIe Gen4 ×4
//!    device link) on the `cam-simkit` event calendar, for the throughput
//!    figures.
//!
//! The two halves share the command vocabulary in [`spec`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod device;
mod mem;
mod model;
mod queue;
pub mod spec;

pub use device::{ControllerInfo, DeviceConfig, DeviceStats, NvmeDevice};
pub use mem::{DmaError, DmaRouter, DmaSpace, PinnedRegion};
pub use model::{DesSsd, SsdModel};
pub use queue::{QpStats, QueueError, QueuePair};
