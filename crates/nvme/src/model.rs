//! [`DesSsd`] — the discrete-event timing model of one NVMe SSD.
//!
//! The model has three parameters groups, all taken from the paper and the
//! P5510 datasheet it cites:
//!
//! * **command latency** — 15 µs random read, 82 µs random write (§ II-B,
//!   Issue 3 cites these for the P5510);
//! * **internal parallelism** — a bounded number of concurrently serviced
//!   commands per direction (flash channels / FTL queue); by Little's law
//!   this, together with latency, fixes the peak 4 KiB IOPS (~1.75 GB/s
//!   read, ~0.7 GB/s write per SSD — the per-SSD rates behind the paper's
//!   21 GB/s ceiling with 12 SSDs);
//! * **per-byte costs** — flash-channel transfer time (why throughput grows
//!   with access size: "more data are retrieved ... using a single SQE,
//!   [which] has a lower overhead in the flash translation layer", § IV-B)
//!   and a PCIe Gen4 ×4 device link that caps large-transfer throughput.
//!
//! A command's life: acquire a channel slot → `latency + bytes/channel_bw`
//! of service → DMA over the device link → completion callback. Host-side
//! fabric contention (the shared ×16 root complex) is layered on by callers.

use cam_simkit::{Dur, Pipe, Server, Sim};

use crate::spec::Opcode;

/// Timing parameters of one SSD.
#[derive(Clone, Copy, Debug)]
pub struct SsdModel {
    /// Base random-read command latency.
    pub read_latency: Dur,
    /// Base random-write command latency.
    pub write_latency: Dur,
    /// Concurrent read commands the controller services.
    pub read_channels: usize,
    /// Concurrent write commands the controller services.
    pub write_channels: usize,
    /// Per-channel flash read bandwidth, GB/s.
    pub channel_read_gbps: f64,
    /// Per-channel flash write bandwidth, GB/s.
    pub channel_write_gbps: f64,
    /// Device PCIe link bandwidth (Gen4 ×4 minus protocol overhead), GB/s.
    pub link_gbps: f64,
}

impl SsdModel {
    /// The Intel/Solidigm D7-P5510 3.84 TB, as configured in the paper.
    ///
    /// Calibration (Little's law, `channels / (latency + 4096/channel_bw)`):
    /// 4 KiB random read ≈ 427 K IOPS ≈ 1.75 GB/s, 4 KiB random write
    /// ≈ 166 K IOPS ≈ 0.68 GB/s — ×12 SSDs ≈ 21 / 8 GB/s aggregate, matching
    /// Fig. 8's measured ceiling and read/write asymmetry.
    pub fn p5510() -> Self {
        SsdModel {
            read_latency: Dur::us(15),
            write_latency: Dur::us(82),
            read_channels: 8,
            write_channels: 16,
            channel_read_gbps: 1.1,
            channel_write_gbps: 0.28,
            link_gbps: 6.6,
        }
    }

    /// Peak 4 KiB IOPS in the given direction (analytic, for assertions).
    pub fn peak_iops_4k(&self, op: Opcode) -> f64 {
        let (lat, ch, bw) = match op {
            Opcode::Write => (
                self.write_latency,
                self.write_channels,
                self.channel_write_gbps,
            ),
            _ => (
                self.read_latency,
                self.read_channels,
                self.channel_read_gbps,
            ),
        };
        let service_ns = lat.as_ns() as f64 + 4096.0 / bw;
        ch as f64 / service_ns * 1e9
    }
}

/// One SSD instantiated on a simulation's event calendar.
#[derive(Clone, Copy)]
pub struct DesSsd {
    model: SsdModel,
    read_srv: Server,
    write_srv: Server,
    link: Pipe,
}

impl DesSsd {
    /// Creates the SSD's resources on `sim`.
    pub fn new<W: 'static>(sim: &mut Sim<W>, model: SsdModel) -> Self {
        DesSsd {
            model,
            read_srv: sim.new_server(model.read_channels),
            write_srv: sim.new_server(model.write_channels),
            link: sim.new_pipe(model.link_gbps),
        }
    }

    /// The model parameters.
    pub fn model(&self) -> &SsdModel {
        &self.model
    }

    /// Submits a command of `bytes` (must be > 0 for reads/writes);
    /// `cb` fires when the data has crossed the device link.
    pub fn submit<W: 'static>(
        &self,
        sim: &mut Sim<W>,
        op: Opcode,
        bytes: u64,
        cb: impl FnOnce(&mut Sim<W>, &mut W) + 'static,
    ) {
        let (srv, lat, ch_bw) = match op {
            Opcode::Write => (
                self.write_srv,
                self.model.write_latency,
                self.model.channel_write_gbps,
            ),
            Opcode::Read => (
                self.read_srv,
                self.model.read_latency,
                self.model.channel_read_gbps,
            ),
            Opcode::Flush => {
                // A barrier: schedule behind current in-service work with a
                // token service time.
                (self.write_srv, Dur::us(1), self.model.channel_write_gbps)
            }
        };
        let service = lat + Dur::from_ns_f64(bytes as f64 / ch_bw);
        let link = self.link;
        sim.server_submit(srv, service, move |sim, w| {
            if bytes == 0 {
                cb(sim, w);
            } else {
                sim.pipe_transfer(link, bytes, cb);
            }
        });
    }

    /// Bytes moved over the device link so far.
    pub fn link_bytes<W: 'static>(&self, sim: &Sim<W>) -> u64 {
        sim.pipe_bytes(self.link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_simkit::Time;

    fn run_closed_loop(model: SsdModel, op: Opcode, bytes: u64, total: u32) -> (f64, f64) {
        // Closed-loop load generator with a deep queue: submit all commands
        // up front; the server capacity throttles concurrency like a QD-1024
        // ring would.
        let mut sim: Sim<u32> = Sim::new();
        let ssd = DesSsd::new(&mut sim, model);
        let mut done = 0u32;
        for _ in 0..total {
            ssd.submit(&mut sim, op, bytes, |_, done: &mut u32| *done += 1);
        }
        let end: Time = sim.run(&mut done);
        assert_eq!(done, total);
        let secs = end.as_secs_f64();
        let iops = total as f64 / secs;
        let gbps = total as f64 * bytes as f64 / end.as_ns() as f64;
        (iops, gbps)
    }

    #[test]
    fn p5510_4k_random_read_rate() {
        let m = SsdModel::p5510();
        let (iops, gbps) = run_closed_loop(m, Opcode::Read, 4096, 20_000);
        let expect = m.peak_iops_4k(Opcode::Read);
        assert!(
            (iops - expect).abs() / expect < 0.02,
            "iops {iops} vs analytic {expect}"
        );
        // ~1.75 GB/s per SSD.
        assert!((1.6..1.9).contains(&gbps), "gbps = {gbps}");
    }

    #[test]
    fn p5510_4k_random_write_rate() {
        let m = SsdModel::p5510();
        let (iops, gbps) = run_closed_loop(m, Opcode::Write, 4096, 10_000);
        let expect = m.peak_iops_4k(Opcode::Write);
        assert!(
            (iops - expect).abs() / expect < 0.02,
            "iops {iops} vs analytic {expect}"
        );
        // Writes are several times slower than reads (Fig. 8's asymmetry).
        assert!((0.6..0.8).contains(&gbps), "gbps = {gbps}");
    }

    #[test]
    fn throughput_grows_with_access_size_then_hits_link() {
        let m = SsdModel::p5510();
        let mut last = 0.0;
        let mut at_cap = 0;
        for shift in 9..=17 {
            // 512 B .. 128 KiB
            let (_, gbps) = run_closed_loop(m, Opcode::Read, 1u64 << shift, 4_000);
            assert!(
                gbps + 1e-6 >= last,
                "throughput decreased at {} B: {gbps} < {last}",
                1u64 << shift
            );
            if gbps > m.link_gbps * 0.95 {
                at_cap += 1;
            }
            last = gbps;
        }
        assert!(at_cap >= 1, "large transfers never approached the link cap");
        assert!(last <= m.link_gbps + 1e-6);
    }

    #[test]
    fn single_command_latency_is_base_plus_transfer() {
        let mut sim: Sim<u64> = Sim::new();
        let ssd = DesSsd::new(&mut sim, SsdModel::p5510());
        let mut finish = 0u64;
        ssd.submit(&mut sim, Opcode::Read, 4096, |sim, w: &mut u64| {
            *w = sim.now().as_ns()
        });
        sim.run(&mut finish);
        // 15 us + 4096/1.1 + 4096/6.6 ns ≈ 19.3 us.
        let expect = 15_000.0 + 4096.0 / 1.1 + 4096.0 / 6.6;
        assert!(
            (finish as f64 - expect).abs() < 10.0,
            "latency {finish} vs {expect}"
        );
    }

    #[test]
    fn flush_acts_as_barrier_token() {
        let mut sim: Sim<Vec<&'static str>> = Sim::new();
        let ssd = DesSsd::new(&mut sim, SsdModel::p5510());
        let mut order = Vec::new();
        ssd.submit(&mut sim, Opcode::Write, 4096, |_, w: &mut Vec<&str>| {
            w.push("write")
        });
        ssd.submit(&mut sim, Opcode::Flush, 0, |_, w: &mut Vec<&str>| {
            w.push("flush")
        });
        sim.run(&mut order);
        assert_eq!(order, vec!["flush", "write"]); // flush is short but doesn't block channels
        assert_eq!(ssd.link_bytes(&sim), 4096);
    }
}
