//! [`QueuePair`] — a submission queue + completion queue with doorbell
//! semantics.
//!
//! The queue pair is the unit of lock-free parallelism in both SPDK and CAM:
//! "dedicate a single NVMe queue pair to each NVMe device [per thread] —
//! the NVMe driver takes no locks in the I/O path" (§ III-A). Submission and
//! completion rings here are `crossbeam` array queues (single producer /
//! single consumer by convention), and submissions become visible to the
//! device only when the doorbell is rung, so batched submission — one
//! doorbell for a whole batch of SQEs, the key control-plane saving CAM
//! inherits from SPDK — is observable in the [`QpStats`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use cam_telemetry::{EventKind, FlightRecorder, HistogramHandle};
use crossbeam::queue::ArrayQueue;
use parking_lot::Mutex;

use crate::spec::{Cqe, Sqe};

/// Errors from queue-pair operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueError {
    /// The submission queue is full (in-flight commands == queue depth).
    SqFull,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::SqFull => write!(f, "submission queue full"),
        }
    }
}

impl std::error::Error for QueueError {}

/// Counters exported by a queue pair.
#[derive(Default)]
pub struct QpStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    doorbells: AtomicU64,
    peak_inflight: AtomicU64,
}

impl QpStats {
    /// Commands submitted (made visible to the device).
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Completions consumed by the host.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Doorbell rings. `submitted / doorbells` is the mean batch size.
    pub fn doorbells(&self) -> u64 {
        self.doorbells.load(Ordering::Relaxed)
    }

    /// High-water mark of commands in flight, sampled at each doorbell.
    /// A pipelined control plane shows values above the per-group batch
    /// size here; a blocking one never exceeds it.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_inflight.load(Ordering::Relaxed)
    }
}

/// A submission/completion ring pair of fixed depth.
///
/// Host-side methods ([`push_sqe`](Self::push_sqe), [`ring_doorbell`](Self::ring_doorbell),
/// [`poll_cqe`](Self::poll_cqe)) are meant to be called from one thread;
/// device-side methods ([`take_sqe`](Self::take_sqe), [`post_cqe`](Self::post_cqe))
/// from the device's service thread.
pub struct QueuePair {
    id: u16,
    depth: usize,
    /// Host-staged SQEs not yet visible to the device.
    staged: Mutex<Vec<Sqe>>,
    sq: ArrayQueue<Sqe>,
    cq: ArrayQueue<Cqe>,
    stats: QpStats,
    /// Telemetry: SQEs published per doorbell ring (batched-submission
    /// depth). Unset until attached; the disabled cost is one atomic load.
    doorbell_batch: OnceLock<HistogramHandle>,
    /// Event layer: emits a [`EventKind::QpDoorbell`] per ring once
    /// attached. Same cost model as `doorbell_batch`.
    recorder: OnceLock<Arc<FlightRecorder>>,
    /// The thread that claimed the host side via
    /// [`bind_host_owner`](Self::bind_host_owner), if any. Host-side entry
    /// points assert against it in debug builds, turning a sharding bug
    /// (two engine workers polling one queue pair) into a panic at the
    /// violation site instead of silent lock contention.
    host_owner: OnceLock<std::thread::ThreadId>,
}

impl QueuePair {
    /// Creates a queue pair with the given id and depth (≥ 1).
    pub fn new(id: u16, depth: usize) -> Arc<Self> {
        assert!(depth >= 1, "queue depth must be >= 1");
        Arc::new(QueuePair {
            id,
            depth,
            staged: Mutex::new(Vec::new()),
            sq: ArrayQueue::new(depth),
            cq: ArrayQueue::new(depth),
            stats: QpStats::default(),
            doorbell_batch: OnceLock::new(),
            recorder: OnceLock::new(),
            host_owner: OnceLock::new(),
        })
    }

    /// Claims the host side of this queue pair for the calling thread: from
    /// now on, `push_sqe` / `ring_doorbell` / `poll_cqe` assert (in debug
    /// builds) that they run on this thread. Idempotent from the owning
    /// thread; panics if another thread already holds the claim. Backends
    /// that legitimately drive a pair from changing threads (synchronous
    /// per-call stacks) simply never claim it.
    pub fn bind_host_owner(&self) {
        let me = std::thread::current().id();
        let owner = *self.host_owner.get_or_init(|| me);
        assert_eq!(
            owner, me,
            "queue pair {} host side is already owned by another thread",
            self.id
        );
    }

    #[inline]
    fn assert_host_owner(&self) {
        #[cfg(debug_assertions)]
        if let Some(owner) = self.host_owner.get() {
            assert_eq!(
                *owner,
                std::thread::current().id(),
                "queue pair {} host side driven off its owning thread",
                self.id
            );
        }
    }

    /// Telemetry: records SQEs-per-doorbell into `hist` from now on.
    /// One-shot — later calls are ignored.
    pub fn attach_telemetry(&self, hist: HistogramHandle) {
        let _ = self.doorbell_batch.set(hist);
    }

    /// Event layer: emits a doorbell event per ring from now on. One-shot —
    /// later calls are ignored.
    pub fn attach_recorder(&self, rec: Arc<FlightRecorder>) {
        let _ = self.recorder.set(rec);
    }

    /// Queue pair identifier.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Ring depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Commands submitted but not yet reaped.
    pub fn in_flight(&self) -> u64 {
        self.stats.submitted() - self.stats.completed()
    }

    /// Exported counters.
    pub fn stats(&self) -> &QpStats {
        &self.stats
    }

    /// Stages an SQE without making it visible. Fails if staging it would
    /// exceed the queue depth in flight once rung.
    pub fn push_sqe(&self, sqe: Sqe) -> Result<(), QueueError> {
        self.assert_host_owner();
        let mut staged = self.staged.lock();
        if self.in_flight() + staged.len() as u64 >= self.depth as u64 {
            return Err(QueueError::SqFull);
        }
        staged.push(sqe);
        Ok(())
    }

    /// Publishes all staged SQEs to the device in one doorbell write.
    /// Returns the number published.
    pub fn ring_doorbell(&self) -> usize {
        self.assert_host_owner();
        let mut staged = self.staged.lock();
        let n = staged.len();
        if n == 0 {
            return 0;
        }
        for sqe in staged.drain(..) {
            // Capacity is guaranteed by the in-flight check in `push_sqe`.
            self.sq
                .push(sqe)
                .expect("SQ overflow despite depth accounting");
        }
        let submitted = self.stats.submitted.fetch_add(n as u64, Ordering::Release) + n as u64;
        let now_inflight = submitted - self.stats.completed();
        self.stats
            .peak_inflight
            .fetch_max(now_inflight, Ordering::Relaxed);
        self.stats.doorbells.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = self.doorbell_batch.get() {
            h.record(n as u64);
        }
        if let Some(rec) = self.recorder.get() {
            rec.emit(EventKind::QpDoorbell {
                qp: self.id,
                sqes: n as u32,
            });
        }
        n
    }

    /// Convenience: stage one SQE and ring the doorbell immediately
    /// (per-command submission, the BaM/synchronous pattern).
    pub fn submit(&self, sqe: Sqe) -> Result<(), QueueError> {
        self.push_sqe(sqe)?;
        self.ring_doorbell();
        Ok(())
    }

    /// Convenience: stage a batch and ring once (the CAM/SPDK pattern).
    /// Returns how many were accepted before the queue filled.
    pub fn submit_batch<I: IntoIterator<Item = Sqe>>(&self, sqes: I) -> usize {
        let mut accepted = 0;
        for sqe in sqes {
            if self.push_sqe(sqe).is_err() {
                break;
            }
            accepted += 1;
        }
        self.ring_doorbell();
        accepted
    }

    /// Host side: reaps one completion if available.
    pub fn poll_cqe(&self) -> Option<Cqe> {
        self.assert_host_owner();
        let cqe = self.cq.pop()?;
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        Some(cqe)
    }

    /// Host side: reaps up to `max` completions into `out`; returns count.
    pub fn poll_cqes(&self, max: usize, out: &mut Vec<Cqe>) -> usize {
        let mut n = 0;
        while n < max {
            match self.poll_cqe() {
                Some(c) => {
                    out.push(c);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Device side: takes the next visible SQE, if any.
    pub fn take_sqe(&self) -> Option<Sqe> {
        self.sq.pop()
    }

    /// Device side: posts a completion.
    ///
    /// The depth invariant guarantees space; a full CQ indicates a protocol
    /// violation and panics.
    pub fn post_cqe(&self, cqe: Cqe) {
        self.cq
            .push(cqe)
            .expect("CQ overflow: more completions than in-flight commands");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Status;

    #[test]
    fn staged_sqes_invisible_until_doorbell() {
        let qp = QueuePair::new(0, 8);
        qp.push_sqe(Sqe::read(1, 0, 1, 0)).unwrap();
        qp.push_sqe(Sqe::read(2, 1, 1, 0)).unwrap();
        assert!(qp.take_sqe().is_none());
        assert_eq!(qp.ring_doorbell(), 2);
        assert_eq!(qp.take_sqe().unwrap().cid, 1);
        assert_eq!(qp.take_sqe().unwrap().cid, 2);
        assert!(qp.take_sqe().is_none());
        assert_eq!(qp.stats().doorbells(), 1);
        assert_eq!(qp.stats().submitted(), 2);
    }

    #[test]
    fn depth_limits_in_flight() {
        let qp = QueuePair::new(0, 2);
        qp.submit(Sqe::read(1, 0, 1, 0)).unwrap();
        qp.submit(Sqe::read(2, 0, 1, 0)).unwrap();
        assert_eq!(qp.submit(Sqe::read(3, 0, 1, 0)), Err(QueueError::SqFull));
        // Completing one frees a slot.
        let sqe = qp.take_sqe().unwrap();
        qp.post_cqe(Cqe {
            cid: sqe.cid,
            status: Status::Success,
        });
        assert!(qp.poll_cqe().is_some());
        qp.submit(Sqe::read(3, 0, 1, 0)).unwrap();
        assert_eq!(qp.in_flight(), 2);
        assert_eq!(qp.stats().peak_in_flight(), 2);
    }

    #[test]
    fn batch_submission_counts_one_doorbell() {
        let qp = QueuePair::new(0, 64);
        let n = qp.submit_batch((0..32).map(|i| Sqe::read(i, i as u64, 1, 0)));
        assert_eq!(n, 32);
        assert_eq!(qp.stats().doorbells(), 1);
        assert_eq!(qp.stats().submitted(), 32);
    }

    #[test]
    fn batch_submission_stops_at_capacity() {
        let qp = QueuePair::new(0, 4);
        let n = qp.submit_batch((0..10).map(|i| Sqe::read(i, 0, 1, 0)));
        assert_eq!(n, 4);
        assert_eq!(qp.in_flight(), 4);
    }

    #[test]
    fn poll_cqes_reaps_up_to_max() {
        let qp = QueuePair::new(0, 8);
        qp.submit_batch((0..6).map(|i| Sqe::read(i, 0, 1, 0)));
        while let Some(sqe) = qp.take_sqe() {
            qp.post_cqe(Cqe {
                cid: sqe.cid,
                status: Status::Success,
            });
        }
        let mut out = Vec::new();
        assert_eq!(qp.poll_cqes(4, &mut out), 4);
        assert_eq!(qp.poll_cqes(4, &mut out), 2);
        assert_eq!(out.len(), 6);
        assert_eq!(qp.in_flight(), 0);
    }

    #[test]
    fn host_owner_claim_is_idempotent_and_exclusive() {
        let qp = QueuePair::new(3, 8);
        // Unclaimed pairs accept any thread (the synchronous backends).
        qp.submit(Sqe::read(1, 0, 1, 0)).unwrap();
        qp.bind_host_owner();
        qp.bind_host_owner(); // same thread: fine
        qp.submit(Sqe::read(2, 0, 1, 0)).unwrap();
        // A second thread cannot take the claim…
        let other = Arc::clone(&qp);
        let claim = std::thread::spawn(move || other.bind_host_owner()).join();
        assert!(claim.is_err(), "foreign claim must panic");
        // …and (debug builds) cannot drive the host side either.
        #[cfg(debug_assertions)]
        {
            let other = Arc::clone(&qp);
            let drive = std::thread::spawn(move || {
                other.push_sqe(Sqe::read(9, 0, 1, 0)).unwrap();
            })
            .join();
            assert!(drive.is_err(), "foreign host-side call must panic");
        }
        // The device side stays thread-agnostic.
        let dev = Arc::clone(&qp);
        std::thread::spawn(move || while dev.take_sqe().is_some() {})
            .join()
            .unwrap();
    }

    #[test]
    fn cross_thread_producer_consumer() {
        let qp = QueuePair::new(0, 1024);
        let dev = Arc::clone(&qp);
        let server = std::thread::spawn(move || {
            let mut served = 0u32;
            while served < 1000 {
                if let Some(sqe) = dev.take_sqe() {
                    dev.post_cqe(Cqe {
                        cid: sqe.cid,
                        status: Status::Success,
                    });
                    served += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        let mut completed = 0u32;
        let mut next = 0u16;
        while completed < 1000 {
            while next < 1000 && qp.push_sqe(Sqe::read(next, next as u64, 1, 0)).is_ok() {
                next += 1;
            }
            qp.ring_doorbell();
            while qp.poll_cqe().is_some() {
                completed += 1;
            }
        }
        server.join().unwrap();
        assert_eq!(qp.stats().submitted(), 1000);
        assert_eq!(qp.stats().completed(), 1000);
    }
}
