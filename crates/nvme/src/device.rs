//! [`NvmeDevice`] — a functional simulated SSD serviced by real threads.
//!
//! Each device owns a [`BlockStore`] (the flash media) and a reference to a
//! [`DmaSpace`] (the pinned memory commands point into). Service threads
//! poll the device's queue pairs, execute commands — moving real bytes
//! between media and DMA space — and post completions. This is the
//! counterpart of the hardware NVMe controller + its DMA engines; everything
//! above it (SPDK-style user-space drivers, BaM-style GPU submission, CAM's
//! CPU control plane) drives these queues.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use cam_blockdev::{BlockError, BlockStore, Lba};
use cam_telemetry::{clock, EventKind, FlightRecorder, HistogramHandle, MetricsRegistry};
use parking_lot::RwLock;

use crate::mem::DmaSpace;
use crate::queue::QueuePair;
use crate::spec::{Cqe, Opcode, Sqe, Status};

/// Configuration of a functional device.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Device name, for diagnostics.
    pub name: String,
    /// Number of service threads (≥ 1). One models a single-LUN controller;
    /// more model internal parallelism.
    pub service_threads: usize,
    /// Maximum commands taken from one queue pair per service round.
    pub max_burst: usize,
    /// Optional wall-clock latency injected once per non-empty service
    /// round, to make compute/I/O overlap visible in real-time demos.
    /// `None` (the default) services at memory speed.
    pub burst_latency: Option<Duration>,
    /// Maximum data transfer size (MDTS) in blocks per command; larger
    /// commands complete with `InvalidField`, as a real controller would
    /// reject them.
    pub max_transfer_blocks: u32,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            name: "nvme0".to_string(),
            service_threads: 1,
            max_burst: 32,
            burst_latency: None,
            max_transfer_blocks: 1024,
        }
    }
}

/// Controller identification data (the Identify admin command's answer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControllerInfo {
    /// Model string.
    pub model: String,
    /// Namespace capacity in blocks.
    pub capacity_blocks: u64,
    /// Logical block size in bytes.
    pub block_size: u32,
    /// MDTS in blocks.
    pub max_transfer_blocks: u32,
    /// Queue pairs currently created.
    pub queue_pairs: usize,
}

/// Device counters (all monotonically increasing).
#[derive(Default)]
pub struct DeviceStats {
    reads: AtomicU64,
    writes: AtomicU64,
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    errors: AtomicU64,
}

impl DeviceStats {
    /// Completed read commands.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
    /// Completed write commands.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
    /// Bytes delivered to DMA space by reads.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.load(Ordering::Relaxed)
    }
    /// Bytes accepted from DMA space by writes.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes.load(Ordering::Relaxed)
    }
    /// Commands completed with a non-success status.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

/// Per-device registry handles, resolved once at attach time.
struct DeviceTelemetry {
    /// Per-command service latency (take SQE → CQE posted).
    cmd_ns: HistogramHandle,
    /// SQEs per doorbell ring, shared with this device's queue pairs.
    doorbell_batch: HistogramHandle,
}

struct Shared {
    config: DeviceConfig,
    store: Arc<dyn BlockStore>,
    dma: Arc<dyn DmaSpace>,
    qps: RwLock<Vec<Arc<QueuePair>>>,
    stop: AtomicBool,
    stats: DeviceStats,
    telemetry: OnceLock<DeviceTelemetry>,
    /// Event layer: `(device index, recorder)`; service threads emit a
    /// [`EventKind::NvmeCmd`] per executed command once attached.
    recorder: OnceLock<(u16, Arc<FlightRecorder>)>,
}

/// A running simulated NVMe SSD. Stops its service threads on drop.
pub struct NvmeDevice {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl NvmeDevice {
    /// Starts a device over the given media and DMA space.
    pub fn start(config: DeviceConfig, store: Arc<dyn BlockStore>, dma: Arc<dyn DmaSpace>) -> Self {
        assert!(
            config.service_threads >= 1,
            "need at least one service thread"
        );
        assert!(config.max_burst >= 1, "burst must be >= 1");
        let shared = Arc::new(Shared {
            config,
            store,
            dma,
            qps: RwLock::new(Vec::new()),
            stop: AtomicBool::new(false),
            stats: DeviceStats::default(),
            telemetry: OnceLock::new(),
            recorder: OnceLock::new(),
        });
        let workers = (0..shared.config.service_threads)
            .map(|tid| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{}-svc{}", sh.config.name, tid))
                    .spawn(move || service_loop(&sh, tid))
                    .expect("spawn device service thread")
            })
            .collect();
        NvmeDevice { shared, workers }
    }

    /// Creates and registers a new queue pair of the given depth.
    pub fn add_queue_pair(&self, depth: usize) -> Arc<QueuePair> {
        let mut qps = self.shared.qps.write();
        let qp = QueuePair::new(qps.len() as u16, depth);
        if let Some(t) = self.shared.telemetry.get() {
            qp.attach_telemetry(t.doorbell_batch.clone());
        }
        if let Some((_, rec)) = self.shared.recorder.get() {
            qp.attach_recorder(Arc::clone(rec));
        }
        qps.push(Arc::clone(&qp));
        qp
    }

    /// Registers this device's metrics in `reg` and starts recording:
    /// `cam_nvme_cmd_ns{device="<name>"}` (per-command service latency) and
    /// `cam_nvme_doorbell_batch{device="<name>"}` (SQEs per doorbell, wired
    /// into every current and future queue pair). One-shot; later calls are
    /// ignored. Before attachment the hot path pays one atomic load.
    pub fn attach_telemetry(&self, reg: &MetricsRegistry) {
        let name = &self.shared.config.name;
        let t = DeviceTelemetry {
            cmd_ns: reg.histogram(&format!("cam_nvme_cmd_ns{{device=\"{name}\"}}")),
            doorbell_batch: reg.histogram(&format!("cam_nvme_doorbell_batch{{device=\"{name}\"}}")),
        };
        for qp in self.shared.qps.read().iter() {
            qp.attach_telemetry(t.doorbell_batch.clone());
        }
        let _ = self.shared.telemetry.set(t);
    }

    /// Event layer: tags this device with `index` and emits one
    /// [`EventKind::NvmeCmd`] per executed command into `rec` from now on,
    /// wiring every current and future queue pair's doorbell events too.
    /// One-shot; later calls are ignored.
    pub fn attach_recorder(&self, index: u16, rec: Arc<FlightRecorder>) {
        for qp in self.shared.qps.read().iter() {
            qp.attach_recorder(Arc::clone(&rec));
        }
        let _ = self.shared.recorder.set((index, rec));
    }

    /// Media geometry.
    pub fn geometry(&self) -> cam_blockdev::BlockGeometry {
        self.shared.store.geometry()
    }

    /// Identify: controller/namespace data (the admin-queue handshake every
    /// user-space driver performs before creating I/O queues).
    pub fn identify(&self) -> ControllerInfo {
        let g = self.shared.store.geometry();
        ControllerInfo {
            model: self.shared.config.name.clone(),
            capacity_blocks: g.blocks,
            block_size: g.block_size,
            max_transfer_blocks: self.shared.config.max_transfer_blocks,
            queue_pairs: self.shared.qps.read().len(),
        }
    }

    /// Device counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.shared.stats
    }

    /// The media, for out-of-band dataset loading in tests and workloads.
    pub fn store(&self) -> &Arc<dyn BlockStore> {
        &self.shared.store
    }

    /// Stops service threads and waits for them to exit.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NvmeDevice {
    fn drop(&mut self) {
        self.stop();
    }
}

fn service_loop(sh: &Shared, tid: usize) {
    let mut scratch: Vec<u8> = Vec::new();
    let mut idle_rounds = 0u32;
    while !sh.stop.load(Ordering::Acquire) {
        let qps: Vec<Arc<QueuePair>> = {
            let guard = sh.qps.read();
            guard
                .iter()
                .enumerate()
                .filter(|(i, _)| i % sh.config.service_threads == tid)
                .map(|(_, qp)| Arc::clone(qp))
                .collect()
        };
        let mut serviced = 0;
        for qp in &qps {
            let mut burst = 0;
            while burst < sh.config.max_burst {
                match qp.take_sqe() {
                    Some(sqe) => {
                        if burst == 0 {
                            if let Some(lat) = sh.config.burst_latency {
                                std::thread::sleep(lat);
                            }
                        }
                        let status = execute(sh, &sqe, &mut scratch);
                        qp.post_cqe(Cqe {
                            cid: sqe.cid,
                            status,
                        });
                        burst += 1;
                    }
                    None => break,
                }
            }
            serviced += burst;
        }
        if serviced == 0 {
            idle_rounds += 1;
            // Yield quickly: on small hosts (including single-core CI boxes)
            // the submitting thread needs this core to make progress.
            if idle_rounds > 2 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        } else {
            idle_rounds = 0;
        }
    }
}

fn execute(sh: &Shared, sqe: &Sqe, scratch: &mut Vec<u8>) -> Status {
    let telemetry = sh.telemetry.get();
    let recorder = sh.recorder.get();
    let start_ns = (telemetry.is_some() || recorder.is_some()).then(clock::now_ns);
    let status = execute_inner(sh, sqe, scratch);
    if let (Some(t), Some(start)) = (telemetry, start_ns) {
        t.cmd_ns.record(clock::now_ns().saturating_sub(start));
    }
    if let (Some((device, rec)), Some(start)) = (recorder, start_ns) {
        rec.emit(EventKind::NvmeCmd {
            device: *device,
            // NVMe opcode bytes: 0 flush, 1 write, 2 read.
            opcode: match sqe.opcode {
                Opcode::Flush => 0,
                Opcode::Write => 1,
                Opcode::Read => 2,
            },
            ok: status == Status::Success,
            start_ns: start,
        });
    }
    match status {
        Status::Success => match sqe.opcode {
            Opcode::Read => {
                sh.stats.reads.fetch_add(1, Ordering::Relaxed);
                sh.stats
                    .read_bytes
                    .fetch_add(scratch.len() as u64, Ordering::Relaxed);
            }
            Opcode::Write => {
                sh.stats.writes.fetch_add(1, Ordering::Relaxed);
                sh.stats
                    .write_bytes
                    .fetch_add(scratch.len() as u64, Ordering::Relaxed);
            }
            Opcode::Flush => {}
        },
        _ => {
            sh.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
    status
}

fn execute_inner(sh: &Shared, sqe: &Sqe, scratch: &mut Vec<u8>) -> Status {
    match sqe.opcode {
        Opcode::Flush => {
            // The in-memory media is always durable; flush is a barrier that
            // completes after everything the service thread already executed.
            scratch.clear();
            Status::Success
        }
        Opcode::Read | Opcode::Write => {
            if sqe.nlb == 0 || sqe.nlb > sh.config.max_transfer_blocks {
                scratch.clear();
                return Status::InvalidField;
            }
            let bs = sh.store.geometry().block_size as usize;
            let bytes = sqe.nlb as usize * bs;
            scratch.clear();
            scratch.resize(bytes, 0);
            if sqe.opcode == Opcode::Read {
                match sh.store.read(Lba(sqe.slba), scratch) {
                    Ok(()) => {}
                    Err(e) => return block_err_status(e),
                }
                if sh.dma.dma_write(sqe.data_addr, scratch).is_err() {
                    return Status::DataTransferError;
                }
            } else {
                if sh.dma.dma_read(sqe.data_addr, scratch).is_err() {
                    return Status::DataTransferError;
                }
                match sh.store.write(Lba(sqe.slba), scratch) {
                    Ok(()) => {}
                    Err(e) => return block_err_status(e),
                }
            }
            Status::Success
        }
    }
}

fn block_err_status(e: BlockError) -> Status {
    match e {
        BlockError::OutOfRange { .. } => Status::LbaOutOfRange,
        BlockError::BadBuffer { .. } => Status::InvalidField,
        BlockError::Media {
            transient: true, ..
        } => Status::TransientMediaError,
        BlockError::Media {
            transient: false, ..
        } => Status::MediaError,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PinnedRegion;
    use cam_blockdev::{BlockGeometry, SparseMemStore};

    fn setup() -> (NvmeDevice, Arc<PinnedRegion>) {
        let store: Arc<dyn BlockStore> =
            Arc::new(SparseMemStore::new(BlockGeometry::new(512, 4096)));
        let dma = Arc::new(PinnedRegion::new(0x1_0000, 1 << 20));
        let dev = NvmeDevice::start(
            DeviceConfig::default(),
            store,
            Arc::clone(&dma) as Arc<dyn DmaSpace>,
        );
        (dev, dma)
    }

    fn wait_cqe(qp: &QueuePair) -> Cqe {
        loop {
            if let Some(c) = qp.poll_cqe() {
                return c;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn write_then_read_round_trips_through_device() {
        let (dev, dma) = setup();
        let qp = dev.add_queue_pair(64);
        // Place a pattern in "GPU memory", write it to blocks 10..14,
        // then read it back to a different DMA address.
        let pattern: Vec<u8> = (0..2048).map(|i| (i % 239) as u8).collect();
        dma.dma_write(0x1_0000, &pattern).unwrap();
        qp.submit(Sqe::write(1, 10, 4, 0x1_0000)).unwrap();
        assert!(wait_cqe(&qp).status.is_ok());
        qp.submit(Sqe::read(2, 10, 4, 0x1_0000 + 4096)).unwrap();
        assert!(wait_cqe(&qp).status.is_ok());
        let mut out = vec![0u8; 2048];
        dma.dma_read(0x1_0000 + 4096, &mut out).unwrap();
        assert_eq!(out, pattern);
        assert_eq!(dev.stats().reads(), 1);
        assert_eq!(dev.stats().writes(), 1);
        assert_eq!(dev.stats().read_bytes(), 2048);
    }

    #[test]
    fn out_of_range_command_fails_cleanly() {
        let (dev, _dma) = setup();
        let qp = dev.add_queue_pair(8);
        qp.submit(Sqe::read(1, 4095, 2, 0x1_0000)).unwrap();
        assert_eq!(wait_cqe(&qp).status, Status::LbaOutOfRange);
        assert_eq!(dev.stats().errors(), 1);
    }

    #[test]
    fn identify_reports_controller_data() {
        let (dev, _dma) = setup();
        let _qp = dev.add_queue_pair(8);
        let info = dev.identify();
        assert_eq!(info.capacity_blocks, 4096);
        assert_eq!(info.block_size, 512);
        assert_eq!(info.max_transfer_blocks, 1024);
        assert_eq!(info.queue_pairs, 1);
        assert_eq!(info.model, "nvme0");
    }

    #[test]
    fn commands_beyond_mdts_are_rejected() {
        let store: Arc<dyn BlockStore> =
            Arc::new(SparseMemStore::new(BlockGeometry::new(512, 8192)));
        let dma = Arc::new(PinnedRegion::new(0, 8 << 20));
        let dev = NvmeDevice::start(
            DeviceConfig {
                max_transfer_blocks: 4,
                ..DeviceConfig::default()
            },
            store,
            Arc::clone(&dma) as Arc<dyn DmaSpace>,
        );
        let qp = dev.add_queue_pair(8);
        qp.submit(Sqe::read(1, 0, 5, 0)).unwrap();
        assert_eq!(wait_cqe(&qp).status, Status::InvalidField);
        qp.submit(Sqe::read(2, 0, 4, 0)).unwrap();
        assert!(wait_cqe(&qp).status.is_ok());
    }

    #[test]
    fn zero_block_command_is_invalid() {
        let (dev, _dma) = setup();
        let qp = dev.add_queue_pair(8);
        qp.submit(Sqe::read(1, 0, 0, 0x1_0000)).unwrap();
        assert_eq!(wait_cqe(&qp).status, Status::InvalidField);
        drop(dev);
    }

    #[test]
    fn bad_dma_address_reports_transfer_error() {
        let (dev, _dma) = setup();
        let qp = dev.add_queue_pair(8);
        qp.submit(Sqe::read(1, 0, 1, 0xDEAD_BEEF_0000)).unwrap();
        assert_eq!(wait_cqe(&qp).status, Status::DataTransferError);
    }

    #[test]
    fn flush_completes() {
        let (dev, _dma) = setup();
        let qp = dev.add_queue_pair(8);
        qp.submit(Sqe::flush(9)).unwrap();
        let c = wait_cqe(&qp);
        assert_eq!(c.cid, 9);
        assert!(c.status.is_ok());
        drop(dev);
    }

    #[test]
    fn many_commands_across_two_queue_pairs_and_threads() {
        let store: Arc<dyn BlockStore> =
            Arc::new(SparseMemStore::new(BlockGeometry::new(512, 65536)));
        let dma = Arc::new(PinnedRegion::new(0, 8 << 20));
        let dev = NvmeDevice::start(
            DeviceConfig {
                service_threads: 2,
                ..DeviceConfig::default()
            },
            store,
            Arc::clone(&dma) as Arc<dyn DmaSpace>,
        );
        let qp0 = dev.add_queue_pair(256);
        let qp1 = dev.add_queue_pair(256);
        // 256 writes per QP, then read everything back.
        for (t, qp) in [&qp0, &qp1].into_iter().enumerate() {
            for i in 0..256u64 {
                let addr = (t as u64 * 256 + i) * 512;
                dma.fill(addr as usize, 512, (i % 250) as u8 + 1);
                qp.push_sqe(Sqe::write(i as u16, t as u64 * 4096 + i, 1, addr))
                    .unwrap();
            }
            qp.ring_doorbell();
        }
        let mut done = 0;
        while done < 512 {
            for qp in [&qp0, &qp1] {
                if let Some(c) = qp.poll_cqe() {
                    assert!(c.status.is_ok());
                    done += 1;
                }
            }
        }
        assert_eq!(dev.stats().writes(), 512);
        // Spot-check media content via a read command.
        qp0.submit(Sqe::read(999, 10, 1, 0x700_000)).unwrap();
        loop {
            if let Some(c) = qp0.poll_cqe() {
                assert!(c.status.is_ok());
                break;
            }
        }
        let mut out = vec![0u8; 512];
        dma.dma_read(0x700_000, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 11));
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let (mut dev, _dma) = setup();
        dev.stop();
        dev.stop();
        // Drop runs stop() again.
    }
}
