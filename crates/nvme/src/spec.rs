//! NVMe command vocabulary: submission/completion entries and status codes.
//!
//! Only the I/O command set fields the reproduction exercises are modelled;
//! layout-compatibility with the real 64-byte SQE is not a goal (nothing
//! here crosses a real PCIe bus), but the *information content* matches:
//! command id, opcode, starting LBA, block count, and the physical data
//! pointer that makes the direct SSD↔GPU data path possible.

/// I/O command opcode.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Opcode {
    /// Read `nlb` blocks starting at `slba` into the buffer at `data_addr`.
    Read,
    /// Write `nlb` blocks starting at `slba` from the buffer at `data_addr`.
    Write,
    /// Barrier: completes once prior commands on the queue pair are durable.
    Flush,
}

/// A submission-queue entry.
#[derive(Clone, Copy, Debug)]
pub struct Sqe {
    /// Command identifier, echoed in the matching [`Cqe`].
    pub cid: u16,
    /// Operation.
    pub opcode: Opcode,
    /// Starting logical block address.
    pub slba: u64,
    /// Number of logical blocks (1-based; zero is invalid except for Flush).
    pub nlb: u32,
    /// "Physical" address of the data buffer in some [`DmaSpace`]
    /// (pinned GPU memory for the direct path, host memory for staged paths).
    ///
    /// [`DmaSpace`]: crate::DmaSpace
    pub data_addr: u64,
}

impl Sqe {
    /// Builds a read command.
    pub fn read(cid: u16, slba: u64, nlb: u32, data_addr: u64) -> Self {
        Sqe {
            cid,
            opcode: Opcode::Read,
            slba,
            nlb,
            data_addr,
        }
    }

    /// Builds a write command.
    pub fn write(cid: u16, slba: u64, nlb: u32, data_addr: u64) -> Self {
        Sqe {
            cid,
            opcode: Opcode::Write,
            slba,
            nlb,
            data_addr,
        }
    }

    /// Builds a flush command.
    pub fn flush(cid: u16) -> Self {
        Sqe {
            cid,
            opcode: Opcode::Flush,
            slba: 0,
            nlb: 0,
            data_addr: 0,
        }
    }
}

/// Completion status.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Status {
    /// Command completed successfully.
    Success,
    /// The LBA range exceeded the namespace.
    LbaOutOfRange,
    /// A field was invalid (e.g. `nlb == 0` on a data command).
    InvalidField,
    /// The DMA address was outside every registered region.
    DataTransferError,
    /// The media failed the access and a retry will not help.
    MediaError,
    /// The media failed the access but the condition may clear: the host is
    /// expected to retry the command (bounded by its retry policy).
    TransientMediaError,
}

impl Status {
    /// Whether the command succeeded.
    #[inline]
    pub fn is_ok(self) -> bool {
        self == Status::Success
    }

    /// Whether a retry of the same command may succeed. Only transient
    /// media errors qualify; addressing and DMA failures are deterministic.
    #[inline]
    pub fn is_transient(self) -> bool {
        self == Status::TransientMediaError
    }
}

/// A completion-queue entry.
#[derive(Clone, Copy, Debug)]
pub struct Cqe {
    /// Command identifier from the originating [`Sqe`].
    pub cid: u16,
    /// Completion status.
    pub status: Status,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let r = Sqe::read(7, 100, 8, 0x1000);
        assert_eq!(r.opcode, Opcode::Read);
        assert_eq!((r.cid, r.slba, r.nlb, r.data_addr), (7, 100, 8, 0x1000));
        let w = Sqe::write(8, 0, 1, 0x2000);
        assert_eq!(w.opcode, Opcode::Write);
        let f = Sqe::flush(9);
        assert_eq!(f.opcode, Opcode::Flush);
        assert_eq!(f.nlb, 0);
    }

    #[test]
    fn status_predicate() {
        assert!(Status::Success.is_ok());
        assert!(!Status::LbaOutOfRange.is_ok());
    }

    #[test]
    fn only_transient_media_errors_are_retryable() {
        assert!(Status::TransientMediaError.is_transient());
        for s in [
            Status::Success,
            Status::LbaOutOfRange,
            Status::InvalidField,
            Status::DataTransferError,
            Status::MediaError,
        ] {
            assert!(!s.is_transient(), "{s:?} must not be retryable");
        }
    }
}
