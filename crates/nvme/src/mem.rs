//! DMA-addressable memory: the [`DmaSpace`] trait and [`PinnedRegion`].
//!
//! CAM's data plane works because GDRCopy (`nvidia_p2p_get_pages`) pins GPU
//! memory and exposes **physical** addresses that NVMe SQEs can target
//! directly (§ III-A, "Direct Data Path between GPU and SSD"). In this
//! reproduction a [`PinnedRegion`] plays that role: a contiguous range of
//! simulated physical address space, organised as page-locked buffers that
//! both "device DMA engines" (NVMe service threads) and "kernels" (GPU
//! thread-block closures) can access concurrently.

use std::fmt;

use parking_lot::Mutex;

/// Errors from DMA accesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DmaError {
    /// The access fell (partly) outside the region.
    OutOfBounds {
        /// Requested start address.
        addr: u64,
        /// Requested length.
        len: usize,
    },
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::OutOfBounds { addr, len } => {
                write!(f, "DMA access of {len} bytes at {addr:#x} out of bounds")
            }
        }
    }
}

impl std::error::Error for DmaError {}

/// An address space that simulated DMA engines can read and write.
pub trait DmaSpace: Send + Sync {
    /// Copies `buf.len()` bytes from the space at `addr` into `buf`.
    fn dma_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), DmaError>;

    /// Copies `data` into the space at `addr`.
    fn dma_write(&self, addr: u64, data: &[u8]) -> Result<(), DmaError>;

    /// Whether `[addr, addr + len)` lies inside the space.
    fn contains(&self, addr: u64, len: usize) -> bool;
}

/// A pinned, physically-contiguous memory region (the GDRCopy stand-in).
///
/// "After this procedure, we can know the start physical address of this big
/// chunk of memory, and the address is continuous. So, we can calculate the
/// physical address from any virtual address in this chunk." — § III-A.
/// `PinnedRegion` has exactly that contract: a base physical address plus
/// offset arithmetic. Internally the region is divided into page-sized
/// buffers, each behind its own lock, so concurrent DMA to different pages
/// proceeds in parallel.
pub struct PinnedRegion {
    base: u64,
    len: usize,
    page_size: usize,
    pages: Vec<Mutex<Box<[u8]>>>,
}

impl PinnedRegion {
    /// Default page size (matches the host page / NVMe MDTS granularity
    /// the paper's workloads use).
    pub const DEFAULT_PAGE: usize = 4096;

    /// Pins `len` bytes at physical base address `base` with 4 KiB pages.
    pub fn new(base: u64, len: usize) -> Self {
        Self::with_page_size(base, len, Self::DEFAULT_PAGE)
    }

    /// Pins `len` bytes with an explicit page size (power of two; `len`
    /// is rounded up to whole pages).
    pub fn with_page_size(base: u64, len: usize, page_size: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(len > 0, "region must be nonempty");
        let n_pages = len.div_ceil(page_size);
        let pages = (0..n_pages)
            .map(|_| Mutex::new(vec![0u8; page_size].into_boxed_slice()))
            .collect();
        PinnedRegion {
            base,
            len: n_pages * page_size,
            page_size,
            pages,
        }
    }

    /// Base physical address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Region length in bytes (whole pages).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is empty (never true; constructor forbids it).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical address of byte `offset` within the region.
    pub fn addr_of(&self, offset: usize) -> u64 {
        assert!(offset < self.len, "offset {offset} out of region");
        self.base + offset as u64
    }

    fn offset_of(&self, addr: u64, len: usize) -> Result<usize, DmaError> {
        if !self.contains(addr, len) {
            return Err(DmaError::OutOfBounds { addr, len });
        }
        Ok((addr - self.base) as usize)
    }

    /// Fills `[offset, offset+len)` with a byte value (test/debug helper).
    pub fn fill(&self, offset: usize, len: usize, value: u8) {
        let data = vec![value; len];
        self.dma_write(self.base + offset as u64, &data)
            .expect("fill within region");
    }
}

/// Routes DMA accesses to one of several disjoint regions by address —
/// the "IOMMU view" a device has when both pinned GPU memory and pinned
/// host bounce buffers are registered with it.
pub struct DmaRouter {
    regions: Vec<Arc<dyn DmaSpace>>,
}

/// `Arc` is needed for registration; re-exported via std.
use std::sync::Arc;

impl DmaRouter {
    /// Creates a router over the given regions. Ranges should be disjoint;
    /// the first region containing an address wins.
    pub fn new(regions: Vec<Arc<dyn DmaSpace>>) -> Self {
        DmaRouter { regions }
    }

    fn route(&self, addr: u64, len: usize) -> Result<&Arc<dyn DmaSpace>, DmaError> {
        self.regions
            .iter()
            .find(|r| r.contains(addr, len))
            .ok_or(DmaError::OutOfBounds { addr, len })
    }
}

impl DmaSpace for DmaRouter {
    fn dma_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), DmaError> {
        self.route(addr, buf.len())?.dma_read(addr, buf)
    }

    fn dma_write(&self, addr: u64, data: &[u8]) -> Result<(), DmaError> {
        self.route(addr, data.len())?.dma_write(addr, data)
    }

    fn contains(&self, addr: u64, len: usize) -> bool {
        self.regions.iter().any(|r| r.contains(addr, len))
    }
}

impl DmaSpace for PinnedRegion {
    fn dma_read(&self, addr: u64, buf: &mut [u8]) -> Result<(), DmaError> {
        let mut off = self.offset_of(addr, buf.len())?;
        let mut read = 0;
        while read < buf.len() {
            let page = off / self.page_size;
            let in_page = off % self.page_size;
            let n = (self.page_size - in_page).min(buf.len() - read);
            let p = self.pages[page].lock();
            buf[read..read + n].copy_from_slice(&p[in_page..in_page + n]);
            off += n;
            read += n;
        }
        Ok(())
    }

    fn dma_write(&self, addr: u64, data: &[u8]) -> Result<(), DmaError> {
        let mut off = self.offset_of(addr, data.len())?;
        let mut written = 0;
        while written < data.len() {
            let page = off / self.page_size;
            let in_page = off % self.page_size;
            let n = (self.page_size - in_page).min(data.len() - written);
            let mut p = self.pages[page].lock();
            p[in_page..in_page + n].copy_from_slice(&data[written..written + n]);
            off += n;
            written += n;
        }
        Ok(())
    }

    fn contains(&self, addr: u64, len: usize) -> bool {
        addr >= self.base
            && addr
                .checked_add(len as u64)
                .map(|end| end <= self.base + self.len as u64)
                .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trip_within_a_page() {
        let r = PinnedRegion::new(0x1000_0000, 8192);
        let data = [0xABu8; 100];
        r.dma_write(0x1000_0000 + 50, &data).unwrap();
        let mut out = [0u8; 100];
        r.dma_read(0x1000_0000 + 50, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn round_trip_across_pages() {
        let r = PinnedRegion::new(0, 16384);
        let data: Vec<u8> = (0..10_000).map(|i| (i % 253) as u8).collect();
        r.dma_write(1234, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        r.dma_read(1234, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn bounds_are_enforced() {
        let r = PinnedRegion::new(0x1000, 4096);
        let mut buf = [0u8; 8];
        assert!(r.dma_read(0xFF8, &mut buf).is_err()); // before base
        assert!(r.dma_read(0x1000 + 4090, &mut buf).is_err()); // past end
        assert!(r.dma_read(u64::MAX - 2, &mut buf).is_err()); // overflow-safe
        assert!(r.contains(0x1000, 4096));
        assert!(!r.contains(0x1000, 4097));
    }

    #[test]
    fn addr_of_matches_layout() {
        let r = PinnedRegion::new(0x2000, 4096);
        assert_eq!(r.addr_of(0), 0x2000);
        assert_eq!(r.addr_of(100), 0x2064);
    }

    #[test]
    fn rounds_len_up_to_pages() {
        let r = PinnedRegion::new(0, 5000);
        assert_eq!(r.len(), 8192);
        assert!(!r.is_empty());
    }

    #[test]
    fn concurrent_disjoint_dma() {
        let r = Arc::new(PinnedRegion::new(0, 64 * 4096));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let data = vec![t as u8 + 1; 8 * 4096];
                r.dma_write(t * 8 * 4096, &data).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..8u64 {
            let mut buf = vec![0u8; 8 * 4096];
            r.dma_read(t * 8 * 4096, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == t as u8 + 1));
        }
    }
}

#[cfg(test)]
mod router_tests {
    use super::*;

    #[test]
    fn router_dispatches_by_address_range() {
        let gpu = Arc::new(PinnedRegion::new(0x7000_0000, 8192));
        let host = Arc::new(PinnedRegion::new(0x2000_0000, 8192));
        let router = DmaRouter::new(vec![
            Arc::clone(&gpu) as Arc<dyn DmaSpace>,
            Arc::clone(&host) as Arc<dyn DmaSpace>,
        ]);
        router.dma_write(0x7000_0000, b"to-gpu").unwrap();
        router.dma_write(0x2000_0010, b"to-host").unwrap();
        let mut g = [0u8; 6];
        gpu.dma_read(0x7000_0000, &mut g).unwrap();
        assert_eq!(&g, b"to-gpu");
        let mut h = [0u8; 7];
        host.dma_read(0x2000_0010, &mut h).unwrap();
        assert_eq!(&h, b"to-host");
        // Reads route the same way.
        let mut back = [0u8; 6];
        router.dma_read(0x7000_0000, &mut back).unwrap();
        assert_eq!(&back, b"to-gpu");
    }

    #[test]
    fn router_rejects_unmapped_and_straddling_access() {
        let a = Arc::new(PinnedRegion::new(0x1000, 4096));
        let b = Arc::new(PinnedRegion::new(0x2000, 4096));
        let router = DmaRouter::new(vec![a as Arc<dyn DmaSpace>, b as Arc<dyn DmaSpace>]);
        let mut buf = [0u8; 16];
        assert!(router.dma_read(0x9_0000, &mut buf).is_err());
        // An access spanning the gapless boundary of two regions is not
        // contained by either single region and must be rejected.
        assert!(router.dma_read(0x1000 + 4090, &mut buf).is_err());
        assert!(router.contains(0x1000, 4096));
        assert!(!router.contains(0x1000, 4097 + 4096));
    }
}
