//! One generator per table/figure of the paper's evaluation. Each returns
//! the same rows/series the paper reports, computed from the calibrated
//! models and the DES microbenchmark engine (see `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured values).

use cam_gpu::GpuSpec;
use cam_hostos::{CpuModel, IoDir, IoStackKind, MemoryModel};
use cam_iostacks::des::{run_microbench, Engine, MicrobenchConfig};
use cam_nvme::spec::Opcode;
use cam_nvme::SsdModel;
use cam_workloads::gemm::{model_gemm, GemmEngine};
use cam_workloads::gnn::{fig9_speedup, model_epoch, GnnConfig, GnnModel, GnnSystem};
use cam_workloads::graph::GraphSpec;
use cam_workloads::sort::{model_sort, model_sort_read_gbps, SortEngine};

use crate::table::{f1, f2, pct, Table};

/// Runtime knobs the `repro` CLI threads into every generator. `None`
/// means "the experiment's historical default", so unflagged runs stay
/// bit-identical with committed expectations.
#[derive(Clone, Copy, Debug, Default)]
pub struct BenchParams {
    /// `--trials N`: measured trials for multi-trial experiments.
    pub trials: Option<usize>,
    /// `--seed S`: base seed for seeded workloads.
    pub seed: Option<u64>,
    /// `--perturb F`: SSD read-latency multiplier for the trajectory run
    /// (the regression gate's deliberate-perturbation knob).
    pub latency_scale: Option<f64>,
}

impl BenchParams {
    /// The trajectory-run parameters implied by these knobs.
    pub fn trial_params(&self) -> crate::trajectory_run::TrialParams {
        let mut p = crate::trajectory_run::TrialParams::default();
        if let Some(t) = self.trials {
            p.trials = t;
        }
        if let Some(s) = self.seed {
            p.seed = s;
        }
        if let Some(f) = self.latency_scale {
            p.latency_scale = f;
        }
        p
    }
}

/// An experiment generator: produces the figure/table's row data.
pub type Generator = fn(&BenchParams) -> Vec<Table>;

/// Every experiment, in paper order: `(id, description, generator)`.
///
/// The single source of truth for the CLI verb list — `registry()`, the
/// `repro` usage text, and the coverage test all derive from this const,
/// so a new verb registers in exactly one place.
pub static EXPERIMENTS: &[(&str, &str, Generator)] = &[
    ("tab1", "Architectural design comparison", tab1),
    ("fig1", "GIDS GNN training time breakdown (Paper100M)", fig1),
    (
        "fig2",
        "4KB random I/O throughput of software I/O stacks",
        fig2,
    ),
    (
        "fig3",
        "Read/write I/O time breakdown of software I/O stacks",
        fig3,
    ),
    (
        "fig4",
        "A100 SM utilization for BaM to saturate N SSDs",
        fig4,
    ),
    ("tab3", "Experimental platform", tab3),
    ("tab4", "Real-world datasets", tab4),
    ("tab5", "GNN experiment configuration", tab5),
    ("fig8", "I/O throughput: CAM vs BaM, SPDK, POSIX", fig8),
    ("fig9", "GNN training epoch time: CAM vs GIDS", fig9),
    ("fig10", "Sort and GEMM end-to-end comparison", fig10),
    ("tab6", "Lines of code in real-world applications", tab6),
    ("fig11", "CAM-Sync vs CAM-Async vs SPDK (sort)", fig11),
    ("fig12", "One CPU thread controlling multiple SSDs", fig12),
    ("fig13", "CPU instructions/cycles per request", fig13),
    (
        "fig14",
        "CPU memory bandwidth usage vs SSD bandwidth",
        fig14,
    ),
    ("fig15", "Throughput at 2 vs 16 memory channels", fig15),
    (
        "fig16",
        "SPDK staging throughput vs access granularity",
        fig16,
    ),
    (
        "issue2",
        "ANNS: cudaMemcpyAsync share of staged-path time",
        issue2,
    ),
    (
        "motiv",
        "Section II motivation: DLRM / LLM-offload baselines",
        motiv,
    ),
    (
        "bench",
        "Functional-engine telemetry benchmark (writes BENCH_repro.json)",
        bench,
    ),
    (
        "cache",
        "GPU-memory block cache: hit rate / NVMe-submission sweep (writes cache_trace.json)",
        cache,
    ),
    (
        "fidelity",
        "Model fidelity: DES driver vs functional driver on a matched workload (writes fidelity_trace.json)",
        fidelity,
    ),
    (
        "attribute",
        "Queue-delay attribution: doorbell->retire decomposition, threaded and DES drivers",
        attribute,
    ),
    (
        "serve",
        "Multi-tenant KV-cache serving: admission, DRR fairness, per-tenant SLO (writes the serving section of BENCH_repro.json)",
        serve,
    ),
    (
        "modes",
        "Engine mode x load sweep: blocking vs pipelined vs thread-per-core, plus idle park ratio (writes the mode_load section of BENCH_repro.json)",
        modes,
    ),
];

/// Every experiment, in paper order (a `Vec` view of [`EXPERIMENTS`] for
/// callers that iterate by value).
pub fn registry() -> Vec<(&'static str, &'static str, Generator)> {
    EXPERIMENTS.to_vec()
}

fn serve(p: &BenchParams) -> Vec<Table> {
    crate::serving_run::serve(p)
}

fn modes(p: &BenchParams) -> Vec<Table> {
    crate::mode_run::modes(p)
}

fn tab1(_p: &BenchParams) -> Vec<Table> {
    let mut t = Table::new(
        "Table I: Architectural design comparison",
        &["system", "initiated by", "control plane", "data plane"],
    );
    t.row(vec![
        "POSIX I/O".into(),
        "CPU".into(),
        "CPU OS kernel".into(),
        "SSD - CPU memory - GPU memory".into(),
    ]);
    t.row(vec![
        "BaM".into(),
        "GPU".into(),
        "GPU user I/O queue".into(),
        "SSD - GPU memory".into(),
    ]);
    t.row(vec![
        "CAM".into(),
        "GPU".into(),
        "CPU user I/O queue".into(),
        "SSD - GPU memory".into(),
    ]);
    vec![t]
}

fn fig1(_p: &BenchParams) -> Vec<Table> {
    let spec = GraphSpec::paper100m();
    let cfg = GnnConfig::default();
    let mut t = Table::new(
        "Fig. 1: GIDS (BaM-based) step breakdown, Paper100M, 12 SSDs",
        &[
            "model",
            "sample ms",
            "extract ms",
            "train ms",
            "extract %",
            "train %",
        ],
    );
    for model in GnnModel::ALL {
        let b = model_epoch(GnnSystem::Gids, &spec, model, &cfg, 12);
        t.row(vec![
            model.name().into(),
            f1(b.sample.as_secs_f64() * 1e3),
            f1(b.extract.as_secs_f64() * 1e3),
            f1(b.train.as_secs_f64() * 1e3),
            pct(b.extract_fraction()),
            pct(b.train_fraction()),
        ]);
    }
    t.note("paper: extraction 40-65% of step time, training 16-44%");
    vec![t]
}

fn fig2(_p: &BenchParams) -> Vec<Table> {
    let m = SsdModel::p5510();
    let mut out = Vec::new();
    for (dir, op, label) in [
        (IoDir::Read, Opcode::Read, "(a) 4KB random read"),
        (IoDir::Write, Opcode::Write, "(b) 4KB random write"),
    ] {
        let mut t = Table::new(
            format!("Fig. 2{label}, single P5510, KIOPS"),
            &["stack", "KIOPS"],
        );
        for engine in [
            Engine::Posix,
            Engine::Libaio,
            Engine::IoUringInt,
            Engine::IoUringPoll,
        ] {
            let mut cfg = MicrobenchConfig::new(engine, 1, dir);
            cfg.requests = 8_000;
            let r = run_microbench(cfg);
            t.row(vec![engine.name().into(), f1(r.kiops)]);
        }
        t.note(format!(
            "SSD maximum (dashed line): {:.1} KIOPS",
            m.peak_iops_4k(op) / 1e3
        ));
        out.push(t);
    }
    out
}

fn fig3(_p: &BenchParams) -> Vec<Table> {
    let mut out = Vec::new();
    for dir in [IoDir::Read, IoDir::Write] {
        let mut t = Table::new(
            format!("Fig. 3: per-request time by layer, {dir:?}"),
            &[
                "stack",
                "user ns",
                "filesystem ns",
                "io_map ns",
                "block I/O ns",
                "fs+io_map %",
            ],
        );
        for stack in [
            IoStackKind::Posix,
            IoStackKind::Libaio,
            IoStackKind::IoUringInt,
            IoStackKind::IoUringPoll,
        ] {
            let c = stack.layer_costs(dir);
            t.row(vec![
                stack.name().into(),
                c.user.as_ns().to_string(),
                c.filesystem.as_ns().to_string(),
                c.io_map.as_ns().to_string(),
                c.block_io.as_ns().to_string(),
                pct(c.avoidable_fraction()),
            ]);
        }
        t.note("paper: >34% of request time in io_map + LBA retrieval");
        out.push(t);
    }
    out
}

fn fig4(_p: &BenchParams) -> Vec<Table> {
    let g = GpuSpec::a100_80g();
    let mut t = Table::new(
        "Fig. 4: A100 SM utilization for BaM to saturate N SSDs",
        &["SSDs", "SM utilization", "CAM (for reference)"],
    );
    for n in 1..=12u32 {
        t.row(vec![n.to_string(), pct(g.bam_sm_utilization(n)), pct(0.0)]);
    }
    t.note("paper: \"when the number of SSDs exceeds five, BaM engages nearly all available SMs\"");
    vec![t]
}

fn tab3(_p: &BenchParams) -> Vec<Table> {
    let mut t = Table::new(
        "Table III: Experimental platform (simulated)",
        &["component", "specification"],
    );
    for (c, s) in [
        (
            "CPU",
            "Intel Xeon Gold 5320 (2 x 52 threads) @ 2.20 GHz [CpuModel]",
        ),
        ("CPU memory", "768 GB, 16 DDR4-3200 channels [MemoryModel]"),
        (
            "GPU",
            "80GB-PCIe-A100: 108 SMs, 2048 thr/SM [GpuSpec::a100_80g]",
        ),
        ("SSD", "12 x 3.84TB Intel P5510 [SsdModel::p5510]"),
        ("PCIe", "Gen4 x16, 21 GB/s measured ceiling"),
        (
            "S/W",
            "this reproduction: simulated NVMe/GPU substrate in Rust",
        ),
    ] {
        t.row(vec![c.into(), s.into()]);
    }
    vec![t]
}

fn tab4(_p: &BenchParams) -> Vec<Table> {
    let mut t = Table::new(
        "Table IV: Datasets",
        &["dataset", "nodes", "edges", "feature dim", "feature size"],
    );
    for spec in [GraphSpec::paper100m(), GraphSpec::igb_full()] {
        t.row(vec![
            spec.name.into(),
            spec.nodes.to_string(),
            spec.edges.to_string(),
            spec.feature_dim.to_string(),
            format!("{:.1} GB", spec.feature_store_bytes() as f64 / 1e9),
        ]);
    }
    t.note("synthetic scale-downs preserve avg degree, skew, and record size");
    vec![t]
}

fn tab5(_p: &BenchParams) -> Vec<Table> {
    let cfg = GnnConfig::default();
    let mut t = Table::new(
        "Table V: GNN experiment configuration",
        &["parameter", "setting"],
    );
    t.row(vec!["GNN task".into(), "node classification".into()]);
    t.row(vec![
        "sampling method".into(),
        "2-hop random neighbor sampling".into(),
    ]);
    t.row(vec![
        "sampling fan-outs".into(),
        format!("{}, {}", cfg.fanouts[0], cfg.fanouts[1]),
    ]);
    t.row(vec![
        "hidden layer dimension".into(),
        cfg.hidden_dim.to_string(),
    ]);
    t.row(vec!["batch size".into(), cfg.batch_size.to_string()]);
    vec![t]
}

fn fig8(_p: &BenchParams) -> Vec<Table> {
    let engines = [Engine::Cam, Engine::Spdk, Engine::Bam, Engine::Posix];
    let mut out = Vec::new();
    // (a)/(c): 4 KiB throughput vs number of SSDs.
    for dir in [IoDir::Read, IoDir::Write] {
        let sub = if dir == IoDir::Read { "(a)" } else { "(c)" };
        let mut t = Table::new(
            format!("Fig. 8{sub}: 4KB random {dir:?} GB/s vs SSD count"),
            &["SSDs", "CAM", "SPDK", "BaM", "POSIX I/O"],
        );
        for n in [1usize, 2, 4, 8, 12] {
            let mut row = vec![n.to_string()];
            for e in engines {
                let mut cfg = MicrobenchConfig::new(e, n, dir);
                cfg.requests = (n as u64) * 6_000;
                row.push(f2(run_microbench(cfg).gbps));
            }
            t.row(row);
        }
        out.push(t);
    }
    // (b)/(d): throughput vs access granularity at 12 SSDs.
    for dir in [IoDir::Read, IoDir::Write] {
        let sub = if dir == IoDir::Read { "(b)" } else { "(d)" };
        let mut t = Table::new(
            format!("Fig. 8{sub}: {dir:?} GB/s vs granularity, 12 SSDs"),
            &["granularity", "CAM", "SPDK", "BaM", "POSIX I/O"],
        );
        for shift in [9u32, 10, 12, 14, 17] {
            let gran = 1u64 << shift;
            let mut row = vec![format!("{} B", gran)];
            for e in engines {
                let mut cfg = MicrobenchConfig::new(e, 12, dir);
                cfg.granularity = gran;
                cfg.requests = 12 * 1_500;
                row.push(f2(run_microbench(cfg).gbps));
            }
            t.row(row);
        }
        out.push(t);
    }
    out
}

fn fig9(_p: &BenchParams) -> Vec<Table> {
    let cfg = GnnConfig::default();
    let mut out = Vec::new();
    for spec in [GraphSpec::paper100m(), GraphSpec::igb_full()] {
        let mut t = Table::new(
            format!("Fig. 9: GNN epoch time on {}, 12 SSDs", spec.name),
            &["model", "GIDS s/epoch", "CAM s/epoch", "speedup"],
        );
        for model in GnnModel::ALL {
            let gids = model_epoch(GnnSystem::Gids, &spec, model, &cfg, 12);
            let cam = model_epoch(GnnSystem::Cam, &spec, model, &cfg, 12);
            t.row(vec![
                model.name().into(),
                f1(gids.epoch().as_secs_f64()),
                f1(cam.epoch().as_secs_f64()),
                format!("{:.2}x", fig9_speedup(&spec, model, &cfg, 12)),
            ]);
        }
        out.push(t);
    }
    out
}

fn fig10(_p: &BenchParams) -> Vec<Table> {
    let mut out = Vec::new();
    // (a) mergesort.
    let mut t = Table::new(
        "Fig. 10(a): mergesort time, 8Gi int32 (32 GB), 12 SSDs",
        &["system", "time s", "vs CAM"],
    );
    let cam = model_sort(SortEngine::CamSync, 8 << 30, 12).as_secs_f64();
    for (e, name) in [
        (SortEngine::CamSync, "CAM"),
        (SortEngine::Spdk, "SPDK"),
        (SortEngine::Posix, "POSIX I/O"),
    ] {
        let s = model_sort(e, 8 << 30, 12).as_secs_f64();
        t.row(vec![name.into(), f1(s), format!("{:.2}x", s / cam)]);
    }
    t.note("paper: CAM up to 1.5x faster than POSIX, similar to SPDK");
    out.push(t);
    // (b)+(c) GEMM.
    let mut t = Table::new(
        "Fig. 10(b,c): GEMM 65536^2 f32, 4096^2 tiles, 12 SSDs",
        &["system", "I/O GB/s", "time s", "vs CAM"],
    );
    let camr = model_gemm(GemmEngine::Cam, 65_536, 4_096, 12);
    for (e, name) in [
        (GemmEngine::Cam, "CAM"),
        (GemmEngine::Bam, "BaM"),
        (GemmEngine::Gds, "GDS"),
        (GemmEngine::Spdk, "SPDK"),
    ] {
        let r = model_gemm(e, 65_536, 4_096, 12);
        t.row(vec![
            name.into(),
            f2(r.io_gbps),
            f1(r.time.as_secs_f64()),
            format!("{:.2}x", r.time.as_secs_f64() / camr.time.as_secs_f64()),
        ]);
    }
    t.note("paper: GDS only 0.8 GB/s with 12 SSDs; CAM nearly 20 GB/s; CAM up to 1.84x vs BaM");
    out.push(t);
    out
}

fn tab6(_p: &BenchParams) -> Vec<Table> {
    let mut t = Table::new(
        "Table VI: lines of code per workload",
        &[
            "workload",
            "paper baseline LoC",
            "paper CAM LoC",
            "this repo's CAM example LoC",
        ],
    );
    let gnn = crate::count_loc(include_str!("../../../examples/gnn_training.rs"));
    let sort = crate::count_loc(include_str!("../../../examples/out_of_core_sort.rs"));
    let gemm = crate::count_loc(include_str!("../../../examples/out_of_core_gemm.rs"));
    t.row(vec![
        "GNN training".into(),
        "BaM: 65".into(),
        "66".into(),
        gnn.to_string(),
    ]);
    t.row(vec![
        "Sort".into(),
        "POSIX: 644".into(),
        "510".into(),
        sort.to_string(),
    ]);
    t.row(vec![
        "GEMM".into(),
        "GDS: 158 / BaM: 165".into(),
        "130".into(),
        gemm.to_string(),
    ]);
    t.note("our examples include dataset generation and verification; the paper counts only the I/O core loop");
    vec![t]
}

fn fig11(_p: &BenchParams) -> Vec<Table> {
    let mut out = Vec::new();
    let mut t = Table::new(
        "Fig. 11(a): sort-phase read throughput GB/s vs SSD count",
        &["SSDs", "SPDK", "CAM-Async", "CAM-Sync"],
    );
    for n in [2usize, 4, 8, 12] {
        t.row(vec![
            n.to_string(),
            f2(model_sort_read_gbps(SortEngine::Spdk, n)),
            f2(model_sort_read_gbps(SortEngine::CamAsync, n)),
            f2(model_sort_read_gbps(SortEngine::CamSync, n)),
        ]);
    }
    out.push(t);
    let mut t = Table::new(
        "Fig. 11(b): sort execution time (s) vs dataset size, 12 SSDs",
        &["elements", "SPDK", "CAM-Async", "CAM-Sync"],
    );
    for gi in [2u64, 4, 8, 16] {
        let elems = gi << 30;
        t.row(vec![
            format!("{gi} Gi"),
            f1(model_sort(SortEngine::Spdk, elems, 12).as_secs_f64()),
            f1(model_sort(SortEngine::CamAsync, elems, 12).as_secs_f64()),
            f1(model_sort(SortEngine::CamSync, elems, 12).as_secs_f64()),
        ]);
    }
    t.note("paper: CAM-Sync achieves nearly the same performance as CAM-Async/SPDK");
    out.push(t);
    out
}

fn fig12(_p: &BenchParams) -> Vec<Table> {
    let mut out = Vec::new();
    for dir in [IoDir::Read, IoDir::Write] {
        let mut t = Table::new(
            format!("Fig. 12: {dir:?} GB/s, 12 SSDs, varying threads"),
            &["threads", "SSDs/thread", "GB/s", "vs 12 threads"],
        );
        let mut base = 0.0;
        for threads in [12usize, 6, 4, 3, 2, 1] {
            let mut cfg = MicrobenchConfig::new(Engine::Cam, 12, dir);
            cfg.cam_threads = threads;
            cfg.requests = 12 * 6_000;
            let g = run_microbench(cfg).gbps;
            if threads == 12 {
                base = g;
            }
            t.row(vec![
                threads.to_string(),
                format!("{:.0}", 12.0 / threads as f64),
                f2(g),
                pct(g / base),
            ]);
        }
        t.note("paper: 2 SSDs/thread free; 4 SSDs/thread ~75%");
        out.push(t);
    }
    out
}

fn fig13(_p: &BenchParams) -> Vec<Table> {
    let cpu = CpuModel::xeon_gold_5320();
    let m = SsdModel::p5510();
    let mut out = Vec::new();
    for (dir, op) in [(IoDir::Read, Opcode::Read), (IoDir::Write, Opcode::Write)] {
        let device_rate = m.peak_iops_4k(op);
        let mut t = Table::new(
            format!("Fig. 13: CPU cost per 4KB {dir:?} request"),
            &["stack", "instructions", "cycles", "IPC"],
        );
        for stack in [IoStackKind::Cam, IoStackKind::Spdk, IoStackKind::Libaio] {
            let rate = stack.max_rate_per_core(dir).min(device_rate);
            let c = cpu.per_request(stack, dir, rate);
            t.row(vec![
                stack.name().into(),
                c.instructions.to_string(),
                c.cycles.to_string(),
                f2(c.instructions as f64 / c.cycles as f64),
            ]);
        }
        t.note("paper: CAM/SPDK fewer instructions and far fewer cycles than libaio; polling has high IPC");
        out.push(t);
    }
    out
}

fn fig14(_p: &BenchParams) -> Vec<Table> {
    let mem = MemoryModel::xeon_16ch();
    let mut t = Table::new(
        "Fig. 14: CPU memory traffic (GB/s) vs delivered SSD bandwidth",
        &["SSDs", "SSD GB/s", "SPDK mem GB/s", "CAM mem GB/s"],
    );
    for n in [1usize, 2, 4, 8, 12] {
        let mut cfg = MicrobenchConfig::new(Engine::Cam, n, IoDir::Read);
        cfg.requests = (n as u64) * 4_000;
        let ssd = run_microbench(cfg).gbps;
        t.row(vec![
            n.to_string(),
            f2(ssd),
            f2(mem.traffic_gbps(ssd, true)),
            f2(mem.traffic_gbps(ssd, false)),
        ]);
    }
    t.note("paper: SPDK's memory traffic is ~2x the SSD bandwidth; CAM's grows much slower");
    vec![t]
}

fn fig15(_p: &BenchParams) -> Vec<Table> {
    let mut out = Vec::new();
    for dir in [IoDir::Read, IoDir::Write] {
        let mut t = Table::new(
            format!("Fig. 15: {dir:?} GB/s at limited memory channels, 12 SSDs"),
            &["system", "2 channels", "16 channels"],
        );
        for e in [Engine::Spdk, Engine::Cam] {
            let mut row = vec![e.name().to_string()];
            for ch in [2u32, 16] {
                let mut cfg = MicrobenchConfig::new(e, 12, dir);
                cfg.mem_channels = ch;
                cfg.requests = 12 * 4_000;
                row.push(f2(run_microbench(cfg).gbps));
            }
            t.row(row);
        }
        t.note("paper: SPDK degrades when memory bandwidth is limited; CAM is unaffected");
        out.push(t);
    }
    out
}

fn fig16(_p: &BenchParams) -> Vec<Table> {
    let mut t = Table::new(
        "Fig. 16: staged (SPDK) GB/s vs granularity, non-contiguous destination, 12 SSDs",
        &["granularity", "SPDK", "CAM"],
    );
    for (gran, reqs) in [
        (4u64 << 10, 24_000u64),
        (64 << 10, 12_000),
        (1 << 20, 2_400),
        (16 << 20, 600),
        (128 << 20, 240),
    ] {
        let mut spdk = MicrobenchConfig::new(Engine::Spdk, 12, IoDir::Read);
        spdk.granularity = gran;
        spdk.requests = reqs;
        spdk.noncontig_dest = true;
        let mut cam = MicrobenchConfig::new(Engine::Cam, 12, IoDir::Read);
        cam.granularity = gran.min(1 << 20); // CAM scatters at block granularity
        cam.requests = reqs.max(2_400);
        t.row(vec![
            if gran >= 1 << 20 {
                format!("{} MB", gran >> 20)
            } else {
                format!("{} KB", gran >> 10)
            },
            f2(run_microbench(spdk).gbps),
            f2(run_microbench(cam).gbps),
        ]);
    }
    t.note("paper: at 4KB the staged path delivers 1.3 GB/s, 93.5% below CAM");
    vec![t]
}

fn issue2(_p: &BenchParams) -> Vec<Table> {
    let mut t = Table::new(
        "Issue 2 (§ II-A): cudaMemcpyAsync share of staged ANNS time, 12 SSDs",
        &["granularity", "copy share"],
    );
    for gran in [4u64 << 10, 16 << 10, 64 << 10, 1 << 20, 16 << 20] {
        t.row(vec![
            format!("{} B", gran),
            pct(cam_workloads::anns::staged_copy_fraction(gran, 12)),
        ]);
    }
    t.note("paper: \"cudaMemcpyAsync costs 78% of the total time\" at 4KB; CAM's direct path pays none");
    vec![t]
}

fn motiv(_p: &BenchParams) -> Vec<Table> {
    use cam_workloads::dlrm::{model_iteration, DlrmSystem};
    use cam_workloads::llm::{model_step, LlmSystem};
    let mut t = Table::new(
        "Section II motivation: storage-bound training baselines, 12 SSDs",
        &[
            "system",
            "I/O phase share",
            "baseline time",
            "CAM time",
            "speedup",
        ],
    );
    let d_base = model_iteration(DlrmSystem::TorchRec, 4096, 26, 20, 128, 12);
    let d_cam = model_iteration(DlrmSystem::Cam, 4096, 26, 20, 128, 12);
    t.row(vec![
        "DLRM (TorchRec-style)".into(),
        pct(d_base.embedding_fraction()),
        format!("{:.1} ms/iter", d_base.iteration.as_secs_f64() * 1e3),
        format!("{:.1} ms/iter", d_cam.iteration.as_secs_f64() * 1e3),
        format!(
            "{:.2}x",
            d_base.iteration.as_ns() as f64 / d_cam.iteration.as_ns() as f64
        ),
    ]);
    let l_base = model_step(LlmSystem::ZeroInfinity, 100.0, 12);
    let l_cam = model_step(LlmSystem::Cam, 100.0, 12);
    t.row(vec![
        "LLM 100B (ZeRO-Infinity-style)".into(),
        pct(l_base.update_fraction()),
        format!("{:.1} s/step", l_base.step.as_secs_f64()),
        format!("{:.1} s/step", l_cam.step.as_secs_f64()),
        format!(
            "{:.2}x",
            l_base.step.as_ns() as f64 / l_cam.step.as_ns() as f64
        ),
    ]);
    t.note("paper: TorchRec spends 75% of each iteration on embedding access at ~64% bandwidth;");
    t.note("ZeRO-Infinity spends >80% of time in the update phase at ~70% bandwidth");
    vec![t]
}

fn bench(p: &BenchParams) -> Vec<Table> {
    use crate::telemetry_run::{bench_json, run_recorded};
    use crate::trajectory_run::{
        current_git_sha, merge_bench_json, run_trajectory, trajectory_entry_json,
    };
    use cam_telemetry::{critical, FlightRecorder, Stage};
    use std::sync::Arc;

    let recorder = Arc::new(FlightRecorder::new());
    let run = run_recorded(20, 64, Some(recorder));
    // The cache sweep rides along so BENCH_repro.json carries hit rate,
    // coalesced misses, and readahead accuracy per workload (S6), and the
    // pipelining experiment proves in-flight depth > 1 per SSD with lower
    // read latency than the blocking baseline.
    let reports = crate::cache_run::run_cache_sweep(&[256, 2048]);
    let pipeline = crate::pipeline_run::run_pipeline_experiment(16);
    // The fidelity comparison rides along so BENCH_repro.json records the
    // DES-vs-functional decision agreement and timing trends.
    let fidelity = crate::fidelity_run::run_fidelity_experiment(8);
    // The SLO experiment rides along so BENCH_repro.json records burn rates
    // and the per-driver lane-health transition sequences under a transient
    // overload.
    let slo = crate::health_run::run_health_experiment();
    let fresh = bench_json(
        &run,
        Some(&reports),
        Some(&pipeline),
        Some(&fidelity),
        Some(&slo),
    );
    // The perf trajectory rides along: a seeded multi-trial DES run whose
    // headline metrics append to the `trajectory` array. Merging (instead
    // of a plain write) preserves prior runs' trajectory entries and any
    // sections this binary version no longer generates.
    let tp = p.trial_params();
    let trajectory = run_trajectory(&tp);
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = trajectory_entry_json(&trajectory, &current_git_sha(), unix_time);
    let path = "BENCH_repro.json";
    let prev = std::fs::read_to_string(path).ok();
    let json = merge_bench_json(prev.as_deref(), &fresh, &entry);
    match std::fs::write(path, &json) {
        Ok(()) => {}
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }

    let mut t = Table::new(
        "Functional engine: batch-lifecycle stage latency (instrumented run)",
        &["op", "stage", "p50 (ns)", "p99 (ns)", "samples"],
    );
    for op in ["read", "write"] {
        for stage in Stage::ALL {
            let name = format!("cam_stage_ns{{op=\"{op}\",stage=\"{}\"}}", stage.name());
            let (p50, p99, count) = run
                .snapshot
                .histogram(&name)
                .map(|h| (h.p50, h.p99, h.count))
                .unwrap_or((0, 0, 0));
            t.row(vec![
                op.into(),
                stage.name().into(),
                p50.to_string(),
                p99.to_string(),
                count.to_string(),
            ]);
        }
    }
    t.note(format!(
        "{} requests in {:.2} ms: {} GB/s, {} K IOPS; full report in {path}",
        run.requests,
        run.elapsed_ns as f64 / 1e6,
        f2(run.gbps()),
        f1(run.kiops()),
    ));
    t.note(format!(
        "slo (transient overload): burn short {}/{} (functional/des), \
         health sequences match: {}, overloaded->recovered: {}",
        f1(slo.functional.burn_short),
        f1(slo.des.burn_short),
        slo.sequences_match(),
        slo.overloaded_then_recovered(),
    ));
    t.note(format!(
        "trajectory: {} trials (seed {:#x}, scale {:.2}): p50 {} ns, p99 {} ns, \
         dominant {}; entry appended to {path}",
        tp.trials,
        tp.seed,
        tp.latency_scale,
        trajectory.p50_ns,
        trajectory.p99_ns,
        cam_telemetry::attribution::component_name(trajectory.decomposition.dominant_mean()),
    ));

    // Critical-path attribution from the event timeline: where each
    // channel's doorbell→retire latency actually went (mean ns per batch).
    let report = critical::analyze(&run.events);
    let mut cp = Table::new(
        "Critical path: per-channel doorbell->retire attribution (mean ns/batch)",
        &[
            "channel", "batches", "pickup", "dispatch", "submit", "complete", "retire", "dominant",
        ],
    );
    for ch in &report.channels {
        let mean = |i: usize| ch.stage_ns[i].checked_div(ch.batches).unwrap_or(0);
        cp.row(vec![
            ch.channel.to_string(),
            ch.batches.to_string(),
            mean(0).to_string(),
            mean(1).to_string(),
            mean(2).to_string(),
            mean(3).to_string(),
            mean(4).to_string(),
            format!(
                "{} ({:.0}%)",
                ch.dominant().name(),
                ch.dominant_fraction() * 100.0
            ),
        ]);
    }

    // Multi-channel pipelining: the reactor's in-flight depth and its
    // latency win over the blocking group-at-a-time baseline.
    let mut pl = Table::new(
        "Pipelining: per-SSD in-flight depth and mean read latency vs. blocking baseline",
        &[
            "mode",
            "mean depth/ssd",
            "peak depth/ssd",
            "mean read (us)",
            "batches",
        ],
    );
    for m in [&pipeline.pipelined, &pipeline.blocking] {
        let depth = m
            .inflight_mean
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join("/");
        let peak = m
            .inflight_peak
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("/");
        pl.row(vec![
            if m.pipelined { "pipelined" } else { "blocking" }.into(),
            depth,
            peak,
            format!("{:.1}", m.mean_read_ns as f64 / 1e3),
            m.batches.to_string(),
        ]);
    }
    pl.note(format!(
        "4 channels x 4 SSDs, 1 worker; read latency speedup {:.2}x",
        pipeline.speedup()
    ));
    vec![t, cp, pl]
}

fn cache(p: &BenchParams) -> Vec<Table> {
    use crate::cache_run::{
        run_cache_sweep_seeded, run_cached_seeded, CacheWorkload, DEFAULT_CACHE_SEED,
    };
    use cam_telemetry::trace::{chrome_trace, validate_chrome_trace};
    use cam_telemetry::FlightRecorder;
    use std::sync::Arc;

    let seed = p.seed.unwrap_or(DEFAULT_CACHE_SEED);
    let reports = run_cache_sweep_seeded(&[256, 2048], seed);
    let mut t = Table::new(
        "Block cache: cache size x workload sweep (cached vs uncached runs)",
        &[
            "workload",
            "slots",
            "accesses",
            "uncached subs",
            "cached subs",
            "ratio",
            "hit rate",
            "coalesced",
            "ra accuracy",
            "read mean delta",
        ],
    );
    for r in &reports {
        t.row(vec![
            r.workload.into(),
            r.slots.to_string(),
            r.accesses.to_string(),
            r.uncached_submissions.to_string(),
            r.cached_submissions.to_string(),
            format!("{:.2}x", r.submission_ratio()),
            pct(r.cache_hit_rate),
            r.coalesced_misses.to_string(),
            match r.readahead_accuracy {
                Some(a) => pct(a),
                None => "-".into(),
            },
            format!(
                "{:+.0}%",
                (r.cached_read_mean_ns / r.uncached_read_mean_ns.max(1.0) - 1.0) * 100.0
            ),
        ]);
    }
    t.note("subs = NVMe commands submitted; cached runs include readahead traffic");

    // A recorded cached run, exported through the Chrome-trace pipeline and
    // self-validated before writing — the cache events (access / evict /
    // readahead / flush instants) must satisfy the PR-2 trace validator.
    let rec = Arc::new(FlightRecorder::new());
    let _ = run_cached_seeded(CacheWorkload::SeqScan, 1024, seed, Some(Arc::clone(&rec)));
    let trace = chrome_trace(&rec.snapshot(), &rec.thread_names());
    let path = "cache_trace.json";
    match validate_chrome_trace(&trace) {
        Ok(summary) => {
            match std::fs::write(path, &trace) {
                Ok(()) => {}
                Err(e) => eprintln!("warning: could not write {path}: {e}"),
            }
            t.note(format!(
                "cached-mode trace valid: {} events across {} tracks, written to {path}",
                summary.events,
                summary.named_tracks.len(),
            ));
        }
        Err(e) => {
            t.note(format!("cached-mode trace FAILED validation: {e}"));
        }
    }
    vec![t]
}

fn fidelity(p: &BenchParams) -> Vec<Table> {
    use crate::fidelity_run::{
        fidelity_workload_seeded, run_des, run_fidelity_experiment_seeded, DEFAULT_SEED,
        N_CHANNELS, N_SSDS,
    };
    use cam_telemetry::trace::{chrome_trace, validate_chrome_trace};
    use cam_telemetry::FlightRecorder;
    use std::sync::Arc;

    let seed = p.seed.unwrap_or(DEFAULT_SEED);
    let report = run_fidelity_experiment_seeded(8, seed);

    // The decision comparison: every counter, plan replay vs. each
    // driver × mode. The whole point is that the four rightmost columns
    // are identical.
    let mut t = Table::new(
        "Model fidelity: protocol decisions, plan replay vs threaded vs DES driver",
        &[
            "decision",
            "expected",
            "func piped",
            "func blocking",
            "des piped",
            "des blocking",
        ],
    );
    let fields = |d: &cam_protocol::DecisionCounters| {
        [
            ("batches", d.batches),
            ("requests", d.requests),
            ("dedup dropped", d.dedup_dropped),
            ("stripe splits", d.stripe_splits),
            ("groups", d.groups),
            ("sqes", d.sqes),
            ("retries", d.retries),
            ("timeouts", d.timeouts),
        ]
    };
    let cols = [
        fields(&report.expected),
        fields(&report.functional.pipelined.decisions),
        fields(&report.functional.blocking.decisions),
        fields(&report.des.pipelined.decisions),
        fields(&report.des.blocking.decisions),
    ];
    for i in 0..cols[0].len() {
        let mut row = vec![cols[0][i].0.to_string()];
        row.extend(cols.iter().map(|c| c[i].1.to_string()));
        t.row(row);
    }
    t.note(format!(
        "decisions_match: {} ({N_CHANNELS} channels x 8 batches, {N_SSDS} SSDs, seeded workload)",
        report.decisions_match()
    ));

    // The timing-trend comparison: magnitudes differ by design (wall clock
    // vs calibrated virtual time), directions must not.
    let mut tr = Table::new(
        "Model fidelity: in-flight depth and doorbell->retire latency trends",
        &["driver", "mode", "mean depth", "mean read (us)", "speedup"],
    );
    for (driver, engine) in [("functional", &report.functional), ("des", &report.des)] {
        for m in [&engine.pipelined, &engine.blocking] {
            tr.row(vec![
                driver.into(),
                if m.pipelined { "pipelined" } else { "blocking" }.into(),
                format!("{:.2}", m.depth()),
                format!("{:.1}", m.mean_read_ns as f64 / 1e3),
                if m.pipelined {
                    format!("{:.2}x", engine.speedup())
                } else {
                    "-".into()
                },
            ]);
        }
    }
    tr.note(format!(
        "depth rel err: {:.2} piped / {:.2} blocking (tolerance {}); speedup direction agrees: {}",
        report.depth_rel_err(true),
        report.depth_rel_err(false),
        crate::fidelity_run::DEPTH_REL_ERR_TOLERANCE,
        report.speedup_direction_agrees()
    ));

    // The cached matrix: the same CacheCore behind both drivers, decision
    // counters against the pure replay. The whole point is four identical
    // rows under the "expected" one.
    let mut tc = Table::new(
        "Model fidelity: cache decisions, pure replay vs threaded CachedDevice vs DES cache stage",
        &[
            "run",
            "hits",
            "misses",
            "coalesced",
            "evictions",
            "ra issued",
            "ra hits",
            "mean read (us)",
        ],
    );
    let cache_row =
        |label: &str, c: &cam_protocol::cache_core::CacheDecisionCounters, mean_ns: Option<u64>| {
            vec![
                label.to_string(),
                c.hits.to_string(),
                c.misses.to_string(),
                c.coalesced.to_string(),
                c.evictions.to_string(),
                c.readahead_issued.to_string(),
                c.readahead_hits.to_string(),
                mean_ns
                    .map(|ns| format!("{:.1}", ns as f64 / 1e3))
                    .unwrap_or_else(|| "-".into()),
            ]
        };
    tc.row(cache_row(
        "replay (expected)",
        &report.cached.expected,
        None,
    ));
    for (label, m) in report.cached.modes() {
        tc.row(cache_row(label, &m.counters, Some(m.mean_read_ns)));
    }
    tc.note(format!(
        "cache decisions_match: {} (seeded single-stream workload, {} batches)",
        report.cached.decisions_match(),
        8 * 3,
    ));

    // The virtual-time trace artifact: a recorded DES pipelined run,
    // validated before writing (sim-ssd tracks under process 2).
    let rec = Arc::new(FlightRecorder::new());
    let _ = run_des(
        true,
        &fidelity_workload_seeded(8, seed),
        Some(Arc::clone(&rec)),
    );
    let trace = chrome_trace(&rec.snapshot(), &rec.thread_names());
    let path = "fidelity_trace.json";
    match validate_chrome_trace(&trace) {
        Ok(summary) => {
            match std::fs::write(path, &trace) {
                Ok(()) => {}
                Err(e) => eprintln!("warning: could not write {path}: {e}"),
            }
            tr.note(format!(
                "DES trace valid: {} events across {} tracks, written to {path}",
                summary.events,
                summary.named_tracks.len(),
            ));
        }
        Err(e) => {
            tr.note(format!("DES trace FAILED validation: {e}"));
        }
    }
    vec![t, tc, tr]
}

fn attribute(p: &BenchParams) -> Vec<Table> {
    use crate::trajectory_run::{run_trial, TrialParams};
    use cam_telemetry::attribution::{component_name, decompose};
    use cam_telemetry::{critical, FlightRecorder, Stage};
    use std::sync::Arc;

    let defaults = TrialParams::default();
    let seed = p.seed.unwrap_or(defaults.seed);

    // Threaded driver: a recorded functional-engine run on the wall clock.
    let recorder = Arc::new(FlightRecorder::new());
    let run = crate::telemetry_run::run_recorded(20, 64, Some(Arc::clone(&recorder)));
    let threaded = critical::analyze(&run.events);
    // DES driver: one seeded virtual-time trial with lifecycle events on.
    let des_trial = run_trial(seed, defaults.rounds, 1.0);

    let mut out = Vec::new();
    for (driver, batches) in [
        ("threaded", &threaded.batches),
        ("des", &des_trial.attributions),
    ] {
        let mut t = Table::new(
            format!("Queue-delay attribution ({driver}): doorbell->retire decomposition, ns/batch"),
            &[
                "row",
                "doorbell_wait",
                "dispatch",
                "lane_wait",
                "ssd_service",
                "retire",
                "total",
                "dominant",
            ],
        );
        let Some(d) = decompose(batches) else {
            t.note("no batches attributed");
            out.push(t);
            continue;
        };
        let present = d.present;
        let row = move |label: &str, vals: &[f64; Stage::ALL.len()], total: f64, dom: Stage| {
            let mut r = vec![label.to_string()];
            r.extend(Stage::ALL.iter().map(|s| {
                if present[s.index()] {
                    format!("{:.0}", vals[s.index()])
                } else {
                    "n/a".into()
                }
            }));
            r.push(format!("{total:.0}"));
            r.push(component_name(dom).into());
            r
        };
        t.row(row("mean", &d.mean_ns, d.mean_total_ns, d.dominant_mean()));
        let tail_total: f64 = d.tail_mean_ns.iter().sum();
        t.row(row(
            "p99 tail",
            &d.tail_mean_ns,
            tail_total,
            d.dominant_tail(),
        ));
        t.note(format!(
            "{} batches, p99 total {} ns, {} tail batches; p99-tail row averages the \
             batches at or above the p99 (components sum to the tail total)",
            d.batches, d.p99_total_ns, d.tail_batches
        ));
        if driver == "des" {
            t.note(
                "n/a components are structurally absent from the DES timeline \
                 (doorbell/pickup coincide in virtual time; retire follows the last \
                 completion instantly); dispatch and lane_wait are charged by the \
                 calibrated CPU pipe (see `repro calibrate`)",
            );
        }
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        // `EXPERIMENTS` is the single source of truth for the CLI verb list;
        // this test guards its invariants rather than mirroring its contents.
        let ids: Vec<&str> = EXPERIMENTS.iter().map(|(id, _, _)| *id).collect();
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "duplicate experiment ids: {ids:?}");
        // The paper's core evaluation plus every repo-grown experiment must
        // register exactly once, including the serving front-end verb.
        assert!(ids.len() >= 25, "registry shrank: {ids:?}");
        for want in ["tab1", "fig8", "bench", "attribute", "serve"] {
            assert!(ids.contains(&want), "missing {want}");
        }
        for (id, desc, _) in EXPERIMENTS {
            assert!(!desc.is_empty(), "experiment {id} has no description");
        }
    }

    #[test]
    fn cheap_generators_produce_rows() {
        // The non-sweep generators are fast enough for unit tests.
        for id in [
            "tab1", "fig1", "fig3", "fig4", "tab3", "tab4", "tab5", "fig9", "fig10", "fig11",
            "fig13", "fig15",
        ] {
            let gen = registry()
                .into_iter()
                .find(|(i, _, _)| *i == id)
                .map(|(_, _, g)| g)
                .unwrap();
            for t in gen(&BenchParams::default()) {
                assert!(!t.is_empty(), "{id}: empty table {}", t.title());
            }
        }
    }

    #[test]
    fn fig4_table_hits_full_utilization_by_five() {
        let tables = fig4(&BenchParams::default());
        let t = &tables[0];
        // Row 4 = 5 SSDs (1-indexed SSD count in col 0).
        assert_eq!(t.cell(4, 0), "5");
        let u: f64 = t.cell(4, 1).trim_end_matches('%').parse().unwrap();
        assert!(u > 90.0, "5-SSD utilization {u}%");
    }
}
