//! `repro watch` — the live ops view over the windowed telemetry layer.
//!
//! Drives a two-channel read workload (channel 0 crosses a transient-fault
//! window on SSD 0, channel 1 stays on healthy media) through a fully
//! observed engine — bounded flight recorder, rolling [`OpsWindows`],
//! [`SloTracker`] — and renders a periodic per-lane / per-channel snapshot
//! table from the *windowed* samplers, so the numbers are "last few
//! seconds", not since-boot cumulative. `--once` renders a single
//! end-of-run snapshot (deterministic shape, for scripts and CI smoke) and
//! returns the `bench/out/health_snapshot.json` payload.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cam_blockdev::{BlockGeometry, BlockStore, FaultPolicy, FaultyStore, SparseMemStore};
use cam_core::{CamConfig, CamContext, ChannelOp};
use cam_iostacks::{Rig, RigConfig};
use cam_serving::{run_serving_threaded, Policy, ServingConfig, ServingCore};
use cam_telemetry::{
    clock, health_state_label, FlightRecorder, MetricsRegistry, Observability, OpsWindows,
    SloConfig, SloTracker, WindowConfig,
};
use cam_workloads::kv_cache::KvCacheConfig;
use parking_lot::Mutex;

use crate::Table;

const N_SSDS: usize = 2;
const N_CHANNELS: usize = 2;
const BLOCK_SIZE: u32 = 4096;
const BATCH_REQS: u64 = 32;
const ROUNDS: usize = 24;
/// Tenants in the serving smoke that feeds the per-tenant table.
const SERVE_TENANTS: usize = 3;
/// Per-thread flight-recorder ring: small enough that a watch run
/// exercises the drop accounting (`cam_trace_dropped_total`).
const RING_CAPACITY: usize = 512;

/// Outcome of a watch session.
pub struct WatchReport {
    /// The final rendered snapshot (what `--once` prints).
    pub rendered: String,
    /// The `bench/out/health_snapshot.json` payload.
    pub snapshot_json: String,
    /// Snapshot frames rendered (1 in `--once` mode).
    pub frames: u64,
}

/// A short multi-tenant serving run on the threaded driver; its registry
/// (tenant-labeled burn / latency / hit-rate gauges) feeds the watch
/// view's per-tenant table. Kept on its own registry so the serving
/// engine's lane gauges never clobber the fault workload's.
fn run_serving_smoke() -> Arc<MetricsRegistry> {
    let mut wl = KvCacheConfig::uniform(SERVE_TENANTS, 4, 24);
    wl.seed = 0x005e_5511;
    let mut cfg = ServingConfig::for_workload(wl, Policy::Drr);
    // GPU budget below even one session's full extent, so the demand
    // channel pages and hit rates are meaningfully below 1.
    cfg.gpu_budget_blocks = cfg.workload.session_blocks / 2;
    cfg.max_batch_blocks = 32;
    let registry = Arc::new(MetricsRegistry::new());
    let core = Arc::new(Mutex::new(ServingCore::new(cfg, Some(&registry))));
    let _ = run_serving_threaded(core, N_SSDS, Some(Arc::clone(&registry)));
    registry
}

/// Runs the watch workload; `emit` receives each rendered frame (live
/// mode renders every ~200 ms until the workload drains; `--once` renders
/// only the final frame).
pub fn run_watch(once: bool, mut emit: impl FnMut(&str)) -> WatchReport {
    // The serving smoke runs first: its end-of-run gauges hold steady, so
    // every frame (live and final) carries the per-tenant rows.
    let tenant_reg = run_serving_smoke();
    let rig_cfg = RigConfig {
        n_ssds: N_SSDS,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    };
    let faulty: Arc<dyn BlockStore> = Arc::new(FaultyStore::new(
        Arc::new(SparseMemStore::new(BlockGeometry::new(
            rig_cfg.block_size,
            rig_cfg.blocks_per_ssd,
        ))),
        FaultPolicy::transient_reads_in(0, 16, 2),
    ));
    let healthy: Arc<dyn BlockStore> = Arc::new(SparseMemStore::new(BlockGeometry::new(
        rig_cfg.block_size,
        rig_cfg.blocks_per_ssd,
    )));
    let rig = Rig::with_stores(rig_cfg, vec![faulty, healthy]);

    let registry = Arc::new(MetricsRegistry::new());
    let recorder = Arc::new(FlightRecorder::with_capacity(RING_CAPACITY));
    recorder.attach_dropped_counter(&registry);
    let windows = Arc::new(OpsWindows::new(WindowConfig::default(), N_SSDS, N_CHANNELS));
    let slo = Arc::new(SloTracker::new(
        SloConfig {
            latency_target_ns: 1_000,
            error_budget: 0.01,
            ..SloConfig::default()
        },
        N_CHANNELS,
    ));
    let obs = Observability::recorded(Arc::clone(&registry), Arc::clone(&recorder))
        .with_windows(Arc::clone(&windows))
        .with_slo(Arc::clone(&slo));
    let cam = CamContext::attach_observed(
        &rig,
        CamConfig {
            n_channels: N_CHANNELS,
            workers: Some(1),
            max_retries: 3,
            retry_backoff_ns: 1_000,
            ..CamConfig::default()
        },
        obs,
    );

    let done = Arc::new(AtomicBool::new(false));
    let mut frames = 0u64;
    std::thread::scope(|s| {
        for ch in 0..N_CHANNELS {
            let dev = cam.device();
            let buf = cam
                .alloc(BATCH_REQS as usize * BLOCK_SIZE as usize)
                .expect("alloc watch buffer");
            let done = Arc::clone(&done);
            s.spawn(move || {
                let addr = buf.addr();
                // Channel 0 reads the fault window; channel 1 healthy LBAs.
                let base = ch as u64 * 64;
                let lbas: Vec<u64> = (base..base + BATCH_REQS).collect();
                for _ in 0..ROUNDS {
                    let ticket = dev
                        .submit_scatter(
                            ch,
                            ChannelOp::Read,
                            &lbas,
                            |i| addr + (i as u64) * u64::from(BLOCK_SIZE),
                            1,
                        )
                        .expect("submit");
                    ticket.wait().expect("watch batch retires");
                }
                if ch == 0 {
                    done.store(true, Ordering::Release);
                }
            });
        }
        if !once {
            while !done.load(Ordering::Acquire) {
                emit(&render(&registry, &windows, &slo, &tenant_reg));
                frames += 1;
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    });
    // Stopping the engine drains the lanes, so the final frame shows
    // `recovered` rather than a stuck `overloaded`.
    drop(cam);
    let rendered = render(&registry, &windows, &slo, &tenant_reg);
    emit(&rendered);
    frames += 1;
    WatchReport {
        snapshot_json: snapshot_json(&registry, &windows, &slo, &tenant_reg),
        rendered,
        frames,
    }
}

/// Reads one tenant's gauge/counter row out of the serving registry.
/// Returns `(burn, p50_ns, p99_ns, hit_rate, admitted, throttled,
/// completed)`.
fn tenant_row(
    snap: &cam_telemetry::MetricsSnapshot,
    tenant: usize,
) -> (f64, u64, u64, f64, u64, u64, u64) {
    let g = |name: &str| snap.gauge(&format!("{name}{{tenant=\"{tenant}\"}}"));
    let c = |name: &str| snap.counter(&format!("{name}{{tenant=\"{tenant}\"}}"));
    (
        g("cam_slo_burn_rate") as f64 / 1000.0,
        g("cam_tenant_latency_p50_ns"),
        g("cam_tenant_latency_p99_ns"),
        g("cam_tenant_hit_rate_milli") as f64 / 1000.0,
        c("cam_tenant_admitted_total"),
        c("cam_tenant_throttled_total"),
        c("cam_tenant_completed_total"),
    )
}

/// Renders one per-lane / per-channel / per-tenant snapshot from the live
/// registries and the rolling windows at the current telemetry timestamp.
pub fn render(
    registry: &MetricsRegistry,
    windows: &OpsWindows,
    slo: &SloTracker,
    tenant_reg: &MetricsRegistry,
) -> String {
    let now = clock::now_ns();
    let snap = registry.snapshot();
    let mut lanes = Table::new(
        "lanes (rolling window)",
        &[
            "ssd",
            "health",
            "inflight",
            "peak",
            "retries/group",
            "complete p99 (ns)",
        ],
    );
    for ssd in 0..windows.ssd_complete.len() {
        let health = snap.gauge(&format!("cam_lane_health{{ssd=\"{ssd}\"}}"));
        let retry_rate = windows.ssd_retries[ssd]
            .ratio_at(now)
            .map_or_else(|| "-".into(), |r| format!("{r:.3}"));
        lanes.row(vec![
            ssd.to_string(),
            health_state_label(health.min(u64::from(u8::MAX)) as u8).to_string(),
            snap.gauge(&format!("cam_inflight{{ssd=\"{ssd}\"}}"))
                .to_string(),
            snap.gauge(&format!("cam_inflight_peak{{ssd=\"{ssd}\"}}"))
                .to_string(),
            retry_rate,
            windows.ssd_complete[ssd].quantile_at(now, 0.99).to_string(),
        ]);
    }
    let mut channels = Table::new(
        "channels (rolling window)",
        &[
            "channel",
            "burn short",
            "burn long",
            "batches",
            "batch p99 (ns)",
        ],
    );
    for ch in 0..slo.n_channels() {
        let burn = slo.burn_rate(ch, now);
        channels.row(vec![
            ch.to_string(),
            format!("{:.2}", burn.short),
            format!("{:.2}", burn.long),
            windows.channel_batch[ch].count_at(now).to_string(),
            windows.channel_batch[ch].quantile_at(now, 0.99).to_string(),
        ]);
    }
    let mut workers = Table::new("workers (rolling window)", &["worker", "park ratio"]);
    for (worker, milli) in park_ratios(&snap) {
        workers.row(vec![worker, format!("{:.3}", milli as f64 / 1000.0)]);
    }
    let mut tenants = Table::new(
        "tenants (rolling window)",
        &[
            "tenant",
            "burn",
            "p50 (ns)",
            "p99 (ns)",
            "hit rate",
            "admitted",
            "throttled",
            "done",
        ],
    );
    let tsnap = tenant_reg.snapshot();
    for tenant in 0..SERVE_TENANTS {
        let (burn, p50, p99, hit, admitted, throttled, completed) = tenant_row(&tsnap, tenant);
        tenants.row(vec![
            tenant.to_string(),
            format!("{burn:.2}"),
            p50.to_string(),
            p99.to_string(),
            format!("{:.1}%", hit * 100.0),
            admitted.to_string(),
            throttled.to_string(),
            completed.to_string(),
        ]);
    }
    format!(
        "{lanes}\n{channels}\n{workers}\n{tenants}\ntrace events dropped: {}\n",
        snap.counter("cam_trace_dropped_total")
    )
}

/// Every `cam_worker_park_ratio{worker}` gauge in the snapshot, as
/// `(worker label, milli-ratio)` rows. The thread-per-core engine
/// refreshes these at least every park bound (50 ms), so even an idle
/// plane reports a current share of parked time.
fn park_ratios(snap: &cam_telemetry::MetricsSnapshot) -> Vec<(String, u64)> {
    snap.gauges
        .iter()
        .filter_map(|(name, &v)| {
            let rest = name.strip_prefix("cam_worker_park_ratio{worker=\"")?;
            Some((rest.strip_suffix("\"}")?.to_string(), v))
        })
        .collect()
}

/// The `bench/out/health_snapshot.json` payload: the same per-lane / per-channel /
/// per-tenant view, machine-readable.
pub fn snapshot_json(
    registry: &MetricsRegistry,
    windows: &OpsWindows,
    slo: &SloTracker,
    tenant_reg: &MetricsRegistry,
) -> String {
    let now = clock::now_ns();
    let snap = registry.snapshot();
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"lanes\": [\n");
    for ssd in 0..windows.ssd_complete.len() {
        let health = snap.gauge(&format!("cam_lane_health{{ssd=\"{ssd}\"}}"));
        let retry_rate = windows.ssd_retries[ssd].ratio_at(now).unwrap_or(0.0);
        let _ = write!(
            out,
            "    {{\"ssd\": {ssd}, \"health\": \"{}\", \"inflight_peak\": {}, \
             \"window_retry_rate\": {retry_rate:.4}, \"window_complete_p99_ns\": {}}}",
            health_state_label(health.min(u64::from(u8::MAX)) as u8),
            snap.gauge(&format!("cam_inflight_peak{{ssd=\"{ssd}\"}}")),
            windows.ssd_complete[ssd].quantile_at(now, 0.99)
        );
        out.push_str(if ssd + 1 < windows.ssd_complete.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"channels\": [\n");
    for ch in 0..slo.n_channels() {
        let burn = slo.burn_rate(ch, now);
        let _ = write!(
            out,
            "    {{\"channel\": {ch}, \"burn_short\": {:.2}, \"burn_long\": {:.2}, \
             \"window_batches\": {}, \"window_batch_p99_ns\": {}}}",
            burn.short,
            burn.long,
            windows.channel_batch[ch].count_at(now),
            windows.channel_batch[ch].quantile_at(now, 0.99)
        );
        out.push_str(if ch + 1 < slo.n_channels() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"workers\": [\n");
    let parked = park_ratios(&snap);
    for (i, (worker, milli)) in parked.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"worker\": {worker}, \"park_ratio\": {:.3}}}",
            *milli as f64 / 1000.0
        );
        out.push_str(if i + 1 < parked.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"tenants\": [\n");
    let tsnap = tenant_reg.snapshot();
    for tenant in 0..SERVE_TENANTS {
        let (burn, p50, p99, hit, admitted, throttled, completed) = tenant_row(&tsnap, tenant);
        let _ = write!(
            out,
            "    {{\"tenant\": {tenant}, \"burn_rate\": {burn:.2}, \"p50_ns\": {p50}, \
             \"p99_ns\": {p99}, \"hit_rate\": {hit:.3}, \"admitted\": {admitted}, \
             \"throttled\": {throttled}, \"completed\": {completed}}}"
        );
        out.push_str(if tenant + 1 < SERVE_TENANTS {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(
        out,
        "  ],\n  \"trace_dropped\": {}\n}}\n",
        snap.counter("cam_trace_dropped_total")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn once_mode_renders_one_recovered_snapshot_with_json() {
        let mut emitted = Vec::new();
        let report = run_watch(true, |frame| emitted.push(frame.to_string()));
        assert_eq!(report.frames, 1, "--once renders exactly one frame");
        assert_eq!(emitted.len(), 1);
        // Lane 0 took faults and drained: the final frame shows recovered;
        // lane 1 never faulted and stays healthy.
        assert!(
            report.rendered.contains("recovered"),
            "no recovery in:\n{}",
            report.rendered
        );
        assert!(report.rendered.contains("healthy"));
        assert!(report.rendered.contains("workers (rolling window)"));
        assert!(report.rendered.contains("tenants (rolling window)"));
        assert!(report.rendered.contains("trace events dropped:"));
        let json = &report.snapshot_json;
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"lanes\"",
            "\"channels\"",
            "\"health\": \"recovered\"",
            "\"health\": \"healthy\"",
            "\"burn_short\"",
            "\"workers\"",
            "\"park_ratio\"",
            "\"tenants\"",
            "\"hit_rate\"",
            "\"trace_dropped\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The serving smoke retired real multi-tenant traffic: every
        // tenant row reports completions and a sub-unity hit rate.
        let parsed = cam_telemetry::trace::parse_json(json).expect("snapshot json");
        let tenants = parsed
            .get("tenants")
            .and_then(cam_telemetry::trace::Json::as_arr)
            .expect("tenants array");
        assert_eq!(tenants.len(), SERVE_TENANTS);
        for t in tenants {
            let completed = t.get("completed").and_then(|v| v.as_f64()).unwrap();
            assert!(completed > 0.0, "tenant retired no traffic: {json}");
            let hit = t.get("hit_rate").and_then(|v| v.as_f64()).unwrap();
            assert!((0.0..1.0).contains(&hit), "degenerate hit rate: {json}");
        }
    }
}
