//! `repro watch` — the live ops view over the windowed telemetry layer.
//!
//! Drives a two-channel read workload (channel 0 crosses a transient-fault
//! window on SSD 0, channel 1 stays on healthy media) through a fully
//! observed engine — bounded flight recorder, rolling [`OpsWindows`],
//! [`SloTracker`] — and renders a periodic per-lane / per-channel snapshot
//! table from the *windowed* samplers, so the numbers are "last few
//! seconds", not since-boot cumulative. `--once` renders a single
//! end-of-run snapshot (deterministic shape, for scripts and CI smoke) and
//! returns the `health_snapshot.json` payload.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cam_blockdev::{BlockGeometry, BlockStore, FaultPolicy, FaultyStore, SparseMemStore};
use cam_core::{CamConfig, CamContext, ChannelOp};
use cam_iostacks::{Rig, RigConfig};
use cam_telemetry::{
    clock, health_state_label, FlightRecorder, MetricsRegistry, Observability, OpsWindows,
    SloConfig, SloTracker, WindowConfig,
};

use crate::Table;

const N_SSDS: usize = 2;
const N_CHANNELS: usize = 2;
const BLOCK_SIZE: u32 = 4096;
const BATCH_REQS: u64 = 32;
const ROUNDS: usize = 24;
/// Per-thread flight-recorder ring: small enough that a watch run
/// exercises the drop accounting (`cam_trace_dropped_total`).
const RING_CAPACITY: usize = 512;

/// Outcome of a watch session.
pub struct WatchReport {
    /// The final rendered snapshot (what `--once` prints).
    pub rendered: String,
    /// The `health_snapshot.json` payload.
    pub snapshot_json: String,
    /// Snapshot frames rendered (1 in `--once` mode).
    pub frames: u64,
}

/// Runs the watch workload; `emit` receives each rendered frame (live
/// mode renders every ~200 ms until the workload drains; `--once` renders
/// only the final frame).
pub fn run_watch(once: bool, mut emit: impl FnMut(&str)) -> WatchReport {
    let rig_cfg = RigConfig {
        n_ssds: N_SSDS,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    };
    let faulty: Arc<dyn BlockStore> = Arc::new(FaultyStore::new(
        Arc::new(SparseMemStore::new(BlockGeometry::new(
            rig_cfg.block_size,
            rig_cfg.blocks_per_ssd,
        ))),
        FaultPolicy::transient_reads_in(0, 16, 2),
    ));
    let healthy: Arc<dyn BlockStore> = Arc::new(SparseMemStore::new(BlockGeometry::new(
        rig_cfg.block_size,
        rig_cfg.blocks_per_ssd,
    )));
    let rig = Rig::with_stores(rig_cfg, vec![faulty, healthy]);

    let registry = Arc::new(MetricsRegistry::new());
    let recorder = Arc::new(FlightRecorder::with_capacity(RING_CAPACITY));
    recorder.attach_dropped_counter(&registry);
    let windows = Arc::new(OpsWindows::new(WindowConfig::default(), N_SSDS, N_CHANNELS));
    let slo = Arc::new(SloTracker::new(
        SloConfig {
            latency_target_ns: 1_000,
            error_budget: 0.01,
            ..SloConfig::default()
        },
        N_CHANNELS,
    ));
    let obs = Observability::recorded(Arc::clone(&registry), Arc::clone(&recorder))
        .with_windows(Arc::clone(&windows))
        .with_slo(Arc::clone(&slo));
    let cam = CamContext::attach_observed(
        &rig,
        CamConfig {
            n_channels: N_CHANNELS,
            workers: Some(1),
            max_retries: 3,
            retry_backoff_ns: 1_000,
            ..CamConfig::default()
        },
        obs,
    );

    let done = Arc::new(AtomicBool::new(false));
    let mut frames = 0u64;
    std::thread::scope(|s| {
        for ch in 0..N_CHANNELS {
            let dev = cam.device();
            let buf = cam
                .alloc(BATCH_REQS as usize * BLOCK_SIZE as usize)
                .expect("alloc watch buffer");
            let done = Arc::clone(&done);
            s.spawn(move || {
                let addr = buf.addr();
                // Channel 0 reads the fault window; channel 1 healthy LBAs.
                let base = ch as u64 * 64;
                let lbas: Vec<u64> = (base..base + BATCH_REQS).collect();
                for _ in 0..ROUNDS {
                    let ticket = dev
                        .submit_scatter(
                            ch,
                            ChannelOp::Read,
                            &lbas,
                            |i| addr + (i as u64) * u64::from(BLOCK_SIZE),
                            1,
                        )
                        .expect("submit");
                    ticket.wait().expect("watch batch retires");
                }
                if ch == 0 {
                    done.store(true, Ordering::Release);
                }
            });
        }
        if !once {
            while !done.load(Ordering::Acquire) {
                emit(&render(&registry, &windows, &slo));
                frames += 1;
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    });
    // Stopping the engine drains the lanes, so the final frame shows
    // `recovered` rather than a stuck `overloaded`.
    drop(cam);
    let rendered = render(&registry, &windows, &slo);
    emit(&rendered);
    frames += 1;
    WatchReport {
        snapshot_json: snapshot_json(&registry, &windows, &slo),
        rendered,
        frames,
    }
}

/// Renders one per-lane / per-channel snapshot from the live registry and
/// the rolling windows at the current telemetry timestamp.
pub fn render(registry: &MetricsRegistry, windows: &OpsWindows, slo: &SloTracker) -> String {
    let now = clock::now_ns();
    let snap = registry.snapshot();
    let mut lanes = Table::new(
        "lanes (rolling window)",
        &[
            "ssd",
            "health",
            "inflight",
            "peak",
            "retries/group",
            "complete p99 (ns)",
        ],
    );
    for ssd in 0..windows.ssd_complete.len() {
        let health = snap.gauge(&format!("cam_lane_health{{ssd=\"{ssd}\"}}"));
        let retry_rate = windows.ssd_retries[ssd]
            .ratio_at(now)
            .map_or_else(|| "-".into(), |r| format!("{r:.3}"));
        lanes.row(vec![
            ssd.to_string(),
            health_state_label(health.min(u64::from(u8::MAX)) as u8).to_string(),
            snap.gauge(&format!("cam_inflight{{ssd=\"{ssd}\"}}"))
                .to_string(),
            snap.gauge(&format!("cam_inflight_peak{{ssd=\"{ssd}\"}}"))
                .to_string(),
            retry_rate,
            windows.ssd_complete[ssd].quantile_at(now, 0.99).to_string(),
        ]);
    }
    let mut channels = Table::new(
        "channels (rolling window)",
        &[
            "channel",
            "burn short",
            "burn long",
            "batches",
            "batch p99 (ns)",
        ],
    );
    for ch in 0..slo.n_channels() {
        let burn = slo.burn_rate(ch, now);
        channels.row(vec![
            ch.to_string(),
            format!("{:.2}", burn.short),
            format!("{:.2}", burn.long),
            windows.channel_batch[ch].count_at(now).to_string(),
            windows.channel_batch[ch].quantile_at(now, 0.99).to_string(),
        ]);
    }
    format!(
        "{lanes}\n{channels}\ntrace events dropped: {}\n",
        snap.counter("cam_trace_dropped_total")
    )
}

/// The `health_snapshot.json` payload: the same per-lane / per-channel
/// view, machine-readable.
pub fn snapshot_json(registry: &MetricsRegistry, windows: &OpsWindows, slo: &SloTracker) -> String {
    let now = clock::now_ns();
    let snap = registry.snapshot();
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"lanes\": [\n");
    for ssd in 0..windows.ssd_complete.len() {
        let health = snap.gauge(&format!("cam_lane_health{{ssd=\"{ssd}\"}}"));
        let retry_rate = windows.ssd_retries[ssd].ratio_at(now).unwrap_or(0.0);
        let _ = write!(
            out,
            "    {{\"ssd\": {ssd}, \"health\": \"{}\", \"inflight_peak\": {}, \
             \"window_retry_rate\": {retry_rate:.4}, \"window_complete_p99_ns\": {}}}",
            health_state_label(health.min(u64::from(u8::MAX)) as u8),
            snap.gauge(&format!("cam_inflight_peak{{ssd=\"{ssd}\"}}")),
            windows.ssd_complete[ssd].quantile_at(now, 0.99)
        );
        out.push_str(if ssd + 1 < windows.ssd_complete.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"channels\": [\n");
    for ch in 0..slo.n_channels() {
        let burn = slo.burn_rate(ch, now);
        let _ = write!(
            out,
            "    {{\"channel\": {ch}, \"burn_short\": {:.2}, \"burn_long\": {:.2}, \
             \"window_batches\": {}, \"window_batch_p99_ns\": {}}}",
            burn.short,
            burn.long,
            windows.channel_batch[ch].count_at(now),
            windows.channel_batch[ch].quantile_at(now, 0.99)
        );
        out.push_str(if ch + 1 < slo.n_channels() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(
        out,
        "  ],\n  \"trace_dropped\": {}\n}}\n",
        snap.counter("cam_trace_dropped_total")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn once_mode_renders_one_recovered_snapshot_with_json() {
        let mut emitted = Vec::new();
        let report = run_watch(true, |frame| emitted.push(frame.to_string()));
        assert_eq!(report.frames, 1, "--once renders exactly one frame");
        assert_eq!(emitted.len(), 1);
        // Lane 0 took faults and drained: the final frame shows recovered;
        // lane 1 never faulted and stays healthy.
        assert!(
            report.rendered.contains("recovered"),
            "no recovery in:\n{}",
            report.rendered
        );
        assert!(report.rendered.contains("healthy"));
        assert!(report.rendered.contains("trace events dropped:"));
        let json = &report.snapshot_json;
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"lanes\"",
            "\"channels\"",
            "\"health\": \"recovered\"",
            "\"health\": \"healthy\"",
            "\"burn_short\"",
            "\"trace_dropped\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
