//! Perf-trajectory subsystem: seeded multi-trial DES bench runs, a
//! statistical regression gate against committed baselines, and run
//! metadata appended to `BENCH_repro.json`'s `trajectory` array.
//!
//! The gate runs on the **DES driver only**: virtual time makes every
//! trial metric machine-independent, so a baseline committed from one
//! machine is bit-comparable in CI on any other. (Wall-clock numbers from
//! the threaded driver would drown a 20% model regression in scheduler
//! noise.) Each trial:
//!
//! 1. builds a seeded workload (seed = `params.seed + trial index`, so
//!    trials differ but the whole trajectory is reproducible),
//! 2. runs the CAM DES driver with lifecycle events on and a flight
//!    recorder attached,
//! 3. feeds the timeline through [`critical::analyze`] and collects the
//!    per-batch doorbell→retire totals into a log-linear [`Histogram`].
//!
//! Warmup trials are discarded; the measured trials' bins are merged and
//! compared against `bench/baselines/trajectory.json` with a Mann-Whitney
//! U test plus a minimum-relative-shift guard (see [`GateConfig`]), and
//! the queue-delay decomposition ([`cam_telemetry::attribution`]) says
//! *which* component moved. `repro bench --check` exits non-zero on a
//! flagged regression; `repro bench --update-baselines` rewrites the
//! baseline file.
//!
//! A second, **cached-mode** trajectory runs the seeded cache workload
//! through the DES cache stage ([`run_cached_trajectory`]) and gates it
//! against `bench/baselines/trajectory_cached.json` with the same
//! statistics — so a regression in the cache hit path, the write-back
//! flush, or the readahead pipeline moves a committed number even though
//! the uncached trajectory never exercises that code.

use std::fmt::Write as _;
use std::sync::Arc;

use cam_core::CamConfig;
use cam_core::ChannelOp;
use cam_iostacks::cam_des::{
    run_cam_des_cached, run_cam_des_obs, CamDesBatch, CamDesConfig, CamDesObs, CpuPipeModel,
};
use cam_iostacks::des::cam_thread_cost;
use cam_nvme::SsdModel;
use cam_simkit::Dur;
use cam_telemetry::attribution::{component_name, decompose, LatencyDecomposition};
use cam_telemetry::stats::{
    binned_mean, binned_quantile, bootstrap_quantile_ci, mann_whitney, MannWhitney, QuantileCi,
};
use cam_telemetry::trace::{parse_json, Json};
use cam_telemetry::{critical, FlightRecorder, Histogram, Stage};

/// SSDs in the trajectory workload's array.
pub const N_SSDS: usize = 4;
/// Channels driven concurrently.
pub const N_CHANNELS: usize = 4;
const STRIPE_BLOCKS: u64 = 2;
const BLOCK_SIZE: u32 = 4096;
const BLOCKS_PER_REQ: u32 = 2;
const BATCH_REQS: usize = 16;
const LBA_WINDOW: u64 = 96;

/// Default path of the committed baseline, relative to the repo root.
pub const BASELINE_PATH: &str = "bench/baselines/trajectory.json";
/// Baseline schema version, bumped when the JSON layout changes.
pub const BASELINE_SCHEMA: u64 = 1;
/// Blocks in the cached trajectory's array (matches the fidelity rig:
/// [`N_SSDS`] SSDs × 16 Ki blocks each), so readahead sees real bounds.
const CACHED_ARRAY_BLOCKS: u64 = N_SSDS as u64 * 16 * 1024;

/// The cached-mode baseline path derived from the uncached one:
/// `trajectory.json` → `trajectory_cached.json`, so `--baselines <path>`
/// relocates both files together.
pub fn cached_baseline_path(baselines: &str) -> String {
    match baselines.strip_suffix(".json") {
        Some(stem) => format!("{stem}_cached.json"),
        None => format!("{baselines}_cached"),
    }
}

/// Parameters of one trajectory run (the `repro` CLI threads `--trials`
/// and `--seed` here).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialParams {
    /// Measured trials (after warmup).
    pub trials: usize,
    /// Leading trials discarded before statistics.
    pub warmup: usize,
    /// Base seed; trial `i` uses `seed + i`.
    pub seed: u64,
    /// Batches per channel per trial.
    pub rounds: u64,
    /// SSD service-time multiplier — the deliberate perturbation knob the
    /// gate's failing-path test (and CI job) uses. Scales command latency
    /// up and channel/link bandwidth down, i.e. `1.2` models a device 20%
    /// slower across the board.
    pub latency_scale: f64,
}

impl Default for TrialParams {
    fn default() -> Self {
        TrialParams {
            trials: 5,
            warmup: 1,
            seed: 0x7E57_5EED,
            rounds: 10,
            latency_scale: 1.0,
        }
    }
}

/// Metrics of a single measured trial.
#[derive(Clone, Debug)]
pub struct TrialMetrics {
    /// The trial's workload seed.
    pub seed: u64,
    /// Virtual doorbell→last-retire duration, ns.
    pub duration_ns: u64,
    /// Batches retired.
    pub batches: u64,
    /// p50 of per-batch doorbell→retire latency, ns.
    pub p50_ns: u64,
    /// p99 of per-batch doorbell→retire latency, ns.
    pub p99_ns: u64,
    /// Log-linear histogram bins of the per-batch totals.
    pub bins: Vec<(u64, u64)>,
    /// Per-batch attributions (feed of the merged decomposition).
    pub attributions: Vec<critical::BatchAttribution>,
}

/// A full trajectory run: per-trial metrics plus merged statistics.
#[derive(Clone, Debug)]
pub struct TrajectoryReport {
    /// The parameters that produced it.
    pub params: TrialParams,
    /// Measured trials, in order (warmup already discarded).
    pub trials: Vec<TrialMetrics>,
    /// Bins merged across all measured trials.
    pub bins: Vec<(u64, u64)>,
    /// Merged p50 of per-batch latency, ns.
    pub p50_ns: u64,
    /// Merged p99 of per-batch latency, ns.
    pub p99_ns: u64,
    /// Merged mean per-batch latency, ns.
    pub mean_batch_ns: f64,
    /// Bootstrap CI around the merged p50.
    pub p50_ci: QuantileCi,
    /// Bootstrap CI around the merged p99.
    pub p99_ci: QuantileCi,
    /// Queue-delay decomposition over every measured batch.
    pub decomposition: LatencyDecomposition,
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The seeded workload of one trial: `rounds` batches per channel, each
/// [`BATCH_REQS`] two-block reads from the channel's LBA window (same
/// shape as the fidelity workload, so dedup and stripe splits occur).
pub fn trial_workload(seed: u64, rounds: u64) -> Vec<Vec<CamDesBatch>> {
    let mut rng = Lcg(seed);
    (0..N_CHANNELS)
        .map(|ch| {
            let base = ch as u64 * 256;
            (0..rounds)
                .map(|_| CamDesBatch {
                    lbas: (0..BATCH_REQS)
                        .map(|_| base + rng.next() % LBA_WINDOW)
                        .collect(),
                    blocks: BLOCKS_PER_REQ,
                })
                .collect()
        })
        .collect()
}

fn trial_config(latency_scale: f64) -> CamDesConfig {
    let mut model = SsdModel::p5510();
    model.read_latency = Dur::ns((model.read_latency.as_ns() as f64 * latency_scale) as u64);
    model.write_latency = Dur::ns((model.write_latency.as_ns() as f64 * latency_scale) as u64);
    model.channel_read_gbps /= latency_scale;
    model.channel_write_gbps /= latency_scale;
    model.link_gbps /= latency_scale;
    CamDesConfig {
        n_ssds: N_SSDS,
        block_size: BLOCK_SIZE,
        stripe_blocks: STRIPE_BLOCKS,
        op: ChannelOp::Read,
        threads: 1,
        queue_depth: CamConfig::default().queue_depth,
        pipelined: true,
        thread_cost: cam_thread_cost(N_SSDS as f64),
        cpu_pipe: CpuPipeModel::calibrated(),
        host_gbps: 21.0,
        retry: CamDesConfig::inert_retry(),
        fault: None,
        ssd_model: model,
    }
}

/// Runs one trial: a recorded DES run with lifecycle events, attributed
/// through [`critical::analyze`].
pub fn run_trial(seed: u64, rounds: u64, latency_scale: f64) -> TrialMetrics {
    let recorder = Arc::new(FlightRecorder::new());
    let obs = CamDesObs {
        windows: None,
        slo: None,
        lifecycle: true,
    };
    let r = run_cam_des_obs(
        trial_config(latency_scale),
        trial_workload(seed, rounds),
        Some(Arc::clone(&recorder)),
        obs,
    );
    let report = critical::analyze(&recorder.snapshot());
    let mut hist = Histogram::new();
    for b in &report.batches {
        hist.record(b.total_ns);
    }
    TrialMetrics {
        seed,
        duration_ns: r.duration.as_ns(),
        batches: r.batches,
        p50_ns: hist.quantile(0.5),
        p99_ns: hist.quantile(0.99),
        bins: hist.bins(),
        attributions: report.batches,
    }
}

/// Runs one **cached-mode** trial: the seeded cache workload (same shape
/// the cached fidelity matrix proved decision-exact across drivers)
/// through the DES cache stage, attributed exactly like [`run_trial`].
/// The trajectory gates latency distributions, not decisions — decision
/// exactness is the fidelity suite's job — but it runs on the identical
/// [`crate::fidelity_run::cached_cache_cfg`] configuration, so a cache
/// regression surfaces here as a latency/attribution shift.
pub fn run_cached_trial(seed: u64, rounds: u64, latency_scale: f64) -> TrialMetrics {
    let recorder = Arc::new(FlightRecorder::new());
    let obs = CamDesObs {
        windows: None,
        slo: None,
        lifecycle: true,
    };
    let (r, _counters) = run_cam_des_cached(
        trial_config(latency_scale),
        crate::fidelity_run::cached_cache_cfg(),
        CACHED_ARRAY_BLOCKS,
        crate::fidelity_run::cached_fidelity_workload_seeded(rounds * 3, seed),
        Some(Arc::clone(&recorder)),
        obs,
    );
    let report = critical::analyze(&recorder.snapshot());
    let mut hist = Histogram::new();
    for b in &report.batches {
        hist.record(b.total_ns);
    }
    TrialMetrics {
        seed,
        duration_ns: r.duration.as_ns(),
        batches: r.batches,
        p50_ns: hist.quantile(0.5),
        p99_ns: hist.quantile(0.99),
        bins: hist.bins(),
        attributions: report.batches,
    }
}

/// Runs the full trajectory: `warmup` discarded trials then `trials`
/// measured ones, merged statistics over the measured set. Deterministic:
/// same params, same report (virtual time end to end).
pub fn run_trajectory(params: &TrialParams) -> TrajectoryReport {
    run_trajectory_with(params, run_trial)
}

/// The cached-mode counterpart of [`run_trajectory`]: same trial/warmup
/// merge over [`run_cached_trial`]. Gated against
/// `bench/baselines/trajectory_cached.json` by `repro bench --check`.
pub fn run_cached_trajectory(params: &TrialParams) -> TrajectoryReport {
    run_trajectory_with(params, run_cached_trial)
}

fn run_trajectory_with(
    params: &TrialParams,
    run: impl Fn(u64, u64, f64) -> TrialMetrics,
) -> TrajectoryReport {
    let mut trials = Vec::with_capacity(params.trials);
    for i in 0..params.warmup + params.trials {
        let t = run(
            params.seed.wrapping_add(i as u64),
            params.rounds,
            params.latency_scale,
        );
        if i >= params.warmup {
            trials.push(t);
        }
    }
    let mut merged = Histogram::new();
    let mut attributions = Vec::new();
    for t in &trials {
        for b in &t.attributions {
            merged.record(b.total_ns);
        }
        attributions.extend(t.attributions.iter().cloned());
    }
    let bins = merged.bins();
    let decomposition = decompose(&attributions).expect("trajectory retires at least one batch");
    let p50_ci = bootstrap_quantile_ci(&bins, 0.5, 200, 0.05, params.seed).expect("non-empty bins");
    let p99_ci =
        bootstrap_quantile_ci(&bins, 0.99, 200, 0.05, params.seed).expect("non-empty bins");
    TrajectoryReport {
        params: *params,
        p50_ns: merged.quantile(0.5),
        p99_ns: merged.quantile(0.99),
        mean_batch_ns: binned_mean(&bins),
        p50_ci,
        p99_ci,
        decomposition,
        bins,
        trials,
    }
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

/// A committed baseline: the merged bins and headline metrics of a past
/// trajectory run on the same parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    /// Merged histogram bins of per-batch latency.
    pub bins: Vec<(u64, u64)>,
    /// Merged p50, ns.
    pub p50_ns: u64,
    /// Merged p99, ns.
    pub p99_ns: u64,
    /// Merged mean, ns.
    pub mean_batch_ns: f64,
    /// Mean ns per queue-delay component, indexed by [`Stage::index`].
    pub mean_component_ns: [f64; Stage::ALL.len()],
}

/// Serializes a report as the committed baseline file. All values are
/// integers or short decimals well under 2^53, so the serde-free parser
/// round-trips them exactly.
pub fn baseline_json(report: &TrajectoryReport) -> String {
    let p = &report.params;
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": {BASELINE_SCHEMA},");
    let _ = writeln!(
        out,
        "  \"params\": {{\"trials\": {}, \"warmup\": {}, \"seed\": {}, \"rounds\": {}}},",
        p.trials, p.warmup, p.seed, p.rounds
    );
    let _ = writeln!(out, "  \"p50_ns\": {},", report.p50_ns);
    let _ = writeln!(out, "  \"p99_ns\": {},", report.p99_ns);
    let _ = writeln!(out, "  \"mean_batch_ns\": {:.1},", report.mean_batch_ns);
    out.push_str("  \"mean_component_ns\": {");
    for (i, s) in Stage::ALL.iter().enumerate() {
        let comma = if i > 0 { ", " } else { "" };
        let _ = write!(
            out,
            "{comma}\"{}\": {:.1}",
            component_name(*s),
            report.decomposition.mean_ns[s.index()]
        );
    }
    out.push_str("},\n  \"bins\": [");
    for (i, (low, count)) in report.bins.iter().enumerate() {
        let comma = if i > 0 { ", " } else { "" };
        let _ = write!(out, "{comma}[{low}, {count}]");
    }
    out.push_str("]\n}\n");
    out
}

/// Parses a baseline file. Numeric fidelity is safe: every stored value
/// fits an f64 mantissa.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let json = parse_json(text)?;
    let schema = json
        .get("schema")
        .and_then(Json::as_f64)
        .ok_or("baseline missing 'schema'")? as u64;
    if schema != BASELINE_SCHEMA {
        return Err(format!(
            "baseline schema {schema} != supported {BASELINE_SCHEMA} \
             (regenerate with 'repro bench --update-baselines')"
        ));
    }
    let num = |key: &str| -> Result<f64, String> {
        json.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("baseline missing '{key}'"))
    };
    let bins = json
        .get("bins")
        .and_then(Json::as_arr)
        .ok_or("baseline missing 'bins'")?
        .iter()
        .map(|pair| {
            let p = pair.as_arr().filter(|p| p.len() == 2);
            match p {
                Some(p) => Ok((
                    p[0].as_f64().ok_or("non-numeric bin low")? as u64,
                    p[1].as_f64().ok_or("non-numeric bin count")? as u64,
                )),
                None => Err("bin is not a [low, count] pair".to_string()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let comps = json
        .get("mean_component_ns")
        .ok_or("baseline missing 'mean_component_ns'")?;
    let mut mean_component_ns = [0.0; Stage::ALL.len()];
    for s in Stage::ALL {
        mean_component_ns[s.index()] = comps
            .get(component_name(s))
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("baseline missing component '{}'", component_name(s)))?;
    }
    Ok(Baseline {
        bins,
        p50_ns: num("p50_ns")? as u64,
        p99_ns: num("p99_ns")? as u64,
        mean_batch_ns: num("mean_batch_ns")?,
        mean_component_ns,
    })
}

// ---------------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------------

/// Decision thresholds of the regression gate.
///
/// A run is flagged as regressed when **either** detector fires:
/// * the Mann-Whitney z over the merged bins exceeds `z_threshold`
///   (current stochastically slower than baseline) — catches dense,
///   whole-distribution shifts with statistical confidence, **or**
/// * the relative p50 **or** p99 shift exceeds `min_rel_shift` — catches
///   tail-only regressions that Mann-Whitney cannot power at these sample
///   sizes. The tail arm matters in this pipelined system: a device 20%
///   slower across the board is largely absorbed by CPU/device overlap
///   near the median (measured p50 shift ~3%, within a log-linear bucket)
///   but surfaces whole in the tail (p99 +13–15%), leaving z ≈ 1–2 even
///   at hundreds of batches per side because most histogram mass never
///   moves.
///
/// Using OR instead of AND does not make the gate flaky: the DES is
/// deterministic, so a baseline-identical rerun reproduces the bins
/// bit-for-bit (z = 0, shifts = 0) and passes structurally, not by luck.
/// `min_rel_shift` at 5% sits above the histogram's ~3% bucket
/// quantization, so a one-bucket wobble alone cannot fire the shift arm.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// Mann-Whitney z threshold (≈ one-sided p < 0.001 at 3.0).
    pub z_threshold: f64,
    /// Minimum relative p50-or-p99 shift (0.05 = 5%) to call a regression.
    pub min_rel_shift: f64,
    /// Bootstrap resamples for the reported CIs.
    pub resamples: usize,
    /// Two-sided CI miss probability.
    pub alpha: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            z_threshold: 3.0,
            min_rel_shift: 0.05,
            resamples: 200,
            alpha: 0.05,
        }
    }
}

/// Per-component baseline-vs-current delta in the gate report.
#[derive(Clone, Debug)]
pub struct ComponentDelta {
    /// Queue-delay component name ([`component_name`]).
    pub name: &'static str,
    /// Baseline mean ns per batch in this component.
    pub baseline_ns: f64,
    /// Current mean ns per batch in this component.
    pub current_ns: f64,
}

impl ComponentDelta {
    /// Relative change vs baseline (0.2 = +20%); 0 when the baseline
    /// component is empty.
    pub fn rel_delta(&self) -> f64 {
        if self.baseline_ns <= 0.0 {
            return 0.0;
        }
        self.current_ns / self.baseline_ns - 1.0
    }
}

/// Outcome of gating a trajectory report against a baseline.
#[derive(Clone, Debug)]
pub struct GateOutcome {
    /// Whether the gate flags a regression.
    pub regressed: bool,
    /// The Mann-Whitney test over the merged bins (None only for empty
    /// inputs, which cannot happen through [`run_trajectory`]).
    pub mw: Option<MannWhitney>,
    /// Relative p50 shift vs baseline (positive = slower).
    pub rel_shift_p50: f64,
    /// Relative p99 shift vs baseline.
    pub rel_shift_p99: f64,
    /// Whether the baseline p50 falls outside the current p50's
    /// bootstrap CI (reported, not part of the decision rule).
    pub ci_excludes_baseline: bool,
    /// Per-component deltas, stage order.
    pub components: Vec<ComponentDelta>,
}

impl GateOutcome {
    /// The component with the largest absolute ns increase — where the
    /// regression went, in queue-delay terms.
    pub fn dominant_shift(&self) -> Option<&ComponentDelta> {
        self.components
            .iter()
            .max_by(|a, b| {
                let da = a.current_ns - a.baseline_ns;
                let db = b.current_ns - b.baseline_ns;
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .filter(|c| c.current_ns > c.baseline_ns)
    }

    /// Renders the verdict plus the per-stage attribution table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let z = self.mw.as_ref().map_or(0.0, |m| m.z);
        let _ = writeln!(
            out,
            "gate: {} (z = {:.2}, p50 shift {:+.1}%, p99 shift {:+.1}%, \
             CI excludes baseline p50: {})",
            if self.regressed { "REGRESSED" } else { "ok" },
            z,
            self.rel_shift_p50 * 100.0,
            self.rel_shift_p99 * 100.0,
            self.ci_excludes_baseline
        );
        let _ = writeln!(
            out,
            "{:<14} {:>14} {:>14} {:>9}",
            "component", "baseline ns", "current ns", "delta"
        );
        for c in &self.components {
            let _ = writeln!(
                out,
                "{:<14} {:>14.0} {:>14.0} {:>8.1}%",
                c.name,
                c.baseline_ns,
                c.current_ns,
                c.rel_delta() * 100.0
            );
        }
        if let Some(dom) = self.dominant_shift() {
            let _ = writeln!(
                out,
                "largest shift: {} ({:+.0} ns/batch, {:+.1}%)",
                dom.name,
                dom.current_ns - dom.baseline_ns,
                dom.rel_delta() * 100.0
            );
        }
        out
    }

    /// The machine-readable diff report (`baseline_diff.json`, uploaded
    /// as a CI artifact when the gate fails).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let z = self.mw.as_ref().map_or(0.0, |m| m.z);
        let _ = write!(
            out,
            "{{\"regressed\": {}, \"z\": {:.3}, \"rel_shift_p50\": {:.4}, \
             \"rel_shift_p99\": {:.4}, \"ci_excludes_baseline\": {}, \
             \"components\": {{",
            self.regressed, z, self.rel_shift_p50, self.rel_shift_p99, self.ci_excludes_baseline
        );
        for (i, c) in self.components.iter().enumerate() {
            let comma = if i > 0 { ", " } else { "" };
            let _ = write!(
                out,
                "{comma}\"{}\": {{\"baseline_ns\": {:.1}, \"current_ns\": {:.1}, \
                 \"rel_delta\": {:.4}}}",
                c.name,
                c.baseline_ns,
                c.current_ns,
                c.rel_delta()
            );
        }
        out.push_str("}, \"dominant_shift\": ");
        match self.dominant_shift() {
            Some(d) => {
                let _ = write!(out, "\"{}\"", d.name);
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// Gates a trajectory report against a baseline.
pub fn check(report: &TrajectoryReport, baseline: &Baseline, gate: &GateConfig) -> GateOutcome {
    let mw = mann_whitney(&baseline.bins, &report.bins);
    let rel = |base: u64, cur: u64| {
        if base == 0 {
            0.0
        } else {
            cur as f64 / base as f64 - 1.0
        }
    };
    let rel_shift_p50 = rel(baseline.p50_ns, binned_quantile(&report.bins, 0.5));
    let rel_shift_p99 = rel(baseline.p99_ns, binned_quantile(&report.bins, 0.99));
    let slower = mw
        .as_ref()
        .is_some_and(|m| m.slower_than_baseline(gate.z_threshold));
    let components = Stage::ALL
        .iter()
        .map(|s| ComponentDelta {
            name: component_name(*s),
            baseline_ns: baseline.mean_component_ns[s.index()],
            current_ns: report.decomposition.mean_ns[s.index()],
        })
        .collect();
    GateOutcome {
        regressed: slower || rel_shift_p50.max(rel_shift_p99) > gate.min_rel_shift,
        mw,
        rel_shift_p50,
        rel_shift_p99,
        ci_excludes_baseline: report.p50_ci.excludes(baseline.p50_ns),
        components,
    }
}

// ---------------------------------------------------------------------------
// BENCH_repro.json trajectory append
// ---------------------------------------------------------------------------

/// One run's entry in `BENCH_repro.json`'s `trajectory` array.
pub fn trajectory_entry_json(report: &TrajectoryReport, git_sha: &str, unix_time: u64) -> String {
    let p = &report.params;
    format!(
        "{{\"git_sha\": \"{}\", \"unix_time\": {}, \"seed\": {}, \"trials\": {}, \
         \"rounds\": {}, \"latency_scale\": {:.2}, \"p50_ns\": {}, \"p99_ns\": {}, \
         \"mean_batch_ns\": {:.1}, \"dominant_mean\": \"{}\"}}",
        git_sha.escape_default(),
        unix_time,
        p.seed,
        p.trials,
        p.rounds,
        p.latency_scale,
        report.p50_ns,
        report.p99_ns,
        report.mean_batch_ns,
        component_name(report.decomposition.dominant_mean())
    )
}

/// Splits a JSON object's top-level `"key": value` pairs **textually**,
/// returning each value's raw source text. This is how `BENCH_repro.json`
/// is merged without a parse → reserialize round trip (the serde-free
/// parser holds numbers as f64, which would corrupt 64-bit counters).
pub fn split_top_level(json: &str) -> Option<Vec<(String, String)>> {
    let bytes = json.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while bytes
            .get(*i)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(b'}') => return Some(out),
            Some(b',') if !out.is_empty() => {
                i += 1;
                skip_ws(&mut i);
            }
            _ => {}
        }
        if bytes.get(i) == Some(&b'}') {
            return Some(out);
        }
        // Key.
        if bytes.get(i) != Some(&b'"') {
            return None;
        }
        let key_start = i + 1;
        i += 1;
        while let Some(&b) = bytes.get(i) {
            match b {
                b'\\' => i += 2,
                b'"' => break,
                _ => i += 1,
            }
        }
        let key = json.get(key_start..i)?.to_string();
        i += 1;
        skip_ws(&mut i);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i += 1;
        skip_ws(&mut i);
        // Value: balance braces/brackets outside strings.
        let val_start = i;
        let mut depth = 0i64;
        let mut in_str = false;
        loop {
            let &b = bytes.get(i)?;
            if in_str {
                match b {
                    b'\\' => i += 1,
                    b'"' => in_str = false,
                    _ => {}
                }
            } else {
                match b {
                    b'"' => in_str = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' if depth > 0 => depth -= 1,
                    b',' | b'}' | b']' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        out.push((key, json.get(val_start..i)?.trim_end().to_string()));
    }
}

/// Merges a freshly generated `BENCH_repro.json` body with the previous
/// file's contents: fresh sections win, prior sections absent from the
/// fresh body are preserved verbatim, and the `trajectory` array keeps
/// every prior entry with `entry` appended. `prev = None` (first run)
/// starts the array at one entry.
pub fn merge_bench_json(prev: Option<&str>, fresh: &str, entry: &str) -> String {
    let fresh_sections = split_top_level(fresh).unwrap_or_default();
    let prev_sections = prev.and_then(split_top_level).unwrap_or_default();
    let mut out = String::with_capacity(fresh.len() + entry.len() + 256);
    out.push_str("{\n");
    let mut first = true;
    let mut push = |out: &mut String, key: &str, value: &str| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        let _ = write!(out, "  \"{key}\": {value}");
    };
    for (key, value) in &fresh_sections {
        if key != "trajectory" {
            push(&mut out, key, value);
        }
    }
    for (key, value) in &prev_sections {
        if key != "trajectory" && !fresh_sections.iter().any(|(k, _)| k == key) {
            push(&mut out, key, value);
        }
    }
    // The trajectory array: prior entries (textually preserved) + this run.
    let mut array = String::from("[");
    if let Some((_, prior)) = prev_sections.iter().find(|(k, _)| k == "trajectory") {
        let inner = prior
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.trim_end().strip_suffix(']'))
            .map(str::trim)
            .unwrap_or("");
        if !inner.is_empty() {
            array.push_str(inner);
            array.push_str(", ");
        }
    }
    array.push_str(entry);
    array.push(']');
    push(&mut out, "trajectory", &array);
    out.push_str("\n}\n");
    out
}

/// Replaces (or inserts) one top-level section of `BENCH_repro.json`,
/// preserving every other section — including the `trajectory` array —
/// verbatim. Experiments that own a single section (e.g. `"serving"`)
/// use this instead of [`merge_bench_json`] so they never fabricate a
/// trajectory entry.
pub fn merge_section(prev: Option<&str>, key: &str, value: &str) -> String {
    let mut sections = prev.and_then(split_top_level).unwrap_or_default();
    match sections.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value.to_string(),
        None => sections.push((key.to_string(), value.to_string())),
    }
    let mut out = String::with_capacity(value.len() + 256);
    out.push_str("{\n");
    let mut first = true;
    for (k, v) in &sections {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        let _ = write!(out, "  \"{k}\": {v}");
    }
    out.push_str("\n}\n");
    out
}

/// Best-effort commit id for trajectory entries: `git rev-parse` in the
/// current directory, then `GITHUB_SHA`, then `"unknown"`.
pub fn current_git_sha() -> String {
    if let Ok(output) = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
    {
        if output.status.success() {
            if let Ok(s) = String::from_utf8(output.stdout) {
                let s = s.trim();
                if !s.is_empty() {
                    return s.to_string();
                }
            }
        }
    }
    std::env::var("GITHUB_SHA")
        .ok()
        .filter(|s| !s.is_empty())
        .map(|s| s.chars().take(12).collect())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TrialParams {
        TrialParams {
            trials: 2,
            warmup: 1,
            rounds: 4,
            ..TrialParams::default()
        }
    }

    #[test]
    fn trajectory_is_deterministic() {
        let p = small();
        let a = run_trajectory(&p);
        let b = run_trajectory(&p);
        assert_eq!(a.bins, b.bins);
        assert_eq!(a.p50_ns, b.p50_ns);
        assert_eq!(a.p99_ns, b.p99_ns);
        assert!(a.p50_ns > 0);
        assert_eq!(
            a.trials.len(),
            p.trials,
            "warmup trials are discarded from the measured set"
        );
    }

    #[test]
    fn des_lifecycle_covers_every_batch() {
        let p = small();
        let r = run_trajectory(&p);
        let expected = (p.trials as u64) * (p.rounds * N_CHANNELS as u64);
        let attributed: u64 = r.trials.iter().map(|t| t.attributions.len() as u64).sum();
        assert_eq!(attributed, expected, "every retired batch is attributed");
        // In the DES, doorbell and pickup coincide: the doorbell-wait
        // component is structurally zero. Dispatch and submit are NOT —
        // the calibrated CPU pipe charges batch planning on the dispatch
        // pipe and SQE pushes on the worker pipe, so both components are
        // visible exactly as in the threaded driver.
        assert_eq!(r.decomposition.mean_ns[Stage::Pickup.index()], 0.0);
        assert!(
            r.decomposition.mean_ns[Stage::Dispatch.index()] > 0.0,
            "CPU pipe must surface a dispatch component"
        );
        assert!(
            r.decomposition.mean_ns[Stage::Submit.index()] > 0.0,
            "worker CPU must surface a lane-wait component"
        );
        // One worker pushing four channels' SQEs at the paper's per-command
        // cost makes the submission CPU the honest bottleneck of this
        // configuration; device service is the runner-up.
        assert!(matches!(
            r.decomposition.dominant_mean(),
            Stage::Submit | Stage::Complete
        ));
    }

    #[test]
    fn cached_trajectory_is_deterministic_and_gateable() {
        let p = small();
        let a = run_cached_trajectory(&p);
        let b = run_cached_trajectory(&p);
        assert_eq!(a.bins, b.bins, "virtual time replays bit-identically");
        assert_eq!(a.p50_ns, b.p50_ns);
        assert!(a.p50_ns > 0);
        // The cached stage runs on the calibrated CPU pipe too: dispatch
        // and lane-wait are charged, doorbell-wait stays structurally zero.
        assert!(a.decomposition.mean_ns[Stage::Dispatch.index()] > 0.0);
        assert_eq!(a.decomposition.mean_ns[Stage::Pickup.index()], 0.0);
        // The same baseline schema and gate serve cached mode unchanged.
        let baseline = parse_baseline(&baseline_json(&a)).expect("baseline");
        let outcome = check(&a, &baseline, &GateConfig::default());
        assert!(!outcome.regressed, "{}", outcome.render());
    }

    #[test]
    fn cached_trajectory_flags_a_slower_device() {
        let p = small();
        let baseline =
            parse_baseline(&baseline_json(&run_cached_trajectory(&p))).expect("baseline");
        let perturbed = TrialParams {
            latency_scale: 1.5,
            ..p
        };
        let outcome = check(
            &run_cached_trajectory(&perturbed),
            &baseline,
            &GateConfig::default(),
        );
        assert!(outcome.regressed, "{}", outcome.render());
    }

    #[test]
    fn cached_baseline_path_derives_from_the_uncached_one() {
        assert_eq!(
            cached_baseline_path(BASELINE_PATH),
            "bench/baselines/trajectory_cached.json"
        );
        assert_eq!(
            cached_baseline_path("custom/t.json"),
            "custom/t_cached.json"
        );
        assert_eq!(cached_baseline_path("noext"), "noext_cached");
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let r = run_trajectory(&small());
        let json = baseline_json(&r);
        let b = parse_baseline(&json).expect("parses");
        assert_eq!(b.bins, r.bins);
        assert_eq!(b.p50_ns, r.p50_ns);
        assert_eq!(b.p99_ns, r.p99_ns);
        for s in Stage::ALL {
            assert!(
                (b.mean_component_ns[s.index()] - r.decomposition.mean_ns[s.index()]).abs() < 0.1
            );
        }
    }

    #[test]
    fn split_top_level_handles_nesting_and_strings() {
        let json = r#"{"a": {"x": [1, 2, {"y": "},"}]}, "b": 7, "c": "s,tr", "d": []}"#;
        let sections = split_top_level(json).expect("splits");
        let get = |k: &str| {
            sections
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(sections.len(), 4);
        assert_eq!(get("a"), Some(r#"{"x": [1, 2, {"y": "},"}]}"#));
        assert_eq!(get("b"), Some("7"));
        assert_eq!(get("c"), Some(r#""s,tr""#));
        assert_eq!(get("d"), Some("[]"));
    }

    #[test]
    fn merge_preserves_sections_and_appends_trajectory() {
        let prev = r#"{"run": {"old": 1}, "legacy": [5], "trajectory": [{"seed": 1}]}"#;
        let fresh = r#"{"run": {"new": 2}, "cache": {"z": 9}}"#;
        let merged = merge_bench_json(Some(prev), fresh, r#"{"seed": 2}"#);
        let sections = split_top_level(&merged).expect("merged splits");
        let get = |k: &str| {
            sections
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        // Fresh wins; absent prior sections survive.
        assert_eq!(get("run"), Some(r#"{"new": 2}"#));
        assert_eq!(get("cache"), Some(r#"{"z": 9}"#));
        assert_eq!(get("legacy"), Some("[5]"));
        // Trajectory appends.
        assert_eq!(get("trajectory"), Some(r#"[{"seed": 1}, {"seed": 2}]"#));
        // And the result is valid JSON.
        let parsed = parse_json(&merged).expect("valid");
        assert_eq!(
            parsed
                .get("trajectory")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn merge_section_replaces_only_its_key() {
        let prev = r#"{"run": {"old": 1}, "trajectory": [{"seed": 1}], "serving": {"v": 0}}"#;
        let merged = merge_section(Some(prev), "serving", r#"{"v": 1}"#);
        let sections = split_top_level(&merged).expect("merged splits");
        let get = |k: &str| {
            sections
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(get("serving"), Some(r#"{"v": 1}"#));
        assert_eq!(get("run"), Some(r#"{"old": 1}"#));
        // Unlike merge_bench_json, the trajectory array is untouched.
        assert_eq!(get("trajectory"), Some(r#"[{"seed": 1}]"#));
        assert!(parse_json(&merged).is_ok(), "merged output parses");
        // Absent key (or no prior file) inserts.
        let fresh = merge_section(None, "serving", "{}");
        assert_eq!(fresh.trim(), "{\n  \"serving\": {}\n}");
    }

    #[test]
    fn merge_without_prior_file_starts_the_array() {
        let fresh = r#"{"run": {"v": 1}}"#;
        let merged = merge_bench_json(None, fresh, r#"{"seed": 9}"#);
        let parsed = parse_json(&merged).expect("valid");
        assert_eq!(
            parsed
                .get("trajectory")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn unchanged_rerun_passes_the_gate() {
        let r = run_trajectory(&small());
        let baseline = parse_baseline(&baseline_json(&r)).expect("baseline");
        let outcome = check(&r, &baseline, &GateConfig::default());
        assert!(!outcome.regressed, "{}", outcome.render());
        assert_eq!(
            outcome.mw.as_ref().map(|m| m.z),
            Some(0.0),
            "identical bins"
        );
    }

    #[test]
    fn injected_latency_regression_is_flagged_with_attribution() {
        let p = small();
        let base_report = run_trajectory(&p);
        let baseline = parse_baseline(&baseline_json(&base_report)).expect("baseline");
        let perturbed = TrialParams {
            latency_scale: 1.2,
            ..p
        };
        let outcome = check(
            &run_trajectory(&perturbed),
            &baseline,
            &GateConfig::default(),
        );
        assert!(outcome.regressed, "{}", outcome.render());
        assert!(outcome.rel_shift_p50.max(outcome.rel_shift_p99) > 0.05);
        assert_eq!(
            outcome.dominant_shift().map(|c| c.name),
            Some("ssd_service"),
            "a slower device model must be attributed to the ssd_service component"
        );
        assert!(outcome.to_json().contains("\"regressed\": true"));
    }
}
