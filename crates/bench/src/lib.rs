//! # cam-bench — the evaluation harness
//!
//! [`figures`] contains one generator per table/figure of the paper's
//! evaluation (§ IV); each returns a [`Table`] of the same rows/series the
//! paper reports. The `repro` binary prints them:
//!
//! ```text
//! cargo run -p cam-bench --release --bin repro -- all
//! cargo run -p cam-bench --release --bin repro -- fig8 fig9 tab6
//! ```
//!
//! `EXPERIMENTS.md` at the workspace root records paper-vs-measured values
//! for every entry.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache_run;
pub mod calibrate;
pub mod fidelity_run;
pub mod figures;
pub mod health_run;
pub mod mode_run;
pub mod pipeline_run;
pub mod serving_run;
mod table;
pub mod telemetry_run;
pub mod trajectory_run;
pub mod watch;

pub use table::Table;

/// Counts meaningful lines of code (non-empty, not comment-only) — used by
/// Table VI's programmability comparison.
pub fn count_loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*") && *l != "*/")
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counter_skips_blank_and_comments() {
        let src = "fn main() {\n\n// a comment\n    let x = 1; // trailing is fine\n}\n";
        assert_eq!(count_loc(src), 3);
    }
}
