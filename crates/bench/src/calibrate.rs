//! CPU-pipe calibration: measures the threaded engine's per-batch dispatch
//! cost as a function of batch size and fits the linear model
//! ([`CpuPipeModel`]) the DES charges in virtual time.
//!
//! The DES models the poller's fan-out as `base + per_req · requests`
//! nanoseconds on a single dispatcher pipe. Those two constants must come
//! from measurement, not guesswork: this module drives the real
//! `CamContext` poller over a sweep of batch sizes with a flight recorder
//! attached, joins each retired batch's dispatch-stage attribution
//! ([`critical::analyze`]) with its doorbell's request count, and fits the
//! line through the per-size **lower quartiles**. Wall-clock dispatch noise
//! is one-sided — scheduling, frequency scaling, and residual load only
//! ever inflate a sample — so the distribution's floor is the model and
//! everything above it is machine state. The lower quartile shrugs off
//! spikes *within* a sweep; sustained load across a whole sweep (a build
//! still thrashing the machine) inflates even the floor, so the CLI
//! retries the sweep rather than trusting a single fit — which keeps the
//! drift gate meaningful on shared CI runners.
//!
//! `repro calibrate` prints the fitted constants next to the committed
//! ones ([`CpuPipeModel::calibrated`]) and exits nonzero when the
//! *predicted dispatch cost* drifts more than [`DRIFT_TOLERANCE`] at any
//! calibration size. The gate compares predicted costs rather than raw
//! coefficients because the intercept of a two-parameter fit is far
//! noisier than the line it describes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use cam_core::{CamConfig, CamContext, ThreadModel};
use cam_iostacks::{CpuPipeModel, Rig, RigConfig};
use cam_telemetry::critical;
use cam_telemetry::{EventKind, FlightRecorder, Stage};

/// Batch sizes the calibration sweep drives. Spanning 4..=64 requests
/// brackets every batch size the repo's experiments use.
pub const CALIBRATION_SIZES: [u64; 5] = [4, 8, 16, 32, 64];

/// Maximum allowed relative drift of the re-fitted model's predicted
/// dispatch cost from the committed model, at any calibration size.
pub const DRIFT_TOLERANCE: f64 = 0.25;

/// One (batch size → measured dispatch) calibration point.
#[derive(Clone, Copy, Debug)]
pub struct SizePoint {
    /// Requests in the batch.
    pub requests: u64,
    /// Lower-quartile dispatch-stage nanoseconds over the size's samples
    /// (the load-robust floor estimator; see the module docs).
    pub dispatch_ns: u64,
    /// Samples behind the quartile.
    pub samples: usize,
}

/// Result of one calibration run: the sweep's per-size quartile points,
/// the fitted model, and its drift from the committed constants.
#[derive(Clone, Debug)]
pub struct CalibrationReport {
    /// Per-size calibration points, ascending by batch size.
    pub points: Vec<SizePoint>,
    /// Total (batch, dispatch) samples joined from the timeline.
    pub samples: usize,
    /// Model fitted to this run's quartile points.
    pub fitted: CpuPipeModel,
    /// The constants the DES currently charges.
    pub committed: CpuPipeModel,
    /// Worst relative predicted-cost drift across the calibration sizes.
    pub drift: f64,
}

impl CalibrationReport {
    /// True when the re-fit stayed within [`DRIFT_TOLERANCE`] of the
    /// committed model.
    pub fn within_tolerance(&self) -> bool {
        self.drift <= DRIFT_TOLERANCE
    }

    /// Renders the sweep, the fit, and the drift verdict as a table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>18} {:>18} {:>18}",
            "requests", "samples", "p25 (ns)", "fitted (ns)", "committed (ns)"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>18} {:>18} {:>18}",
                p.requests,
                p.samples,
                p.dispatch_ns,
                self.fitted.dispatch_cost(p.requests as u32).as_ns(),
                self.committed.dispatch_cost(p.requests as u32).as_ns(),
            );
        }
        let _ = writeln!(
            out,
            "fitted:    base {} ns + {} ns/request",
            self.fitted.dispatch_base_ns, self.fitted.dispatch_per_req_ns
        );
        let _ = writeln!(
            out,
            "committed: base {} ns + {} ns/request",
            self.committed.dispatch_base_ns, self.committed.dispatch_per_req_ns
        );
        let _ = writeln!(
            out,
            "drift:     {:.1}% (tolerance {:.0}%) — {}",
            self.drift * 100.0,
            DRIFT_TOLERANCE * 100.0,
            if self.within_tolerance() {
                "ok"
            } else {
                "DRIFTED: re-fit and update CpuPipeModel::calibrated()"
            }
        );
        out
    }
}

/// Drives the calibration sweep: `rounds_per_size` prefetch batches at
/// each of [`CALIBRATION_SIZES`] (interleaved, so warmup effects spread
/// across sizes instead of biasing one) on a default 4-SSD rig with a
/// flight recorder, and returns the joined `(requests, dispatch_ns)`
/// samples.
pub fn measure_dispatch(rounds_per_size: u64) -> Vec<(u64, u64)> {
    let rig = Rig::new(RigConfig::default());
    let recorder = Arc::new(FlightRecorder::new());
    let obs = cam_telemetry::Observability {
        recorder: Some(Arc::clone(&recorder)),
        ..Default::default()
    };
    // Pinned to the legacy poller engine: `CpuPipeModel` is fitted on the
    // poller's Dispatch hop, and the drift gate compares against baselines
    // captured there. The thread-per-core engine has no separate hop.
    let cfg = CamConfig {
        thread_model: ThreadModel::CentralPoller,
        ..CamConfig::default()
    };
    let cam = CamContext::attach_observed(&rig, cfg, obs);
    let dev = cam.device();
    let bs = cam.block_size() as usize;
    let max = *CALIBRATION_SIZES.iter().max().expect("sizes") as usize;
    let rbuf = cam.alloc(max * bs).expect("alloc calibration buffer");

    for round in 0..rounds_per_size {
        for (i, &size) in CALIBRATION_SIZES.iter().enumerate() {
            let base = ((round * CALIBRATION_SIZES.len() as u64 + i as u64) * size)
                % (rig.array_blocks() - size);
            let lbas: Vec<u64> = (base..base + size).collect();
            dev.prefetch(&lbas, rbuf.addr()).expect("prefetch");
            dev.prefetch_synchronize().expect("prefetch_synchronize");
        }
    }

    let events = recorder.snapshot();
    // The attribution carries (channel, seq) but not the batch's request
    // count; the doorbell does. Join on the key both sides share.
    let mut requests_by_batch: BTreeMap<(u16, u64), u64> = BTreeMap::new();
    for ev in &events {
        if let EventKind::BatchDoorbell {
            channel,
            seq,
            requests,
            ..
        } = ev.kind
        {
            requests_by_batch.insert((channel, seq), u64::from(requests));
        }
    }
    let report = critical::analyze(&events);
    report
        .batches
        .iter()
        .filter_map(|b| {
            requests_by_batch
                .get(&(b.channel, b.seq))
                .map(|&reqs| (reqs, b.stage_ns[Stage::Dispatch.index()]))
        })
        .collect()
}

/// Collapses raw samples to per-size lower quartiles and least-squares
/// fits `dispatch = base + per_req · requests` through them, with both
/// coefficients clamped to ≥ 0 (a negative intercept or slope is
/// measurement noise, not a model). Returns `None` when fewer than two
/// distinct sizes produced samples.
pub fn fit(samples: &[(u64, u64)]) -> Option<(CpuPipeModel, Vec<SizePoint>)> {
    let mut by_size: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &(reqs, ns) in samples {
        by_size.entry(reqs).or_default().push(ns);
    }
    let points: Vec<SizePoint> = by_size
        .into_iter()
        .map(|(requests, mut v)| {
            v.sort_unstable();
            SizePoint {
                requests,
                dispatch_ns: v[v.len() / 4],
                samples: v.len(),
            }
        })
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.requests as f64).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.dispatch_ns as f64).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for p in &points {
        let dx = p.requests as f64 - mean_x;
        sxx += dx * dx;
        sxy += dx * (p.dispatch_ns as f64 - mean_y);
    }
    let slope = if sxx > 0.0 { (sxy / sxx).max(0.0) } else { 0.0 };
    let base = (mean_y - slope * mean_x).max(0.0);
    Some((
        CpuPipeModel {
            dispatch_base_ns: base.round() as u64,
            dispatch_per_req_ns: slope.round() as u64,
        },
        points,
    ))
}

/// Worst relative difference between two models' predicted dispatch costs
/// across the calibration sizes.
pub fn predicted_drift(fitted: &CpuPipeModel, committed: &CpuPipeModel) -> f64 {
    CALIBRATION_SIZES
        .iter()
        .map(|&s| {
            let f = fitted.dispatch_cost(s as u32).as_ns() as f64;
            let c = committed.dispatch_cost(s as u32).as_ns() as f64;
            if c <= 0.0 {
                if f <= 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (f - c).abs() / c
            }
        })
        .fold(0.0, f64::max)
}

/// Runs the full calibration: sweep, fit, drift check against
/// [`CpuPipeModel::calibrated`]. Returns `None` when the sweep produced
/// too few samples to fit (it never should on a working engine).
pub fn calibrate(rounds_per_size: u64) -> Option<CalibrationReport> {
    let samples = measure_dispatch(rounds_per_size);
    let committed = CpuPipeModel::calibrated();
    let (fitted, points) = fit(&samples)?;
    let drift = predicted_drift(&fitted, &committed);
    Some(CalibrationReport {
        points,
        samples: samples.len(),
        fitted,
        committed,
        drift,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_an_exact_line() {
        // dispatch = 1000 + 50·reqs, three samples per size with the
        // lower quartile at the true value (noise only ever inflates).
        let mut samples = Vec::new();
        for &s in &CALIBRATION_SIZES {
            let true_ns = 1000 + 50 * s;
            samples.push((s, true_ns));
            samples.push((s, true_ns + 9));
            samples.push((s, true_ns + 1_000_000)); // tail outlier: the quartile kills it
        }
        let (m, points) = fit(&samples).expect("fit");
        assert_eq!(points.len(), CALIBRATION_SIZES.len());
        assert_eq!(m.dispatch_per_req_ns, 50);
        assert_eq!(m.dispatch_base_ns, 1000);
    }

    #[test]
    fn fit_clamps_negative_coefficients_to_zero() {
        // Decreasing cost with size: the slope clamps to 0 and the base
        // absorbs the mean.
        let samples = vec![(4u64, 5000u64), (8, 4000), (16, 3000), (32, 2000)];
        let (m, _) = fit(&samples).expect("fit");
        assert_eq!(m.dispatch_per_req_ns, 0);
        assert!(m.dispatch_base_ns > 0);
    }

    #[test]
    fn fit_needs_two_distinct_sizes() {
        assert!(fit(&[(16, 1000), (16, 1200)]).is_none());
        assert!(fit(&[]).is_none());
    }

    #[test]
    fn predicted_drift_is_zero_for_identical_models_and_scales_linearly() {
        let a = CpuPipeModel {
            dispatch_base_ns: 1000,
            dispatch_per_req_ns: 50,
        };
        assert_eq!(predicted_drift(&a, &a), 0.0);
        let b = CpuPipeModel {
            dispatch_base_ns: 1100,
            dispatch_per_req_ns: 55,
        };
        let d = predicted_drift(&b, &a);
        assert!(
            (d - 0.10).abs() < 1e-9,
            "uniform +10% → drift 0.10, got {d}"
        );
    }

    #[test]
    fn measured_sweep_fits_within_tolerance_of_committed() {
        // The drift smoke the CI job runs: a short re-fit on this machine
        // must land near the committed constants. Kept at a modest round
        // count so the test stays fast; `repro calibrate` runs longer.
        let report = calibrate(6).expect("sweep must produce a fit");
        assert!(report.samples >= 20, "only {} samples", report.samples);
        assert!(
            report.points.len() == CALIBRATION_SIZES.len(),
            "every size must contribute: {:?}",
            report.points
        );
        let rendered = report.render();
        assert!(rendered.contains("fitted:"), "{rendered}");
        assert!(rendered.contains("committed:"), "{rendered}");
    }
}
