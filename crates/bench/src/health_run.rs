//! SLO / lane-health experiment: one transient-fault overload, two drivers.
//!
//! SSD 0's media fails every read in a window twice before succeeding
//! ([`FaultPolicy::transient_reads_in`] on the threaded rig, the matched
//! [`DesFaultSpec`] in the DES device model). The retry policy absorbs
//! every fault, so batches retire clean — but the fault storm must walk
//! lane 0 through `Healthy → Degraded → Overloaded` and the end-of-run
//! drain through `→ Recovered`, and the [`SloTracker`] must report a burn
//! rate above 1 (the latency target is set below what the overloaded run
//! can deliver).
//!
//! Because lane-health transitions are gated only on protocol decisions
//! (see `cam_protocol::health`), the `(ssd, from, to, faults)` sequence
//! must be *identical* across the threaded and DES drivers — CI asserts
//! exactly that on the `"slo"` section of `BENCH_repro.json`.

use std::fmt::Write as _;
use std::sync::Arc;

use cam_blockdev::{BlockGeometry, BlockStore, FaultPolicy, FaultyStore, SparseMemStore};
use cam_core::{CamConfig, CamContext, ChannelOp, ThreadModel};
use cam_iostacks::cam_des::{
    run_cam_des_obs, CamDesBatch, CamDesConfig, CamDesObs, CpuPipeModel, DesFaultSpec,
};
use cam_iostacks::des::cam_thread_cost;
use cam_iostacks::{Rig, RigConfig};
use cam_nvme::SsdModel;
use cam_protocol::RetryPolicy;
use cam_telemetry::{
    clock, health_state_label, EventKind, FlightRecorder, MetricsRegistry, Observability,
    SloConfig, SloTracker,
};

/// SSDs in the array; SSD 0 carries the faults, SSD 1 stays healthy.
pub const N_SSDS: usize = 2;
/// Faulty device-LBA window on SSD 0.
const FAULT_LBAS: u64 = 16;
/// Transient failures per LBA before reads succeed.
const FAIL_TIMES: u32 = 2;
/// Retry budget — above `FAIL_TIMES`, so every batch retires clean.
const MAX_RETRIES: u32 = 3;
const RETRY_BACKOFF_NS: u64 = 1_000;
/// Batches driven through the single channel.
const ROUNDS: usize = 12;
/// Requests per batch: LBAs `0..32` with stripe 1 put device LBAs
/// `0..16` on each SSD — SSD 0's half is exactly the faulty window.
const BATCH_REQS: u64 = 2 * FAULT_LBAS;
const BLOCK_SIZE: u32 = 4096;

/// A latency target no batch can meet (doorbell→retire is tens of
/// microseconds on either timeline), so the bad fraction is 1.0 and the
/// burn rate is deterministically `1 / error_budget` on both drivers.
fn slo_config() -> SloConfig {
    SloConfig {
        latency_target_ns: 1_000,
        error_budget: 0.01,
        ..SloConfig::default()
    }
}

/// One lane-health transition, reduced to its driver-independent key.
pub type TransitionKey = (u16, u8, u8, u64);

/// One driver's view of the overload run.
pub struct HealthDriverReport {
    /// Lane-health transitions in occurrence order.
    pub transitions: Vec<TransitionKey>,
    /// Short-window burn rate on channel 0 at end of run.
    pub burn_short: f64,
    /// Long-window burn rate on channel 0 at end of run.
    pub burn_long: f64,
    /// Protocol retries the run decided.
    pub retries: u64,
    /// Transient faults the device layer injected.
    pub faults: u64,
    /// Batches retired.
    pub batches: u64,
}

/// The two-driver comparison.
pub struct HealthReport {
    /// The threaded functional driver.
    pub functional: HealthDriverReport,
    /// The DES driver on the same fault schedule.
    pub des: HealthDriverReport,
}

impl HealthReport {
    /// Whether both drivers produced the identical transition sequence.
    pub fn sequences_match(&self) -> bool {
        self.functional.transitions == self.des.transitions
    }

    /// Whether lane 0 passed through `Overloaded` and ended `Recovered`.
    pub fn overloaded_then_recovered(&self) -> bool {
        let through = |ts: &[TransitionKey]| {
            ts.iter().any(|&(_, _, to, _)| to == 2)
                && ts.last().is_some_and(|&(_, _, to, _)| to == 3)
        };
        through(&self.functional.transitions) && through(&self.des.transitions)
    }

    /// Whether both drivers burned more than their whole error budget.
    pub fn burn_exceeds_one(&self) -> bool {
        self.functional.burn_short.max(self.functional.burn_long) > 1.0
            && self.des.burn_short.max(self.des.burn_long) > 1.0
    }
}

/// The matched workload: `ROUNDS` batches of single-block reads over
/// array LBAs `0..BATCH_REQS` on one channel.
fn workload() -> Vec<Vec<CamDesBatch>> {
    vec![vec![
        CamDesBatch {
            lbas: (0..BATCH_REQS).collect(),
            blocks: 1,
        };
        ROUNDS
    ]]
}

/// Runs the overload workload on both drivers and assembles the report.
pub fn run_health_experiment() -> HealthReport {
    HealthReport {
        functional: run_functional(),
        des: run_des(),
    }
}

fn run_functional() -> HealthDriverReport {
    let rig_cfg = RigConfig {
        n_ssds: N_SSDS,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    };
    assert_eq!(rig_cfg.block_size, BLOCK_SIZE);
    let faulty = Arc::new(FaultyStore::new(
        Arc::new(SparseMemStore::new(BlockGeometry::new(
            rig_cfg.block_size,
            rig_cfg.blocks_per_ssd,
        ))),
        FaultPolicy::transient_reads_in(0, FAULT_LBAS, FAIL_TIMES),
    ));
    let mut stores: Vec<Arc<dyn BlockStore>> = vec![Arc::clone(&faulty) as Arc<dyn BlockStore>];
    for _ in 1..N_SSDS {
        stores.push(Arc::new(SparseMemStore::new(BlockGeometry::new(
            rig_cfg.block_size,
            rig_cfg.blocks_per_ssd,
        ))));
    }
    let rig = Rig::with_stores(rig_cfg, stores);

    let registry = Arc::new(MetricsRegistry::new());
    let recorder = Arc::new(FlightRecorder::new());
    let slo = Arc::new(SloTracker::new(slo_config(), 1));
    let obs = Observability::recorded(Arc::clone(&registry), Arc::clone(&recorder))
        .with_slo(Arc::clone(&slo));
    let cfg = CamConfig {
        n_channels: 1,
        workers: Some(1),
        max_retries: MAX_RETRIES,
        retry_backoff_ns: RETRY_BACKOFF_NS,
        // Pinned to the legacy poller engine so the transition sequence
        // this run emits stays byte-comparable to the DES baseline that CI
        // diffs against.
        thread_model: ThreadModel::CentralPoller,
        ..CamConfig::default()
    };
    let cam = CamContext::attach_observed(&rig, cfg, obs);
    let dev = cam.device();
    let buf = cam
        .alloc(BATCH_REQS as usize * BLOCK_SIZE as usize)
        .unwrap();
    let addr = buf.addr();
    for batch in &workload()[0] {
        let ticket = dev
            .submit_scatter(
                0,
                ChannelOp::Read,
                &batch.lbas,
                |i| addr + (i as u64) * u64::from(BLOCK_SIZE),
                1,
            )
            .expect("submit");
        ticket.wait().expect("transient faults retire clean");
    }
    let stats = cam.stats();
    // Stopping the engine drains the lanes — the `→ Recovered` transition
    // lands in the recorder before we snapshot it.
    drop(cam);

    let transitions = transitions_from_events(&recorder);
    let burn = slo.burn_rate(0, clock::now_ns());
    HealthDriverReport {
        transitions,
        burn_short: burn.short,
        burn_long: burn.long,
        retries: stats.retries,
        faults: faulty.injected(),
        batches: stats.batches,
    }
}

fn run_des() -> HealthDriverReport {
    let slo = Arc::new(SloTracker::new(slo_config(), 1));
    let obs = CamDesObs {
        windows: None,
        slo: Some(Arc::clone(&slo)),
        lifecycle: false,
    };
    let r = run_cam_des_obs(
        CamDesConfig {
            n_ssds: N_SSDS,
            block_size: BLOCK_SIZE,
            stripe_blocks: 1,
            op: ChannelOp::Read,
            threads: 1,
            queue_depth: CamConfig::default().queue_depth,
            pipelined: true,
            thread_cost: cam_thread_cost(N_SSDS as f64),
            cpu_pipe: CpuPipeModel::calibrated(),
            host_gbps: 21.0,
            retry: RetryPolicy {
                max_retries: MAX_RETRIES,
                backoff_base_ns: RETRY_BACKOFF_NS,
                deadline_ns: None,
            },
            fault: Some(DesFaultSpec::transient_reads_in(
                0, 0, FAULT_LBAS, FAIL_TIMES,
            )),
            ssd_model: SsdModel::p5510(),
        },
        workload(),
        None,
        obs,
    );
    let burn = slo.burn_rate(0, r.duration.as_ns());
    HealthDriverReport {
        transitions: r
            .transitions
            .iter()
            .map(|t| (t.ssd as u16, t.from.code(), t.to.code(), t.faults))
            .collect(),
        burn_short: burn.short,
        burn_long: burn.long,
        retries: r.decisions.retries,
        faults: r.faults_injected,
        batches: r.batches,
    }
}

/// Extracts the `(ssd, from, to, faults)` sequence from a threaded run's
/// flight-recorder timeline.
pub fn transitions_from_events(recorder: &FlightRecorder) -> Vec<TransitionKey> {
    recorder
        .snapshot()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::LaneHealth {
                ssd,
                from,
                to,
                retries,
            } => Some((ssd, from, to, retries)),
            _ => None,
        })
        .collect()
}

/// The `"slo"` section of `BENCH_repro.json`.
pub fn slo_section_json(report: &HealthReport) -> String {
    let cfg = slo_config();
    let driver = |d: &HealthDriverReport| {
        let transitions = d
            .transitions
            .iter()
            .map(|&(ssd, from, to, faults)| {
                format!(
                    "{{\"ssd\": {ssd}, \"from\": \"{}\", \"to\": \"{}\", \"faults\": {faults}}}",
                    health_state_label(from),
                    health_state_label(to)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"burn_short\": {:.2}, \"burn_long\": {:.2}, \"retries\": {}, \
             \"faults_injected\": {}, \"batches\": {}, \"transitions\": [{transitions}]}}",
            d.burn_short, d.burn_long, d.retries, d.faults, d.batches
        )
    };
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "    \"target\": {{\"latency_ns\": {}, \"error_budget\": {}, \
         \"short_window_ns\": {}, \"long_window_ns\": {}}},",
        cfg.latency_target_ns,
        cfg.error_budget,
        cfg.short.window_ns(),
        cfg.long.window_ns()
    );
    let _ = writeln!(out, "    \"functional\": {},", driver(&report.functional));
    let _ = writeln!(out, "    \"des\": {},", driver(&report.des));
    let _ = writeln!(
        out,
        "    \"agreement\": {{\"sequences_match\": {}, \"burn_exceeds_one\": {}, \
         \"overloaded_then_recovered\": {}}}",
        report.sequences_match(),
        report.burn_exceeds_one(),
        report.overloaded_then_recovered()
    );
    out.push_str("  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_walks_the_lane_and_burns_budget_identically_on_both_drivers() {
        let report = run_health_experiment();
        // HealthConfig::default() escalates at 8 episode faults; the run
        // injects 16 LBAs × 2 failures = 32 faults on lane 0.
        let expected: Vec<TransitionKey> = vec![
            (0, 0, 1, 1),                                  // Healthy → Degraded
            (0, 1, 2, 8),                                  // Degraded → Overloaded
            (0, 2, 3, FAULT_LBAS * u64::from(FAIL_TIMES)), // drain → Recovered
        ];
        assert_eq!(
            report.des.transitions, expected,
            "DES transition sequence diverged"
        );
        assert_eq!(
            report.functional.transitions, expected,
            "functional transition sequence diverged"
        );
        assert!(report.sequences_match());
        assert!(report.overloaded_then_recovered());
        assert_eq!(report.functional.retries, report.des.retries);
        assert_eq!(report.functional.faults, report.des.faults);
        assert_eq!(report.functional.batches, ROUNDS as u64);
        assert_eq!(report.des.batches, ROUNDS as u64);
        assert!(
            report.burn_exceeds_one(),
            "burn: functional {:.1}/{:.1}, des {:.1}/{:.1}",
            report.functional.burn_short,
            report.functional.burn_long,
            report.des.burn_short,
            report.des.burn_long
        );

        let json = slo_section_json(&report);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"target\"",
            "\"functional\"",
            "\"des\"",
            "\"sequences_match\": true",
            "\"burn_exceeds_one\": true",
            "\"overloaded_then_recovered\": true",
            "\"to\": \"overloaded\"",
            "\"to\": \"recovered\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
