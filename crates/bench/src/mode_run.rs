//! Mode × load sweep: the three engine configurations — blocking,
//! pipelined (both on the legacy central-poller engine), and
//! thread-per-core — driven over the same closed-loop read workload at
//! increasing channel counts, on a RAM-backed rig with *no* injected
//! device latency. With the device fast, the control plane itself is the
//! bottleneck, so the sweep measures exactly what the thread-per-core
//! refactor changes: the doorbell→plan→dispatch hop structure. The legacy
//! modes run their designed shape — one central poller plus
//! `ENGINE_THREADS - 1` reactor workers; the thread-per-core engine runs
//! what its name says — one worker per available core (capped at the same
//! [`ENGINE_THREADS`] budget), with no poller thread at all.
//!
//! Each load point runs [`TRIALS`] times and keeps the best-throughput
//! trial (wall-clock benches on shared CI runners are noisy downward,
//! never upward). Trials are *interleaved across modes* — trial `t` runs
//! every mode back-to-back before trial `t+1` — so a noise burst on a
//! shared runner lands on all modes alike instead of biasing whichever
//! mode ran during it. Alongside the sweep, [`measure_idle_park_ratio`] attaches
//! an idle thread-per-core engine and reads `cam_worker_park_ratio{worker}`
//! — the acceptance signal that idle workers park instead of spinning.
//!
//! The `"mode_load"` section of `BENCH_repro.json` records all of it; the
//! CI perf-gate job asserts that thread-per-core throughput meets or beats
//! the pipelined poller engine at the top load point, and that the idle
//! park ratio clears [`IDLE_PARK_RATIO_FLOOR`].

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cam_core::{CamConfig, CamContext, ChannelOp, ThreadModel};
use cam_iostacks::{Rig, RigConfig};
use cam_telemetry::{MetricsRegistry, Observability};

use crate::Table;

const N_SSDS: usize = 4;
const N_CHANNELS: usize = 4;
/// Control-plane thread ceiling. The legacy modes spend it as one central
/// poller + `ENGINE_THREADS - 1` reactor workers — their designed shape,
/// which cannot go below two threads. The thread-per-core engine sizes
/// itself to the machine instead: one run-to-completion worker per
/// available core, capped at this same ceiling, so it never uses *more*
/// threads than the poller engine and on small hosts uses strictly fewer.
/// That asymmetry is the refactor's claim made measurable: folding pickup
/// and planning into the workers removes the poller thread entirely.
const ENGINE_THREADS: usize = 3;

/// Worker-thread count a mode's `CamConfig` asks for.
fn workers_for(thread_model: ThreadModel) -> usize {
    match thread_model {
        ThreadModel::CentralPoller => ENGINE_THREADS - 1,
        ThreadModel::ThreadPerCore => std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(ENGINE_THREADS),
    }
}
/// Single-block reads per batch.
const BATCH_REQS: usize = 16;
/// Concurrently driven channels per load point.
pub const LOADS: [usize; 3] = [1, 2, 4];
/// Trials per (mode, load) point; the best-throughput trial is kept.
/// Trials interleave across modes (see the module docs).
const TRIALS: usize = 5;
/// The idle-workload park-ratio floor the acceptance criteria (and the CI
/// perf-gate job) assert: idle thread-per-core workers must spend > 90% of
/// the window parked.
pub const IDLE_PARK_RATIO_FLOOR: f64 = 0.9;

/// One (mode, load) measurement — best trial of [`TRIALS`].
#[derive(Clone)]
pub struct ModePoint {
    /// Channels driven concurrently.
    pub load: usize,
    /// Client-observed requests per second.
    pub rps: f64,
    /// Median client-observed batch latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile client-observed batch latency, ns.
    pub p99_ns: u64,
    /// Batches retired.
    pub batches: u64,
}

/// One engine mode's sweep over [`LOADS`].
pub struct ModeReport {
    /// Mode id: `"blocking"`, `"pipelined"`, or `"thread_per_core"`.
    pub mode: &'static str,
    /// One point per entry of [`LOADS`], in order.
    pub points: Vec<ModePoint>,
}

impl ModeReport {
    /// The top-load point (the comparison CI gates on).
    pub fn top(&self) -> &ModePoint {
        self.points.last().expect("sweep has at least one load")
    }
}

/// The full sweep plus the idle park-ratio measurement.
pub struct ModeLoadReport {
    /// Per-mode sweeps, in `[blocking, pipelined, thread_per_core]` order.
    pub modes: Vec<ModeReport>,
    /// Minimum per-worker park ratio of an idle thread-per-core engine
    /// (0..=1).
    pub idle_park_ratio: f64,
    /// Each worker's idle park ratio (0..=1).
    pub idle_park_per_worker: Vec<f64>,
}

impl ModeLoadReport {
    /// The named mode's sweep.
    pub fn mode(&self, name: &str) -> &ModeReport {
        self.modes
            .iter()
            .find(|m| m.mode == name)
            .expect("known mode name")
    }

    /// Thread-per-core over pipelined throughput at the top load point
    /// (≥ 1 = the refactor pays for itself where it matters).
    pub fn top_load_tpc_over_pipelined(&self) -> f64 {
        let pipelined = self.mode("pipelined").top().rps;
        if pipelined <= 0.0 {
            return 0.0;
        }
        self.mode("thread_per_core").top().rps / pipelined
    }
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One trial of one (mode, load) point: `load` closed-loop driver threads,
/// each submitting `rounds` batches of [`BATCH_REQS`] single-block reads
/// on its own channel and waiting for each retire.
fn run_point_once(
    thread_model: ThreadModel,
    pipelined: bool,
    load: usize,
    rounds: u64,
) -> ModePoint {
    let rig = Rig::new(RigConfig {
        n_ssds: N_SSDS,
        ..RigConfig::default()
    });
    let cfg = CamConfig {
        n_channels: N_CHANNELS,
        workers: Some(workers_for(thread_model)),
        pipelined,
        thread_model,
        ..CamConfig::default()
    };
    let registry = Arc::new(MetricsRegistry::new());
    let cam = CamContext::attach_observed(
        &rig,
        cfg,
        Observability::with_registry(Arc::clone(&registry)),
    );
    let bs = cam.block_size() as usize;
    let started = Instant::now();
    let mut lat_ns: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..load)
            .map(|ch| {
                let dev = cam.device();
                let buf = cam.alloc(BATCH_REQS * bs).unwrap();
                s.spawn(move || {
                    // Disjoint per-channel LBA windows; stripe 1 spreads
                    // each batch across all SSDs.
                    let base = ch as u64 * 1024;
                    let mut lat = Vec::with_capacity(rounds as usize);
                    for round in 0..rounds {
                        let lo = base + (round % 64) * BATCH_REQS as u64;
                        let lbas: Vec<u64> = (lo..lo + BATCH_REQS as u64).collect();
                        let t0 = Instant::now();
                        let ticket = dev
                            .submit(ch, ChannelOp::Read, &lbas, buf.addr())
                            .expect("submit");
                        ticket.wait().expect("batch retires cleanly");
                        lat.push(t0.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("driver thread"))
            .collect()
    });
    let elapsed = started.elapsed();
    lat_ns.sort_unstable();
    let batches = registry.snapshot().counter("cam_batches_total");
    let requests = load as u64 * rounds * BATCH_REQS as u64;
    ModePoint {
        load,
        rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ns: quantile(&lat_ns, 0.50),
        p99_ns: quantile(&lat_ns, 0.99),
        batches,
    }
}


/// Attaches a thread-per-core engine, runs one warmup batch, lets the
/// workers go idle for `idle`, and returns each worker's
/// `cam_worker_park_ratio` gauge as a 0..=1 fraction.
pub fn measure_idle_park_ratio(idle: Duration) -> Vec<f64> {
    let rig = Rig::new(RigConfig {
        n_ssds: N_SSDS,
        ..RigConfig::default()
    });
    let registry = Arc::new(MetricsRegistry::new());
    let workers = workers_for(ThreadModel::ThreadPerCore);
    let cam = CamContext::attach_observed(
        &rig,
        CamConfig {
            n_channels: N_CHANNELS,
            workers: Some(workers),
            thread_model: ThreadModel::ThreadPerCore,
            ..CamConfig::default()
        },
        Observability::with_registry(Arc::clone(&registry)),
    );
    let dev = cam.device();
    let buf = cam.alloc(cam.block_size() as usize).unwrap();
    dev.submit(0, ChannelOp::Read, &[0], buf.addr())
        .expect("warmup submit")
        .wait()
        .expect("warmup retires");
    std::thread::sleep(idle);
    let snap = registry.snapshot();
    (0..workers)
        .map(|w| snap.gauge(&format!("cam_worker_park_ratio{{worker=\"{w}\"}}")) as f64 / 1000.0)
        .collect()
}

/// Runs the full mode × load sweep plus the idle park-ratio measurement.
pub fn run_mode_load_experiment(rounds: u64) -> ModeLoadReport {
    let spec: [(&'static str, ThreadModel, bool); 3] = [
        ("blocking", ThreadModel::CentralPoller, false),
        ("pipelined", ThreadModel::CentralPoller, true),
        ("thread_per_core", ThreadModel::ThreadPerCore, true),
    ];
    // Best trial per (mode, load), with trials interleaved across modes so
    // every mode samples the same noise regime on a shared runner.
    let mut best: Vec<Vec<Option<ModePoint>>> = vec![vec![None; LOADS.len()]; spec.len()];
    for (li, &load) in LOADS.iter().enumerate() {
        for _ in 0..TRIALS {
            for (mi, &(_, model, pipelined)) in spec.iter().enumerate() {
                let p = run_point_once(model, pipelined, load, rounds);
                let slot = &mut best[mi][li];
                if slot.as_ref().is_none_or(|b| p.rps > b.rps) {
                    *slot = Some(p);
                }
            }
        }
    }
    let modes = spec
        .iter()
        .zip(best)
        .map(|(&(name, _, _), points)| ModeReport {
            mode: name,
            points: points.into_iter().map(|p| p.expect("TRIALS >= 1")).collect(),
        })
        .collect();
    let idle_park_per_worker = measure_idle_park_ratio(Duration::from_millis(800));
    let idle_park_ratio = idle_park_per_worker
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    ModeLoadReport {
        modes,
        idle_park_ratio,
        idle_park_per_worker,
    }
}

/// The `"mode_load"` section of `BENCH_repro.json`.
pub fn mode_load_section_json(report: &ModeLoadReport) -> String {
    let point = |p: &ModePoint| {
        format!(
            "{{\"load\": {}, \"rps\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \"batches\": {}}}",
            p.load, p.rps, p.p50_ns, p.p99_ns, p.batches
        )
    };
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "    \"workload\": {{\"channels\": {N_CHANNELS}, \"ssds\": {N_SSDS}, \
         \"engine_threads\": {ENGINE_THREADS}, \"tpc_workers\": {}, \
         \"batch_requests\": {BATCH_REQS}, \"loads\": [{}]}},",
        workers_for(ThreadModel::ThreadPerCore),
        LOADS
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("    \"modes\": {\n");
    for (i, m) in report.modes.iter().enumerate() {
        let points = m.points.iter().map(|p| point(p)).collect::<Vec<_>>();
        let _ = writeln!(
            out,
            "      \"{}\": [{}]{}",
            m.mode,
            points.join(", "),
            if i + 1 == report.modes.len() { "" } else { "," }
        );
    }
    out.push_str("    },\n");
    let _ = writeln!(
        out,
        "    \"top_load\": {{\"pipelined_rps\": {:.0}, \"thread_per_core_rps\": {:.0}, \
         \"tpc_over_pipelined\": {:.4}, \"tpc_beats_pipelined\": {}}},",
        report.mode("pipelined").top().rps,
        report.mode("thread_per_core").top().rps,
        report.top_load_tpc_over_pipelined(),
        report.top_load_tpc_over_pipelined() >= 1.0
    );
    let per_worker = report
        .idle_park_per_worker
        .iter()
        .map(|r| format!("{r:.3}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        out,
        "    \"idle\": {{\"park_ratio\": {:.3}, \"per_worker\": [{per_worker}], \
         \"floor\": {IDLE_PARK_RATIO_FLOOR}}}",
        report.idle_park_ratio
    );
    out.push_str("  }");
    out
}

/// The `repro modes` tables: one rps/p50/p99 row per (mode, load), plus
/// the idle park-ratio line.
pub fn mode_load_tables(report: &ModeLoadReport) -> Vec<Table> {
    let mut t = Table::new(
        "Engine mode x load sweep (closed-loop reads, RAM-backed rig)",
        &["mode", "load (channels)", "rps", "p50 (us)", "p99 (us)"],
    );
    for m in &report.modes {
        for p in &m.points {
            t.row(vec![
                m.mode.to_string(),
                p.load.to_string(),
                format!("{:.0}", p.rps),
                format!("{:.1}", p.p50_ns as f64 / 1000.0),
                format!("{:.1}", p.p99_ns as f64 / 1000.0),
            ]);
        }
    }
    let mut idle = Table::new(
        "Idle thread-per-core park ratio (parked share of the rolling window)",
        &["worker", "park ratio"],
    );
    for (w, r) in report.idle_park_per_worker.iter().enumerate() {
        idle.row(vec![w.to_string(), format!("{r:.3}")]);
    }
    idle.row(vec![
        "min (gated)".into(),
        format!("{:.3}", report.idle_park_ratio),
    ]);
    vec![t, idle]
}

/// The `repro modes` verb: runs the sweep, writes the `"mode_load"`
/// section of `BENCH_repro.json`, and returns the tables.
pub fn modes(p: &crate::figures::BenchParams) -> Vec<Table> {
    // Long enough per trial (~tens of ms at the measured rates) that a
    // scheduler burst on a shared runner averages out instead of deciding
    // the comparison.
    let rounds = p.trials.map(|t| t as u64 * 64).unwrap_or(192);
    let report = run_mode_load_experiment(rounds);
    let path = "BENCH_repro.json";
    let prev = std::fs::read_to_string(path).ok();
    let merged = crate::trajectory_run::merge_section(
        prev.as_deref(),
        "mode_load",
        &mode_load_section_json(&report),
    );
    if let Err(e) = std::fs::write(path, merged) {
        eprintln!("warning: could not write mode_load section to {path}: {e}");
    }
    mode_load_tables(&report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_mode_and_load_and_sections_cleanly() {
        let report = run_mode_load_experiment(12);
        assert_eq!(report.modes.len(), 3);
        for m in &report.modes {
            assert_eq!(m.points.len(), LOADS.len());
            for (p, &load) in m.points.iter().zip(LOADS.iter()) {
                assert_eq!(p.load, load);
                assert!(p.rps > 0.0, "{}@{load}: no throughput", m.mode);
                assert!(p.p50_ns > 0 && p.p99_ns >= p.p50_ns, "{}@{load}", m.mode);
                assert_eq!(p.batches, load as u64 * 12, "{}@{load} batches", m.mode);
            }
        }
        // The engine-structure comparison the refactor is for. The unit
        // test leaves headroom for debug-build and runner noise; the CI
        // perf-gate job asserts the release-build ratio >= 1.0 from the
        // JSON section.
        let ratio = report.top_load_tpc_over_pipelined();
        assert!(
            ratio >= 0.8,
            "thread-per-core collapsed vs pipelined poller: {ratio:.3}x"
        );
        // Idle workers park instead of spinning.
        assert!(
            report.idle_park_ratio > IDLE_PARK_RATIO_FLOOR,
            "idle park ratio {:.3} <= {IDLE_PARK_RATIO_FLOOR}",
            report.idle_park_ratio
        );

        let json = mode_load_section_json(&report);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"workload\"",
            "\"modes\"",
            "\"blocking\"",
            "\"pipelined\"",
            "\"thread_per_core\"",
            "\"top_load\"",
            "\"tpc_over_pipelined\"",
            "\"idle\"",
            "\"park_ratio\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let tables = mode_load_tables(&report);
        assert_eq!(tables.len(), 2);
    }
}
