//! `repro serve` — the multi-tenant KV-cache serving experiment.
//!
//! Three scenarios over the `cam-serving` front-end:
//!
//! * **main** (DES): 1050 Zipf sessions across 4 unequal tenants on the
//!   virtual timeline — the scale run. Admission keeps its default
//!   token-bucket rates, so throttle episodes show up in the per-tenant
//!   stats.
//! * **skew** (DES): one tenant holds ~94% of the sessions and traffic;
//!   the identical workload runs once under DRR and once under FIFO.
//!   The fairness block asserts the headline property: DRR bounds the
//!   cold tenants' p99 near the hot tenant's, while FIFO parks every
//!   cold request behind the hot backlog.
//! * **threaded** (wall clock): a small run on the functional driver with
//!   a live metrics registry, proving the metric schema is identical
//!   across drivers and that the `tenant`-labeled gauges populate.
//!
//! The run writes the `"serving"` section of `BENCH_repro.json` via
//! [`merge_section`](crate::trajectory_run::merge_section) — the
//! trajectory array and every other experiment's section survive
//! untouched.

use std::fmt::Write as _;
use std::sync::Arc;

use cam_serving::{
    run_serving_des, run_serving_threaded, AdmissionConfig, Policy, ServingConfig, ServingCore,
    ServingRun,
};
use cam_telemetry::MetricsRegistry;
use cam_workloads::kv_cache::KvCacheConfig;
use parking_lot::Mutex;

use crate::figures::BenchParams;
use crate::table::{f2, pct, Table};
use crate::trajectory_run::merge_section;

/// SSDs behind the DES scenarios.
const DES_SSDS: usize = 4;
/// SSDs behind the threaded smoke scenario.
const THREADED_SSDS: usize = 2;

/// One scenario's results: the serving stats plus how it was driven.
pub struct ScenarioReport {
    /// `"des"` or `"threaded"`.
    pub driver: &'static str,
    /// Scheduling policy the run used.
    pub policy: Policy,
    /// Sessions per tenant (workload shape, for the report).
    pub sessions: Vec<usize>,
    /// The driver's results.
    pub run: ServingRun,
}

/// Cold-vs-hot fairness derived from the skew scenario's two sub-runs.
pub struct FairnessReport {
    /// Hot tenant's p99 under DRR, ns.
    pub drr_hot_p99_ns: u64,
    /// Worst cold tenant's p99 under DRR, ns.
    pub drr_cold_p99_ns: u64,
    /// Worst cold tenant's p99 under FIFO, ns.
    pub fifo_cold_p99_ns: u64,
}

impl FairnessReport {
    /// The headline bound: DRR keeps the worst cold tenant's p99 within
    /// 2x the hot tenant's p99.
    pub fn drr_bounded(&self) -> bool {
        self.drr_cold_p99_ns <= 2 * self.drr_hot_p99_ns
    }

    /// The baseline contrast: FIFO inflates the cold tenants' p99 to at
    /// least 2x what DRR delivers on the identical workload (in practice
    /// the gap is an order of magnitude — the cold requests queue behind
    /// the hot tenant's entire standing backlog).
    pub fn fifo_starves_cold(&self) -> bool {
        self.fifo_cold_p99_ns >= 2 * self.drr_cold_p99_ns.max(1)
    }
}

/// The full `repro serve` experiment.
pub struct ServingReport {
    /// The 1050-session, 4-tenant DES scale run (DRR).
    pub main: ScenarioReport,
    /// Hot-tenant skew under DRR.
    pub skew_drr: ScenarioReport,
    /// The identical skew workload under FIFO.
    pub skew_fifo: ScenarioReport,
    /// Fairness bounds derived from the two skew sub-runs.
    pub fairness: FairnessReport,
    /// The threaded smoke run (DRR, live registry).
    pub threaded: ScenarioReport,
}

/// The scale workload: 1050 sessions across four unequal tenants, ~10
/// steps per session on average.
fn main_workload(seed: u64) -> KvCacheConfig {
    let mut wl = KvCacheConfig::uniform(4, 1, 1);
    wl.sessions = vec![400, 250, 250, 150];
    wl.steps = vec![4000, 2500, 2500, 1500];
    wl.seed = seed;
    wl
}

/// The hot-tenant workload: tenant 0 holds 970 of 1030 sessions and ~94%
/// of the traffic; tenants 1..3 are the cold bystanders whose latency the
/// scheduler must protect.
fn skew_workload(seed: u64) -> KvCacheConfig {
    let mut wl = KvCacheConfig::uniform(4, 1, 1);
    wl.sessions = vec![970, 20, 20, 20];
    wl.steps = vec![9700, 200, 200, 200];
    wl.seed = seed;
    wl
}

fn run_main(seed: u64) -> ScenarioReport {
    let wl = main_workload(seed);
    let sessions = wl.sessions.clone();
    let cfg = ServingConfig::for_workload(wl, Policy::Drr);
    let core = Arc::new(Mutex::new(ServingCore::new(cfg, None)));
    let (run, _) = run_serving_des(core, DES_SSDS);
    ScenarioReport {
        driver: "des",
        policy: Policy::Drr,
        sessions,
        run,
    }
}

fn run_skew(seed: u64, policy: Policy) -> ScenarioReport {
    let wl = skew_workload(seed);
    let sessions = wl.sessions.clone();
    let mut cfg = ServingConfig::for_workload(wl, policy);
    // The scheduler, not admission, must be the bottleneck: unthrottled
    // buckets let the hot tenant build its full standing backlog.
    cfg.admission = vec![
        AdmissionConfig {
            rate_blocks_per_s: 1e9,
            burst_blocks: 1e9,
        };
        4
    ];
    // A tight GPU budget evicts the cold tenants' sessions between
    // touches, so their decode reads actually page (latency 0 hits would
    // make the p99 comparison vacuous).
    cfg.gpu_budget_blocks = cfg.workload.session_blocks * 8;
    cfg.max_batch_blocks = 128;
    let core = Arc::new(Mutex::new(ServingCore::new(cfg, None)));
    let (run, _) = run_serving_des(core, DES_SSDS);
    ScenarioReport {
        driver: "des",
        policy,
        sessions,
        run,
    }
}

fn run_threaded(seed: u64) -> (ScenarioReport, Arc<MetricsRegistry>) {
    let mut wl = KvCacheConfig::uniform(4, 8, 60);
    wl.seed = seed;
    let sessions = wl.sessions.clone();
    let mut cfg = ServingConfig::for_workload(wl, Policy::Drr);
    // Tight budget so the demand channel carries real paging traffic.
    cfg.gpu_budget_blocks = cfg.workload.session_blocks * 4;
    cfg.max_batch_blocks = 64;
    let registry = Arc::new(MetricsRegistry::new());
    let core = Arc::new(Mutex::new(ServingCore::new(cfg, Some(&registry))));
    let run = run_serving_threaded(core, THREADED_SSDS, Some(Arc::clone(&registry)));
    (
        ScenarioReport {
            driver: "threaded",
            policy: Policy::Drr,
            sessions,
            run,
        },
        registry,
    )
}

/// Worst (maximum) p99 across the cold tenants (1..).
fn worst_cold_p99(s: &ScenarioReport) -> u64 {
    s.run.stats.tenants[1..]
        .iter()
        .map(|t| t.p99_ns)
        .max()
        .unwrap_or(0)
}

/// Runs all three scenarios. Deterministic in `seed` on the DES runs.
pub fn run_serving_experiment(seed: u64) -> ServingReport {
    let main = run_main(seed);
    let skew_drr = run_skew(seed, Policy::Drr);
    let skew_fifo = run_skew(seed, Policy::Fifo);
    let fairness = FairnessReport {
        drr_hot_p99_ns: skew_drr.run.stats.tenants[0].p99_ns,
        drr_cold_p99_ns: worst_cold_p99(&skew_drr),
        fifo_cold_p99_ns: worst_cold_p99(&skew_fifo),
    };
    let (threaded, _registry) = run_threaded(seed);
    ServingReport {
        main,
        skew_drr,
        skew_fifo,
        fairness,
        threaded,
    }
}

fn policy_name(p: Policy) -> &'static str {
    match p {
        Policy::Drr => "drr",
        Policy::Fifo => "fifo",
    }
}

/// One scenario as JSON — the *same* schema for both drivers, by
/// construction (CI diffs the key sets).
fn scenario_json(s: &ScenarioReport) -> String {
    let stats = &s.run.stats;
    let tenants = stats
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            format!(
                "{{\"tenant\": {i}, \"sessions\": {}, \"admitted\": {}, \"throttled\": {}, \
                 \"completed\": {}, \"rps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"burn_short\": {:.2}, \"burn_long\": {:.2}, \"hit_rate\": {:.4}}}",
                s.sessions[i],
                t.admitted,
                t.throttled,
                t.completed,
                t.rps,
                t.p50_ns,
                t.p99_ns,
                t.burn_short,
                t.burn_long,
                t.hit_rate()
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"driver\": \"{}\", \"policy\": \"{}\", \"duration_ns\": {}, \
         \"batches\": {{\"demand\": {}, \"writeback\": {}, \"readahead\": {}}}, \
         \"blocks\": {{\"demand\": {}, \"writeback\": {}, \"readahead\": {}}}, \
         \"evictions\": {}, \"substrate_batches\": {}, \"tenants\": [{tenants}]}}",
        s.driver,
        policy_name(s.policy),
        stats.duration_ns,
        stats.batches[0],
        stats.batches[1],
        stats.batches[2],
        stats.blocks[0],
        stats.blocks[1],
        stats.blocks[2],
        stats.evictions,
        s.run.substrate_batches,
    )
}

/// The `"serving"` section of `BENCH_repro.json`.
pub fn serving_section_json(report: &ServingReport) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    let _ = writeln!(out, "    \"main\": {},", scenario_json(&report.main));
    let _ = writeln!(out, "    \"skew\": {{");
    let _ = writeln!(out, "      \"drr\": {},", scenario_json(&report.skew_drr));
    let _ = writeln!(out, "      \"fifo\": {},", scenario_json(&report.skew_fifo));
    let f = &report.fairness;
    let _ = writeln!(
        out,
        "      \"fairness\": {{\"drr_hot_p99_ns\": {}, \"drr_cold_p99_ns\": {}, \
         \"fifo_cold_p99_ns\": {}, \"drr_bounded\": {}, \"fifo_starves_cold\": {}}}",
        f.drr_hot_p99_ns,
        f.drr_cold_p99_ns,
        f.fifo_cold_p99_ns,
        f.drr_bounded(),
        f.fifo_starves_cold()
    );
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"threaded\": {}", scenario_json(&report.threaded));
    out.push_str("  }");
    out
}

fn scenario_table(title: &str, s: &ScenarioReport) -> Table {
    let mut t = Table::new(
        title,
        &[
            "tenant",
            "sessions",
            "admitted",
            "throttled",
            "done",
            "rps",
            "p50 (us)",
            "p99 (us)",
            "burn",
            "hit rate",
        ],
    );
    for (i, ts) in s.run.stats.tenants.iter().enumerate() {
        t.row(vec![
            i.to_string(),
            s.sessions[i].to_string(),
            ts.admitted.to_string(),
            ts.throttled.to_string(),
            ts.completed.to_string(),
            format!("{:.0}", ts.rps),
            f2(ts.p50_ns as f64 / 1_000.0),
            f2(ts.p99_ns as f64 / 1_000.0),
            f2(ts.burn_short.max(ts.burn_long)),
            pct(ts.hit_rate()),
        ]);
    }
    let stats = &s.run.stats;
    t.note(format!(
        "{} / {}: batches demand {} wb {} ra {}, evictions {}, {:.1} ms {}",
        s.driver,
        policy_name(s.policy),
        stats.batches[0],
        stats.batches[1],
        stats.batches[2],
        stats.evictions,
        stats.duration_ns as f64 / 1e6,
        if s.driver == "des" {
            "virtual"
        } else {
            "wall clock"
        },
    ));
    t
}

/// The `serve` experiment generator: runs the three scenarios, writes the
/// `"serving"` section of `BENCH_repro.json`, and returns the CLI tables.
pub fn serve(p: &BenchParams) -> Vec<Table> {
    let seed = p.seed.unwrap_or(0x005e_5510);
    let report = run_serving_experiment(seed);
    let path = "BENCH_repro.json";
    let prev = std::fs::read_to_string(path).ok();
    let merged = merge_section(prev.as_deref(), "serving", &serving_section_json(&report));
    if let Err(e) = std::fs::write(path, merged) {
        eprintln!("warning: could not write serving section to {path}: {e}");
    }
    let f = &report.fairness;
    let mut skew_drr = scenario_table("skew: hot tenant 0 under DRR", &report.skew_drr);
    skew_drr.note(format!(
        "fairness: drr cold p99 {:.1} us vs hot {:.1} us (bounded: {}); \
         fifo cold p99 {:.1} us (starves: {})",
        f.drr_cold_p99_ns as f64 / 1e3,
        f.drr_hot_p99_ns as f64 / 1e3,
        f.drr_bounded(),
        f.fifo_cold_p99_ns as f64 / 1e3,
        f.fifo_starves_cold()
    ));
    vec![
        scenario_table("serving: 1050 sessions, 4 tenants (DES)", &report.main),
        skew_drr,
        scenario_table("skew: identical workload under FIFO", &report.skew_fifo),
        scenario_table("threaded smoke: 32 sessions, 4 tenants", &report.threaded),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cam_telemetry::trace::{parse_json, Json};

    /// Extracts the sorted key set of a JSON object.
    fn keys(j: &Json) -> Vec<String> {
        match j {
            Json::Obj(pairs) => {
                let mut ks: Vec<String> = pairs.iter().map(|(k, _)| k.clone()).collect();
                ks.sort();
                ks
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn full_experiment_meets_the_acceptance_bar() {
        let report = run_serving_experiment(0x005e_5510);

        // Scale: >= 1000 concurrent Zipf sessions across >= 4 tenants on
        // the DES driver, and every tenant retires its full trace.
        assert!(report.main.sessions.iter().sum::<usize>() >= 1000);
        assert!(report.main.sessions.len() >= 4);
        for (t, &steps) in report
            .main
            .run
            .stats
            .tenants
            .iter()
            .zip(main_workload(0x005e_5510).steps.iter())
        {
            assert_eq!(t.completed, steps as u64, "tenant left steps behind");
            assert!(t.rps > 0.0);
        }

        // Fairness: DRR bounds the cold tenants' p99 to <= 2x the hot
        // tenant's; the FIFO baseline on the identical workload does not.
        let f = &report.fairness;
        assert!(f.drr_cold_p99_ns > 0, "cold tenants must actually page");
        assert!(
            f.drr_bounded(),
            "DRR cold p99 {} vs hot {}",
            f.drr_cold_p99_ns,
            f.drr_hot_p99_ns
        );
        assert!(
            f.fifo_starves_cold(),
            "FIFO cold p99 {} vs DRR cold {}",
            f.fifo_cold_p99_ns,
            f.drr_cold_p99_ns
        );

        // Schema: the DES and threaded sections expose identical keys,
        // top-level and per-tenant.
        let des = parse_json(&scenario_json(&report.main)).expect("des json");
        let thr = parse_json(&scenario_json(&report.threaded)).expect("threaded json");
        assert_eq!(keys(&des), keys(&thr));
        let tenant_keys = |j: &Json| {
            keys(
                j.get("tenants")
                    .and_then(Json::as_arr)
                    .and_then(<[Json]>::first)
                    .expect("tenant entry"),
            )
        };
        assert_eq!(tenant_keys(&des), tenant_keys(&thr));

        // The full section parses and carries every scenario.
        let section = serving_section_json(&report);
        let parsed = parse_json(&section).expect("serving section json");
        for key in ["main", "skew", "threaded"] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
        let fairness = parsed
            .get("skew")
            .and_then(|s| s.get("fairness"))
            .expect("fairness block");
        assert!(fairness.get("drr_bounded").is_some());
    }
}
