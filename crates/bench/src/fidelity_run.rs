//! Model-fidelity experiment: one seeded workload, two drivers of the same
//! protocol layer.
//!
//! The threaded control plane (`cam-core`) and the DES driver
//! (`cam_iostacks::cam_des`) both execute `cam-protocol`'s state machines.
//! This experiment drives a matched multi-channel read workload — with
//! duplicate LBAs and stripe-boundary crossings, so the planner has real
//! decisions to make — through both, in pipelined and blocking mode, and
//! compares:
//!
//! * **Decisions** ([`DecisionCounters`]): batches, requests, dedup drops,
//!   stripe splits, groups, first submissions, retries, timeouts. These are
//!   timing-independent, so all four runs must agree *exactly* with a pure
//!   `plan_batch` replay.
//! * **Timing trends**: per-SSD in-flight depth and doorbell→retire
//!   latency. The rig injects a 200 µs service latency and the DES runs a
//!   device model matched to it ([`rig_matched_ssd_model`]), so the depth
//!   regimes are directly comparable; agreement is judged on the reported
//!   depth relative error and on whether both drivers see the pipelined
//!   reactor beat the blocking baseline.
//! * **Cache decisions** ([`CachedFidelityReport`]): the same seeded
//!   cached read stream through the threaded [`CachedDevice`] and the DES
//!   cached source, pipelined and blocking — every run's
//!   [`CacheDecisionCounters`] must equal the pure
//!   [`replay_read_workload`] exactly.
//!
//! The `"fidelity"` section of `BENCH_repro.json` records all of it; see
//! `docs/TIMING.md` for the methodology.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cam_cache::{CacheConfig, CachedDevice};
use cam_core::{CamConfig, CamContext, ChannelOp, ThreadModel};
use cam_iostacks::cam_des::{
    run_cam_des, run_cam_des_cached, CamDesBatch, CamDesConfig, CamDesObs, CpuPipeModel,
};
use cam_iostacks::des::cam_thread_cost;
use cam_iostacks::{Rig, RigConfig};
use cam_nvme::SsdModel;
use cam_protocol::cache_core::{replay_read_workload, CacheDecisionCounters};
use cam_protocol::{plan_batch, DecisionCounters, PlanConfig};
use cam_telemetry::{EventKind, FlightRecorder, MetricsRegistry, Observability};

/// SSDs in the array (both drivers).
pub const N_SSDS: usize = 4;
/// Channels driven concurrently (both drivers).
pub const N_CHANNELS: usize = 4;
const STRIPE_BLOCKS: u64 = 2;
const BLOCK_SIZE: u32 = 4096;
/// Blocks per request: 2 blocks starting at an odd LBA cross a stripe
/// boundary, so roughly half the surviving requests split.
const BLOCKS_PER_REQ: u32 = 2;
const BATCH_REQS: usize = 16;
/// Per-channel LBA window; 16 picks per batch from 96 slots makes
/// duplicate LBAs (and thus dedup decisions) near-certain.
const LBA_WINDOW: u64 = 96;
/// Injected functional-rig service latency per burst (as in
/// [`crate::pipeline_run`]): slow enough that overlap dominates.
const SERVICE_LATENCY: Duration = Duration::from_micros(200);
/// Default workload seed (`repro --seed` overrides it).
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE;

/// CI tolerance on the **pipelined** per-SSD in-flight depth relative
/// error between drivers ([`FidelityReport::depth_rel_err`]). The DES and
/// the threaded rig measure depth differently (exact time-weighted
/// integral vs. 20 µs wall-clock sampling) and the mock device's
/// burst-sleep service discipline is only approximated by the DES server
/// model, so the depths agree in regime, not in digits: with the DES
/// device matched to the rig's injected service latency
/// ([`rig_matched_ssd_model`]) the seeded workload lands ≈ 0.2–0.35
/// relative error. 0.5 flags a driver whose depth regime collapsed (e.g.
/// pipelining silently lost) while absorbing sampling noise. `cargo test`
/// and the fidelity CI job both assert it.
pub const DEPTH_REL_ERR_TOLERANCE: f64 = 0.5;

/// One driver × mode measurement.
pub struct FidelityModeReport {
    /// Whether the reactor ran pipelined.
    pub pipelined: bool,
    /// Mean doorbell→retire latency, ns (wall-clock or virtual).
    pub mean_read_ns: u64,
    /// Mean in-flight depth per SSD (sampled gauges / time-weighted).
    pub inflight_mean: Vec<f64>,
    /// Peak in-flight depth per SSD.
    pub inflight_peak: Vec<u64>,
    /// Batches retired.
    pub batches: u64,
    /// Protocol decisions the run made.
    pub decisions: DecisionCounters,
}

impl FidelityModeReport {
    /// Mean in-flight depth across the array.
    pub fn depth(&self) -> f64 {
        let n = self.inflight_mean.len().max(1) as f64;
        self.inflight_mean.iter().sum::<f64>() / n
    }
}

/// One driver's pipelined run and blocking baseline.
pub struct FidelityEngineReport {
    /// Measurements with the pipelined reactor.
    pub pipelined: FidelityModeReport,
    /// Measurements with the blocking group-at-a-time baseline.
    pub blocking: FidelityModeReport,
}

impl FidelityEngineReport {
    /// Blocking-over-pipelined mean read latency ratio (> 1 = pipelining
    /// wins).
    pub fn speedup(&self) -> f64 {
        if self.pipelined.mean_read_ns == 0 {
            0.0
        } else {
            self.blocking.mean_read_ns as f64 / self.pipelined.mean_read_ns as f64
        }
    }
}

/// The full fidelity comparison: plan replay vs. threaded vs. DES.
pub struct FidelityReport {
    /// Pure `plan_batch` replay of the workload (one first submission per
    /// planned run).
    pub expected: DecisionCounters,
    /// The threaded functional driver.
    pub functional: FidelityEngineReport,
    /// The DES driver over the calibrated timing models.
    pub des: FidelityEngineReport,
    /// The cached-mode matrix over the same two drivers.
    pub cached: CachedFidelityReport,
}

impl FidelityReport {
    /// Whether all four runs made exactly the planned decisions.
    pub fn decisions_match(&self) -> bool {
        [
            &self.functional.pipelined,
            &self.functional.blocking,
            &self.des.pipelined,
            &self.des.blocking,
        ]
        .iter()
        .all(|m| m.decisions == self.expected)
    }

    /// Relative error of the DES mean in-flight depth against the
    /// functional driver's, for the given mode.
    pub fn depth_rel_err(&self, pipelined: bool) -> f64 {
        let (f, d) = if pipelined {
            (&self.functional.pipelined, &self.des.pipelined)
        } else {
            (&self.functional.blocking, &self.des.blocking)
        };
        (d.depth() - f.depth()).abs() / f.depth().max(1e-9)
    }

    /// Whether both drivers agree on the direction of the
    /// pipelined-vs-blocking comparison.
    pub fn speedup_direction_agrees(&self) -> bool {
        (self.functional.speedup() >= 1.0) == (self.des.speedup() >= 1.0)
    }
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The seeded workload both drivers run: `rounds` batches per channel,
/// each batch [`BATCH_REQS`] two-block reads drawn from the channel's
/// [`LBA_WINDOW`]-slot window. Deterministic: same rounds, same batches.
pub fn fidelity_workload(rounds: u64) -> Vec<Vec<CamDesBatch>> {
    fidelity_workload_seeded(rounds, DEFAULT_SEED)
}

/// [`fidelity_workload`] with an explicit seed (the `repro --seed` path).
pub fn fidelity_workload_seeded(rounds: u64, seed: u64) -> Vec<Vec<CamDesBatch>> {
    let mut rng = Lcg(seed);
    (0..N_CHANNELS)
        .map(|ch| {
            let base = ch as u64 * 256;
            (0..rounds)
                .map(|_| CamDesBatch {
                    lbas: (0..BATCH_REQS)
                        .map(|_| base + rng.next() % LBA_WINDOW)
                        .collect(),
                    blocks: BLOCKS_PER_REQ,
                })
                .collect()
        })
        .collect()
}

/// Replays the workload through `plan_batch` alone: the decision counters
/// a fault-free execution must produce, under either driver.
pub fn expected_decisions(channels: &[Vec<CamDesBatch>]) -> DecisionCounters {
    let cfg = PlanConfig {
        n_ssds: N_SSDS,
        stripe_blocks: STRIPE_BLOCKS,
        block_size: BLOCK_SIZE,
    };
    let mut d = DecisionCounters::default();
    for ch in channels {
        for b in ch {
            let stride = u64::from(b.blocks) * u64::from(BLOCK_SIZE);
            let reqs = b
                .lbas
                .iter()
                .enumerate()
                .map(|(i, &lba)| (lba, i as u64 * stride))
                .collect();
            let plan = plan_batch(&cfg, ChannelOp::Read, b.blocks, reqs);
            d.record_plan(&plan);
            d.sqes += plan.runs();
        }
    }
    d
}

/// Runs the workload on both drivers in both modes and assembles the
/// comparison.
pub fn run_fidelity_experiment(rounds: u64) -> FidelityReport {
    run_fidelity_experiment_seeded(rounds, DEFAULT_SEED)
}

/// [`run_fidelity_experiment`] with an explicit workload seed.
pub fn run_fidelity_experiment_seeded(rounds: u64, seed: u64) -> FidelityReport {
    let workload = fidelity_workload_seeded(rounds, seed);
    FidelityReport {
        expected: expected_decisions(&workload),
        functional: FidelityEngineReport {
            pipelined: run_functional(true, &workload),
            blocking: run_functional(false, &workload),
        },
        des: FidelityEngineReport {
            pipelined: run_des(true, &workload, None),
            blocking: run_des(false, &workload, None),
        },
        // 3× the uncached round count: the cached stream is a single
        // logical channel, and CLOCK needs enough distinct blocks to
        // evict on a CACHED_SLOTS-block cache.
        cached: run_cached_fidelity_seeded(rounds * 3, seed),
    }
}

fn run_functional(pipelined: bool, channels: &[Vec<CamDesBatch>]) -> FidelityModeReport {
    // One worker owning all SSDs, as in the pipeline experiment: any
    // overlap must come from the reactor, not thread parallelism. Pinned
    // to the legacy poller engine: the DES mirrors the poller's dispatch
    // hop, and the decision-counter equality is asserted byte-identical
    // against it. Thread-per-core planning parity is covered separately by
    // `thread_per_core_planning_matches_the_plan_replay`.
    run_functional_with(pipelined, ThreadModel::CentralPoller, 1, channels)
}

fn run_functional_with(
    pipelined: bool,
    thread_model: ThreadModel,
    workers: usize,
    channels: &[Vec<CamDesBatch>],
) -> FidelityModeReport {
    let rig = Rig::new(RigConfig {
        n_ssds: N_SSDS,
        stripe_blocks: STRIPE_BLOCKS,
        burst_latency: Some(SERVICE_LATENCY),
        ..RigConfig::default()
    });
    assert_eq!(rig.block_size(), BLOCK_SIZE);
    let registry = Arc::new(MetricsRegistry::new());
    // The recorder is the group-count witness: one GroupDispatch event per
    // non-empty per-SSD group the poller ships.
    let recorder = Arc::new(FlightRecorder::new());
    let mut obs = Observability::with_registry(Arc::clone(&registry));
    obs.recorder = Some(Arc::clone(&recorder));
    let cfg = CamConfig {
        n_channels: N_CHANNELS,
        workers: Some(workers),
        pipelined,
        thread_model,
        ..CamConfig::default()
    };
    let cam = CamContext::attach_observed(&rig, cfg, obs);
    let metrics = Arc::clone(cam.metrics());

    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sums = vec![0u64; N_SSDS];
            let mut samples = 0u64;
            while !stop.load(Ordering::Acquire) {
                for (ssd, sum) in sums.iter_mut().enumerate() {
                    *sum += metrics.inflight[ssd].get();
                }
                samples += 1;
                std::thread::sleep(Duration::from_micros(20));
            }
            (sums, samples)
        })
    };

    let bytes_per_req = BLOCKS_PER_REQ as usize * BLOCK_SIZE as usize;
    std::thread::scope(|s| {
        for (ch, rounds) in channels.iter().enumerate() {
            let dev = cam.device();
            let buf = cam.alloc(BATCH_REQS * bytes_per_req).unwrap();
            s.spawn(move || {
                let addr = buf.addr();
                for b in rounds {
                    let ticket = dev
                        .submit_scatter(
                            ch,
                            ChannelOp::Read,
                            &b.lbas,
                            |i| addr + (i * bytes_per_req) as u64,
                            b.blocks,
                        )
                        .expect("submit");
                    ticket.wait().expect("batch retires cleanly");
                }
            });
        }
    });
    stop.store(true, Ordering::Release);
    let (sums, samples) = sampler.join().expect("sampler");

    let snapshot = registry.snapshot();
    let groups = recorder
        .snapshot()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GroupDispatch { .. }))
        .count() as u64;
    let decisions = DecisionCounters {
        batches: snapshot.counter("cam_batches_total"),
        requests: snapshot.counter("cam_requests_total"),
        dedup_dropped: snapshot.counter("cam_dedup_dropped_total"),
        stripe_splits: snapshot.counter("cam_stripe_splits_total"),
        groups,
        sqes: snapshot.sum_counters("cam_ssd_submitted_total"),
        retries: snapshot.counter("cam_retries_total"),
        timeouts: snapshot.counter("cam_cmd_timeouts_total"),
    };
    let (mut total_ns, mut batches) = (0u128, 0u64);
    for ch in 0..N_CHANNELS {
        let name = format!("cam_batch_total_ns{{channel=\"{ch}\",op=\"read\"}}");
        if let Some(h) = snapshot.histogram(&name) {
            total_ns += h.sum;
            batches += h.count;
        }
    }
    FidelityModeReport {
        pipelined,
        mean_read_ns: (total_ns / u128::from(batches.max(1))) as u64,
        inflight_mean: sums
            .iter()
            .map(|&s| s as f64 / samples.max(1) as f64)
            .collect(),
        inflight_peak: (0..N_SSDS)
            .map(|ssd| snapshot.gauge(&format!("cam_inflight_peak{{ssd=\"{ssd}\"}}")))
            .collect(),
        batches,
        decisions,
    }
}

/// The SSD model the fidelity DES runs: a P5510 whose base read latency
/// is replaced by the [`SERVICE_LATENCY`] the functional rig injects.
/// The comparison probes *protocol* fidelity — both drivers must be
/// looking at comparably slow devices, or the in-flight depth regimes
/// diverge for reasons that have nothing to do with the drivers.
fn rig_matched_ssd_model() -> SsdModel {
    SsdModel {
        read_latency: cam_simkit::Dur::ns(SERVICE_LATENCY.as_nanos() as u64),
        ..SsdModel::p5510()
    }
}

/// Runs one DES mode of the fidelity workload; an attached recorder
/// observes the virtual-time issue/complete stream without perturbing it
/// (the `"fidelity"` generator uses this for the trace artifact).
pub fn run_des(
    pipelined: bool,
    channels: &[Vec<CamDesBatch>],
    recorder: Option<Arc<FlightRecorder>>,
) -> FidelityModeReport {
    let r = run_cam_des(
        CamDesConfig {
            n_ssds: N_SSDS,
            block_size: BLOCK_SIZE,
            stripe_blocks: STRIPE_BLOCKS,
            op: ChannelOp::Read,
            threads: 1,
            queue_depth: CamConfig::default().queue_depth,
            pipelined,
            thread_cost: cam_thread_cost(N_SSDS as f64),
            cpu_pipe: CpuPipeModel::calibrated(),
            host_gbps: 21.0,
            retry: CamDesConfig::inert_retry(),
            fault: None,
            ssd_model: rig_matched_ssd_model(),
        },
        channels.to_vec(),
        recorder,
    );
    FidelityModeReport {
        pipelined,
        mean_read_ns: r.mean_batch_ns as u64,
        inflight_mean: r.inflight_mean,
        inflight_peak: r.inflight_peak,
        batches: r.batches,
        decisions: r.decisions,
    }
}

/// Cache capacity for the cached matrix: small enough that the seeded
/// stream forces CLOCK evictions, so eviction decisions are compared too.
const CACHED_SLOTS: usize = 64;
/// Channels a cached run occupies: demand 0, write-back 1 (idle in the
/// read-only matrix), speculation 2 — the `CachedDevice` convention.
const CACHED_N_CHANNELS: usize = 3;

/// The cache every run of the matrix (and the replay) is configured with.
/// The cached perf trajectory ([`crate::trajectory_run`]) reuses it so the
/// gated configuration is the one fidelity proved decision-exact.
pub fn cached_cache_cfg() -> CacheConfig {
    CacheConfig {
        slots: CACHED_SLOTS,
        shards: 4,
        flush_batch: 16,
        ..CacheConfig::default()
    }
}

/// Rig shape for the cached functional runs; the DES side derives its
/// array size from the same config so readahead sees identical bounds.
fn cached_rig_config() -> RigConfig {
    RigConfig {
        n_ssds: N_SSDS,
        stripe_blocks: STRIPE_BLOCKS,
        burst_latency: Some(SERVICE_LATENCY),
        ..RigConfig::default()
    }
}

/// The seeded cached read stream: per round an 8-block sequential run (a
/// stable stride for the readahead detector), an in-batch duplicate
/// (coalescing), re-references into earlier rounds (hits — some against
/// evicted blocks), and one far scattered read (extra CLOCK pressure).
/// Single logical stream, as the cached device serializes demand reads.
pub fn cached_fidelity_workload_seeded(rounds: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = Lcg(seed ^ 0xCAC4ED);
    (0..rounds)
        .map(|round| {
            let base = round * 8;
            let mut lbas: Vec<u64> = (base..base + 8).collect();
            lbas.push(base + rng.next() % 8);
            if round > 0 {
                for _ in 0..4 {
                    lbas.push(rng.next() % (round * 8));
                }
            }
            lbas.push(4096 + rng.next() % 256);
            lbas
        })
        .collect()
}

/// One cached run's outcome: the decision counters (the exact-equality
/// payload) plus the informative mean demand-read latency.
pub struct CachedModeReport {
    /// Whether the reactor ran pipelined.
    pub pipelined: bool,
    /// Every cache decision the run made.
    pub counters: CacheDecisionCounters,
    /// Mean doorbell→retire latency of demand batches, ns (wall-clock or
    /// virtual — informative only; the matrix asserts decisions).
    pub mean_read_ns: u64,
}

/// The cached-mode fidelity matrix: functional × DES × {pipelined,
/// blocking}, all against the pure [`replay_read_workload`] ground truth.
pub struct CachedFidelityReport {
    /// Counters of the pure replay — the ground truth.
    pub expected: CacheDecisionCounters,
    /// Threaded [`CachedDevice`] with the pipelined reactor.
    pub functional_pipelined: CachedModeReport,
    /// Threaded [`CachedDevice`] over the blocking baseline.
    pub functional_blocking: CachedModeReport,
    /// DES cached source, pipelined.
    pub des_pipelined: CachedModeReport,
    /// DES cached source, blocking.
    pub des_blocking: CachedModeReport,
}

impl CachedFidelityReport {
    /// The four runs with their report labels.
    pub fn modes(&self) -> [(&'static str, &CachedModeReport); 4] {
        [
            ("functional/pipelined", &self.functional_pipelined),
            ("functional/blocking", &self.functional_blocking),
            ("des/pipelined", &self.des_pipelined),
            ("des/blocking", &self.des_blocking),
        ]
    }

    /// Whether all four runs made exactly the replayed cache decisions.
    pub fn decisions_match(&self) -> bool {
        self.modes()
            .iter()
            .all(|(_, m)| m.counters == self.expected)
    }
}

fn run_functional_cached(pipelined: bool, batches: &[Vec<u64>]) -> CachedModeReport {
    let rig = Rig::new(cached_rig_config());
    let registry = Arc::new(MetricsRegistry::new());
    let cam = CamContext::attach_observed(
        &rig,
        CamConfig {
            n_channels: CACHED_N_CHANNELS,
            workers: Some(1),
            pipelined,
            thread_model: ThreadModel::CentralPoller,
            ..CamConfig::default()
        },
        Observability::with_registry(Arc::clone(&registry)),
    );
    let dev = CachedDevice::attach(&rig, &cam, cached_cache_cfg()).expect("cache fits GPU memory");
    let bs = cam.block_size() as usize;
    let max_lbas = batches.iter().map(Vec::len).max().unwrap_or(1);
    let buf = cam.alloc(max_lbas * bs).expect("dest buffer");
    for b in batches {
        dev.prefetch(b, buf.addr()).expect("prefetch");
        // Quiesce between batches — the discipline the replay models:
        // each batch's demand and speculative I/O fully published before
        // the next batch's lookups, so decisions are timing-independent.
        dev.quiesce().expect("quiesce");
    }
    let counters = dev.decision_counters();
    let mean_read_ns = registry
        .snapshot()
        .histogram("cam_batch_total_ns{channel=\"0\",op=\"read\"}")
        .map(|h| h.mean)
        .unwrap_or(0.0) as u64;
    CachedModeReport {
        pipelined,
        counters,
        mean_read_ns,
    }
}

fn run_des_cached(pipelined: bool, batches: &[Vec<u64>], array_blocks: u64) -> CachedModeReport {
    let (r, counters) = run_cam_des_cached(
        CamDesConfig {
            n_ssds: N_SSDS,
            block_size: BLOCK_SIZE,
            stripe_blocks: STRIPE_BLOCKS,
            op: ChannelOp::Read,
            threads: 1,
            queue_depth: CamConfig::default().queue_depth,
            pipelined,
            thread_cost: cam_thread_cost(N_SSDS as f64),
            cpu_pipe: CpuPipeModel::calibrated(),
            host_gbps: 21.0,
            retry: CamDesConfig::inert_retry(),
            fault: None,
            ssd_model: rig_matched_ssd_model(),
        },
        cached_cache_cfg(),
        array_blocks,
        batches.to_vec(),
        None,
        CamDesObs {
            windows: None,
            slo: None,
            lifecycle: false,
        },
    );
    CachedModeReport {
        pipelined,
        counters,
        mean_read_ns: r.mean_batch_ns as u64,
    }
}

/// Runs the cached matrix on `rounds` batches of the seeded stream.
pub fn run_cached_fidelity_seeded(rounds: u64, seed: u64) -> CachedFidelityReport {
    let batches = cached_fidelity_workload_seeded(rounds, seed);
    let rig_cfg = cached_rig_config();
    let array_blocks = rig_cfg.n_ssds as u64 * rig_cfg.blocks_per_ssd;
    CachedFidelityReport {
        expected: replay_read_workload(cached_cache_cfg(), array_blocks, true, &batches),
        functional_pipelined: run_functional_cached(true, &batches),
        functional_blocking: run_functional_cached(false, &batches),
        des_pipelined: run_des_cached(true, &batches, array_blocks),
        des_blocking: run_des_cached(false, &batches, array_blocks),
    }
}

/// The `"fidelity"` section of `BENCH_repro.json`.
pub fn fidelity_section_json(report: &FidelityReport) -> String {
    let decisions = |d: &DecisionCounters| {
        format!(
            "{{\"batches\": {}, \"requests\": {}, \"dedup_dropped\": {}, \
             \"stripe_splits\": {}, \"groups\": {}, \"sqes\": {}, \
             \"retries\": {}, \"timeouts\": {}}}",
            d.batches,
            d.requests,
            d.dedup_dropped,
            d.stripe_splits,
            d.groups,
            d.sqes,
            d.retries,
            d.timeouts
        )
    };
    let mode = |m: &FidelityModeReport| {
        let means = m
            .inflight_mean
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        let peaks = m
            .inflight_peak
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"inflight_mean\": [{means}], \"inflight_peak\": [{peaks}], \
             \"mean_read_ns\": {}, \"batches\": {}}}",
            m.mean_read_ns, m.batches
        )
    };
    let engine = |e: &FidelityEngineReport| {
        format!(
            "{{\n      \"pipelined\": {},\n      \"blocking\": {},\n      \
             \"read_latency_speedup\": {:.2}\n    }}",
            mode(&e.pipelined),
            mode(&e.blocking),
            e.speedup()
        )
    };
    let mut out = String::with_capacity(1536);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "    \"workload\": {{\"channels\": {N_CHANNELS}, \"ssds\": {N_SSDS}, \
         \"stripe_blocks\": {STRIPE_BLOCKS}, \"blocks_per_req\": {BLOCKS_PER_REQ}, \
         \"batch_requests\": {BATCH_REQS}, \"lba_window\": {LBA_WINDOW}, \
         \"seed\": {DEFAULT_SEED}}},"
    );
    let cache_counters = |c: &CacheDecisionCounters| {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"coalesced\": {}, \"evictions\": {}, \
             \"write_absorbed\": {}, \"flushed_blocks\": {}, \
             \"readahead_issued\": {}, \"readahead_hits\": {}}}",
            c.hits,
            c.misses,
            c.coalesced,
            c.evictions,
            c.write_absorbed,
            c.flushed_blocks,
            c.readahead_issued,
            c.readahead_hits
        )
    };
    let _ = writeln!(out, "    \"decisions\": {},", decisions(&report.expected));
    let _ = writeln!(out, "    \"functional\": {},", engine(&report.functional));
    let _ = writeln!(out, "    \"des\": {},", engine(&report.des));
    out.push_str("    \"cached\": {\n");
    let _ = writeln!(
        out,
        "      \"expected\": {},",
        cache_counters(&report.cached.expected)
    );
    for (label, m) in report.cached.modes() {
        let _ = writeln!(
            out,
            "      \"{}\": {{\"counters_match\": {}, \"mean_read_ns\": {}}},",
            label.replace('/', "_"),
            m.counters == report.cached.expected,
            m.mean_read_ns
        );
    }
    let _ = writeln!(
        out,
        "      \"decisions_match\": {}\n    }},",
        report.cached.decisions_match()
    );
    let _ = writeln!(
        out,
        "    \"agreement\": {{\"decisions_match\": {}, \
         \"cache_decisions_match\": {}, \
         \"inflight_rel_err_pipelined\": {:.4}, \
         \"inflight_rel_err_blocking\": {:.4}, \
         \"depth_rel_err_tolerance\": {DEPTH_REL_ERR_TOLERANCE}, \
         \"speedup_ratio_des_over_functional\": {:.4}, \
         \"speedup_direction_agrees\": {}}}",
        report.decisions_match(),
        report.cached.decisions_match(),
        report.depth_rel_err(true),
        report.depth_rel_err(false),
        report.des.speedup() / report.functional.speedup().max(1e-9),
        report.speedup_direction_agrees()
    );
    out.push_str("  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_drivers_make_exactly_the_planned_decisions() {
        let report = run_fidelity_experiment(6);
        // The workload exercises real planner decisions, not a trivial
        // pass-through.
        assert!(report.expected.dedup_dropped > 0, "workload has no dups");
        assert!(report.expected.stripe_splits > 0, "workload has no splits");
        assert_eq!(report.expected.batches, 6 * N_CHANNELS as u64);
        for (name, m) in [
            ("functional/pipelined", &report.functional.pipelined),
            ("functional/blocking", &report.functional.blocking),
            ("des/pipelined", &report.des.pipelined),
            ("des/blocking", &report.des.blocking),
        ] {
            assert_eq!(
                m.decisions, report.expected,
                "{name} diverged from the plan replay"
            );
            assert_eq!(m.batches, report.expected.batches, "{name} batches");
        }
        assert!(report.decisions_match());

        // Trend agreement: both drivers see pipelining win, and the DES
        // deepens the device queues when pipelined just like the reactor.
        assert!(
            report.functional.speedup() >= 1.0,
            "functional pipelining lost: {:.3}x",
            report.functional.speedup()
        );
        assert!(
            report.des.speedup() > 1.0,
            "DES pipelining lost: {:.3}x",
            report.des.speedup()
        );
        assert!(report.speedup_direction_agrees());
        assert!(
            report.des.pipelined.depth() > report.des.blocking.depth(),
            "DES pipelined depth {:.3} <= blocking {:.3}",
            report.des.pipelined.depth(),
            report.des.blocking.depth()
        );

        let json = fidelity_section_json(&report);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"workload\"",
            "\"decisions\"",
            "\"functional\"",
            "\"des\"",
            "\"agreement\"",
            "\"decisions_match\": true",
            "\"cached\"",
            "\"cache_decisions_match\": true",
            "\"depth_rel_err_tolerance\"",
            "\"speedup_direction_agrees\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    /// The thread-per-core engine makes *exactly* the planned decisions
    /// too — sharded pickup, SPSC routing, and parking reorder work in
    /// time but may not change what is planned, deduped, split, grouped,
    /// or submitted. Two workers force cross-worker ring handoff (each
    /// worker plans channels whose SSD groups are owned by the other).
    #[test]
    fn thread_per_core_planning_matches_the_plan_replay() {
        let workload = fidelity_workload(6);
        let expected = expected_decisions(&workload);
        for pipelined in [true, false] {
            let m = run_functional_with(pipelined, ThreadModel::ThreadPerCore, 2, &workload);
            assert_eq!(
                m.decisions, expected,
                "thread-per-core (pipelined={pipelined}) diverged from the plan replay"
            );
            assert_eq!(m.batches, expected.batches);
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = fidelity_workload(4);
        let b = fidelity_workload(4);
        assert_eq!(a.len(), N_CHANNELS);
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.len(), 4);
            for (ba, bb) in ca.iter().zip(cb) {
                assert_eq!(ba.lbas, bb.lbas);
            }
        }
        assert_eq!(expected_decisions(&a), expected_decisions(&b));
        // A different seed produces a different (but well-formed) workload.
        let c = fidelity_workload_seeded(4, DEFAULT_SEED ^ 1);
        assert_ne!(a[0][0].lbas, c[0][0].lbas);
    }

    #[test]
    fn cached_matrix_matches_the_pure_replay_exactly() {
        let report = run_cached_fidelity_seeded(24, DEFAULT_SEED);
        // The stream exercises every decision class the core makes.
        assert!(report.expected.hits > 0, "no hits: {:?}", report.expected);
        assert!(report.expected.misses > 0, "no misses");
        assert!(report.expected.coalesced > 0, "no coalescing");
        assert!(report.expected.evictions > 0, "no CLOCK evictions");
        assert!(report.expected.readahead_issued > 0, "no speculation");
        assert!(report.expected.readahead_hits > 0, "speculation never hit");
        for (name, m) in report.modes() {
            assert_eq!(
                m.counters, report.expected,
                "{name} diverged from the cache replay"
            );
            assert!(m.mean_read_ns > 0, "{name} has no demand latency");
        }
        assert!(report.decisions_match());
    }

    #[test]
    fn cached_workload_is_deterministic_and_seed_sensitive() {
        let a = cached_fidelity_workload_seeded(12, DEFAULT_SEED);
        let b = cached_fidelity_workload_seeded(12, DEFAULT_SEED);
        assert_eq!(a, b);
        let c = cached_fidelity_workload_seeded(12, DEFAULT_SEED ^ 1);
        assert_ne!(a, c);
    }

    #[test]
    fn pipelined_depth_error_stays_within_tolerance() {
        // The same invariant the fidelity CI job asserts on
        // BENCH_repro.json's agreement section, kept next to the constant
        // so the tolerance cannot silently drift from what CI enforces.
        let report = run_fidelity_experiment(8);
        let err = report.depth_rel_err(true);
        assert!(
            err.is_finite() && err >= 0.0,
            "depth rel err not measurable: {err}"
        );
        assert!(
            err <= DEPTH_REL_ERR_TOLERANCE,
            "pipelined depth rel err {err:.3} exceeds tolerance {DEPTH_REL_ERR_TOLERANCE}"
        );
    }
}
