//! Instrumented functional-engine run: drives a multi-batch read+write
//! workload through [`CamContext`] with a shared [`MetricsRegistry`] and
//! renders the `BENCH_repro.json` report (throughput plus stage latency
//! quantiles straight from the registry).

use std::fmt::Write as _;
use std::sync::Arc;

use cam_core::{CamConfig, CamContext, ThreadModel};
use cam_iostacks::{Rig, RigConfig};
use cam_telemetry::critical;
use cam_telemetry::{
    clock, Event, FlightRecorder, MetricsRegistry, MetricsSnapshot, Observability, Stage,
};

/// Result of one instrumented workload run.
pub struct TelemetryRun {
    /// Registry state after the workload (the full telemetry story).
    pub snapshot: MetricsSnapshot,
    /// Flight-recorder events of the run, merged and time-ordered. Empty
    /// unless the run was recorded (see [`run_recorded`]).
    pub events: Vec<Event>,
    /// Recorder thread names (for the Chrome-trace exporter). Empty unless
    /// recorded.
    pub thread_names: Vec<(u32, String)>,
    /// Batch rounds driven (each round = one read batch + one write batch).
    pub rounds: u64,
    /// Requests per batch.
    pub batch: u64,
    /// Requests completed, from the control plane.
    pub requests: u64,
    /// Bytes moved (requests × block size).
    pub bytes: u64,
    /// Wall-clock duration of the workload, nanoseconds.
    pub elapsed_ns: u64,
}

impl TelemetryRun {
    /// End-to-end throughput in GB/s.
    pub fn gbps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.bytes as f64 / self.elapsed_ns as f64
        }
    }

    /// Request rate in K IOPS.
    pub fn kiops(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.requests as f64 / (self.elapsed_ns as f64 / 1e9) / 1e3
        }
    }
}

/// Runs `rounds` rounds of a `batch`-request write-back + prefetch workload
/// on a default 4-SSD rig, fully instrumented, and returns the telemetry.
pub fn run_instrumented(rounds: u64, batch: u64) -> TelemetryRun {
    run_recorded(rounds, batch, None)
}

/// [`run_instrumented`] with an optional flight recorder attached: the
/// returned [`TelemetryRun`] then carries the merged event timeline (for
/// Chrome-trace export and critical-path analysis) alongside the metric
/// snapshot.
pub fn run_recorded(
    rounds: u64,
    batch: u64,
    recorder: Option<Arc<FlightRecorder>>,
) -> TelemetryRun {
    let rig = Rig::new(RigConfig::default());
    let registry = Arc::new(MetricsRegistry::new());
    let mut obs = Observability::with_registry(Arc::clone(&registry));
    obs.recorder = recorder.clone();
    // Pinned to the legacy poller engine: the exported trace (and the CI
    // smoke assertion on it) names the dedicated `cam-poller` track, which
    // the thread-per-core engine folds into its workers.
    let cfg = CamConfig {
        thread_model: ThreadModel::CentralPoller,
        ..CamConfig::default()
    };
    let cam = CamContext::attach_observed(&rig, cfg, obs);
    let dev = cam.device();
    let bs = cam.block_size() as usize;
    let wbuf = cam.alloc(batch as usize * bs).expect("alloc write buffer");
    let rbuf = cam.alloc(batch as usize * bs).expect("alloc read buffer");
    wbuf.write(0, &vec![0xC3; batch as usize * bs]);

    let start_ns = clock::now_ns();
    for round in 0..rounds {
        let base = (round * batch) % (rig.array_blocks() - batch);
        let lbas: Vec<u64> = (base..base + batch).collect();
        dev.write_back(&lbas, wbuf.addr()).expect("write_back");
        dev.write_back_synchronize()
            .expect("write_back_synchronize");
        dev.prefetch(&lbas, rbuf.addr()).expect("prefetch");
        dev.prefetch_synchronize().expect("prefetch_synchronize");
    }
    let elapsed_ns = clock::now_ns().saturating_sub(start_ns);

    let stats = cam.stats();
    let (events, thread_names) = match &recorder {
        Some(rec) => (rec.snapshot(), rec.thread_names()),
        None => (Vec::new(), Vec::new()),
    };
    TelemetryRun {
        snapshot: registry.snapshot(),
        events,
        thread_names,
        rounds,
        batch,
        requests: stats.requests,
        bytes: stats.requests * bs as u64,
        elapsed_ns,
    }
}

/// Runs the instrumented functional workload *and* a small traced CAM DES
/// microbenchmark into one shared flight recorder, and returns the run
/// together with the combined Chrome-trace JSON: process 1 carries the
/// functional engine's poller/worker/doorbell tracks, process 2 the
/// simulated SSDs — one file, both engines, loadable in Perfetto.
pub fn run_traced(rounds: u64, batch: u64) -> (TelemetryRun, String) {
    use cam_hostos::IoDir;
    use cam_iostacks::des::{run_microbench_traced, Engine, MicrobenchConfig};
    use cam_telemetry::trace::chrome_trace;

    let rec = Arc::new(FlightRecorder::new());
    let run = run_recorded(rounds, batch, Some(Arc::clone(&rec)));
    let mut cfg = MicrobenchConfig::new(Engine::Cam, 2, IoDir::Read);
    cfg.requests = 128;
    cfg.queue_depth = 16;
    let _ = run_microbench_traced(cfg, Some(Arc::clone(&rec)));
    let events = rec.snapshot();
    let trace = chrome_trace(&events, &rec.thread_names());
    (run, trace)
}

/// Renders the `BENCH_repro.json` report: workload shape, throughput, and
/// p50/p99 for every protocol stage and for the doorbell→retire span. When
/// `cache` carries sweep results (see [`crate::cache_run`]), a `"cache"`
/// section records per-workload hit rate, coalesced misses, readahead
/// accuracy, and the cached-vs-uncached submission/latency deltas. When
/// `pipeline` carries the multi-channel pipelining experiment (see
/// [`crate::pipeline_run`]), a `"pipeline"` section records per-SSD
/// in-flight depth and read latency for the pipelined reactor vs. the
/// blocking baseline. When `fidelity` carries the two-driver comparison
/// (see [`crate::fidelity_run`]), a `"fidelity"` section records the
/// DES-vs-functional decision agreement and timing trends. When `slo`
/// carries the transient-overload SLO experiment (see
/// [`crate::health_run`]), a `"slo"` section records burn rates and the
/// per-driver lane-health transition sequences.
pub fn bench_json(
    run: &TelemetryRun,
    cache: Option<&[crate::cache_run::CacheWorkloadReport]>,
    pipeline: Option<&crate::pipeline_run::PipelineReport>,
    fidelity: Option<&crate::fidelity_run::FidelityReport>,
    slo: Option<&crate::health_run::HealthReport>,
) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"rounds\": {}, \"batch\": {}, \"ops\": [\"read\", \"write\"]}},",
        run.rounds, run.batch
    );
    let _ = writeln!(
        out,
        "  \"throughput\": {{\"requests\": {}, \"bytes\": {}, \"elapsed_ns\": {}, \
         \"gbps\": {:.4}, \"kiops\": {:.2}}},",
        run.requests,
        run.bytes,
        run.elapsed_ns,
        run.gbps(),
        run.kiops()
    );
    out.push_str("  \"stages_ns\": {\n");
    for (i, op) in ["read", "write"].iter().enumerate() {
        let _ = write!(out, "    \"{op}\": {{");
        for (j, stage) in Stage::ALL.iter().enumerate() {
            let name = format!("cam_stage_ns{{op=\"{op}\",stage=\"{}\"}}", stage.name());
            let (p50, p99) = run
                .snapshot
                .histogram(&name)
                .map(|h| (h.p50, h.p99))
                .unwrap_or((0, 0));
            let comma = if j + 1 < Stage::ALL.len() { ", " } else { "" };
            let _ = write!(
                out,
                "\"{}\": {{\"p50\": {p50}, \"p99\": {p99}}}{comma}",
                stage.name()
            );
        }
        let _ = writeln!(out, "}}{}", if i == 0 { "," } else { "" });
    }
    out.push_str("  },\n  \"doorbell_to_retire_ns\": {\n");
    // Reads ride channel 0, writes channel 1 (the Fig. 7 convention).
    for (i, (op, channel)) in [("read", 0), ("write", 1)].iter().enumerate() {
        let name = format!("cam_batch_total_ns{{channel=\"{channel}\",op=\"{op}\"}}");
        let (p50, p99) = run
            .snapshot
            .histogram(&name)
            .map(|h| (h.p50, h.p99))
            .unwrap_or((0, 0));
        let _ = writeln!(
            out,
            "    \"{op}\": {{\"p50\": {p50}, \"p99\": {p99}}}{}",
            if i == 0 { "," } else { "" }
        );
    }
    out.push_str("  }");
    if let Some(reports) = cache {
        out.push_str(",\n  \"cache\": ");
        out.push_str(&crate::cache_run::cache_section_json(reports));
    }
    if let Some(report) = pipeline {
        out.push_str(",\n  \"pipeline\": ");
        out.push_str(&crate::pipeline_run::pipeline_section_json(report));
    }
    if let Some(report) = fidelity {
        out.push_str(",\n  \"fidelity\": ");
        out.push_str(&crate::fidelity_run::fidelity_section_json(report));
    }
    if let Some(report) = slo {
        out.push_str(",\n  \"slo\": ");
        out.push_str(&crate::health_run::slo_section_json(report));
    }
    // Per-channel doorbell→retire latency attribution, only available when
    // the run carried a flight recorder.
    if !run.events.is_empty() {
        let report = critical::analyze(&run.events);
        out.push_str(",\n  \"critical_path\": ");
        out.push_str(&report.to_json());
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumented_run_populates_every_stage() {
        let run = run_instrumented(4, 16);
        assert_eq!(run.requests, 2 * 4 * 16);
        assert!(run.elapsed_ns > 0);
        assert_eq!(run.snapshot.counter("cam_batches_total"), 8);
        for op in ["read", "write"] {
            for stage in Stage::ALL {
                let name = format!("cam_stage_ns{{op=\"{op}\",stage=\"{}\"}}", stage.name());
                assert!(
                    run.snapshot.histogram(&name).map(|h| h.count).unwrap_or(0) >= 4,
                    "stage {name} unpopulated"
                );
            }
        }
    }

    #[test]
    fn bench_json_is_balanced_and_complete() {
        let run = run_instrumented(2, 8);
        let json = bench_json(&run, None, None, None, None);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"workload\"",
            "\"throughput\"",
            "\"gbps\"",
            "\"stages_ns\"",
            "\"pickup\"",
            "\"retire\"",
            "\"doorbell_to_retire_ns\"",
            "\"p50\"",
            "\"p99\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // No recorder → no critical-path section.
        assert!(!json.contains("\"critical_path\""));
    }

    #[test]
    fn recorded_run_carries_events_and_critical_path() {
        let rec = Arc::new(FlightRecorder::new());
        let run = run_recorded(3, 16, Some(Arc::clone(&rec)));
        // 3 rounds × (1 write + 1 read) = 6 batches, each with a doorbell
        // and a retire in the timeline.
        let retires = run
            .events
            .iter()
            .filter(|e| matches!(e.kind, cam_telemetry::EventKind::BatchRetire { .. }))
            .count();
        assert_eq!(retires, 6);
        let json = bench_json(&run, None, None, None, None);
        assert!(
            json.contains("\"critical_path\""),
            "missing section: {json}"
        );
        assert!(json.contains("\"dominant\""));
        let report = critical::analyze(&run.events);
        assert_eq!(report.batches.len(), 6);
        assert_eq!(report.channels.len(), 2, "read + write channels");
        for ch in &report.channels {
            assert!(ch.total_ns > 0);
        }
    }

    #[test]
    fn traced_run_exports_a_valid_two_engine_chrome_trace() {
        use cam_telemetry::trace::validate_chrome_trace;

        let (run, trace) = run_traced(3, 16);
        let summary = validate_chrome_trace(&trace).expect("trace must validate");
        // One async batch span per retired batch (plus the DES sim spans).
        let batches = run.snapshot.counter("cam_batches_total") as usize;
        assert_eq!(batches, 6);
        assert!(
            summary.async_begin >= batches,
            "async spans {} < batches {batches}",
            summary.async_begin
        );
        assert_eq!(summary.async_begin, summary.async_end);
        // Both engines present: functional (pid 1) and simulated (pid 2).
        assert_eq!(summary.processes, 2);
        // Distinct tracks for the poller, the workers, and simulated SSDs.
        assert!(
            summary.named_tracks.iter().any(|t| t == "cam-poller"),
            "tracks: {:?}",
            summary.named_tracks
        );
        assert!(summary
            .named_tracks
            .iter()
            .any(|t| t.starts_with("cam-worker")));
        assert!(summary.named_tracks.iter().any(|t| t == "sim-ssd0"));
        assert!(summary.named_tracks.iter().any(|t| t == "sim-ssd1"));
    }
}
