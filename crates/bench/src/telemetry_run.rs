//! Instrumented functional-engine run: drives a multi-batch read+write
//! workload through [`CamContext`] with a shared [`MetricsRegistry`] and
//! renders the `BENCH_repro.json` report (throughput plus stage latency
//! quantiles straight from the registry).

use std::fmt::Write as _;
use std::sync::Arc;

use cam_core::{CamConfig, CamContext};
use cam_iostacks::{Rig, RigConfig};
use cam_telemetry::{clock, MetricsRegistry, MetricsSnapshot, NoopSink, Stage};

/// Result of one instrumented workload run.
pub struct TelemetryRun {
    /// Registry state after the workload (the full telemetry story).
    pub snapshot: MetricsSnapshot,
    /// Batch rounds driven (each round = one read batch + one write batch).
    pub rounds: u64,
    /// Requests per batch.
    pub batch: u64,
    /// Requests completed, from the control plane.
    pub requests: u64,
    /// Bytes moved (requests × block size).
    pub bytes: u64,
    /// Wall-clock duration of the workload, nanoseconds.
    pub elapsed_ns: u64,
}

impl TelemetryRun {
    /// End-to-end throughput in GB/s.
    pub fn gbps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.bytes as f64 / self.elapsed_ns as f64
        }
    }

    /// Request rate in K IOPS.
    pub fn kiops(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.requests as f64 / (self.elapsed_ns as f64 / 1e9) / 1e3
        }
    }
}

/// Runs `rounds` rounds of a `batch`-request write-back + prefetch workload
/// on a default 4-SSD rig, fully instrumented, and returns the telemetry.
pub fn run_instrumented(rounds: u64, batch: u64) -> TelemetryRun {
    let rig = Rig::new(RigConfig::default());
    let registry = Arc::new(MetricsRegistry::new());
    let cam = CamContext::attach_with(
        &rig,
        CamConfig::default(),
        Arc::clone(&registry),
        Arc::new(NoopSink),
    );
    let dev = cam.device();
    let bs = cam.block_size() as usize;
    let wbuf = cam.alloc(batch as usize * bs).expect("alloc write buffer");
    let rbuf = cam.alloc(batch as usize * bs).expect("alloc read buffer");
    wbuf.write(0, &vec![0xC3; batch as usize * bs]);

    let start_ns = clock::now_ns();
    for round in 0..rounds {
        let base = (round * batch) % (rig.array_blocks() - batch);
        let lbas: Vec<u64> = (base..base + batch).collect();
        dev.write_back(&lbas, wbuf.addr()).expect("write_back");
        dev.write_back_synchronize()
            .expect("write_back_synchronize");
        dev.prefetch(&lbas, rbuf.addr()).expect("prefetch");
        dev.prefetch_synchronize().expect("prefetch_synchronize");
    }
    let elapsed_ns = clock::now_ns().saturating_sub(start_ns);

    let stats = cam.stats();
    TelemetryRun {
        snapshot: registry.snapshot(),
        rounds,
        batch,
        requests: stats.requests,
        bytes: stats.requests * bs as u64,
        elapsed_ns,
    }
}

/// Renders the `BENCH_repro.json` report: workload shape, throughput, and
/// p50/p99 for every protocol stage and for the doorbell→retire span.
pub fn bench_json(run: &TelemetryRun) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"rounds\": {}, \"batch\": {}, \"ops\": [\"read\", \"write\"]}},",
        run.rounds, run.batch
    );
    let _ = writeln!(
        out,
        "  \"throughput\": {{\"requests\": {}, \"bytes\": {}, \"elapsed_ns\": {}, \
         \"gbps\": {:.4}, \"kiops\": {:.2}}},",
        run.requests,
        run.bytes,
        run.elapsed_ns,
        run.gbps(),
        run.kiops()
    );
    out.push_str("  \"stages_ns\": {\n");
    for (i, op) in ["read", "write"].iter().enumerate() {
        let _ = write!(out, "    \"{op}\": {{");
        for (j, stage) in Stage::ALL.iter().enumerate() {
            let name = format!("cam_stage_ns{{op=\"{op}\",stage=\"{}\"}}", stage.name());
            let (p50, p99) = run
                .snapshot
                .histogram(&name)
                .map(|h| (h.p50, h.p99))
                .unwrap_or((0, 0));
            let comma = if j + 1 < Stage::ALL.len() { ", " } else { "" };
            let _ = write!(
                out,
                "\"{}\": {{\"p50\": {p50}, \"p99\": {p99}}}{comma}",
                stage.name()
            );
        }
        let _ = writeln!(out, "}}{}", if i == 0 { "," } else { "" });
    }
    out.push_str("  },\n  \"doorbell_to_retire_ns\": {\n");
    // Reads ride channel 0, writes channel 1 (the Fig. 7 convention).
    for (i, (op, channel)) in [("read", 0), ("write", 1)].iter().enumerate() {
        let name = format!("cam_batch_total_ns{{channel=\"{channel}\",op=\"{op}\"}}");
        let (p50, p99) = run
            .snapshot
            .histogram(&name)
            .map(|h| (h.p50, h.p99))
            .unwrap_or((0, 0));
        let _ = writeln!(
            out,
            "    \"{op}\": {{\"p50\": {p50}, \"p99\": {p99}}}{}",
            if i == 0 { "," } else { "" }
        );
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumented_run_populates_every_stage() {
        let run = run_instrumented(4, 16);
        assert_eq!(run.requests, 2 * 4 * 16);
        assert!(run.elapsed_ns > 0);
        assert_eq!(run.snapshot.counter("cam_batches_total"), 8);
        for op in ["read", "write"] {
            for stage in Stage::ALL {
                let name = format!("cam_stage_ns{{op=\"{op}\",stage=\"{}\"}}", stage.name());
                assert!(
                    run.snapshot.histogram(&name).map(|h| h.count).unwrap_or(0) >= 4,
                    "stage {name} unpopulated"
                );
            }
        }
    }

    #[test]
    fn bench_json_is_balanced_and_complete() {
        let run = run_instrumented(2, 8);
        let json = bench_json(&run);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"workload\"",
            "\"throughput\"",
            "\"gbps\"",
            "\"stages_ns\"",
            "\"pickup\"",
            "\"retire\"",
            "\"doorbell_to_retire_ns\"",
            "\"p50\"",
            "\"p99\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
