//! [`Table`] — a minimal aligned-text table for the `repro` harness.

use std::fmt;

/// A titled table of string cells.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor for tests: `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, c) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<w$}", w = *w)?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimals (throughput, times).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        assert!(s.contains("note: a note"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 1), "22222");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
