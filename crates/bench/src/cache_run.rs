//! Cache-mode benchmark: the same repeated-access workloads driven through
//! the uncached [`CamDevice`](cam_core::CamDevice) and through
//! [`CachedDevice`](cam_cache::CachedDevice), on separate registries, so
//! the NVMe-submission and doorbell→retire deltas attribute entirely to
//! the cache layer. The sweep axis is the cache size in slots.

use std::sync::Arc;

use cam_cache::{CacheConfig, CachedDevice};
use cam_core::{CamConfig, CamContext};
use cam_iostacks::{Rig, RigConfig};
use cam_simkit::dist::{seeded_rng, Zipf};
use cam_telemetry::{FlightRecorder, MetricsRegistry, MetricsSnapshot, Observability};

/// Default Zipf-draw seed for the DLRM workload (`repro --seed` overrides
/// it; the sequential scan is seed-free).
pub const DEFAULT_CACHE_SEED: u64 = 0xD78;

/// Access-pattern shapes the cache is evaluated on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheWorkload {
    /// DLRM-style embedding lookups: Zipf-skewed batches over a table, so
    /// hot rows repeat both across batches (hits) and within one batch
    /// (coalesced misses).
    DlrmZipf,
    /// GNN-style feature scan: sequential batches, repeated for a second
    /// epoch — the stream the readahead engine is built for.
    SeqScan,
}

impl CacheWorkload {
    /// Both workloads, in report order.
    pub const ALL: [CacheWorkload; 2] = [CacheWorkload::DlrmZipf, CacheWorkload::SeqScan];

    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            CacheWorkload::DlrmZipf => "dlrm_zipf",
            CacheWorkload::SeqScan => "seq_scan",
        }
    }

    /// The batched LBA trace at the default seed: identical for the cached
    /// and uncached runs.
    #[cfg(test)]
    fn batches(self) -> Vec<Vec<u64>> {
        self.batches_seeded(DEFAULT_CACHE_SEED)
    }

    /// [`Self::batches`] with an explicit seed for the stochastic draws.
    fn batches_seeded(self, seed: u64) -> Vec<Vec<u64>> {
        match self {
            CacheWorkload::DlrmZipf => {
                // 64 pooled lookups per iteration over a 2048-row table,
                // skew 1.1 (TorchRec-like hot-row concentration).
                let zipf = Zipf::new(2048, 1.1);
                let mut rng = seeded_rng(seed);
                (0..64)
                    .map(|_| (0..64).map(|_| zipf.sample(&mut rng) - 1).collect())
                    .collect()
            }
            CacheWorkload::SeqScan => {
                // Two epochs over 1024 blocks in 32-block batches.
                (0..2)
                    .flat_map(|_| (0..32u64).map(|b| (b * 32..(b + 1) * 32).collect()))
                    .collect()
            }
        }
    }
}

/// One (workload, cache size) cell of the sweep.
#[derive(Clone, Debug)]
pub struct CacheWorkloadReport {
    /// Workload label (`dlrm_zipf`, `seq_scan`).
    pub workload: &'static str,
    /// Cache capacity in blocks for the cached run.
    pub slots: usize,
    /// Demand block accesses in the trace.
    pub accesses: u64,
    /// NVMe commands submitted by the uncached run.
    pub uncached_submissions: u64,
    /// NVMe commands submitted by the cached run (demand + readahead).
    pub cached_submissions: u64,
    /// Mean doorbell→retire latency of read batches, uncached (ns).
    pub uncached_read_mean_ns: f64,
    /// Mean doorbell→retire latency of demand read batches, cached (ns).
    pub cached_read_mean_ns: f64,
    /// Cache hit fraction over all demand accesses.
    pub cache_hit_rate: f64,
    /// Demand misses absorbed by an already in-flight fill.
    pub coalesced_misses: u64,
    /// Fraction of speculative blocks that served a demand access; `None`
    /// when the workload never triggered readahead.
    pub readahead_accuracy: Option<f64>,
}

impl CacheWorkloadReport {
    /// Uncached / cached submission ratio (the headline saving).
    pub fn submission_ratio(&self) -> f64 {
        if self.cached_submissions == 0 {
            f64::INFINITY
        } else {
            self.uncached_submissions as f64 / self.cached_submissions as f64
        }
    }
}

fn bench_rig() -> Rig {
    Rig::new(RigConfig {
        n_ssds: 4,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    })
}

fn read_mean_ns(snap: &MetricsSnapshot) -> f64 {
    snap.histogram("cam_batch_total_ns{channel=\"0\",op=\"read\"}")
        .map(|h| h.mean)
        .unwrap_or(0.0)
}

/// Drives `workload` through the plain device and returns
/// `(submissions, read_mean_ns)`.
fn run_uncached(workload: CacheWorkload, seed: u64) -> (u64, f64) {
    let rig = bench_rig();
    let registry = Arc::new(MetricsRegistry::new());
    let cam = CamContext::attach_observed(
        &rig,
        CamConfig::default(),
        Observability::with_registry(Arc::clone(&registry)),
    );
    let dev = cam.device();
    let bs = cam.block_size() as usize;
    let buf = cam.alloc(64 * bs).expect("dest buffer");
    for batch in workload.batches_seeded(seed) {
        dev.prefetch(&batch, buf.addr()).expect("prefetch");
        dev.prefetch_synchronize().expect("synchronize");
    }
    let snap = registry.snapshot();
    (
        snap.sum_counters("cam_ssd_submitted_total"),
        read_mean_ns(&snap),
    )
}

/// Drives `workload` through a [`CachedDevice`] with `slots` cache blocks;
/// optionally records the run into `recorder`. Returns the final snapshot.
pub fn run_cached(
    workload: CacheWorkload,
    slots: usize,
    recorder: Option<Arc<FlightRecorder>>,
) -> MetricsSnapshot {
    run_cached_seeded(workload, slots, DEFAULT_CACHE_SEED, recorder)
}

/// [`run_cached`] with an explicit workload seed.
pub fn run_cached_seeded(
    workload: CacheWorkload,
    slots: usize,
    seed: u64,
    recorder: Option<Arc<FlightRecorder>>,
) -> MetricsSnapshot {
    let rig = bench_rig();
    let registry = Arc::new(MetricsRegistry::new());
    let mut obs = Observability::with_registry(Arc::clone(&registry));
    obs.recorder = recorder;
    let cam = CamContext::attach_observed(
        &rig,
        CamConfig {
            n_channels: 3,
            ..CamConfig::default()
        },
        obs,
    );
    let dev = CachedDevice::attach(&rig, &cam, CacheConfig::with_slots(slots))
        .expect("cache fits GPU memory");
    let bs = cam.block_size() as usize;
    let buf = cam.alloc(64 * bs).expect("dest buffer");
    for batch in workload.batches_seeded(seed) {
        dev.prefetch(&batch, buf.addr()).expect("prefetch");
        dev.prefetch_synchronize().expect("synchronize");
    }
    registry.snapshot()
}

/// Runs one sweep cell: the workload uncached, then cached with `slots`.
pub fn run_cache_cell(workload: CacheWorkload, slots: usize) -> CacheWorkloadReport {
    run_cache_cell_seeded(workload, slots, DEFAULT_CACHE_SEED)
}

/// [`run_cache_cell`] with an explicit workload seed.
pub fn run_cache_cell_seeded(
    workload: CacheWorkload,
    slots: usize,
    seed: u64,
) -> CacheWorkloadReport {
    let accesses: u64 = workload
        .batches_seeded(seed)
        .iter()
        .map(|b| b.len() as u64)
        .sum();
    let (uncached_submissions, uncached_read_mean_ns) = run_uncached(workload, seed);
    let snap = run_cached_seeded(workload, slots, seed, None);
    let hits = snap.counter("cam_cache_hits_total");
    let misses = snap.counter("cam_cache_misses_total");
    let coalesced = snap.counter("cam_cache_coalesced_total");
    let demand = hits + misses + coalesced;
    let issued = snap.counter("cam_cache_readahead_issued_total");
    CacheWorkloadReport {
        workload: workload.name(),
        slots,
        accesses,
        uncached_submissions,
        cached_submissions: snap.sum_counters("cam_ssd_submitted_total"),
        uncached_read_mean_ns,
        cached_read_mean_ns: read_mean_ns(&snap),
        cache_hit_rate: if demand == 0 {
            0.0
        } else {
            hits as f64 / demand as f64
        },
        coalesced_misses: coalesced,
        readahead_accuracy: (issued > 0)
            .then(|| snap.counter("cam_cache_readahead_hits_total") as f64 / issued as f64),
    }
}

/// The full sweep: every workload × cache size, small-to-large.
pub fn run_cache_sweep(slot_sizes: &[usize]) -> Vec<CacheWorkloadReport> {
    run_cache_sweep_seeded(slot_sizes, DEFAULT_CACHE_SEED)
}

/// [`run_cache_sweep`] with an explicit workload seed.
pub fn run_cache_sweep_seeded(slot_sizes: &[usize], seed: u64) -> Vec<CacheWorkloadReport> {
    let mut out = Vec::with_capacity(CacheWorkload::ALL.len() * slot_sizes.len());
    for workload in CacheWorkload::ALL {
        for &slots in slot_sizes {
            out.push(run_cache_cell_seeded(workload, slots, seed));
        }
    }
    out
}

/// The `"cache"` section of `BENCH_repro.json`: one object per sweep cell.
pub fn cache_section_json(reports: &[CacheWorkloadReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        let ra = match r.readahead_accuracy {
            Some(a) => format!("{a:.4}"),
            None => "null".into(),
        };
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"slots\": {}, \"accesses\": {}, \
             \"uncached_submissions\": {}, \"cached_submissions\": {}, \
             \"submission_ratio\": {:.2}, \"uncached_read_mean_ns\": {:.0}, \
             \"cached_read_mean_ns\": {:.0}, \"cache_hit_rate\": {:.4}, \
             \"coalesced_misses\": {}, \"readahead_accuracy\": {}}}",
            r.workload,
            r.slots,
            r.accesses,
            r.uncached_submissions,
            r.cached_submissions,
            r.submission_ratio(),
            r.uncached_read_mean_ns,
            r.cached_read_mean_ns,
            r.cache_hit_rate,
            r.coalesced_misses,
            ra,
        );
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sized() {
        let a = CacheWorkload::DlrmZipf.batches();
        let b = CacheWorkload::DlrmZipf.batches();
        assert_eq!(a, b, "seeded trace must be reproducible");
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|batch| batch.len() == 64));
        let s = CacheWorkload::SeqScan.batches();
        assert_eq!(s.len(), 64);
        assert_eq!(s[0], (0..32).collect::<Vec<u64>>());
        assert_eq!(
            s[32],
            (0..32).collect::<Vec<u64>>(),
            "second epoch restarts"
        );
    }

    #[test]
    fn zipf_cell_meets_the_acceptance_bar() {
        // The ISSUE acceptance: on the repeated-access workload, cached
        // mode shows >= 2x fewer NVMe submissions and a lower mean
        // doorbell->retire latency than uncached.
        let r = run_cache_cell(CacheWorkload::DlrmZipf, 2048);
        assert!(r.cache_hit_rate > 0.5, "hit rate {}", r.cache_hit_rate);
        assert!(
            r.submission_ratio() >= 2.0,
            "only {:.2}x fewer submissions ({} vs {})",
            r.submission_ratio(),
            r.uncached_submissions,
            r.cached_submissions
        );
        assert!(
            r.cached_read_mean_ns < r.uncached_read_mean_ns,
            "cached mean {} >= uncached mean {}",
            r.cached_read_mean_ns,
            r.uncached_read_mean_ns
        );
        assert!(r.coalesced_misses > 0, "zipf batches repeat rows in-batch");
    }

    #[test]
    fn seq_scan_exercises_readahead() {
        let r = run_cache_cell(CacheWorkload::SeqScan, 2048);
        let acc = r.readahead_accuracy.expect("sequential stream speculated");
        assert!(acc > 0.0, "speculation never hit");
        // Epoch 2 re-reads everything: with the whole scan resident the
        // hit rate must be at least ~half.
        assert!(r.cache_hit_rate >= 0.4, "hit rate {}", r.cache_hit_rate);
    }

    #[test]
    fn cache_json_section_is_balanced() {
        let reports = vec![CacheWorkloadReport {
            workload: "dlrm_zipf",
            slots: 256,
            accesses: 4096,
            uncached_submissions: 4096,
            cached_submissions: 700,
            uncached_read_mean_ns: 100_000.0,
            cached_read_mean_ns: 40_000.0,
            cache_hit_rate: 0.81,
            coalesced_misses: 120,
            readahead_accuracy: None,
        }];
        let json = cache_section_json(&reports);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"cache_hit_rate\": 0.8100"));
        assert!(json.contains("\"readahead_accuracy\": null"));
    }
}
