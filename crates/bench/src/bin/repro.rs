//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all          # everything, in paper order
//! repro list         # available experiment ids
//! repro fig8 fig9    # a subset
//! ```

use std::process::ExitCode;

use cam_bench::figures::registry;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro [all|list|<experiment id>...]");
        eprintln!("experiments:");
        for (id, desc, _) in &reg {
            eprintln!("  {id:<6} {desc}");
        }
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        for (id, desc, _) in &reg {
            println!("{id:<6} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let wanted: Vec<&str> = if args[0] == "all" {
        reg.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for want in &wanted {
        let Some((_, desc, gen)) = reg.iter().find(|(id, _, _)| id == want) else {
            eprintln!("unknown experiment '{want}' (try 'repro list')");
            return ExitCode::FAILURE;
        };
        println!("######## {want}: {desc}\n");
        for table in gen() {
            println!("{table}");
        }
    }
    ExitCode::SUCCESS
}
