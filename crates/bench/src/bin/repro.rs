//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all                    # everything, in paper order
//! repro list                   # available experiment ids
//! repro fig8 fig9              # a subset
//! repro --metrics m.json bench # also dump the full telemetry registry
//! repro --trace t.json         # also write a Perfetto-loadable trace
//! ```
//!
//! `--metrics <path>` runs an instrumented functional-engine workload and
//! writes the complete metrics-registry snapshot (counters, gauges, stage
//! histograms with p50/p99) to `<path>` as JSON. The `bench` experiment
//! additionally writes `BENCH_repro.json` with throughput, per-stage
//! quantiles, and critical-path attribution.
//!
//! `--trace <path>` runs the same instrumented workload plus a small CAM
//! DES microbenchmark with a flight recorder attached, and writes the
//! combined timeline as Chrome trace-event JSON — open it in Perfetto or
//! `chrome://tracing`. Process 1 is the functional engine (one track per
//! poller/worker/emitting thread, one async span per batch); process 2 is
//! the simulated SSDs.
//!
//! `repro watch` drives a fault-injected workload through a fully observed
//! engine and renders a live per-lane / per-channel / per-tenant snapshot
//! table every few hundred milliseconds (rolling-window retries, latency
//! quantiles, SLO burn rates, lane health, tenant hit rates). `repro
//! watch --once` renders a single end-of-run snapshot and writes
//! `bench/out/health_snapshot.json` — for scripting and CI smoke.
//!
//! `repro serve` runs the multi-tenant KV-cache serving experiment
//! (`docs/SERVING.md`): a 1050-session 4-tenant scale run on the DES
//! driver, a hot-tenant skew run under both DRR and FIFO (the fairness
//! comparison), and a threaded smoke — writing the `"serving"` section of
//! `BENCH_repro.json`.
//!
//! `repro bench --check` runs the seeded DES perf trajectories — uncached
//! and cached-mode — and gates each against its committed baseline
//! (`bench/baselines/trajectory.json` and `trajectory_cached.json`;
//! `--baselines <path>` relocates both): exit 1 plus `baseline_diff.json`
//! (or `baseline_diff_cached.json`) with per-component queue-delay
//! attribution on a statistical regression. `repro bench
//! --update-baselines` regenerates both baselines.
//! `--trials N` / `--seed S` tune the trajectory; `--perturb F` scales
//! the SSD model's service time (the gate's self-test knob: `--perturb
//! 1.2` models a device 20% slower across the board). `repro attribute`
//! prints the doorbell→retire queue-delay decomposition (mean + p99
//! tail) for both drivers.
//!
//! `repro calibrate [--rounds N]` re-fits the DES CPU-pipe constants
//! (`CpuPipeModel::calibrated()`) from the threaded engine's own lifecycle
//! traces on this machine and exits 1 when the predicted dispatch cost
//! drifts more than 25% from the committed model on three consecutive
//! sweeps — the CI smoke against stale calibration.

use std::process::ExitCode;

use cam_bench::figures::{registry, BenchParams};
use cam_bench::telemetry_run::{run_instrumented, run_traced};
use cam_bench::trajectory_run::{
    baseline_json, cached_baseline_path, check, current_git_sha, merge_bench_json, parse_baseline,
    run_cached_trajectory, run_trajectory, trajectory_entry_json, GateConfig, TrajectoryReport,
    BASELINE_PATH,
};
use cam_telemetry::trace::validate_chrome_trace;

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, ExitCode> {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("{flag} requires a value argument");
                return Err(ExitCode::from(2));
            }
            args.remove(i); // the flag
            Ok(Some(args.remove(i))) // its value
        }
        None => Ok(None),
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, ExitCode> {
    match take_flag_value(args, flag)? {
        Some(raw) => match raw.parse::<T>() {
            Ok(v) => Ok(Some(v)),
            Err(_) => {
                eprintln!("{flag}: could not parse '{raw}'");
                Err(ExitCode::from(2))
            }
        },
        None => Ok(None),
    }
}

/// `repro bench --check` / `--update-baselines`: the statistical
/// perf-regression gate over the DES trajectory. Returns the process exit
/// code: 0 pass, 1 regression, 2 usage/environment error.
fn print_merged(label: &str, report: &TrajectoryReport) {
    println!(
        "{label}: {} batches, p50 {} ns (CI {}..{}), p99 {} ns (CI {}..{}), mean {:.0} ns",
        report.decomposition.batches,
        report.p50_ns,
        report.p50_ci.lo,
        report.p50_ci.hi,
        report.p99_ns,
        report.p99_ci.lo,
        report.p99_ci.hi,
        report.mean_batch_ns,
    );
    print!("{}", report.decomposition.render_table());
}

/// Gates one report against the baseline at `path`; writes `diff_path` on
/// regression. Returns the exit code the whole gate should (at least)
/// carry: 0 pass, 1 regression, 2 missing/invalid baseline.
fn gate_one(label: &str, report: &TrajectoryReport, path: &str, diff_path: &str) -> u8 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "could not read {label} baseline {path}: {e}\n\
                 (seed one with 'repro bench --update-baselines')"
            );
            return 2;
        }
    };
    let baseline = match parse_baseline(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("invalid {label} baseline {path}: {e}");
            return 2;
        }
    };
    let outcome = check(report, &baseline, &GateConfig::default());
    print!("{label} {}", outcome.render());
    if outcome.regressed {
        match std::fs::write(diff_path, outcome.to_json()) {
            Ok(()) => eprintln!("{label} regression report written to {diff_path}"),
            Err(e) => eprintln!("could not write {diff_path}: {e}"),
        }
        return 1;
    }
    0
}

fn run_gate(params: &BenchParams, baselines: &str, update: bool) -> ExitCode {
    let tp = params.trial_params();
    println!(
        "trajectory: {} trials + {} warmup, seed {:#x}, {} rounds/channel, latency scale {:.2}",
        tp.trials, tp.warmup, tp.seed, tp.rounds, tp.latency_scale
    );
    let report = run_trajectory(&tp);
    print_merged("uncached merged", &report);
    let cached_report = run_cached_trajectory(&tp);
    print_merged("cached merged", &cached_report);
    let cached_path = cached_baseline_path(baselines);
    if update {
        if let Some(dir) = std::path::Path::new(baselines).parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("could not create {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        for (path, rep) in [(baselines, &report), (cached_path.as_str(), &cached_report)] {
            if let Err(e) = std::fs::write(path, baseline_json(rep)) {
                eprintln!("could not write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("updated baseline at {path}");
        }
        return ExitCode::SUCCESS;
    }
    let uncached = gate_one("uncached", &report, baselines, "baseline_diff.json");
    let cached = gate_one(
        "cached",
        &cached_report,
        &cached_path,
        "baseline_diff_cached.json",
    );
    // Environment errors (2) outrank regressions (1).
    match uncached.max(cached) {
        0 => {}
        code => return ExitCode::from(code),
    }
    // A passing run still extends the trajectory record.
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = trajectory_entry_json(&report, &current_git_sha(), unix_time);
    let path = "BENCH_repro.json";
    let prev = std::fs::read_to_string(path).ok();
    if let Err(e) = std::fs::write(path, merge_bench_json(prev.as_deref(), "{}", &entry)) {
        eprintln!("warning: could not append trajectory entry to {path}: {e}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_path = match take_flag_value(&mut args, "--metrics") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let trace_path = match take_flag_value(&mut args, "--trace") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let trials = match parse_flag::<usize>(&mut args, "--trials") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let seed = match parse_flag::<u64>(&mut args, "--seed") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let latency_scale = match parse_flag::<f64>(&mut args, "--perturb") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let baselines = match take_flag_value(&mut args, "--baselines") {
        Ok(p) => p,
        Err(code) => return code,
    }
    .unwrap_or_else(|| BASELINE_PATH.to_string());
    let check_flag = take_flag(&mut args, "--check");
    let update_flag = take_flag(&mut args, "--update-baselines");
    let params = BenchParams {
        trials,
        seed,
        latency_scale,
    };
    if check_flag || update_flag {
        if args.first().map(String::as_str) != Some("bench") {
            eprintln!(
                "--check/--update-baselines apply to the 'bench' experiment: repro bench --check"
            );
            return ExitCode::from(2);
        }
        return run_gate(&params, &baselines, update_flag);
    }
    // `calibrate` re-fits the DES CPU-pipe constants on this machine and
    // gates the drift — the CI smoke for stale CpuPipeModel::calibrated().
    if args.first().map(String::as_str) == Some("calibrate") {
        let rounds = match parse_flag::<u64>(&mut args, "--rounds") {
            Ok(v) => v.unwrap_or(24),
            Err(code) => return code,
        };
        // Up to three sweeps, passing on the first in-tolerance fit: a
        // transient load spike (CI runner just finished compiling) fails
        // one sweep; genuinely stale constants fail all three.
        const ATTEMPTS: u32 = 3;
        let mut report = None;
        for attempt in 1..=ATTEMPTS {
            let Some(r) = cam_bench::calibrate::calibrate(rounds) else {
                eprintln!("calibration sweep produced too few samples to fit");
                return ExitCode::from(2);
            };
            if attempt > 1 {
                println!("-- attempt {attempt}/{ATTEMPTS} --");
            }
            print!("{}", r.render());
            let ok = r.within_tolerance();
            report = Some(r);
            if ok {
                break;
            }
        }
        let report = report.expect("at least one attempt ran");
        return if report.within_tolerance() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    // `watch` is a live view, not a figure generator: handle it before the
    // registry dispatch.
    if args.first().map(String::as_str) == Some("watch") {
        let once = args.iter().any(|a| a == "--once");
        let report = cam_bench::watch::run_watch(once, |frame| println!("{frame}"));
        if once {
            let path = "bench/out/health_snapshot.json";
            if let Err(e) = std::fs::create_dir_all("bench/out") {
                eprintln!("could not create bench/out: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(path, &report.snapshot_json) {
                eprintln!("could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        return ExitCode::SUCCESS;
    }
    let reg = registry();
    if metrics_path.is_none()
        && trace_path.is_none()
        && (args.is_empty() || args[0] == "help" || args[0] == "--help")
    {
        eprintln!(
            "usage: repro [--metrics <path>] [--trace <path>] [--trials N] [--seed S] \
             [--perturb F] [--baselines <path>] [all|list|watch [--once]|calibrate [--rounds N]|\
             bench [--check|--update-baselines]|<experiment id>...]"
        );
        eprintln!("experiments:");
        for (id, desc, _) in &reg {
            eprintln!("  {id:<6} {desc}");
        }
        return ExitCode::from(2);
    }
    if args.first().map(String::as_str) == Some("list") {
        for (id, desc, _) in &reg {
            println!("{id:<6} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let wanted: Vec<&str> = if args.first().map(String::as_str) == Some("all") {
        reg.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for want in &wanted {
        let Some((_, desc, gen)) = reg.iter().find(|(id, _, _)| id == want) else {
            eprintln!("unknown experiment '{want}' (try 'repro list')");
            return ExitCode::FAILURE;
        };
        println!("######## {want}: {desc}\n");
        for table in gen(&params) {
            println!("{table}");
        }
    }
    if let Some(path) = metrics_path {
        let run = run_instrumented(20, 64);
        if let Err(e) = std::fs::write(&path, run.snapshot.to_json()) {
            eprintln!("could not write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote telemetry registry snapshot to {path}");
    }
    if let Some(path) = trace_path {
        let (run, trace) = run_traced(20, 64);
        // Self-check before writing: a trace that fails its own validator
        // (missing fields, unbalanced async spans) is a bug, not output.
        let summary = match validate_chrome_trace(&trace) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("generated trace failed validation: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, &trace) {
            eprintln!("could not write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote Chrome trace to {path}: {} events, {} async spans, {} tracks across {} processes ({} batches retired)",
            summary.events,
            summary.async_begin,
            summary.named_tracks.len(),
            summary.processes,
            run.snapshot.counter("cam_batches_total"),
        );
    }
    ExitCode::SUCCESS
}
