//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all                    # everything, in paper order
//! repro list                   # available experiment ids
//! repro fig8 fig9              # a subset
//! repro --metrics m.json bench # also dump the full telemetry registry
//! ```
//!
//! `--metrics <path>` runs an instrumented functional-engine workload and
//! writes the complete metrics-registry snapshot (counters, gauges, stage
//! histograms with p50/p99) to `<path>` as JSON. The `bench` experiment
//! additionally writes `BENCH_repro.json` with throughput and per-stage
//! quantiles.

use std::process::ExitCode;

use cam_bench::figures::registry;
use cam_bench::telemetry_run::run_instrumented;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_path = match args.iter().position(|a| a == "--metrics") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--metrics requires a path argument");
                return ExitCode::from(2);
            }
            args.remove(i); // the flag
            Some(args.remove(i)) // its value
        }
        None => None,
    };
    let reg = registry();
    if metrics_path.is_none() && (args.is_empty() || args[0] == "help" || args[0] == "--help") {
        eprintln!("usage: repro [--metrics <path>] [all|list|<experiment id>...]");
        eprintln!("experiments:");
        for (id, desc, _) in &reg {
            eprintln!("  {id:<6} {desc}");
        }
        return ExitCode::from(2);
    }
    if args.first().map(String::as_str) == Some("list") {
        for (id, desc, _) in &reg {
            println!("{id:<6} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let wanted: Vec<&str> = if args.first().map(String::as_str) == Some("all") {
        reg.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for want in &wanted {
        let Some((_, desc, gen)) = reg.iter().find(|(id, _, _)| id == want) else {
            eprintln!("unknown experiment '{want}' (try 'repro list')");
            return ExitCode::FAILURE;
        };
        println!("######## {want}: {desc}\n");
        for table in gen() {
            println!("{table}");
        }
    }
    if let Some(path) = metrics_path {
        let run = run_instrumented(20, 64);
        if let Err(e) = std::fs::write(&path, run.snapshot.to_json()) {
            eprintln!("could not write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote telemetry registry snapshot to {path}");
    }
    ExitCode::SUCCESS
}
