//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all                    # everything, in paper order
//! repro list                   # available experiment ids
//! repro fig8 fig9              # a subset
//! repro --metrics m.json bench # also dump the full telemetry registry
//! repro --trace t.json         # also write a Perfetto-loadable trace
//! ```
//!
//! `--metrics <path>` runs an instrumented functional-engine workload and
//! writes the complete metrics-registry snapshot (counters, gauges, stage
//! histograms with p50/p99) to `<path>` as JSON. The `bench` experiment
//! additionally writes `BENCH_repro.json` with throughput, per-stage
//! quantiles, and critical-path attribution.
//!
//! `--trace <path>` runs the same instrumented workload plus a small CAM
//! DES microbenchmark with a flight recorder attached, and writes the
//! combined timeline as Chrome trace-event JSON — open it in Perfetto or
//! `chrome://tracing`. Process 1 is the functional engine (one track per
//! poller/worker/emitting thread, one async span per batch); process 2 is
//! the simulated SSDs.
//!
//! `repro watch` drives a fault-injected workload through a fully observed
//! engine and renders a live per-lane / per-channel snapshot table every
//! few hundred milliseconds (rolling-window retries, latency quantiles,
//! SLO burn rates, lane health). `repro watch --once` renders a single
//! end-of-run snapshot and writes `health_snapshot.json` — for scripting
//! and CI smoke.

use std::process::ExitCode;

use cam_bench::figures::registry;
use cam_bench::telemetry_run::{run_instrumented, run_traced};
use cam_telemetry::trace::validate_chrome_trace;

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, ExitCode> {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("{flag} requires a path argument");
                return Err(ExitCode::from(2));
            }
            args.remove(i); // the flag
            Ok(Some(args.remove(i))) // its value
        }
        None => Ok(None),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_path = match take_flag_value(&mut args, "--metrics") {
        Ok(p) => p,
        Err(code) => return code,
    };
    let trace_path = match take_flag_value(&mut args, "--trace") {
        Ok(p) => p,
        Err(code) => return code,
    };
    // `watch` is a live view, not a figure generator: handle it before the
    // registry dispatch.
    if args.first().map(String::as_str) == Some("watch") {
        let once = args.iter().any(|a| a == "--once");
        let report = cam_bench::watch::run_watch(once, |frame| println!("{frame}"));
        if once {
            let path = "health_snapshot.json";
            if let Err(e) = std::fs::write(path, &report.snapshot_json) {
                eprintln!("could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        return ExitCode::SUCCESS;
    }
    let reg = registry();
    if metrics_path.is_none()
        && trace_path.is_none()
        && (args.is_empty() || args[0] == "help" || args[0] == "--help")
    {
        eprintln!(
            "usage: repro [--metrics <path>] [--trace <path>] [all|list|watch [--once]|<experiment id>...]"
        );
        eprintln!("experiments:");
        for (id, desc, _) in &reg {
            eprintln!("  {id:<6} {desc}");
        }
        return ExitCode::from(2);
    }
    if args.first().map(String::as_str) == Some("list") {
        for (id, desc, _) in &reg {
            println!("{id:<6} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let wanted: Vec<&str> = if args.first().map(String::as_str) == Some("all") {
        reg.iter().map(|(id, _, _)| *id).collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for want in &wanted {
        let Some((_, desc, gen)) = reg.iter().find(|(id, _, _)| id == want) else {
            eprintln!("unknown experiment '{want}' (try 'repro list')");
            return ExitCode::FAILURE;
        };
        println!("######## {want}: {desc}\n");
        for table in gen() {
            println!("{table}");
        }
    }
    if let Some(path) = metrics_path {
        let run = run_instrumented(20, 64);
        if let Err(e) = std::fs::write(&path, run.snapshot.to_json()) {
            eprintln!("could not write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote telemetry registry snapshot to {path}");
    }
    if let Some(path) = trace_path {
        let (run, trace) = run_traced(20, 64);
        // Self-check before writing: a trace that fails its own validator
        // (missing fields, unbalanced async spans) is a bug, not output.
        let summary = match validate_chrome_trace(&trace) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("generated trace failed validation: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, &trace) {
            eprintln!("could not write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote Chrome trace to {path}: {} events, {} async spans, {} tracks across {} processes ({} batches retired)",
            summary.events,
            summary.async_begin,
            summary.named_tracks.len(),
            summary.processes,
            run.snapshot.counter("cam_batches_total"),
        );
    }
    ExitCode::SUCCESS
}
