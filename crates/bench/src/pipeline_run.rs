//! Multi-channel pipelining experiment: the same contended read workload
//! driven through the pipelined reactor and through the blocking
//! group-at-a-time baseline, with the per-SSD in-flight depth sampled live
//! from the `cam_inflight{ssd}` gauges.
//!
//! Four channels each keep one single-block-per-SSD read batch outstanding
//! against a slow 4-SSD rig (a real service latency per burst), so batches
//! from different channels *can* overlap on every SSD. The pipelined
//! reactor keeps them overlapped — sustained in-flight depth above one per
//! SSD and one amortized service round for the whole burst — while the
//! blocking baseline serializes group after group and pays the service
//! latency per command.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cam_core::{CamConfig, CamContext, ChannelOp, ThreadModel};
use cam_iostacks::{Rig, RigConfig};
use cam_telemetry::{MetricsRegistry, Observability};

const N_SSDS: usize = 4;
const N_CHANNELS: usize = 4;
/// Injected device service latency per burst — slow enough that overlap
/// (or its absence) dominates the measured latency.
const SERVICE_LATENCY: Duration = Duration::from_micros(200);

/// One mode's measurements.
pub struct PipelineModeReport {
    /// Whether the reactor ran pipelined.
    pub pipelined: bool,
    /// Time-mean in-flight depth per SSD, sampled from `cam_inflight{ssd}`.
    pub inflight_mean: Vec<f64>,
    /// High-water in-flight depth per SSD (`cam_inflight_peak{ssd}`).
    pub inflight_peak: Vec<u64>,
    /// Mean doorbell→retire read latency across all channels, nanoseconds.
    pub mean_read_ns: u64,
    /// Read batches retired.
    pub batches: u64,
}

/// The pipelined run and its blocking baseline, side by side.
pub struct PipelineReport {
    /// Measurements with the pipelined reactor.
    pub pipelined: PipelineModeReport,
    /// Measurements with the blocking group-at-a-time baseline.
    pub blocking: PipelineModeReport,
}

impl PipelineReport {
    /// Blocking-over-pipelined mean read latency ratio (> 1 = pipelining
    /// wins).
    pub fn speedup(&self) -> f64 {
        if self.pipelined.mean_read_ns == 0 {
            0.0
        } else {
            self.blocking.mean_read_ns as f64 / self.pipelined.mean_read_ns as f64
        }
    }
}

/// Runs the experiment in both modes: `rounds` read batches per channel,
/// four channels driven concurrently.
pub fn run_pipeline_experiment(rounds: u64) -> PipelineReport {
    PipelineReport {
        pipelined: run_mode(true, rounds),
        blocking: run_mode(false, rounds),
    }
}

fn run_mode(pipelined: bool, rounds: u64) -> PipelineModeReport {
    let rig = Rig::new(RigConfig {
        n_ssds: N_SSDS,
        blocks_per_ssd: 4096,
        stripe_blocks: 1,
        burst_latency: Some(SERVICE_LATENCY),
        ..RigConfig::default()
    });
    let registry = Arc::new(MetricsRegistry::new());
    let cfg = CamConfig {
        n_channels: N_CHANNELS,
        // One worker owning all four SSDs: any overlap across channels must
        // come from the reactor's pipelining, not from thread parallelism.
        workers: Some(1),
        pipelined,
        // Pinned to the legacy poller engine: this experiment isolates the
        // reactor's pipelining win, and its baselines were captured with
        // the dispatch hop in place. The thread-per-core comparison lives
        // in `mode_run`.
        thread_model: ThreadModel::CentralPoller,
        ..CamConfig::default()
    };
    let obs = Observability::with_registry(Arc::clone(&registry));
    let cam = CamContext::attach_observed(&rig, cfg, obs);
    let metrics = Arc::clone(cam.metrics());

    // Sampler: time-mean of the live per-SSD in-flight gauges while the
    // workload runs.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut sums = vec![0u64; N_SSDS];
            let mut samples = 0u64;
            while !stop.load(Ordering::Acquire) {
                for (ssd, sum) in sums.iter_mut().enumerate() {
                    *sum += metrics.inflight[ssd].get();
                }
                samples += 1;
                std::thread::sleep(Duration::from_micros(20));
            }
            (sums, samples)
        })
    };

    // Four driver threads, one per channel, each keeping one batch of one
    // single-block read per SSD outstanding (stripe 1: LBA k lands on SSD
    // k mod 4), over disjoint LBA windows.
    std::thread::scope(|s| {
        for ch in 0..N_CHANNELS {
            let dev = cam.device();
            let buf = cam.alloc(N_SSDS * cam.block_size() as usize).unwrap();
            s.spawn(move || {
                let base = ch as u64 * 512;
                for round in 0..rounds {
                    let lo = base + (round % 64) * N_SSDS as u64;
                    let lbas: Vec<u64> = (lo..lo + N_SSDS as u64).collect();
                    let ticket = dev
                        .submit(ch, ChannelOp::Read, &lbas, buf.addr())
                        .expect("submit");
                    ticket.wait().expect("batch retires cleanly");
                }
            });
        }
    });
    stop.store(true, Ordering::Release);
    let (sums, samples) = sampler.join().expect("sampler");

    let snapshot = registry.snapshot();
    let (mut total_ns, mut batches) = (0u128, 0u64);
    for ch in 0..N_CHANNELS {
        let name = format!("cam_batch_total_ns{{channel=\"{ch}\",op=\"read\"}}");
        if let Some(h) = snapshot.histogram(&name) {
            total_ns += h.sum;
            batches += h.count;
        }
    }
    PipelineModeReport {
        pipelined,
        inflight_mean: sums
            .iter()
            .map(|&s| s as f64 / samples.max(1) as f64)
            .collect(),
        inflight_peak: (0..N_SSDS)
            .map(|ssd| snapshot.gauge(&format!("cam_inflight_peak{{ssd=\"{ssd}\"}}")))
            .collect(),
        mean_read_ns: (total_ns / u128::from(batches.max(1))) as u64,
        batches,
    }
}

/// The `"pipeline"` section of `BENCH_repro.json`.
pub fn pipeline_section_json(report: &PipelineReport) -> String {
    let mode = |m: &PipelineModeReport| {
        let means = m
            .inflight_mean
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        let peaks = m
            .inflight_peak
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"inflight_mean\": [{means}], \"inflight_peak\": [{peaks}], \
             \"mean_read_ns\": {}, \"batches\": {}}}",
            m.mean_read_ns, m.batches
        )
    };
    let mut out = String::with_capacity(512);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "    \"workload\": {{\"channels\": {N_CHANNELS}, \"ssds\": {N_SSDS}, \
         \"service_latency_ns\": {}}},",
        SERVICE_LATENCY.as_nanos()
    );
    let _ = writeln!(out, "    \"pipelined\": {},", mode(&report.pipelined));
    let _ = writeln!(out, "    \"blocking\": {},", mode(&report.blocking));
    let _ = writeln!(out, "    \"read_latency_speedup\": {:.2}", report.speedup());
    out.push_str("  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_mode_sustains_depth_and_beats_blocking_latency() {
        let report = run_pipeline_experiment(16);
        assert_eq!(report.pipelined.batches, 16 * N_CHANNELS as u64);
        assert_eq!(report.blocking.batches, 16 * N_CHANNELS as u64);
        for (ssd, &mean) in report.pipelined.inflight_mean.iter().enumerate() {
            assert!(
                mean > 1.0,
                "pipelined SSD {ssd} mean in-flight depth {mean:.3} <= 1"
            );
        }
        for (ssd, &peak) in report.pipelined.inflight_peak.iter().enumerate() {
            assert!(peak > 1, "pipelined SSD {ssd} peak {peak} <= 1");
        }
        assert!(
            report.pipelined.mean_read_ns <= report.blocking.mean_read_ns,
            "pipelined {} ns > blocking {} ns",
            report.pipelined.mean_read_ns,
            report.blocking.mean_read_ns
        );
        let json = pipeline_section_json(&report);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"pipelined\"",
            "\"blocking\"",
            "\"inflight_mean\"",
            "\"mean_read_ns\"",
            "\"read_latency_speedup\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
