//! Criterion benches over the DES microbenchmark engine — one per figure
//! family (Figs. 2, 8, 12, 15, 16). Criterion measures the *simulator's*
//! wall time; the figures' model outputs come from `repro`, which shares
//! these exact configurations.

use cam_hostos::IoDir;
use cam_iostacks::des::{run_microbench, Engine, MicrobenchConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig2_kernel_stacks(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_kernel_stacks_4k_read");
    g.sample_size(10);
    for engine in [
        Engine::Posix,
        Engine::Libaio,
        Engine::IoUringInt,
        Engine::IoUringPoll,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(engine.name()),
            &engine,
            |b, &engine| {
                b.iter(|| {
                    let mut cfg = MicrobenchConfig::new(engine, 1, IoDir::Read);
                    cfg.requests = 2_000;
                    std::hint::black_box(run_microbench(cfg).kiops)
                })
            },
        );
    }
    g.finish();
}

fn fig8_ssd_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_cam_read_scaling");
    g.sample_size(10);
    for n in [1usize, 4, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cfg = MicrobenchConfig::new(Engine::Cam, n, IoDir::Read);
                cfg.requests = (n as u64) * 2_000;
                std::hint::black_box(run_microbench(cfg).gbps)
            })
        });
    }
    g.finish();
}

fn fig12_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_ssds_per_thread");
    g.sample_size(10);
    for threads in [12usize, 6, 3] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut cfg = MicrobenchConfig::new(Engine::Cam, 12, IoDir::Read);
                    cfg.cam_threads = threads;
                    cfg.requests = 12 * 2_000;
                    std::hint::black_box(run_microbench(cfg).gbps)
                })
            },
        );
    }
    g.finish();
}

fn fig15_fig16_staging(c: &mut Criterion) {
    let mut g = c.benchmark_group("staging_limits");
    g.sample_size(10);
    g.bench_function("fig15_spdk_2_channels", |b| {
        b.iter(|| {
            let mut cfg = MicrobenchConfig::new(Engine::Spdk, 12, IoDir::Read);
            cfg.mem_channels = 2;
            cfg.requests = 12 * 2_000;
            std::hint::black_box(run_microbench(cfg).gbps)
        })
    });
    g.bench_function("fig16_spdk_noncontig_4k", |b| {
        b.iter(|| {
            let mut cfg = MicrobenchConfig::new(Engine::Spdk, 12, IoDir::Read);
            cfg.noncontig_dest = true;
            cfg.requests = 12 * 2_000;
            std::hint::black_box(run_microbench(cfg).gbps)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig2_kernel_stacks,
    fig8_ssd_scaling,
    fig12_threads,
    fig15_fig16_staging
);
criterion_main!(benches);
