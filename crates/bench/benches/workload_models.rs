//! Criterion benches for the workload layer: the analytic epoch/sort/GEMM
//! models (Figs. 1, 9, 10, 11) and the functional sampler/sorter at small
//! scale.

use cam_core::{CamBackend, CamConfig, CamContext};
use cam_iostacks::{Rig, RigConfig, StorageBackend};
use cam_simkit::dist::seeded_rng;
use cam_workloads::gemm::{model_gemm, GemmEngine};
use cam_workloads::gnn::{model_epoch, sample_neighborhood, GnnConfig, GnnModel, GnnSystem};
use cam_workloads::graph::{Graph, GraphSpec};
use cam_workloads::sort::{model_sort, out_of_core_sort, OocSortConfig, SortEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;

fn fig9_epoch_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_epoch_model");
    for model in GnnModel::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            &model,
            |b, &model| {
                b.iter(|| {
                    let spec = GraphSpec::igb_full();
                    let cfg = GnnConfig::default();
                    let gids = model_epoch(GnnSystem::Gids, &spec, model, &cfg, 12);
                    let cam = model_epoch(GnnSystem::Cam, &spec, model, &cfg, 12);
                    std::hint::black_box((gids.step, cam.step))
                })
            },
        );
    }
    g.finish();
}

fn fig10_11_sort_gemm_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_11_models");
    g.bench_function("sort_model_sweep", |b| {
        b.iter(|| {
            for e in [SortEngine::Posix, SortEngine::Spdk, SortEngine::CamSync] {
                for gi in [2u64, 8] {
                    std::hint::black_box(model_sort(e, gi << 30, 12));
                }
            }
        })
    });
    g.bench_function("gemm_model_sweep", |b| {
        b.iter(|| {
            for e in [GemmEngine::Cam, GemmEngine::Bam, GemmEngine::Gds] {
                std::hint::black_box(model_gemm(e, 65_536, 4_096, 12));
            }
        })
    });
    g.finish();
}

fn sampler(c: &mut Criterion) {
    let graph = Graph::generate(100_000, 15.0, 128, 11);
    let seeds: Vec<u32> = (0..512).collect();
    let mut g = c.benchmark_group("gnn_sampler");
    g.bench_function("two_hop_25x10_512_seeds", |b| {
        let mut rng = seeded_rng(3);
        b.iter(|| std::hint::black_box(sample_neighborhood(&graph, &seeds, &[25, 10], &mut rng)))
    });
    g.finish();
}

fn functional_sort(c: &mut Criterion) {
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        blocks_per_ssd: 8192,
        ..RigConfig::default()
    });
    let cam = CamContext::attach(&rig, CamConfig::default());
    let backend = CamBackend::new(cam.device(), 4096);
    let elems: u64 = 16 * 1024;
    let cfg = OocSortConfig {
        total_elems: elems,
        run_elems: 4 * 1024,
        block_size: 4096,
        data_lba: 0,
        scratch_lba: 64,
    };
    let mut g = c.benchmark_group("functional_sort");
    g.sample_size(10);
    g.bench_function("sort_16k_keys_cam", |b| {
        b.iter(|| {
            // Reload shuffled data, then sort.
            let mut rng = seeded_rng(5);
            let data: Vec<u8> = (0..elems)
                .flat_map(|_| rng.gen::<u32>().to_le_bytes())
                .collect();
            let buf = rig.gpu().alloc(data.len()).unwrap();
            buf.write(0, &data);
            backend
                .execute_batch(&[cam_iostacks::IoRequest::write(0, 16, buf.addr())])
                .unwrap();
            std::hint::black_box(out_of_core_sort(&backend, rig.gpu(), &cfg).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig9_epoch_models,
    fig10_11_sort_gemm_models,
    sampler,
    functional_sort
);
criterion_main!(benches);
