//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Doorbell batching** — per-command vs batched submission on a real
//!    queue pair against a live device thread.
//! 2. **Control-plane placement** — CAM's CPU plane vs a BaM-style in-GPU
//!    plane executing the same functional batch.
//! 3. **Sync wrapper cost** — `prefetch`/`prefetch_synchronize` vs the raw
//!    ticket API for the same batches.
//! 4. **Data-path staging** — direct (CAM) vs bounce-buffered (SPDK)
//!    functional batches.

use cam_core::{CamBackend, CamConfig, CamContext, ChannelOp};
use cam_iostacks::{BamBackend, IoRequest, Rig, RigConfig, SpdkBackend, StorageBackend};
use cam_nvme::spec::Sqe;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn doorbell_batching(c: &mut Criterion) {
    let rig = Rig::new(RigConfig {
        n_ssds: 1,
        ..RigConfig::default()
    });
    let qp = rig.devices()[0].add_queue_pair(512);
    let drain = |expect: usize| {
        let mut done = 0;
        while done < expect {
            if qp.poll_cqe().is_some() {
                done += 1;
            } else {
                std::thread::yield_now();
            }
        }
    };
    let mut g = c.benchmark_group("ablation_doorbell");
    g.sample_size(20);
    g.throughput(Throughput::Elements(128));
    g.bench_function("per_command_doorbell", |b| {
        b.iter(|| {
            for i in 0..128u16 {
                qp.submit(Sqe::read(i, i as u64, 1, (i as u64) * 4096))
                    .unwrap();
            }
            drain(128);
        })
    });
    g.bench_function("one_doorbell_per_batch", |b| {
        b.iter(|| {
            for i in 0..128u16 {
                qp.push_sqe(Sqe::read(i, i as u64, 1, (i as u64) * 4096))
                    .unwrap();
            }
            qp.ring_doorbell();
            drain(128);
        })
    });
    g.finish();
}

fn control_plane_placement(c: &mut Criterion) {
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        ..RigConfig::default()
    });
    let cam_ctx = CamContext::attach(&rig, CamConfig::default());
    let cam = CamBackend::new(cam_ctx.device(), 4096);
    let bam = BamBackend::new(&rig, 2);
    let buf = rig.gpu().alloc(64 * 4096).unwrap();
    let reads: Vec<IoRequest> = (0..64u64)
        .map(|i| IoRequest::read(i, 1, buf.addr() + i * 4096))
        .collect();
    let mut g = c.benchmark_group("ablation_control_plane");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(64 * 4096));
    g.bench_function("cpu_managed_cam", |b| {
        b.iter(|| cam.execute_batch(&reads).unwrap())
    });
    g.bench_function("gpu_managed_bam", |b| {
        b.iter(|| bam.execute_batch(&reads).unwrap())
    });
    g.finish();
}

fn sync_wrapper(c: &mut Criterion) {
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        ..RigConfig::default()
    });
    let ctx = CamContext::attach(
        &rig,
        CamConfig {
            n_channels: 3,
            ..CamConfig::default()
        },
    );
    let dev = ctx.device();
    let buf = ctx.alloc(64 * 4096).unwrap();
    let lbas: Vec<u64> = (0..64).collect();
    let mut g = c.benchmark_group("ablation_sync_wrapper");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(64 * 4096));
    g.bench_function("cam_sync_api", |b| {
        b.iter(|| {
            dev.prefetch(&lbas, buf.addr()).unwrap();
            dev.prefetch_synchronize().unwrap();
        })
    });
    g.bench_function("cam_async_api", |b| {
        b.iter(|| {
            let t = dev.submit(2, ChannelOp::Read, &lbas, buf.addr()).unwrap();
            t.wait().unwrap();
        })
    });
    g.finish();
}

fn data_path_staging(c: &mut Criterion) {
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        ..RigConfig::default()
    });
    let ctx = CamContext::attach(&rig, CamConfig::default());
    let cam = CamBackend::new(ctx.device(), 4096);
    let spdk = SpdkBackend::new(&rig);
    let buf = rig.gpu().alloc(128 * 4096).unwrap();
    let reads: Vec<IoRequest> = (0..128u64)
        .map(|i| IoRequest::read(i, 1, buf.addr() + i * 4096))
        .collect();
    let mut g = c.benchmark_group("ablation_data_path");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(128 * 4096));
    g.bench_function("direct_ssd_to_gpu", |b| {
        b.iter(|| cam.execute_batch(&reads).unwrap())
    });
    g.bench_function("staged_via_cpu_bounce", |b| {
        b.iter(|| spdk.execute_batch(&reads).unwrap())
    });
    g.finish();
}

fn dynamic_scaling(c: &mut Criterion) {
    // Static full worker pool vs the dynamic N/4..N/2 controller under a
    // compute-heavy loop: the dynamic plane should cost (nearly) nothing in
    // time while using fewer cores.
    let mut g = c.benchmark_group("ablation_dynamic_scaling");
    g.sample_size(10);
    for (name, dynamic) in [("static_workers", false), ("dynamic_workers", true)] {
        g.bench_function(name, |b| {
            let rig = Rig::new(RigConfig {
                n_ssds: 4,
                ..RigConfig::default()
            });
            let ctx = CamContext::attach(
                &rig,
                CamConfig {
                    dynamic_scaling: dynamic,
                    ..CamConfig::default()
                },
            );
            let dev = ctx.device();
            let buf = ctx.alloc(16 * 4096).unwrap();
            let lbas: Vec<u64> = (0..16).collect();
            b.iter(|| {
                dev.prefetch(&lbas, buf.addr()).unwrap();
                dev.prefetch_synchronize().unwrap();
                // Compute-heavy phase.
                std::hint::black_box(buf.to_vec().iter().map(|&x| x as u64).sum::<u64>());
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    doorbell_batching,
    control_plane_placement,
    sync_wrapper,
    data_path_staging,
    dynamic_scaling
);
criterion_main!(benches);
