//! Criterion benches over the *functional* engine's hot paths: queue-pair
//! submit/poll cycles, DMA into pinned regions, sparse block-store access,
//! and full CAM batch round trips over real service threads.

use std::sync::Arc;

use cam_blockdev::{BlockGeometry, BlockStore, Lba, SparseMemStore};
use cam_core::{CamBackend, CamConfig, CamContext};
use cam_iostacks::{IoRequest, Rig, RigConfig, SpdkBackend, StorageBackend};
use cam_nvme::spec::{Cqe, Sqe, Status};
use cam_nvme::{DmaSpace, PinnedRegion, QueuePair};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn queue_pair_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_pair");
    let qp = QueuePair::new(0, 1024);
    g.throughput(Throughput::Elements(64));
    g.bench_function("submit_poll_64_batched", |b| {
        b.iter(|| {
            for i in 0..64u16 {
                qp.push_sqe(Sqe::read(i, i as u64, 1, 0)).unwrap();
            }
            qp.ring_doorbell();
            // Loop back as the "device".
            while let Some(sqe) = qp.take_sqe() {
                qp.post_cqe(Cqe {
                    cid: sqe.cid,
                    status: Status::Success,
                });
            }
            let mut n = 0;
            while qp.poll_cqe().is_some() {
                n += 1;
            }
            assert_eq!(n, 64);
        })
    });
    g.finish();
}

fn pinned_dma(c: &mut Criterion) {
    let mut g = c.benchmark_group("pinned_region");
    let region = PinnedRegion::new(0, 8 << 20);
    let data = vec![0xABu8; 64 * 1024];
    let mut out = vec![0u8; 64 * 1024];
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("dma_write_read_64k", |b| {
        b.iter(|| {
            region.dma_write(4096, &data).unwrap();
            region.dma_read(4096, &mut out).unwrap();
        })
    });
    g.finish();
}

fn block_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_mem_store");
    let store = SparseMemStore::new(BlockGeometry::new(4096, 1 << 16));
    let buf = vec![7u8; 32 * 4096];
    let mut out = vec![0u8; 32 * 4096];
    g.throughput(Throughput::Bytes(32 * 4096));
    g.bench_function("write_read_32_blocks", |b| {
        b.iter(|| {
            store.write(Lba(100), &buf).unwrap();
            store.read(Lba(100), &mut out).unwrap();
        })
    });
    g.finish();
}

fn cam_batch_round_trip(c: &mut Criterion) {
    let rig = Rig::new(RigConfig {
        n_ssds: 2,
        ..RigConfig::default()
    });
    let cam = CamContext::attach(&rig, CamConfig::default());
    let backend = CamBackend::new(cam.device(), 4096);
    let spdk = SpdkBackend::new(&rig);
    let buf = rig.gpu().alloc(64 * 4096).unwrap();
    buf.write(0, &vec![1u8; 64 * 4096]);
    let reqs: Vec<IoRequest> = (0..64u64)
        .map(|i| IoRequest::write(i, 1, buf.addr() + i * 4096))
        .collect();
    let reads: Vec<IoRequest> = (0..64u64)
        .map(|i| IoRequest::read(i, 1, buf.addr() + i * 4096))
        .collect();

    let mut g = c.benchmark_group("backend_batch_64x4k");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(64 * 4096));
    g.bench_function("cam_write_read", |b| {
        b.iter(|| {
            backend.execute_batch(&reqs).unwrap();
            backend.execute_batch(&reads).unwrap();
        })
    });
    g.bench_function("spdk_write_read", |b| {
        b.iter(|| {
            spdk.execute_batch(&reqs).unwrap();
            spdk.execute_batch(&reads).unwrap();
        })
    });
    g.finish();
}

fn device_service_throughput(c: &mut Criterion) {
    // Raw device thread throughput: submit deep batches, reap.
    let store: Arc<dyn BlockStore> =
        Arc::new(SparseMemStore::new(BlockGeometry::new(4096, 1 << 16)));
    let dma = Arc::new(PinnedRegion::new(0, 4 << 20));
    let dev = cam_nvme::NvmeDevice::start(
        cam_nvme::DeviceConfig::default(),
        store,
        dma as Arc<dyn DmaSpace>,
    );
    let qp = dev.add_queue_pair(256);
    let mut g = c.benchmark_group("nvme_device");
    g.sample_size(20);
    g.throughput(Throughput::Elements(128));
    g.bench_function("service_128_reads", |b| {
        b.iter(|| {
            for i in 0..128u16 {
                qp.push_sqe(Sqe::read(i, (i as u64) % 1024, 1, (i as u64) * 4096))
                    .unwrap();
            }
            qp.ring_doorbell();
            let mut done = 0;
            while done < 128 {
                if qp.poll_cqe().is_some() {
                    done += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    queue_pair_cycle,
    pinned_dma,
    block_store,
    cam_batch_round_trip,
    device_service_throughput
);
criterion_main!(benches);
