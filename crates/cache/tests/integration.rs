//! End-to-end tests of the cached data path: byte-exactness against the
//! uncached device, NVMe traffic reduction, write absorption with lazy
//! durability, in-batch LBA dedup (control-plane side), and the empty-batch
//! no-op contracts.

use std::sync::Arc;

use cam_blockdev::{BlockStore, Lba};
use cam_cache::{CacheConfig, CachedBackend, CachedDevice, ReadaheadConfig};
use cam_core::{CamBackend, CamConfig, CamContext};
use cam_iostacks::{Rig, RigConfig, StorageBackend};
use cam_workloads::gemm::{load_matrix, out_of_core_gemm, OocGemmConfig};
use cam_workloads::sort::{out_of_core_sort, read_elems, OocSortConfig};

const BS: usize = 4096;

fn small_rig(n_ssds: usize) -> Rig {
    Rig::new(RigConfig {
        n_ssds,
        blocks_per_ssd: 4096,
        ..RigConfig::default()
    })
}

/// Attach with the three channels the cached path uses (read, write,
/// readahead).
fn cached_setup(rig: &Rig, cache: CacheConfig) -> (CamContext, Arc<CachedDevice>) {
    let cam = CamContext::attach(
        rig,
        CamConfig {
            n_channels: 3,
            ..CamConfig::default()
        },
    );
    let dev = Arc::new(CachedDevice::attach(rig, &cam, cache).unwrap());
    (cam, dev)
}

fn load_pattern(rig: &Rig, blocks: u64) {
    let raid = rig.raid_view();
    for b in 0..blocks {
        let fill = (b % 251) as u8 + 1;
        raid.write(Lba(b), &vec![fill; BS]).unwrap();
    }
}

fn no_readahead() -> CacheConfig {
    CacheConfig {
        readahead: ReadaheadConfig {
            enable: false,
            ..ReadaheadConfig::default()
        },
        ..CacheConfig::default()
    }
}

#[test]
fn repeated_reads_hit_without_nvme_traffic() {
    let rig = small_rig(2);
    load_pattern(&rig, 64);
    let (cam, dev) = cached_setup(&rig, no_readahead());
    let dst = cam.alloc(32 * BS).unwrap();
    let lbas: Vec<u64> = (0..32).collect();

    for round in 0..4 {
        dev.prefetch(&lbas, dst.addr()).unwrap();
        dev.prefetch_synchronize().unwrap();
        let data = dst.to_vec();
        for (i, &lba) in lbas.iter().enumerate() {
            let fill = (lba % 251) as u8 + 1;
            assert!(
                data[i * BS..(i + 1) * BS].iter().all(|&b| b == fill),
                "round {round}, lba {lba}"
            );
        }
    }

    let snap = cam.registry().snapshot();
    // Round 1 misses 32 blocks; rounds 2-4 are pure hits.
    assert_eq!(snap.counter("cam_cache_misses_total"), 32);
    assert_eq!(snap.counter("cam_cache_hits_total"), 3 * 32);
    assert_eq!(snap.sum_counters("cam_ssd_submitted_total"), 32);
    assert_eq!(dev.cache().metrics().hit_rate(), Some(0.75));
}

#[test]
fn duplicate_lbas_in_one_cached_batch_coalesce() {
    let rig = small_rig(2);
    load_pattern(&rig, 16);
    let (cam, dev) = cached_setup(&rig, no_readahead());
    let dst = cam.alloc(4 * BS).unwrap();
    // The same block requested four times in one batch: one fill, three
    // coalesced waiters, every destination populated.
    dev.prefetch(&[5, 5, 5, 5], dst.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();
    let fill = 5u8 + 1;
    assert!(dst.to_vec().iter().all(|&b| b == fill));

    let snap = cam.registry().snapshot();
    assert_eq!(snap.counter("cam_cache_misses_total"), 1);
    assert_eq!(snap.counter("cam_cache_coalesced_total"), 3);
    assert_eq!(snap.sum_counters("cam_ssd_submitted_total"), 1);
}

#[test]
fn empty_batches_are_noops_on_both_devices() {
    // S1 regression: an empty prefetch/write_back is Ok(()) and publishes
    // nothing — the subsequent synchronize must not hang or error.
    let rig = small_rig(1);
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    dev.prefetch(&[], 0xdead_beef).unwrap();
    dev.prefetch_synchronize().unwrap();
    dev.write_back(&[], 0xdead_beef).unwrap();
    dev.write_back_synchronize().unwrap();
    assert_eq!(cam.stats().batches, 0);

    let rig = small_rig(1);
    let (cam, cached) = cached_setup(&rig, no_readahead());
    cached.prefetch(&[], 0xdead_beef).unwrap();
    cached.prefetch_synchronize().unwrap();
    cached.write_back(&[], 0xdead_beef).unwrap();
    cached.write_back_synchronize().unwrap();
    assert_eq!(cam.stats().batches, 0);
    assert_eq!(
        cam.registry()
            .snapshot()
            .sum_counters("cam_ssd_submitted_total"),
        0
    );
}

#[test]
fn uncached_duplicate_lbas_dedup_to_one_submission_per_unique() {
    // S2: the control plane drops duplicate LBAs from a read batch before
    // the stripe split and replicates the data to every requested
    // destination at retire.
    let rig = small_rig(2);
    load_pattern(&rig, 8);
    let cam = CamContext::attach(&rig, CamConfig::default());
    let dev = cam.device();
    let dst = cam.alloc(6 * BS).unwrap();
    // 6 requests, 3 unique LBAs.
    let lbas = [2u64, 3, 2, 4, 3, 2];
    dev.prefetch(&lbas, dst.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();

    let data = dst.to_vec();
    for (i, &lba) in lbas.iter().enumerate() {
        let fill = (lba % 251) as u8 + 1;
        assert!(
            data[i * BS..(i + 1) * BS].iter().all(|&b| b == fill),
            "request {i} (lba {lba}) did not receive data"
        );
    }
    let snap = cam.registry().snapshot();
    assert_eq!(snap.sum_counters("cam_ssd_submitted_total"), 3);
    assert_eq!(snap.counter("cam_dedup_dropped_total"), 3);
    // The batch still accounts for all six requests.
    assert_eq!(cam.stats().requests, 6);
}

#[test]
fn write_absorption_is_lazy_and_flush_makes_it_durable() {
    let rig = small_rig(2);
    load_pattern(&rig, 8);
    let (cam, dev) = cached_setup(&rig, no_readahead());
    let src = cam.alloc(2 * BS).unwrap();
    src.write(0, &vec![0xAA; 2 * BS]);

    dev.write_back(&[3, 4], src.addr()).unwrap();
    dev.write_back_synchronize().unwrap();
    // Absorbed, not written: the media still holds the old pattern...
    let raid = rig.raid_view();
    let mut blk = vec![0u8; BS];
    raid.read(Lba(3), &mut blk).unwrap();
    assert!(blk.iter().all(|&b| b == 4)); // (3 % 251) + 1
    assert_eq!(
        cam.registry()
            .snapshot()
            .sum_counters("cam_ssd_submitted_total"),
        0
    );
    assert_eq!(dev.cache().dirty_blocks(), 2);

    // ...but a cached read observes the new data immediately.
    let dst = cam.alloc(2 * BS).unwrap();
    dev.prefetch(&[3, 4], dst.addr()).unwrap();
    dev.prefetch_synchronize().unwrap();
    assert!(dst.to_vec().iter().all(|&b| b == 0xAA));

    // Flush: now the array is updated and the slots are clean.
    dev.flush().unwrap();
    assert_eq!(dev.cache().dirty_blocks(), 0);
    raid.read(Lba(3), &mut blk).unwrap();
    assert!(blk.iter().all(|&b| b == 0xAA));
    raid.read(Lba(4), &mut blk).unwrap();
    assert!(blk.iter().all(|&b| b == 0xAA));
    let snap = cam.registry().snapshot();
    assert_eq!(snap.counter("cam_cache_write_absorbed_total"), 2);
    assert_eq!(snap.counter("cam_cache_flushed_blocks_total"), 2);
}

#[test]
fn readahead_speculates_on_sequential_streams_and_hits() {
    let rig = small_rig(2);
    load_pattern(&rig, 512);
    let (cam, dev) = cached_setup(&rig, CacheConfig::default());
    let dst = cam.alloc(16 * BS).unwrap();
    // A strictly sequential scan: batches of 16 blocks, back to back.
    for batch in 0..16u64 {
        let lbas: Vec<u64> = (batch * 16..(batch + 1) * 16).collect();
        dev.prefetch(&lbas, dst.addr()).unwrap();
        dev.prefetch_synchronize().unwrap();
        let fill = ((batch * 16) % 251) as u8 + 1;
        assert_eq!(dst.to_vec()[0], fill, "batch {batch} data");
    }
    let snap = cam.registry().snapshot();
    assert!(
        snap.counter("cam_cache_readahead_issued_total") > 0,
        "sequential stream triggered speculation"
    );
    assert!(
        snap.counter("cam_cache_readahead_hits_total") > 0,
        "speculated blocks served later demand accesses"
    );
}

#[test]
fn sort_is_byte_exact_with_cache_and_media_matches_after_flush() {
    let sort_cfg = OocSortConfig {
        total_elems: 16 * 1024,
        run_elems: 4 * 1024,
        block_size: BS as u32,
        data_lba: 0,
        scratch_lba: 16,
    };

    // Reference: the uncached CAM backend.
    let rig_a = small_rig(2);
    let cam_a = CamContext::attach(&rig_a, CamConfig::default());
    let be_a = CamBackend::new(cam_a.device(), 2048);
    seed_sort_input(&rig_a, &sort_cfg);
    let base_a = out_of_core_sort(&be_a, rig_a.gpu(), &sort_cfg).unwrap();
    let sorted_a = read_elems(&be_a, rig_a.gpu(), BS as u32, base_a, sort_cfg.total_elems).unwrap();

    // Same input through the cached backend on a second rig.
    let rig_b = small_rig(2);
    let (_cam_b, dev_b) = cached_setup(&rig_b, CacheConfig::with_slots(64));
    let be_b = CachedBackend::new(Arc::clone(&dev_b), 2048);
    seed_sort_input(&rig_b, &sort_cfg);
    let base_b = out_of_core_sort(&be_b, rig_b.gpu(), &sort_cfg).unwrap();
    assert_eq!(base_a, base_b, "same merge-pass parity");
    let sorted_b = read_elems(&be_b, rig_b.gpu(), BS as u32, base_b, sort_cfg.total_elems).unwrap();

    assert_eq!(sorted_a, sorted_b, "cached sort is byte-exact");
    assert!(sorted_b.windows(2).all(|w| w[0] <= w[1]), "actually sorted");

    // After a flush the media of both rigs agree block for block.
    dev_b.flush().unwrap();
    let (raid_a, raid_b) = (rig_a.raid_view(), rig_b.raid_view());
    let mut blk_a = vec![0u8; BS];
    let mut blk_b = vec![0u8; BS];
    for lba in 0..32u64 {
        raid_a.read(Lba(lba), &mut blk_a).unwrap();
        raid_b.read(Lba(lba), &mut blk_b).unwrap();
        assert_eq!(blk_a, blk_b, "media diverged at lba {lba}");
    }
}

fn seed_sort_input(rig: &Rig, cfg: &OocSortConfig) {
    // Deterministic pseudo-random u32 keys, packed into blocks.
    let raid = rig.raid_view();
    let per_block = BS / 4;
    let mut x = 0x1234_5678u32;
    for b in 0..(cfg.total_elems as usize / per_block) {
        let mut bytes = Vec::with_capacity(BS);
        for _ in 0..per_block {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        raid.write(Lba(cfg.data_lba + b as u64), &bytes).unwrap();
    }
}

#[test]
fn gemm_is_byte_exact_with_cache() {
    let gemm_cfg = OocGemmConfig {
        n: 64,
        tile: 32,
        block_size: BS as u32,
        base_lba: 0,
    };
    let n = gemm_cfg.n as usize;
    let a: Vec<f32> = (0..n * n).map(|i| ((i % 17) as f32) - 8.0).collect();
    let b: Vec<f32> = (0..n * n).map(|i| ((i % 13) as f32) * 0.5).collect();

    let rig_u = small_rig(2);
    let cam_u = CamContext::attach(&rig_u, CamConfig::default());
    let be_u = CamBackend::new(cam_u.device(), 2048);
    load_matrix(&be_u, rig_u.gpu(), &gemm_cfg, 0, &a).unwrap();
    load_matrix(&be_u, rig_u.gpu(), &gemm_cfg, 1, &b).unwrap();
    let c_uncached = out_of_core_gemm(&be_u, rig_u.gpu(), &gemm_cfg).unwrap();

    let rig_c = small_rig(2);
    let (cam_c, dev_c) = cached_setup(&rig_c, CacheConfig::default());
    let be_c = CachedBackend::new(Arc::clone(&dev_c), 2048);
    load_matrix(&be_c, rig_c.gpu(), &gemm_cfg, 0, &a).unwrap();
    load_matrix(&be_c, rig_c.gpu(), &gemm_cfg, 1, &b).unwrap();
    let c_cached = out_of_core_gemm(&be_c, rig_c.gpu(), &gemm_cfg).unwrap();

    // Byte-exact: identical f32 bit patterns, not approximate equality.
    assert_eq!(c_uncached.len(), c_cached.len());
    for (i, (x, y)) in c_uncached.iter().zip(&c_cached).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "C[{i}] diverged");
    }
    // The repeated operand-tile reads (each A tile read tpd times) must
    // have produced cache hits.
    let snap = cam_c.registry().snapshot();
    assert!(snap.counter("cam_cache_hits_total") > 0);
}

#[test]
fn cached_backend_reports_name_and_direct_path() {
    let rig = small_rig(1);
    let (_cam, dev) = cached_setup(&rig, no_readahead());
    let be = CachedBackend::new(dev, 64);
    assert_eq!(be.name(), "CAM+cache");
    assert!(!be.staged_data_path());
    assert_eq!(be.device().block_size(), BS as u64);
}
