//! Concurrency tests for [`BlockCache`]: refcount pinning vs. the CLOCK
//! hand, and in-flight miss coalescing under thread contention.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use cam_cache::{BlockCache, CacheConfig, Lookup};
use cam_gpu::GpuMemory;
use cam_telemetry::MetricsRegistry;

const BS: u32 = 4096;

fn cache(slots: usize, shards: usize) -> (BlockCache, Arc<MetricsRegistry>) {
    let mem = GpuMemory::new(0x4000_0000, (slots + 1) * BS as usize);
    let buf = mem.alloc(slots * BS as usize).unwrap();
    let reg = Arc::new(MetricsRegistry::new());
    let cfg = CacheConfig {
        slots,
        shards,
        ..CacheConfig::default()
    };
    (BlockCache::new(buf, BS, cfg, &reg, None), reg)
}

/// Fills `lba` as resident (the plain demand path) and returns its pin.
fn insert(c: &BlockCache, lba: u64) -> cam_cache::SlotPin {
    match c.lookup(lba) {
        Lookup::Miss(t) => t.complete(false),
        other => panic!("expected miss for fresh lba {lba}, got {}", variant(&other)),
    }
}

fn variant(l: &Lookup) -> &'static str {
    match l {
        Lookup::Hit(_) => "Hit",
        Lookup::Miss(_) => "Miss",
        Lookup::InFlight(_) => "InFlight",
        Lookup::NeedFlush => "NeedFlush",
        Lookup::Busy => "Busy",
    }
}

#[test]
fn pinned_blocks_survive_eviction_pressure() {
    // One shard, four slots: every insertion fights over the same CLOCK
    // hand. A held pin must never be evicted no matter the pressure.
    let (c, _reg) = cache(4, 1);
    let pinned = insert(&c, 7);
    let addr = pinned.addr();

    // Churn far more distinct LBAs through the shard than it has slots.
    for lba in 100..200u64 {
        match c.lookup(lba) {
            Lookup::Miss(t) => drop(t.complete(false)),
            Lookup::Busy => {} // only the pinned slot left: acceptable
            other => panic!("unexpected {} for lba {lba}", variant(&other)),
        }
    }

    // The pinned block is still resident at the same address.
    match c.lookup(7) {
        Lookup::Hit(p) => assert_eq!(p.addr(), addr),
        other => panic!("pinned block evicted: {}", variant(&other)),
    }
    drop(pinned);
}

#[test]
fn pin_vs_evict_race_under_threads() {
    // Readers continuously pin/unpin a hot set while a writer thread churns
    // cold LBAs that force evictions through the same shards. Every hit must
    // return the address the hot LBA was originally filled at (slots are
    // immobile while pinned), and nothing may deadlock or panic.
    let (c, _reg) = cache(16, 2);
    let hot: Vec<u64> = (0..4).collect();
    let mut hot_addr = std::collections::HashMap::new();
    for &lba in &hot {
        let pin = insert(&c, lba);
        hot_addr.insert(lba, pin.addr());
        // Drop the pin: residency is kept alive by reader re-pins below.
    }
    let hot_addr = Arc::new(hot_addr);
    let barrier = Arc::new(Barrier::new(3));
    let evicted_hot = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::new();
    for r in 0..2 {
        let c = c.clone();
        let hot = hot.clone();
        let hot_addr = Arc::clone(&hot_addr);
        let barrier = Arc::clone(&barrier);
        let evicted_hot = Arc::clone(&evicted_hot);
        handles.push(thread::spawn(move || {
            barrier.wait();
            for i in 0..2000usize {
                let lba = hot[(i + r) % hot.len()];
                match c.lookup(lba) {
                    Lookup::Hit(p) => {
                        // While pinned the address must be the original.
                        assert_eq!(p.addr(), hot_addr[&lba], "hot lba {lba} moved while pinned");
                    }
                    Lookup::Miss(t) => {
                        // The churn thread managed to evict it between our
                        // accesses — legal (the pin was dropped). Re-insert.
                        evicted_hot.fetch_add(1, Ordering::Relaxed);
                        drop(t);
                    }
                    Lookup::InFlight(w) => drop(w),
                    Lookup::NeedFlush | Lookup::Busy => {}
                }
            }
        }));
    }
    {
        let c = c.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            barrier.wait();
            for lba in 0..4000u64 {
                match c.lookup(1000 + lba) {
                    Lookup::Miss(t) => drop(t.complete(false)),
                    Lookup::Busy | Lookup::NeedFlush => {}
                    Lookup::Hit(p) => drop(p),
                    Lookup::InFlight(w) => drop(w),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Sanity: the cache is still coherent — a fresh insert works.
    drop(insert(&c, 9999));
}

#[test]
fn concurrent_misses_coalesce_to_one_fill() {
    // N threads race a lookup for the same absent LBA: exactly one must get
    // the fill ticket, everyone else a waiter that resolves to the same slot.
    let n = 8;
    let (c, _reg) = cache(32, 4);
    let barrier = Arc::new(Barrier::new(n));
    let fill_owners = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let c = c.clone();
            let barrier = Arc::clone(&barrier);
            let fill_owners = Arc::clone(&fill_owners);
            thread::spawn(move || {
                barrier.wait();
                match c.lookup(42) {
                    Lookup::Miss(t) => {
                        fill_owners.fetch_add(1, Ordering::SeqCst);
                        // Simulate the NVMe fill latency while waiters queue.
                        thread::sleep(Duration::from_millis(20));
                        let pin = t.complete(false);
                        pin.addr()
                    }
                    Lookup::InFlight(w) => {
                        let pin = w.wait().expect("fill completed, not aborted");
                        pin.addr()
                    }
                    Lookup::Hit(p) => p.addr(), // raced past completion: fine
                    other => panic!("unexpected {}", variant(&other)),
                }
            })
        })
        .collect();
    let addrs: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(
        fill_owners.load(Ordering::SeqCst),
        1,
        "exactly one thread owns the NVMe fill"
    );
    assert!(
        addrs.windows(2).all(|w| w[0] == w[1]),
        "all threads resolved to the same slot: {addrs:?}"
    );
    let snap = _reg.snapshot();
    assert_eq!(snap.counter("cam_cache_misses_total"), 0); // metric belongs to the device layer
}

#[test]
fn aborted_fill_wakes_waiters_with_none() {
    let (c, _reg) = cache(8, 1);
    let ticket = match c.lookup(5) {
        Lookup::Miss(t) => t,
        other => panic!("unexpected {}", variant(&other)),
    };
    let waiter = match c.lookup(5) {
        Lookup::InFlight(w) => w,
        other => panic!("unexpected {}", variant(&other)),
    };
    let h = thread::spawn(move || waiter.wait());
    thread::sleep(Duration::from_millis(10));
    drop(ticket); // abort: the owning read failed
    assert!(
        h.join().unwrap().is_none(),
        "waiter observes the abort and falls back"
    );
    // The slot is reusable afterwards.
    drop(insert(&c, 5));
}

#[test]
fn dirty_slots_are_skipped_by_eviction_until_flushed() {
    let (c, _reg) = cache(4, 1);
    for lba in 0..4u64 {
        let pin = insert(&c, lba);
        pin.mark_dirty();
    }
    assert_eq!(c.dirty_blocks(), 4);
    // Shard is full of dirty blocks: demand allocation must ask for a
    // flush, never silently drop dirty data.
    assert!(matches!(c.lookup(99), Lookup::NeedFlush));

    let pins = c.take_dirty(2);
    assert_eq!(pins.len(), 2);
    assert_eq!(c.dirty_blocks(), 2); // dirty cleared at take
    drop(pins);
    // With clean unpinned slots available, allocation succeeds again.
    match c.lookup(99) {
        Lookup::Miss(t) => drop(t.complete(false)),
        other => panic!("unexpected {}", variant(&other)),
    }
}

#[test]
fn take_dirty_pins_against_concurrent_eviction() {
    let (c, _reg) = cache(4, 1);
    let pin = insert(&c, 1);
    pin.mark_dirty();
    drop(pin);
    let flush = c.take_dirty(4);
    assert_eq!(flush.len(), 1);
    // While the flush holds the pin, churn cannot reclaim that slot.
    for lba in 10..30u64 {
        if let Lookup::Miss(t) = c.lookup(lba) {
            drop(t.complete(false));
        }
    }
    assert!(
        matches!(c.lookup(1), Lookup::Hit(_)),
        "block being flushed stayed resident"
    );
    drop(flush);
}
