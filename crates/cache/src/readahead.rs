//! [`ReadaheadEngine`] — per-channel sequential/strided stream detection
//! with an accuracy-adapted window.
//!
//! Pure decision logic, no I/O: [`CachedDevice`](crate::CachedDevice) feeds
//! it the start LBA of every demand batch and issues the speculative
//! batches it suggests.

use crate::config::ReadaheadConfig;

/// Detects a stable stride between successive demand-batch start LBAs and
/// predicts where the stream goes next.
#[derive(Debug)]
pub struct ReadaheadEngine {
    cfg: ReadaheadConfig,
    window: u32,
    last_start: Option<u64>,
    stride: Option<i64>,
    /// Consecutive transitions with the same nonzero stride.
    confirmed: u32,
}

impl ReadaheadEngine {
    /// A fresh detector with the configured initial window.
    pub fn new(cfg: ReadaheadConfig) -> Self {
        let window = cfg
            .initial_window
            .clamp(cfg.min_window.max(1), cfg.max_window.max(1));
        ReadaheadEngine {
            cfg,
            window,
            last_start: None,
            stride: None,
            confirmed: 0,
        }
    }

    /// Current speculative window in blocks.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Observes a demand batch starting at `start`. Returns
    /// `Some((predicted_start, blocks))` when the inter-batch stride has
    /// held for two consecutive transitions — the caller should prefetch
    /// `blocks` blocks from one stride past `start`.
    pub fn observe(&mut self, start: u64) -> Option<(u64, u32)> {
        let prediction = match self.last_start {
            None => None,
            Some(prev) => {
                let stride = start as i64 - prev as i64;
                if stride != 0 && self.stride == Some(stride) {
                    self.confirmed += 1;
                } else {
                    self.confirmed = 0;
                }
                self.stride = Some(stride);
                // Two stable transitions (three aligned batches) before
                // speculating; descending streams are not worth chasing.
                if self.confirmed >= 1 && stride > 0 {
                    let blocks = self.window.min(self.cfg.budget_blocks.max(1));
                    Some((start.saturating_add(stride as u64), blocks))
                } else {
                    None
                }
            }
        };
        self.last_start = Some(start);
        prediction
    }

    /// Adapts the window from the accuracy of the previous issue (fraction
    /// of its speculative blocks that served a demand access): ≥ 0.75 grows
    /// the window ×2, ≤ 0.25 halves it, in between leaves it alone.
    pub fn feedback(&mut self, accuracy: f64) {
        if accuracy >= 0.75 {
            self.window = (self.window.saturating_mul(2)).min(self.cfg.max_window.max(1));
        } else if accuracy <= 0.25 {
            self.window = (self.window / 2).max(self.cfg.min_window.max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ReadaheadEngine {
        ReadaheadEngine::new(ReadaheadConfig::default())
    }

    #[test]
    fn sequential_stream_predicts_after_two_stable_strides() {
        let mut ra = engine();
        assert_eq!(ra.observe(0), None); // first batch: nothing to compare
        assert_eq!(ra.observe(32), None); // stride 32 seen once
        let (start, blocks) = ra.observe(64).expect("stride confirmed");
        assert_eq!(start, 96);
        assert_eq!(blocks, ra.window());
        // The stream keeps predicting as long as the stride holds.
        assert_eq!(ra.observe(96).map(|p| p.0), Some(128));
    }

    #[test]
    fn strided_stream_is_detected_and_random_breaks_it() {
        let mut ra = engine();
        ra.observe(10);
        ra.observe(110);
        assert_eq!(ra.observe(210).map(|p| p.0), Some(310));
        // A random jump resets confirmation.
        assert_eq!(ra.observe(5000), None);
        assert_eq!(ra.observe(5100), None);
        assert_eq!(ra.observe(5200).map(|p| p.0), Some(5300));
    }

    #[test]
    fn window_adapts_within_bounds() {
        let cfg = ReadaheadConfig {
            min_window: 4,
            initial_window: 8,
            max_window: 32,
            ..ReadaheadConfig::default()
        };
        let mut ra = ReadaheadEngine::new(cfg);
        ra.feedback(1.0);
        assert_eq!(ra.window(), 16);
        ra.feedback(0.9);
        ra.feedback(0.9);
        assert_eq!(ra.window(), 32); // clamped at max
        ra.feedback(0.5);
        assert_eq!(ra.window(), 32); // mid accuracy: unchanged
        ra.feedback(0.0);
        ra.feedback(0.0);
        ra.feedback(0.0);
        ra.feedback(0.0);
        assert_eq!(ra.window(), 4); // clamped at min
    }

    #[test]
    fn descending_and_repeated_streams_never_predict() {
        let mut ra = engine();
        ra.observe(300);
        ra.observe(200);
        assert_eq!(ra.observe(100), None); // stable but descending
        let mut ra = engine();
        ra.observe(50);
        ra.observe(50);
        assert_eq!(ra.observe(50), None); // zero stride (repeats = cache hits)
    }
}
