//! GPU-memory block cache for CAM: sharded CLOCK cache over pinned GPU
//! memory with in-flight miss coalescing, lazy write-back absorption, and
//! adaptive readahead.
//!
//! The cache sits **between kernels and the doorbell protocol** — the CAM
//! control plane, channel layout, and `CamContext::attach` are untouched.
//! Opting in means wrapping the context:
//!
//! ```no_run
//! use std::sync::Arc;
//! use cam_core::{CamConfig, CamContext};
//! use cam_iostacks::{Rig, RigConfig, StorageBackend};
//! use cam_cache::{CacheConfig, CachedBackend, CachedDevice};
//!
//! let rig = Rig::new(RigConfig::default());
//! // Three channels: demand read, write-back flush, speculative readahead.
//! let cam = CamContext::attach(&rig, CamConfig { n_channels: 3, ..CamConfig::default() });
//! let dev = Arc::new(CachedDevice::attach(&rig, &cam, CacheConfig::default()).unwrap());
//! dev.prefetch(&[0, 1, 2], /* pinned dest */ 0x1000).unwrap();
//! dev.prefetch_synchronize().unwrap();
//! dev.flush().unwrap(); // make absorbed writes durable
//! let backend = CachedBackend::new(dev, 2048); // run workloads through it
//! let _ = backend.name();
//! ```
//!
//! Layering (see `docs/CACHE.md` for the full walk-through):
//!
//! * `cam_protocol::cache_core::CacheCore` — every cache *decision*
//!   (CLOCK eviction, coalescing, dirty policy, readahead planning) as a
//!   pure state machine, shared with the DES driver and fidelity replay.
//! * [`BlockCache`] — the threaded wrapper: pinned GPU memory, a condvar
//!   for coalesced waits, refcount pins ([`SlotPin`]), one-owner fills
//!   ([`FillTicket`]) and waiters ([`SlotWait`]), dirty tracking
//!   ([`BlockCache::take_dirty`]), metrics synced from the core counters.
//! * [`ReadaheadEngine`] — pure stream detection + window adaptation
//!   (re-exported from the protocol core).
//! * [`CachedDevice`] — the cached `prefetch` / `write_back` data path
//!   wiring cache misses into single demand batches and speculation onto
//!   its own channel.
//! * [`CachedBackend`] — [`cam_iostacks::StorageBackend`] adapter so the
//!   evaluation workloads run unchanged with the cache in the path.

mod cache;
mod config;
mod device;
mod metrics;

pub use cache::{BlockCache, FillTicket, Lookup, ReadaheadBatch, SlotPin, SlotWait};
pub use cam_protocol::cache_core::ReadaheadCore as ReadaheadEngine;
pub use config::{CacheConfig, ReadaheadConfig};
pub use device::{CachedBackend, CachedDevice};
pub use metrics::CacheMetrics;
